//! CUBA: Context-UnBounded Analysis of concurrent pushdown systems.
//!
//! This is a from-scratch reproduction of *CUBA: Interprocedural
//! Context-UnBounded Analysis of Concurrent Programs* (Liu & Wahl,
//! PLDI 2018). It is a facade crate that re-exports the workspace:
//!
//! * [`pds`] — pushdown systems and concurrent pushdown systems (§2)
//! * [`automata`] — finite automata, pushdown store automata, `post*`/`pre*`
//! * [`explore`] — explicit and symbolic context-bounded reachability
//! * [`core`] — observation sequences, Scheme 1, Algorithm 3, FCR, the driver
//! * [`boolprog`] — the concurrent Boolean program frontend (App. B)
//! * [`reduce`] — verdict-preserving static pre-analysis and lints
//! * [`benchmarks`] — the paper's running examples and benchmark suite
//!
//! # Quickstart
//!
//! Verify the paper's Fig. 1 example for an unbounded number of thread
//! contexts through the §6 engine portfolio (explicit arms ∥ CBA
//! refuter under FCR, symbolic arms otherwise):
//!
//! ```
//! use cuba::benchmarks::fig1;
//! use cuba::core::{Portfolio, Property, Verdict};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cpds = fig1::build();
//! // "error" state 3 paired with thread 1 back at its initial symbol
//! // is unreachable; pick any property expressible over visible states.
//! let property = Property::never_visible(fig1::unreachable_visible());
//! let outcome = Portfolio::auto().run(cpds, property)?;
//! assert!(matches!(outcome.verdict, Verdict::Safe { .. }));
//! # Ok(())
//! # }
//! ```
//!
//! For round-by-round streaming, cancellation, deadlines and batch
//! verification, open an [`AnalysisSession`](core::AnalysisSession)
//! via [`Portfolio::session`](core::Portfolio::session) or use
//! [`Portfolio::run_suite`](core::Portfolio::run_suite); the classic
//! blocking driver remains as [`Cuba`](core::Cuba).

pub use cuba_automata as automata;
pub use cuba_benchmarks as benchmarks;
pub use cuba_boolprog as boolprog;
pub use cuba_core as core;
pub use cuba_explore as explore;
pub use cuba_pds as pds;
pub use cuba_reduce as reduce;
