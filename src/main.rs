//! `cuba` — command-line verifier for concurrent pushdown systems and
//! concurrent Boolean programs.
//!
//! ```text
//! cuba verify <file> [options]
//!     <file>           .bp (Boolean program) or .cpds (text format)
//!     --engine auto|explicit|symbolic    (default: auto = the paper's §6 portfolio:
//!                                         explicit arms ∥ CBA refuter under FCR,
//!                                         symbolic arms otherwise)
//!     --max-k <n>      round limit (default 64)
//!     --parallel       race the engine arms on real OS threads
//!     --schedule SPEC  arm scheduling policy (default: frontier = cost-aware:
//!                      bonus turns for the plateauing arm, parking for
//!                      ballooning ones). SPEC grammar, shared with `cuba serve`:
//!                        round-robin              the paper's lockstep
//!                        frontier                 default tuning
//!                        frontier:<file>          a profile written by `cuba tune`
//!                        frontier:k=v,...         inline tuning (window, bonus_turns,
//!                                                 max_lead, balloon_ratio, park_floor,
//!                                                 park_after)
//!     --threads <n>    saturation worker threads per context step
//!                      (default 0 = available parallelism; 1 = the
//!                      sequential code path). Verdicts, k, witnesses,
//!                      and growth logs are identical at every value —
//!                      only wall time moves. A frontier profile's
//!                      `threads` key fills in when this is left on auto.
//!     --timeout <s>    wall-clock limit in seconds (verdict: undetermined)
//!     --trace          stream per-round events to stderr (line-locked;
//!                      with several properties each line is prefixed
//!                      with its property spec)
//!     --trace-out <f>  record structured spans (rounds, scheduler
//!                      decisions, saturation waves, shard work, barrier
//!                      merges, cache lookups, reduce passes) and write
//!                      a Chrome trace-event JSON file on exit — load it
//!                      in Perfetto (ui.perfetto.dev) or chrome://tracing
//!     --json           emit one machine-readable JSON object on stdout
//!                      per property (includes per-arm growth logs with
//!                      per-round state deltas/wall-clock, the
//!                      explored-vs-replayed shared-exploration counters,
//!                      and a "telemetry" block with per-stage wall
//!                      times and registry counters)
//!     --never-shared <q>   property: shared state q unreachable
//!                          (default for .bp: no assertion fails;
//!                           default for .cpds: compute reachability to convergence)
//!     --property <spec>    a property to verify; repeatable — all
//!                          properties of one invocation share a single
//!                          layered exploration per backend ("one
//!                          system, many properties"). Specs:
//!                            true
//!                            never-shared:<q>
//!                            never-visible:<q>|<t1>,<t2>,...   ('-' = empty stack)
//!                            mutex:<thread>@<sym>,<thread>@<sym>
//!     --reduce         verdict-preserving static pre-analysis first:
//!                      prune transitions that can never fire (and, for
//!                      .bp inputs, constant-false branches before
//!                      translation); the verdict word is unchanged and
//!                      `--json` gains a "reduction" stats object
//!     --profile-map <f>  persistent fingerprint -> schedule map: load
//!                      (or start) the map at <f>, run a cheap tuning
//!                      probe if this system is novel, adopt the
//!                      learned config for the run, and save the map
//!                      on exit. The learned profile outranks the
//!                      base --schedule; its verdicts are always
//!                      identical to the default configuration's.
//!     --from-snapshot <f>  warm-start from a `cuba snapshot` file:
//!                      the recorded layers replay (rounds_explored
//!                      drops to the bounds beyond the snapshot's
//!                      depth), verdicts are identical by
//!                      construction, and a file that fails the
//!                      structural-identity check is rejected
//! cuba snapshot <file> --out <f> [options]  explore once, write the
//!     layer store as a compact versioned binary snapshot (header:
//!     format version, CPDS fingerprint, backend kind, checksum) —
//!     the offline produce half of --from-snapshot / --state-dir
//!     --engine auto|explicit|symbolic   backend to record (auto =
//!                      explicit under FCR, symbolic otherwise)
//!     --max-k <n>      explore at most this bound (default 64); the
//!                      exploration stops early at collapse
//!     --threads <n>    saturation worker threads (as for verify)
//! cuba fcr <file>      run only the finite-context-reachability check
//! cuba info <file>     print model statistics
//! cuba trace-check <file>  validate a --trace-out Chrome trace file:
//!     checks it parses, every B span has its matching E, and prints
//!     an event/span/track summary. Exit 2 on a malformed trace.
//! cuba lint <file> [options]  static diagnostics without verifying
//!     --property <spec>    property to check against the model
//!                          (repeatable; grammar as for verify)
//!     --json           one JSON object: {"file", "lints": [{code,
//!                      level, message, line?, col?}], "reduction",
//!                      "deny"/"warn"/"note" counts}
//!
//!     Lints: unknown-state (deny), vacuous-property (note),
//!     unreachable-state / dead-transition (warn, .cpds),
//!     dead-branch / write-only-variable (warn, .bp),
//!     constant-assert (note/warn, .bp). Exit 1 when any deny-level
//!     lint fires, else 0.
//! cuba bench [options] measure the Table 2 suite, statistically
//!     --samples <n>    measured suite iterations (default 5)
//!     --warmup <n>     unmeasured iterations first (default 1)
//!     --workers <n>    problems in flight (default: CPUs)
//!     --threads <n>    saturation worker threads (as for verify);
//!                      records are identical at every value except
//!                      the timing fields
//!     --schedule SPEC  as for verify
//!     --reduce         pre-reduce every workload (rows gain
//!                      reduce_removed / reduce_us); with --compare
//!                      against an unreduced baseline this gates that
//!                      reduction never changes a verdict
//!     --compare <file> classify each workload against a recorded baseline as
//!                      improved/regressed/unchanged with noise-aware thresholds
//!                      (medians of IQR-filtered samples; a regression must
//!                      exceed the ratio, the MAD band, AND the absolute floor)
//!     --gate           exit 1 on any regression or verdict change (CI mode)
//!     --ratio <r>      required median ratio (default 4.0)
//!     --sigma <s>      required distance in MAD-sigmas (default 8.0)
//!     --floor-ms <m>   absolute floor, milliseconds (default 250)
//!     --profile-map <f>  load (or start) the persistent profile map
//!                      at <f>, probe novel fingerprints before the
//!                      warmup, run the measured suite through the
//!                      learned schedules, and save the map after
//!     --from-snapshot <f>  seed every iteration's fresh suite cache
//!                      from a `cuba snapshot` file: the matching
//!                      workload replays the recorded layers (its row
//!                      shows "cache":"hit"); verdicts are identical
//!
//!     The N-sample JSON record (BENCH_*.json format, `samples_us` per
//!     workload, no timing fields on error rows) goes to stdout; the
//!     comparison report and progress go to stderr.
//! cuba tune [options]  sweep FrontierConfig, emit a schedule profile
//!     --out <file>     profile path (default cuba-tuned.profile)
//!     --name <name>    profile name (default tuned)
//!     --samples <n>    suite iterations per candidate (default 1)
//!     --warmup <n>     unmeasured iterations first (default 1)
//!     --passes <n>     coordinate-descent passes (default 1)
//!     --workers <n>    problems in flight (default: CPUs)
//!     --probe          single-pass budget-capped sweep through one
//!                      shared exploration cache — the same probe the
//!                      online --profile-map path runs on a novel
//!                      fingerprint; seconds instead of minutes
//!     --emit-map       probe each distinct fingerprint in the suite
//!                      and write a profile *map* (load with
//!                      --profile-map) instead of a single profile
//!
//!     Scores candidates by (total live exploration rounds, wall) and
//!     only ever adopts one whose per-workload verdicts are identical
//!     to the default configuration's, so the emitted profile is
//!     never worse than the defaults. Load it with
//!     `--schedule frontier:<file>`.
//! cuba serve [options] run the HTTP analysis service (cuba-serve)
//!     --addr <a>       bind address (default 127.0.0.1:0 = ephemeral;
//!                      the bound address is printed on stdout)
//!     --workers <n>    bounded worker pool size (default: CPUs, max 8)
//!     --threads <n>    saturation worker threads per served session
//!                      (default 0 = cores / workers, so the pool as a
//!                      whole never oversubscribes the machine)
//!     --max-k <n>      default round limit for served sessions
//!     --timeout <s>    default wall-clock limit per served session
//!     --schedule SPEC  arm scheduling policy (grammar as for verify)
//!     --profile <f>    preload a named schedule profile (repeatable);
//!                      requests select it with schedule=frontier:<name>
//!     --profile-map <f>  load (or start) the persistent profile map
//!                      at <f>: requests without an explicit schedule=
//!                      consult it, novel systems are probed once
//!                      (concurrent clients share the probe), learned
//!                      profiles show up in GET /systems, and the map
//!                      is saved when the server drains
//!     --state-dir <d>  persistent layer-store snapshots: systems
//!                      pushed out by max_systems pressure spill to
//!                      <d> instead of being forgotten and reload
//!                      transparently on the next request; on a
//!                      graceful drain every resident system is
//!                      flushed, so a restarted server warm-starts
//!                      (identical verdicts, zero re-exploration)
//!
//!     Endpoints are mounted under /v1 (GET /v1 returns a JSON index
//!     plus server capabilities; the unprefixed legacy paths answer
//!     identically): POST /analyze (NDJSON event stream; repeatable
//!     property= query params, body = model source, format=cpds|bp,
//!     reduce=true for the verdict-preserving pre-analysis),
//!     POST /suite, GET /systems (per-system residency
//!     resident|spilled plus snapshot/spill counters), GET /healthz,
//!     POST /shutdown (mode=graceful|abort). Concurrent clients
//!     asking about one system share a single layered exploration per
//!     backend.
//! ```
//!
//! With several properties the exit code is the *worst* verdict:
//! any unsafe → 1, else any undetermined → 3, else 0.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use cuba::benchmarks::textfmt;
use cuba::boolprog;
use cuba::core::{
    check_fcr, fingerprint, CubaOutcome, EngineKind, Lineup, Portfolio, ProfileMap, Property,
    SchedulePolicy, SessionConfig, SessionEvent, SuiteCache, SystemArtifacts, Verdict,
};
use cuba::explore::{ExploreBudget, Interrupt, SharedExplorer, SubsumptionMode};
use cuba::pds::{Cpds, SharedState};
use cuba_bench::json_escape as json_string;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::from(2)
        }
    }
}

fn usage() -> String {
    "usage: cuba <verify|fcr|info> <file.bp|file.cpds> [--engine auto|explicit|symbolic] \
     [--max-k N] [--parallel] [--threads N] [--schedule SPEC] [--timeout SECS] [--trace] \
     [--trace-out FILE] [--json] [--reduce] [--never-shared Q] [--property SPEC]... \
     [--profile-map FILE] [--from-snapshot FILE]\n   \
     or: cuba lint \
     <file.bp|file.cpds> [--property SPEC]... [--json]\n   or: cuba snapshot \
     <file.bp|file.cpds> --out FILE [--engine auto|explicit|symbolic] [--max-k N] \
     [--threads N]\n   or: cuba serve [--addr ADDR] \
     [--workers N] [--threads N] [--max-k N] [--timeout SECS] [--schedule SPEC] \
     [--profile FILE]... [--profile-map FILE] [--trace-out FILE] [--state-dir DIR]\n   \
     or: cuba bench [--samples N] [--warmup N] [--workers N] [--threads N] [--schedule SPEC] \
     [--reduce] [--compare FILE] [--gate] [--ratio R] [--sigma S] [--floor-ms MS] \
     [--profile-map FILE] [--trace-out FILE] [--from-snapshot FILE]\n   \
     or: cuba tune [--out FILE] [--name NAME] [--samples N] [--warmup N] [--passes N] \
     [--workers N] [--probe] [--emit-map]\n   \
     or: cuba trace-check <trace.json>\n   (schedule SPEC: round-robin | frontier \
     | frontier:<profile-file> | frontier:key=value,...)"
        .to_owned()
}

/// Options of `cuba verify`.
struct VerifyOptions {
    lineup: Lineup,
    max_k: usize,
    parallel: bool,
    /// Saturation worker threads (0 = auto, 1 = sequential).
    threads: usize,
    schedule: SchedulePolicy,
    timeout: Option<Duration>,
    trace: bool,
    /// `--trace-out FILE`: record structured spans and export a
    /// Chrome trace-event JSON file on exit.
    trace_out: Option<String>,
    json: bool,
    reduce: bool,
    never_shared: Option<SharedState>,
    /// Repeated `--property` specs, verified in order over one shared
    /// exploration of the system.
    properties: Vec<(String, Property)>,
    /// `--profile-map FILE`: consult (and grow) the persistent
    /// fingerprint → schedule map at this path.
    profile_map: Option<String>,
    /// `--from-snapshot FILE`: seed the invocation's shared
    /// exploration from a `cuba snapshot` file before any property
    /// runs — matching bounds replay instead of exploring live.
    from_snapshot: Option<String>,
}

impl Default for VerifyOptions {
    fn default() -> Self {
        VerifyOptions {
            lineup: Lineup::Auto,
            max_k: 64,
            parallel: false,
            threads: 0,
            schedule: SchedulePolicy::default(),
            timeout: None,
            trace: false,
            trace_out: None,
            json: false,
            reduce: false,
            never_shared: None,
            properties: Vec::new(),
            profile_map: None,
            from_snapshot: None,
        }
    }
}

/// The flags shared by several subcommands, parsed in exactly one
/// place so the grammar and the error texts cannot drift between
/// `verify`, `bench`, `serve`, and `snapshot`. Each subcommand says
/// which of them it accepts; everything else falls through to its own
/// match arm.
#[derive(Default)]
struct CommonOpts {
    /// `--schedule SPEC` (grammar in [`SchedulePolicy::parse_spec_with_files`]).
    schedule: Option<SchedulePolicy>,
    /// `--threads N` (0 = auto, 1 = sequential).
    threads: Option<usize>,
    /// `--timeout SECS` (fractional seconds).
    timeout: Option<Duration>,
    /// `--profile-map FILE` (loaded by the subcommand: semantics differ).
    profile_map: Option<String>,
    /// `--trace-out FILE`.
    trace_out: Option<String>,
    /// `--reduce`.
    reduce: bool,
    /// `--state-dir DIR` (serve only today).
    state_dir: Option<String>,
}

/// The shared flags each subcommand opts into.
const VERIFY_COMMON: &[&str] = &[
    "--schedule",
    "--threads",
    "--timeout",
    "--profile-map",
    "--trace-out",
    "--reduce",
];
const BENCH_COMMON: &[&str] = &[
    "--schedule",
    "--threads",
    "--profile-map",
    "--trace-out",
    "--reduce",
];
const SERVE_COMMON: &[&str] = &[
    "--schedule",
    "--threads",
    "--timeout",
    "--profile-map",
    "--trace-out",
    "--state-dir",
];
const SNAPSHOT_COMMON: &[&str] = &["--threads"];

impl CommonOpts {
    /// Tries to consume `args[*i]` (plus its argument, if any) as one
    /// of the shared flags in `accepted`. `Ok(true)` means consumed,
    /// with `*i` left on the flag's last token — the subcommand loops
    /// all step `i` once more afterwards. `Ok(false)` means the token
    /// is not an accepted shared flag and the caller's own match
    /// handles it.
    fn try_parse(
        &mut self,
        args: &[String],
        i: &mut usize,
        accepted: &[&str],
    ) -> Result<bool, String> {
        let flag = args[*i].clone();
        if !accepted.contains(&flag.as_str()) {
            return Ok(false);
        }
        match flag.as_str() {
            "--schedule" => {
                *i += 1;
                let spec = args.get(*i).ok_or("--schedule needs a spec argument")?;
                self.schedule = Some(SchedulePolicy::parse_spec_with_files(spec)?);
            }
            "--threads" => {
                *i += 1;
                self.threads = Some(parse_zero_ok(args.get(*i), "--threads")?);
            }
            "--timeout" => {
                *i += 1;
                self.timeout = Some(
                    args.get(*i)
                        .and_then(|s| s.parse::<f64>().ok())
                        .and_then(|s| Duration::try_from_secs_f64(s).ok())
                        .ok_or("bad --timeout value (seconds)")?,
                );
            }
            "--profile-map" => {
                *i += 1;
                self.profile_map = Some(
                    args.get(*i)
                        .cloned()
                        .ok_or("--profile-map needs a file argument")?,
                );
            }
            "--trace-out" => {
                *i += 1;
                self.trace_out = Some(
                    args.get(*i)
                        .cloned()
                        .ok_or("--trace-out needs a file argument")?,
                );
            }
            "--reduce" => self.reduce = true,
            "--state-dir" => {
                *i += 1;
                self.state_dir = Some(
                    args.get(*i)
                        .cloned()
                        .ok_or("--state-dir needs a directory argument")?,
                );
            }
            other => return Err(format!("unknown option '{other}'")),
        }
        Ok(true)
    }
}

/// Loads the profile map at `path`, or starts an empty one when the
/// file does not exist yet (first run learns, later runs reuse).
fn load_profile_map(path: &str) -> Result<Arc<ProfileMap>, String> {
    if std::path::Path::new(path).exists() {
        Ok(Arc::new(ProfileMap::load(path)?))
    } else {
        Ok(Arc::new(ProfileMap::new()))
    }
}

/// Parses one `--property` spec (the grammar lives in
/// [`Property::parse`], shared with the serve API).
fn parse_property(spec: &str) -> Result<Property, String> {
    Property::parse(spec).map_err(|message| format!("bad --property: {message}"))
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let Some(command) = args.first() else {
        return Err(usage());
    };
    // Validate the subcommand (and its options) *before* touching the
    // model file: `cuba bogus file.bp` must not parse the file first,
    // and `cuba info file --bogus` must not silently ignore options.
    match command.as_str() {
        "info" | "fcr" => {
            let path = sole_path(args)?;
            let (cpds, _) = load(path)?;
            if command == "info" {
                print_info(path, &cpds);
            } else {
                print_fcr(&cpds);
            }
            Ok(ExitCode::SUCCESS)
        }
        "verify" => {
            let Some(path) = args.get(1) else {
                return Err(usage());
            };
            let options = parse_verify_options(&args[2..])?;
            // With --reduce, .bp inputs get the pre-translation CFG
            // simplification as well (same verdict, fewer transitions).
            let model = load_model(path, options.reduce)?;
            // The property worklist: every `--property`, then the
            // legacy `--never-shared`, then (if nothing was given) the
            // file's default property.
            let mut properties = options.properties.clone();
            if let Some(q) = options.never_shared {
                properties.push((format!("never-shared:{}", q.0), Property::never_shared(q)));
            }
            if properties.is_empty() {
                properties.push(("default".to_owned(), model.default_property.clone()));
            }
            verify(model, properties, &options)
        }
        "lint" => lint_cmd(&args[1..]),
        "snapshot" => snapshot_cmd(&args[1..]),
        "serve" => serve(&args[1..]),
        "bench" => bench(&args[1..]),
        "tune" => tune(&args[1..]),
        "trace-check" => trace_check(args),
        other => Err(format!("unknown command '{other}'\n{}", usage())),
    }
}

/// `cuba trace-check`: validates a `--trace-out` Chrome trace file —
/// it must parse, every `B` begin event must have its matching `E` on
/// the same track, and timestamps must be sane. Prints a span summary
/// so CI logs show what the trace covers.
fn trace_check(args: &[String]) -> Result<ExitCode, String> {
    let path = sole_path(args)?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let summary =
        cuba_telemetry::trace::validate_chrome_trace(&text).map_err(|e| format!("{path}: {e}"))?;
    println!(
        "{path}: valid Chrome trace — {} events ({} spans, {} instants) on {} tracks",
        summary.events, summary.spans, summary.instants, summary.tracks
    );
    for (name, count) in &summary.span_names {
        println!("  {name}: {count}");
    }
    Ok(ExitCode::SUCCESS)
}

/// Enables span recording when `--trace-out` was given; returns the
/// export path so the caller can flush the trace once the work is
/// done.
fn start_trace_recording(trace_out: Option<&String>) -> Option<&String> {
    if trace_out.is_some() {
        cuba_telemetry::enable_tracing();
    }
    trace_out
}

/// Writes the recorded spans as Chrome trace-event JSON and tells the
/// user where the file went (stderr, like all progress output).
fn finish_trace_recording(trace_out: Option<&String>) -> Result<(), String> {
    let Some(path) = trace_out else {
        return Ok(());
    };
    cuba_telemetry::trace::export_chrome(path)?;
    eprintln!("trace written to {path} (load in ui.perfetto.dev or chrome://tracing)");
    Ok(())
}

/// `cuba snapshot`: explore a model once and write its layer store as
/// a self-contained binary snapshot file — the produce half of the
/// offline ship-layers-between-processes workflow. `verify
/// --from-snapshot`, `bench --from-snapshot`, and the `serve
/// --state-dir` directory consume the same format.
fn snapshot_cmd(args: &[String]) -> Result<ExitCode, String> {
    let Some(path) = args.first() else {
        return Err(usage());
    };
    let mut out: Option<String> = None;
    let mut max_k: usize = 64;
    let mut engine = "auto".to_owned();
    let mut common = CommonOpts::default();
    let mut i = 1;
    while i < args.len() {
        if common.try_parse(args, &mut i, SNAPSHOT_COMMON)? {
            i += 1;
            continue;
        }
        match args[i].as_str() {
            "--out" => {
                i += 1;
                out = Some(args.get(i).cloned().ok_or("--out needs a file argument")?);
            }
            "--max-k" => {
                i += 1;
                max_k = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .ok_or("bad --max-k value")?;
            }
            "--engine" => {
                i += 1;
                engine = match args.get(i).map(|s| s.as_str()) {
                    Some(e @ ("auto" | "explicit" | "symbolic")) => e.to_owned(),
                    other => return Err(format!("bad --engine {other:?}")),
                };
            }
            other => return Err(format!("unknown option '{other}'")),
        }
        i += 1;
    }
    // Options are validated before the model is touched (repo-wide
    // CLI discipline), so a missing --out never costs an exploration.
    let out = out.ok_or("snapshot needs --out FILE")?;

    let model = load_model(path, false)?;
    let cpds = model.cpds;
    // auto follows the portfolio's backend split: explicit layers
    // under FCR, symbolic (exact subsumption) otherwise.
    let explicit = match engine.as_str() {
        "explicit" => true,
        "symbolic" => false,
        _ => check_fcr(&cpds).holds(),
    };
    let budget = ExploreBudget {
        threads: common.threads.unwrap_or(0),
        ..ExploreBudget::default()
    };
    let artifacts = SystemArtifacts::new();
    let explorer = if explicit {
        artifacts.explicit_explorer(&cpds, &budget)
    } else {
        artifacts.symbolic_explorer(&cpds, &budget, SubsumptionMode::Exact)
    };
    let interrupt = Interrupt::none();
    for k in 0..=max_k {
        explorer
            .ensure_layer(k, &interrupt)
            .map_err(|e| format!("explore k={k}: {e}"))?;
        if explorer.view(k).collapsed {
            break;
        }
    }
    let fp = fingerprint(&cpds);
    let bytes = explorer.snapshot(fp);
    std::fs::write(&out, &bytes).map_err(|e| format!("cannot write {out}: {e}"))?;
    println!(
        "snapshot written to {out} ({}, depth {}, {} bytes, fingerprint {fp:016x})",
        explorer.snapshot_kind().label(),
        explorer.depth(),
        bytes.len()
    );
    Ok(ExitCode::SUCCESS)
}

/// `cuba serve`: boots the HTTP analysis service and blocks until a
/// `POST /shutdown` request stops it.
fn serve(args: &[String]) -> Result<ExitCode, String> {
    let mut config = cuba_serve::ServeConfig::default();
    let mut common = CommonOpts::default();
    let mut i = 0;
    while i < args.len() {
        if common.try_parse(args, &mut i, SERVE_COMMON)? {
            i += 1;
            continue;
        }
        match args[i].as_str() {
            "--addr" => {
                i += 1;
                config.addr = args
                    .get(i)
                    .cloned()
                    .ok_or("--addr needs an address argument")?;
            }
            "--workers" => {
                i += 1;
                config.workers = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|n| *n > 0)
                    .ok_or("bad --workers value")?;
            }
            "--max-k" => {
                i += 1;
                config.session.max_k = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .ok_or("bad --max-k value")?;
            }
            "--profile" => {
                i += 1;
                let path = args.get(i).ok_or("--profile needs a file argument")?;
                let text = std::fs::read_to_string(path)
                    .map_err(|e| format!("cannot read profile {path}: {e}"))?;
                let profile = cuba::core::FrontierConfig::parse_profile(&text)?;
                config.profiles.insert(profile.name.clone(), profile.config);
            }
            other => return Err(format!("unknown option '{other}'")),
        }
        i += 1;
    }
    if let Some(schedule) = common.schedule {
        config.session.schedule = schedule;
    }
    if let Some(threads) = common.threads {
        config.session.budget.threads = threads;
    }
    if common.timeout.is_some() {
        config.session.timeout = common.timeout;
    }
    config.state_dir = common.state_dir.clone();
    let mut map_state: Option<(Arc<ProfileMap>, String)> = None;
    if let Some(path) = common.profile_map.clone() {
        let map = load_profile_map(&path)?;
        config.profile_map = Some(map.clone());
        map_state = Some((map, path));
    }
    let trace_out = start_trace_recording(common.trace_out.as_ref());
    let workers = config.workers;
    let server = cuba_serve::Server::bind(config).map_err(|e| format!("bind: {e}"))?;
    let addr = server.local_addr().map_err(|e| e.to_string())?;
    // Scripts scrape this line for the ephemeral port; keep it stable.
    println!("cuba-serve listening on http://{addr} ({workers} workers)");
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    server.run().map_err(|e| format!("serve: {e}"))?;
    // run() returns only after the worker pool drains, so everything
    // learned across requests is in the map: the graceful-shutdown flush.
    if let Some((map, path)) = &map_state {
        map.save(path)?;
        println!(
            "profile map saved to {path} ({} profiles)",
            map.stats().entries
        );
    }
    // run() flushed every resident system's layer snapshots into the
    // state dir before returning (the warm-start half of --state-dir).
    if let Some(dir) = &common.state_dir {
        println!("state saved to {dir}");
    }
    finish_trace_recording(trace_out)?;
    println!("cuba-serve drained and shut down");
    Ok(ExitCode::SUCCESS)
}

/// `cuba bench`: the in-tree statistical benchmarking harness —
/// warmup + N measured iterations of the Table 2 suite, an N-sample
/// JSON record on stdout, and (with `--compare`) a noise-aware
/// classification of every workload against a recorded baseline.
fn bench(args: &[String]) -> Result<ExitCode, String> {
    let mut plan = cuba_bench::harness::BenchPlan::default();
    let mut compare_path: Option<String> = None;
    let mut common = CommonOpts::default();
    let mut gate = false;
    let mut thresholds = cuba_bench::compare::Thresholds::default();
    let mut i = 0;
    while i < args.len() {
        if common.try_parse(args, &mut i, BENCH_COMMON)? {
            i += 1;
            continue;
        }
        match args[i].as_str() {
            "--samples" => {
                i += 1;
                plan.samples = parse_count(args.get(i), "--samples")?;
            }
            "--warmup" => {
                i += 1;
                plan.warmup = parse_zero_ok(args.get(i), "--warmup")?;
            }
            "--workers" => {
                i += 1;
                plan.workers = parse_count(args.get(i), "--workers")?;
            }
            "--compare" => {
                i += 1;
                compare_path = Some(
                    args.get(i)
                        .cloned()
                        .ok_or("--compare needs a file argument")?,
                );
            }
            "--gate" => gate = true,
            "--ratio" => {
                i += 1;
                thresholds.ratio = parse_float(args.get(i), "--ratio")?;
            }
            "--sigma" => {
                i += 1;
                thresholds.mad_sigmas = parse_float(args.get(i), "--sigma")?;
            }
            "--floor-ms" => {
                i += 1;
                thresholds.abs_floor_us = parse_float(args.get(i), "--floor-ms")? * 1000.0;
            }
            "--from-snapshot" => {
                i += 1;
                let path = args
                    .get(i)
                    .cloned()
                    .ok_or("--from-snapshot needs a file argument")?;
                let bytes = std::fs::read(&path).map_err(|e| format!("{path}: {e}"))?;
                let (kind, fingerprint) = cuba::explore::snapshot::peek_header(&bytes)
                    .map_err(|e| format!("{path}: {e}"))?;
                plan.seed = Some(cuba_bench::harness::SnapshotSeed {
                    kind,
                    fingerprint,
                    bytes: Arc::new(bytes),
                });
            }
            other => return Err(format!("unknown option '{other}'")),
        }
        i += 1;
    }
    if let Some(schedule) = common.schedule {
        plan.schedule = schedule;
    }
    if let Some(threads) = common.threads {
        plan.threads = threads;
    }
    plan.reduce = common.reduce;
    let map_path = common.profile_map.clone();
    if gate && compare_path.is_none() {
        return Err("--gate needs --compare FILE to compare against".to_owned());
    }
    let profile_map = match &map_path {
        Some(path) => {
            let map = load_profile_map(path)?;
            plan.profile_map = Some(map.clone());
            Some(map)
        }
        None => None,
    };

    let trace_out = start_trace_recording(common.trace_out.as_ref());
    let run = cuba_bench::harness::run(&plan);
    finish_trace_recording(trace_out)?;
    // Persist what this run learned before any gate can fail the
    // process: the warm rerun needs the map even when CI gates red.
    if let (Some(map), Some(path)) = (&profile_map, &map_path) {
        map.save(path)?;
        let stats = map.stats();
        eprintln!(
            "profile map {path}: {} profiles, {} hits / {} misses this run",
            stats.entries, stats.hits, stats.misses
        );
    }
    let record = cuba_bench::harness::run_to_json(&run);
    println!("{record}");
    eprintln!(
        "measured {} workloads x {} samples in {:.1}s",
        run.rows.len(),
        plan.samples,
        run.measure_seconds
    );
    if run.rows.iter().any(|row| row.unstable) {
        return Err("verdicts changed between samples (unstable suite)".to_owned());
    }

    let Some(path) = compare_path else {
        return Ok(ExitCode::SUCCESS);
    };
    let baseline_text =
        std::fs::read_to_string(&path).map_err(|e| format!("cannot read baseline {path}: {e}"))?;
    let baseline = cuba_bench::compare::parse_records(&baseline_text);
    let current = cuba_bench::compare::parse_records(&record);
    let report = cuba_bench::compare::compare(&baseline, &current, &thresholds);
    eprint!("{}", report.render());
    if report.gate_ok() {
        eprintln!("bench gate OK against {path}");
        Ok(ExitCode::SUCCESS)
    } else if gate {
        eprintln!("bench gate FAILED against {path}");
        Ok(ExitCode::from(1))
    } else {
        eprintln!("differences found against {path} (no --gate: exit 0)");
        Ok(ExitCode::SUCCESS)
    }
}

/// `cuba tune`: sweeps the `FrontierConfig` neighborhood over the
/// bench suite and writes the winning tuning as a named profile that
/// `--schedule frontier:<file>` loads.
fn tune(args: &[String]) -> Result<ExitCode, String> {
    let mut plan = cuba_bench::tune::TunePlan::default();
    let mut out: Option<String> = None;
    let mut name = "tuned".to_owned();
    let mut probe = false;
    let mut emit_map = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                out = Some(args.get(i).cloned().ok_or("--out needs a file argument")?);
            }
            "--name" => {
                i += 1;
                name = args.get(i).cloned().ok_or("--name needs a name argument")?;
            }
            "--samples" => {
                i += 1;
                plan.samples = parse_count(args.get(i), "--samples")?;
            }
            "--warmup" => {
                i += 1;
                plan.warmup = parse_zero_ok(args.get(i), "--warmup")?;
            }
            "--passes" => {
                i += 1;
                plan.passes = parse_count(args.get(i), "--passes")?;
            }
            "--workers" => {
                i += 1;
                plan.workers = parse_count(args.get(i), "--workers")?;
            }
            "--probe" => probe = true,
            "--emit-map" => emit_map = true,
            other => return Err(format!("unknown option '{other}'")),
        }
        i += 1;
    }
    if probe && emit_map {
        return Err(
            "--probe and --emit-map are mutually exclusive (--emit-map already probes)".to_owned(),
        );
    }
    // The profile reader enforces one-token names; reject a bad name
    // before the (minutes-long) sweep, not when the file is loaded.
    if name.is_empty() || name.chars().any(char::is_whitespace) {
        return Err("bad --name value (one non-empty token, no whitespace)".to_owned());
    }

    // Batch mode: probe every distinct fingerprint in the suite and
    // write the learned map, seeding what verify/bench/serve
    // --profile-map would otherwise learn one system at a time.
    if emit_map {
        let out = out.unwrap_or_else(|| "cuba-profile.map".to_owned());
        let (map, probes) = cuba_bench::tune::seed_map(&plan);
        map.save(&out)?;
        println!(
            "wrote {out} ({} fingerprints, {probes} probed; load with: --profile-map {out})",
            map.stats().entries
        );
        return Ok(ExitCode::SUCCESS);
    }

    let out = out.unwrap_or_else(|| "cuba-tuned.profile".to_owned());
    let outcome = if probe {
        cuba_bench::tune::run_probe(&plan)
    } else {
        cuba_bench::tune::run(&plan)
    };
    let best = &outcome.best;
    let default = &outcome.default_eval;
    eprintln!(
        "evaluated {} candidates: default {:.0} live rounds / {:.1}ms, best {:.0} live rounds / {:.1}ms",
        outcome.evaluated,
        default.live_rounds,
        default.wall_us / 1000.0,
        best.live_rounds,
        best.wall_us / 1000.0,
    );
    if !outcome.improved() {
        eprintln!("no tuning beat the defaults; the profile records the defaults");
    }
    let profile = best.config.to_profile(&name);
    std::fs::write(&out, &profile).map_err(|e| format!("cannot write {out}: {e}"))?;
    println!("wrote {out} (schedule with: --schedule frontier:{out})");
    Ok(ExitCode::SUCCESS)
}

/// `cuba lint`: run the static pre-analysis for its diagnostics only —
/// no verification. Source-level findings (`.bp`: dead branches,
/// constant asserts, write-only variables) come from the frontend
/// passes; model-level findings (`.cpds`: unreachable states, dead
/// transitions) and property findings (unknown ids, vacuous specs)
/// come from the `cuba-reduce` pipeline. Exits 1 when any deny-level
/// lint fires.
fn lint_cmd(args: &[String]) -> Result<ExitCode, String> {
    use cuba::reduce::{Lint, LintLevel};

    let Some(path) = args.first() else {
        return Err(usage());
    };
    let mut json = false;
    let mut property_specs: Vec<(String, Property)> = Vec::new();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => json = true,
            "--property" => {
                i += 1;
                let spec = args.get(i).ok_or("--property needs a spec argument")?;
                property_specs.push((spec.clone(), parse_property(spec)?));
            }
            other => return Err(format!("unknown option '{other}'")),
        }
        i += 1;
    }

    let source = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut lints: Vec<Lint> = Vec::new();
    let is_bp = path.ends_with(".bp");
    let (cpds, default_property) = if is_bp {
        let program = boolprog::parse(&source).map_err(|e| format!("{path}: {e}"))?;
        for lint in boolprog::lint_program(&program) {
            lints.push(from_source_lint(lint));
        }
        let (translated, report) =
            boolprog::translate_simplified(&program).map_err(|e| format!("{path}: {e}"))?;
        for lint in report.lints {
            lints.push(from_source_lint(lint));
        }
        let property = translated.error_free_property();
        (translated.cpds, property)
    } else if path.ends_with(".cpds") {
        let cpds = textfmt::parse_cpds(&source).map_err(|e| format!("{path}: {e}"))?;
        (cpds, Property::True)
    } else {
        return Err(format!("{path}: unknown extension (expected .bp or .cpds)"));
    };

    let properties: Vec<Property> = if property_specs.is_empty() {
        vec![default_property]
    } else {
        property_specs.iter().map(|(_, p)| p.clone()).collect()
    };
    let reduction = cuba::reduce::reduce(&cpds, &properties).map_err(|e| format!("{path}: {e}"))?;
    if is_bp {
        // Translated models carry symbol-level diagnostics that name
        // synthetic stack symbols, not source lines — keep only the
        // property-level findings; the counts live in the stats object.
        lints.extend(
            reduction
                .lints
                .iter()
                .filter(|l| l.code == "unknown-state" || l.code == "vacuous-property")
                .cloned(),
        );
    } else {
        lints.extend(reduction.lints.iter().cloned());
    }
    // Spanned lints first, in source order; then model-level findings.
    lints.sort_by_key(|l| (l.line.is_none(), l.line, l.col));

    let count = |level: LintLevel| lints.iter().filter(|l| l.level == level).count();
    let (deny, warn, note) = (
        count(LintLevel::Deny),
        count(LintLevel::Warn),
        count(LintLevel::Note),
    );
    if json {
        let mut out = String::from("{");
        push_field(&mut out, "file", &json_string(path));
        let rendered: Vec<String> = lints.iter().map(lint_json).collect();
        push_field(&mut out, "lints", &format!("[{}]", rendered.join(",")));
        push_field(&mut out, "deny", &deny.to_string());
        push_field(&mut out, "warn", &warn.to_string());
        push_field(&mut out, "note", &note.to_string());
        push_field(
            &mut out,
            "reduction",
            &reduction_json(&reduction.stats, None),
        );
        out.push('}');
        println!("{out}");
    } else {
        for lint in &lints {
            println!("{lint}");
        }
        if lints.is_empty() {
            println!("{path}: no diagnostics");
        } else {
            println!("{path}: {deny} deny, {warn} warn, {note} note");
        }
    }
    Ok(if deny > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    })
}

/// Converts a frontend [`boolprog::SourceLint`] to the model-level
/// lint type shared by all diagnostics consumers.
fn from_source_lint(lint: boolprog::SourceLint) -> cuba::reduce::Lint {
    use cuba::reduce::LintLevel;
    let level = match lint.severity {
        boolprog::Severity::Note => LintLevel::Note,
        boolprog::Severity::Warn => LintLevel::Warn,
        boolprog::Severity::Deny => LintLevel::Deny,
    };
    cuba::reduce::Lint::new(lint.code, level, lint.message).with_span(lint.span.line, lint.span.col)
}

/// One lint as a JSON object (`line`/`col` only when present).
fn lint_json(lint: &cuba::reduce::Lint) -> String {
    let mut out = String::from("{");
    push_field(&mut out, "code", &json_string(lint.code));
    push_field(&mut out, "level", &json_string(&lint.level.to_string()));
    push_field(&mut out, "message", &json_string(&lint.message));
    if let (Some(line), Some(col)) = (lint.line, lint.col) {
        push_field(&mut out, "line", &line.to_string());
        push_field(&mut out, "col", &col.to_string());
    }
    out.push('}');
    out
}

fn parse_count(arg: Option<&String>, flag: &str) -> Result<usize, String> {
    arg.and_then(|s| s.parse().ok())
        .filter(|n| *n > 0)
        .ok_or_else(|| format!("bad {flag} value (positive integer)"))
}

fn parse_zero_ok(arg: Option<&String>, flag: &str) -> Result<usize, String> {
    arg.and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad {flag} value (non-negative integer)"))
}

fn parse_float(arg: Option<&String>, flag: &str) -> Result<f64, String> {
    arg.and_then(|s| s.parse::<f64>().ok())
        .filter(|v| v.is_finite() && *v >= 0.0)
        .ok_or_else(|| format!("bad {flag} value (non-negative number)"))
}

/// `info`/`fcr` take exactly one argument: the model file.
fn sole_path(args: &[String]) -> Result<&str, String> {
    let Some(path) = args.get(1) else {
        return Err(usage());
    };
    if let Some(extra) = args.get(2) {
        return Err(format!(
            "'{}' takes no options, found '{extra}'\n{}",
            args[0],
            usage()
        ));
    }
    Ok(path)
}

fn parse_verify_options(args: &[String]) -> Result<VerifyOptions, String> {
    let mut options = VerifyOptions::default();
    let mut common = CommonOpts::default();
    let mut i = 0;
    while i < args.len() {
        if common.try_parse(args, &mut i, VERIFY_COMMON)? {
            i += 1;
            continue;
        }
        match args[i].as_str() {
            "--engine" => {
                i += 1;
                options.lineup = match args.get(i).map(|s| s.as_str()) {
                    Some("auto") => Lineup::Auto,
                    Some("explicit") => {
                        Lineup::Fixed(vec![EngineKind::Alg3Explicit, EngineKind::Scheme1Explicit])
                    }
                    Some("symbolic") => {
                        Lineup::Fixed(vec![EngineKind::Alg3Symbolic, EngineKind::Scheme1Symbolic])
                    }
                    other => return Err(format!("bad --engine {other:?}")),
                };
            }
            "--max-k" => {
                i += 1;
                options.max_k = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .ok_or("bad --max-k value")?;
            }
            "--parallel" => options.parallel = true,
            "--trace" => options.trace = true,
            "--json" => options.json = true,
            "--never-shared" => {
                i += 1;
                let q: u32 = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .ok_or("bad --never-shared value")?;
                options.never_shared = Some(SharedState(q));
            }
            "--property" => {
                i += 1;
                let spec = args.get(i).ok_or("--property needs a spec argument")?;
                let property = parse_property(spec)?;
                options.properties.push((spec.clone(), property));
            }
            "--from-snapshot" => {
                i += 1;
                options.from_snapshot = Some(
                    args.get(i)
                        .cloned()
                        .ok_or("--from-snapshot needs a file argument")?,
                );
            }
            other => return Err(format!("unknown option '{other}'")),
        }
        i += 1;
    }
    if let Some(schedule) = common.schedule {
        options.schedule = schedule;
    }
    if let Some(threads) = common.threads {
        options.threads = threads;
    }
    options.timeout = common.timeout;
    options.trace_out = common.trace_out;
    options.reduce = common.reduce;
    options.profile_map = common.profile_map;
    Ok(options)
}

fn verify(
    model: LoadedModel,
    properties: Vec<(String, Property)>,
    options: &VerifyOptions,
) -> Result<ExitCode, String> {
    // Verdict-preserving pre-analysis: prune transitions that can
    // never fire before any engine sees the system. The SuiteCache /
    // SystemArtifacts keys below are computed from the *reduced* CPDS.
    let (cpds, reduction_field) = if options.reduce {
        let props: Vec<Property> = properties.iter().map(|(_, p)| p.clone()).collect();
        let reduction =
            cuba::reduce::reduce(&model.cpds, &props).map_err(|e| format!("reduce: {e}"))?;
        let rendered = reduction_json(&reduction.stats, model.simplify.as_ref());
        (reduction.cpds, Some(rendered))
    } else {
        (model.cpds, None)
    };
    let config = {
        let mut config = SessionConfig {
            max_k: options.max_k,
            timeout: options.timeout,
            schedule: options.schedule.clone(),
            ..SessionConfig::new()
        };
        config.budget.threads = options.threads;
        config
    };
    let mut portfolio = match &options.lineup {
        Lineup::Auto => Portfolio::auto(),
        Lineup::Fixed(kinds) => Portfolio::fixed(kinds.clone()),
    }
    .with_config(config.clone());

    // One set of per-system artifacts for the whole invocation: every
    // property replays the same layered exploration per backend ("one
    // system, many properties"); only deeper bounds are computed live.
    //
    // With --profile-map the artifacts come from a SuiteCache instead,
    // so the tuning probe (for a novel fingerprint) and the real run
    // share one layered exploration — probing never re-saturates what
    // the run computes anyway, and the map keys on the *reduced*
    // system when --reduce is on.
    let mut save_map: Option<(Arc<ProfileMap>, &str)> = None;
    let artifacts = if let Some(path) = &options.profile_map {
        let map = load_profile_map(path)?;
        let cache = SuiteCache::new();
        let problems: Vec<(String, Cpds, Property)> = properties
            .iter()
            .map(|(label, property)| (label.clone(), cpds.clone(), property.clone()))
            .collect();
        cuba_bench::tune::ensure_profiles(&map, &problems, 1, &cache, &config);
        portfolio = portfolio.with_profile_map(map.clone());
        let artifacts = cache.artifacts(&cpds);
        save_map = Some((map, path));
        artifacts
    } else {
        Arc::new(SystemArtifacts::new())
    };
    // Warm-start from a `cuba snapshot` file: the restored layers go
    // into this invocation's artifacts, so every property replays the
    // recorded bounds and only deeper ones are computed live. The
    // restore verifies the file against the loaded (and, with
    // --reduce, reduced) system before any layer is trusted.
    if let Some(snap_path) = &options.from_snapshot {
        let bytes = std::fs::read(snap_path).map_err(|e| format!("{snap_path}: {e}"))?;
        let (kind, _) = cuba::explore::snapshot::peek_header(&bytes)
            .map_err(|e| format!("{snap_path}: {e}"))?;
        let explorer = SharedExplorer::restore(
            cpds.clone(),
            config.budget.clone(),
            fingerprint(&cpds),
            &bytes,
        )
        .map_err(|e| format!("{snap_path}: {e}"))?;
        if artifacts.seed_explorer(kind, Arc::new(explorer)) {
            eprintln!("snapshot {snap_path}: seeded the {} layers", kind.label());
        }
    }
    let many = properties.len() > 1;
    let trace_out = start_trace_recording(options.trace_out.as_ref());
    let mut exit = ExitCode::SUCCESS;
    let mut saw_unsafe = false;
    let mut saw_undetermined = false;

    for (spec, property) in properties {
        // Stream events: --trace prints them; --json collects the
        // per-round growth log (all arms, not just the winner's)
        // either way.
        let mut round_log: Vec<RoundRecord> = Vec::new();
        let trace = options.trace;
        // With several properties (or parallel arms racing) trace
        // lines interleave; the line-locked sink keeps each line
        // whole, and the prefix says which property it belongs to.
        let trace_prefix = if many { spec.clone() } else { String::new() };
        let mut on_event = |event: &SessionEvent| {
            if trace {
                cuba_telemetry::sink::trace_line(&trace_prefix, &event.to_string());
            }
            if let SessionEvent::RoundCompleted {
                engine,
                k,
                states,
                delta_states,
                elapsed,
                event,
                replayed,
            } = event
            {
                let tag = match event {
                    cuba::core::SequenceEvent::Grew => "grew",
                    cuba::core::SequenceEvent::NewPlateau => "new-plateau",
                    cuba::core::SequenceEvent::OngoingPlateau => "plateau",
                };
                round_log.push(RoundRecord {
                    engine: engine.to_string(),
                    k: *k,
                    states: *states,
                    delta_states: *delta_states,
                    elapsed: *elapsed,
                    tag,
                    replayed: *replayed,
                });
            }
        };

        let result = if options.parallel {
            portfolio.run_parallel_with(cpds.clone(), property, Some(&mut on_event), &artifacts)
        } else {
            portfolio
                .session_with(cpds.clone(), property, &artifacts)
                .and_then(|session| session.run_with(&mut on_event))
        };
        let outcome = result.map_err(|e| e.to_string())?;

        if options.json {
            println!(
                "{}",
                outcome_json(
                    &outcome,
                    &round_log,
                    &options.schedule,
                    &spec,
                    reduction_field.as_deref()
                )
            );
        } else {
            if many {
                println!("property {spec}:");
            }
            print_outcome(&outcome);
        }
        match outcome.verdict {
            Verdict::Safe { .. } => {}
            Verdict::Unsafe { .. } => saw_unsafe = true,
            Verdict::Undetermined { .. } => saw_undetermined = true,
        }
    }
    if let Some((map, path)) = save_map {
        map.save(path)?;
    }
    finish_trace_recording(trace_out)?;
    // The worst verdict decides: any unsafe → 1, else undetermined → 3.
    if saw_unsafe {
        exit = ExitCode::from(1);
    } else if saw_undetermined {
        exit = ExitCode::from(3);
    }
    Ok(exit)
}

fn print_outcome(outcome: &CubaOutcome) {
    println!("{}", outcome.verdict);
    println!(
        "engine: {}, rounds: {}, states: {}, fcr: {}, time: {:?}",
        outcome.engine, outcome.rounds, outcome.states, outcome.fcr_holds, outcome.duration
    );
    if let Verdict::Unsafe {
        witness: Some(w), ..
    } = &outcome.verdict
    {
        println!(
            "counterexample ({} steps, {} contexts):",
            w.len(),
            w.num_contexts()
        );
        println!("  {w}");
    }
}

fn print_info(path: &str, cpds: &Cpds) {
    println!("file: {path}");
    println!("threads: {}", cpds.num_threads());
    println!("shared states: {}", cpds.num_shared());
    for (i, t) in cpds.threads().iter().enumerate() {
        println!(
            "thread {}: {} actions, {} stack symbols, initial stack {}",
            i,
            t.actions().len(),
            t.used_symbols().len(),
            cpds.initial_stack(i)
        );
    }
    println!("initial state: {}", cpds.initial_state());
}

fn print_fcr(cpds: &Cpds) {
    let report = check_fcr(cpds);
    println!("{report}");
    for (i, v) in report.per_thread.iter().enumerate() {
        println!("  thread {i}: R(Q x Sigma<=1) is {v}");
    }
}

/// One completed round, as collected from the event stream.
struct RoundRecord {
    engine: String,
    k: usize,
    states: usize,
    delta_states: usize,
    elapsed: Duration,
    tag: &'static str,
    replayed: bool,
}

impl RoundRecord {
    fn to_json(&self) -> String {
        format!(
            "{{\"engine\":{},\"k\":{},\"states\":{},\"delta_states\":{},\"elapsed_us\":{},\"event\":{},\"replayed\":{}}}",
            json_string(&self.engine),
            self.k,
            self.states,
            self.delta_states,
            self.elapsed.as_micros(),
            json_string(self.tag),
            self.replayed
        )
    }
}

/// Renders the verify outcome as one JSON object, so benchmark
/// drivers stop scraping the human-readable stdout.
fn outcome_json(
    outcome: &CubaOutcome,
    round_log: &[RoundRecord],
    schedule: &SchedulePolicy,
    property: &str,
    reduction: Option<&str>,
) -> String {
    let mut out = String::from("{");
    let (verdict, k) = match &outcome.verdict {
        Verdict::Safe { k, .. } => ("safe", Some(*k)),
        Verdict::Unsafe { k, .. } => ("unsafe", Some(*k)),
        Verdict::Undetermined { .. } => ("undetermined", None),
    };
    push_field(&mut out, "property", &json_string(property));
    push_field(&mut out, "verdict", &json_string(verdict));
    match k {
        Some(k) => push_field(&mut out, "k", &k.to_string()),
        None => push_field(&mut out, "k", "null"),
    }
    if let Verdict::Safe { method, .. } = &outcome.verdict {
        push_field(&mut out, "method", &json_string(&method.to_string()));
    }
    if let Verdict::Undetermined { reason } = &outcome.verdict {
        push_field(&mut out, "reason", &json_string(reason));
    }
    push_field(
        &mut out,
        "engine",
        &json_string(&outcome.engine.to_string()),
    );
    push_field(&mut out, "rounds", &outcome.rounds.to_string());
    push_field(&mut out, "states", &outcome.states.to_string());
    push_field(&mut out, "fcr", &outcome.fcr_holds.to_string());
    push_field(&mut out, "schedule", &json_string(schedule.name()));
    push_field(
        &mut out,
        "duration_ms",
        &outcome.duration.as_millis().to_string(),
    );
    push_field(
        &mut out,
        "round_wall_us",
        &outcome.round_wall.as_micros().to_string(),
    );
    push_field(
        &mut out,
        "rounds_explored",
        &outcome.rounds_explored.to_string(),
    );
    push_field(
        &mut out,
        "rounds_replayed",
        &outcome.rounds_replayed.to_string(),
    );
    if let Verdict::Unsafe {
        witness: Some(w), ..
    } = &outcome.verdict
    {
        push_field(&mut out, "witness_steps", &w.len().to_string());
        push_field(&mut out, "witness_contexts", &w.num_contexts().to_string());
    }
    let rounds: Vec<String> = round_log.iter().map(RoundRecord::to_json).collect();
    push_field(&mut out, "growth", &format!("[{}]", rounds.join(",")));
    // Per-arm growth logs: the same rounds grouped by engine, so the
    // partial progress of *losing* arms survives in diagnostics (the
    // interleaved `growth` array loses per-arm shape once arms advance
    // at different rates under the frontier-aware scheduler).
    let mut arm_order: Vec<&str> = Vec::new();
    for record in round_log {
        if !arm_order.contains(&record.engine.as_str()) {
            arm_order.push(&record.engine);
        }
    }
    let arms: Vec<String> = arm_order
        .iter()
        .map(|engine| {
            let log: Vec<String> = round_log
                .iter()
                .filter(|r| r.engine == *engine)
                .map(RoundRecord::to_json)
                .collect();
            format!(
                "{{\"engine\":{},\"rounds\":{},\"log\":[{}]}}",
                json_string(engine),
                log.len(),
                log.join(",")
            )
        })
        .collect();
    push_field(&mut out, "arms", &format!("[{}]", arms.join(",")));
    push_field(&mut out, "telemetry", &telemetry_json(outcome));
    if let Some(reduction) = reduction {
        push_field(&mut out, "reduction", reduction);
    }
    out.push('}');
    out
}

/// The `telemetry` block of the verify `--json` output: this
/// outcome's per-stage wall times plus a snapshot of the process-wide
/// registry counters (cumulative across the invocation — with several
/// properties, later blocks include earlier properties' work).
fn telemetry_json(outcome: &CubaOutcome) -> String {
    use cuba_telemetry::metrics::METRICS;
    let mut out = String::from("{");
    push_field(
        &mut out,
        "saturate_us",
        &outcome.stages.saturate.as_micros().to_string(),
    );
    push_field(
        &mut out,
        "check_us",
        &outcome.stages.check.as_micros().to_string(),
    );
    push_field(
        &mut out,
        "merge_us",
        &outcome.stages.merge.as_micros().to_string(),
    );
    push_field(&mut out, "waves", &METRICS.waves.get().to_string());
    push_field(&mut out, "steals", &METRICS.steals.get().to_string());
    push_field(
        &mut out,
        "cache_hits",
        &METRICS.cache_hits.get().to_string(),
    );
    push_field(
        &mut out,
        "cache_misses",
        &METRICS.cache_misses.get().to_string(),
    );
    push_field(
        &mut out,
        "reduce_passes",
        &METRICS.reduce_passes.get().to_string(),
    );
    push_field(
        &mut out,
        "trace_events_dropped",
        &METRICS.trace_events_dropped.get().to_string(),
    );
    out.push('}');
    out
}

/// Renders [`cuba::reduce::ReductionStats`] (plus, for `.bp` inputs,
/// the pre-translation simplification numbers) as one JSON object.
fn reduction_json(
    stats: &cuba::reduce::ReductionStats,
    simplify: Option<&boolprog::SimplifyReport>,
) -> String {
    let mut out = String::from("{");
    push_field(&mut out, "transitions", &stats.transitions.to_string());
    push_field(
        &mut out,
        "dead_transitions",
        &stats.dead_transitions.to_string(),
    );
    push_field(
        &mut out,
        "removed_transitions",
        &stats.removed_transitions.to_string(),
    );
    push_field(
        &mut out,
        "irrelevant_transitions",
        &stats.irrelevant_transitions.to_string(),
    );
    push_field(&mut out, "shared_states", &stats.shared_states.to_string());
    push_field(
        &mut out,
        "unreachable_shared",
        &stats.unreachable_shared.to_string(),
    );
    push_field(
        &mut out,
        "skeleton_states",
        &stats.skeleton_states.to_string(),
    );
    push_field(
        &mut out,
        "vacuous_properties",
        &stats.vacuous_properties.to_string(),
    );
    push_field(&mut out, "skeleton_us", &stats.skeleton_us.to_string());
    push_field(&mut out, "coi_us", &stats.coi_us.to_string());
    push_field(&mut out, "rebuild_us", &stats.rebuild_us.to_string());
    if let Some(report) = simplify {
        push_field(
            &mut out,
            "cfg_edges_removed",
            &report.edges_removed.to_string(),
        );
        push_field(
            &mut out,
            "cfg_unreachable_points",
            &report.unreachable_points.to_string(),
        );
    }
    out.push('}');
    out
}

fn push_field(out: &mut String, key: &str, rendered: &str) {
    if out.len() > 1 {
        out.push(',');
    }
    out.push_str(&json_string(key));
    out.push(':');
    out.push_str(rendered);
}

/// A loaded model plus its per-format default property.
struct LoadedModel {
    cpds: Cpds,
    default_property: Property,
    /// `.bp` inputs loaded with `simplify`: what the pre-translation
    /// CFG pass did.
    simplify: Option<boolprog::SimplifyReport>,
}

/// Loads a model by extension: `.bp` Boolean program or `.cpds` text.
fn load(path: &str) -> Result<(Cpds, Property), String> {
    let model = load_model(path, false)?;
    Ok((model.cpds, model.default_property))
}

/// As [`load`], optionally running the `.bp` frontend's
/// constant-propagation / dead-branch simplification before
/// translation (`.cpds` inputs are unaffected; their reduction happens
/// at the CPDS level).
fn load_model(path: &str, simplify: bool) -> Result<LoadedModel, String> {
    let source = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    if path.ends_with(".bp") {
        let program = boolprog::parse(&source).map_err(|e| format!("{path}: {e}"))?;
        let (translated, report) = if simplify {
            let (t, report) =
                boolprog::translate_simplified(&program).map_err(|e| format!("{path}: {e}"))?;
            (t, Some(report))
        } else {
            let t = boolprog::translate(&program).map_err(|e| format!("{path}: {e}"))?;
            (t, None)
        };
        let property = translated.error_free_property();
        Ok(LoadedModel {
            cpds: translated.cpds,
            default_property: property,
            simplify: report,
        })
    } else if path.ends_with(".cpds") {
        let cpds = textfmt::parse_cpds(&source).map_err(|e| format!("{path}: {e}"))?;
        Ok(LoadedModel {
            cpds,
            default_property: Property::True,
            simplify: None,
        })
    } else {
        Err(format!("{path}: unknown extension (expected .bp or .cpds)"))
    }
}
