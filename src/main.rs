//! `cuba` — command-line verifier for concurrent pushdown systems and
//! concurrent Boolean programs.
//!
//! ```text
//! cuba verify <file> [options]
//!     <file>           .bp (Boolean program) or .cpds (text format)
//!     --engine auto|explicit|symbolic    (default: auto = the paper's §6 procedure)
//!     --max-k <n>      round limit (default 64)
//!     --parallel       race the explicit algorithms on real threads
//!     --never-shared <q>   property: shared state q unreachable
//!                          (default for .bp: no assertion fails;
//!                           default for .cpds: compute reachability to convergence)
//! cuba fcr <file>      run only the finite-context-reachability check
//! cuba info <file>     print model statistics
//! ```

use std::process::ExitCode;

use cuba::benchmarks::textfmt;
use cuba::boolprog;
use cuba::core::{check_fcr, Cuba, CubaConfig, DriverMode, Property, Verdict};
use cuba::pds::{Cpds, SharedState};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::from(2)
        }
    }
}

fn usage() -> String {
    "usage: cuba <verify|fcr|info> <file.bp|file.cpds> [--engine auto|explicit|symbolic] \
     [--max-k N] [--parallel] [--never-shared Q]"
        .to_owned()
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let Some(command) = args.first() else {
        return Err(usage());
    };
    let Some(path) = args.get(1) else {
        return Err(usage());
    };
    let (cpds, default_property) = load(path)?;

    match command.as_str() {
        "info" => {
            println!("file: {path}");
            println!("threads: {}", cpds.num_threads());
            println!("shared states: {}", cpds.num_shared());
            for (i, t) in cpds.threads().iter().enumerate() {
                println!(
                    "thread {}: {} actions, {} stack symbols, initial stack {}",
                    i,
                    t.actions().len(),
                    t.used_symbols().len(),
                    cpds.initial_stack(i)
                );
            }
            println!("initial state: {}", cpds.initial_state());
            Ok(ExitCode::SUCCESS)
        }
        "fcr" => {
            let report = check_fcr(&cpds);
            println!("{report}");
            for (i, v) in report.per_thread.iter().enumerate() {
                println!("  thread {i}: R(Q x Sigma<=1) is {v}");
            }
            Ok(ExitCode::SUCCESS)
        }
        "verify" => {
            let mut config = CubaConfig::default();
            let mut property = default_property;
            let mut i = 2;
            while i < args.len() {
                match args[i].as_str() {
                    "--engine" => {
                        i += 1;
                        config.mode = match args.get(i).map(|s| s.as_str()) {
                            Some("auto") => DriverMode::Auto,
                            Some("explicit") => DriverMode::ExplicitOnly,
                            Some("symbolic") => DriverMode::SymbolicOnly,
                            other => return Err(format!("bad --engine {other:?}")),
                        };
                    }
                    "--max-k" => {
                        i += 1;
                        config.max_k = args
                            .get(i)
                            .and_then(|s| s.parse().ok())
                            .ok_or("bad --max-k value")?;
                    }
                    "--parallel" => config.parallel = true,
                    "--never-shared" => {
                        i += 1;
                        let q: u32 = args
                            .get(i)
                            .and_then(|s| s.parse().ok())
                            .ok_or("bad --never-shared value")?;
                        property = Property::never_shared(SharedState(q));
                    }
                    other => return Err(format!("unknown option '{other}'")),
                }
                i += 1;
            }
            let outcome = Cuba::new(cpds, property)
                .run(&config)
                .map_err(|e| e.to_string())?;
            println!("{}", outcome.verdict);
            println!(
                "engine: {}, rounds: {}, states: {}, fcr: {}, time: {:?}",
                outcome.engine, outcome.rounds, outcome.states, outcome.fcr_holds, outcome.duration
            );
            if let Verdict::Unsafe {
                witness: Some(w), ..
            } = &outcome.verdict
            {
                println!(
                    "counterexample ({} steps, {} contexts):",
                    w.len(),
                    w.num_contexts()
                );
                println!("  {w}");
            }
            Ok(match outcome.verdict {
                Verdict::Safe { .. } => ExitCode::SUCCESS,
                Verdict::Unsafe { .. } => ExitCode::from(1),
                Verdict::Undetermined { .. } => ExitCode::from(3),
            })
        }
        other => Err(format!("unknown command '{other}'\n{}", usage())),
    }
}

/// Loads a model by extension: `.bp` Boolean program or `.cpds` text.
fn load(path: &str) -> Result<(Cpds, Property), String> {
    let source = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    if path.ends_with(".bp") {
        let program = boolprog::parse(&source).map_err(|e| format!("{path}: {e}"))?;
        let translated = boolprog::translate(&program).map_err(|e| format!("{path}: {e}"))?;
        let property = translated.error_free_property();
        Ok((translated.cpds, property))
    } else if path.ends_with(".cpds") {
        let cpds = textfmt::parse_cpds(&source).map_err(|e| format!("{path}: {e}"))?;
        Ok((cpds, Property::True))
    } else {
        Err(format!("{path}: unknown extension (expected .bp or .cpds)"))
    }
}
