//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * explicit `T(Rk)` vs symbolic `T(Sk)` under FCR (§5's claim that
//!   the explicit encoding is cheaper when applicable),
//! * exact canonical dedup vs pointwise subsumption in the symbolic
//!   engine (§8's symbolic-convergence dilemma),
//! * `post*` saturation cost vs PDS size,
//! * canonical-minimal-DFA construction cost (the symbolic dedup's
//!   inner loop).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cuba_automata::{post_star, CanonicalDfa, Psa};
use cuba_benchmarks::random::{random_cpds, RandomCpdsConfig};
use cuba_benchmarks::{fig1, fig2};
use cuba_explore::{ExplicitEngine, ExploreBudget, SubsumptionMode, SymbolicEngine};

fn explicit_vs_symbolic(c: &mut Criterion) {
    let cpds = fig1::build();
    let mut group = c.benchmark_group("ablation_encoding");
    group.bench_function("explicit_rk/fig1", |b| {
        b.iter(|| {
            let mut e = ExplicitEngine::new(cpds.clone(), ExploreBudget::default());
            for _ in 0..6 {
                e.advance().expect("FCR");
            }
            e.num_visible()
        })
    });
    group.bench_function("symbolic_sk/fig1", |b| {
        b.iter(|| {
            let mut e = SymbolicEngine::new(
                cpds.clone(),
                ExploreBudget::default(),
                SubsumptionMode::Exact,
            );
            for _ in 0..6 {
                e.advance().expect("ok");
            }
            e.num_visible()
        })
    });
    group.finish();
}

fn subsumption_modes(c: &mut Criterion) {
    let cpds = fig2::build();
    let mut group = c.benchmark_group("ablation_subsumption");
    for (name, mode) in [
        ("exact", SubsumptionMode::Exact),
        ("pointwise", SubsumptionMode::Pointwise),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut e = SymbolicEngine::new(cpds.clone(), ExploreBudget::default(), mode);
                e.run_until_collapse(8).expect("ok")
            })
        });
    }
    group.finish();
}

fn poststar_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_poststar");
    for actions in [8usize, 16, 32] {
        let cfg = RandomCpdsConfig {
            num_shared: 4,
            num_threads: 1,
            alphabet: 4,
            actions_per_thread: actions,
            push_probability: 0.3,
        };
        let cpds = random_cpds(&cfg, 11);
        let pds = cpds.thread(0).clone();
        let init = Psa::all_stacks_leq1(4, pds.used_symbols().into_iter().map(|s| s.0));
        group.bench_with_input(BenchmarkId::from_parameter(actions), &actions, |b, _| {
            b.iter(|| post_star(&pds, &init).as_nfa().num_states())
        });
    }
    group.finish();
}

fn canonicalization(c: &mut Criterion) {
    // Canonicalize the post* stack language of the Fig. 2 thread —
    // the exact operation the symbolic engine performs per context.
    let cpds = fig2::build();
    let pds = cpds.thread(0).clone();
    let init = Psa::accepting_configs(
        3,
        [&cuba_pds::PdsConfig::new(
            cuba_pds::SharedState(0),
            cuba_pds::Stack::from_top_down([cuba_pds::StackSym(2)]),
        )],
    )
    .expect("control in range");
    let saturated = post_star(&pds, &init);
    let lang = saturated.stack_language(cuba_pds::SharedState(2));
    c.bench_function("ablation_canonical_dfa", |b| {
        b.iter(|| CanonicalDfa::from_nfa(&lang).num_states())
    });
}

criterion_group!(
    benches,
    explicit_vs_symbolic,
    subsumption_modes,
    poststar_scaling,
    canonicalization
);
criterion_main!(benches);
