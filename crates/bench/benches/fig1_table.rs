//! Criterion bench for the Fig. 1 experiment: cost of computing the
//! layered reachability table (6 rounds) explicitly and symbolically,
//! and of the full Alg. 3 run to convergence.

use criterion::{criterion_group, criterion_main, Criterion};
use cuba_benchmarks::fig1;
use cuba_core::{alg3_explicit, Alg3Config, Property};
use cuba_explore::{ExplicitEngine, ExploreBudget, SubsumptionMode, SymbolicEngine};

fn bench_fig1(c: &mut Criterion) {
    let cpds = fig1::build();

    c.bench_function("fig1/explicit_6_rounds", |b| {
        b.iter(|| {
            let mut engine = ExplicitEngine::new(cpds.clone(), ExploreBudget::default());
            for _ in 0..6 {
                engine.advance().expect("FCR holds");
            }
            std::hint::black_box(engine.num_states())
        })
    });

    c.bench_function("fig1/symbolic_6_rounds", |b| {
        b.iter(|| {
            let mut engine = SymbolicEngine::new(
                cpds.clone(),
                ExploreBudget::default(),
                SubsumptionMode::Exact,
            );
            for _ in 0..6 {
                engine.advance().expect("no budget issues");
            }
            std::hint::black_box(engine.num_symbolic_states())
        })
    });

    c.bench_function("fig1/alg3_to_convergence", |b| {
        let config = Alg3Config {
            use_state_collapse: false,
            ..Alg3Config::default()
        };
        b.iter(|| {
            let report = alg3_explicit(&cpds, &Property::True, &config).expect("FCR holds");
            std::hint::black_box(report.rounds)
        })
    });
}

criterion_group!(benches, bench_fig1);
criterion_main!(benches);
