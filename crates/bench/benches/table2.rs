//! Criterion bench for Table 2: end-to-end Cuba driver runs on
//! representative rows of each benchmark family (the full-size rows
//! run in the `table2` binary; here we keep per-iteration cost low).

use criterion::{criterion_group, criterion_main, Criterion};
use cuba_benchmarks::{bluetooth, bst, crawler, dekker, fig2, proc2, stefan};
use cuba_core::{Cuba, CubaConfig, Property};
use cuba_explore::ExploreBudget;

fn config() -> CubaConfig {
    CubaConfig {
        budget: ExploreBudget::default(),
        max_k: 32,
        ..CubaConfig::default()
    }
}

fn bench_rows(c: &mut Criterion) {
    let rows: Vec<(&str, cuba_pds::Cpds, Property)> = vec![
        (
            "bluetooth-1/1+1",
            bluetooth::build(bluetooth::Version::V1, 1, 1),
            bluetooth::property(),
        ),
        (
            "bluetooth-3/1+1",
            bluetooth::build(bluetooth::Version::V3, 1, 1),
            bluetooth::property(),
        ),
        ("bst-insert/1+1", bst::build(1, 1), bst::property(2)),
        ("filecrawler/1*+2", crawler::build(2), crawler::property()),
        (
            "k-induction/1+1",
            fig2::build(),
            Property::never_visible(fig2::unreachable_visible()),
        ),
        ("proc-2/2+2*", proc2::build(), proc2::property()),
        ("stefan-1/2", stefan::build(2), stefan::property(2)),
        ("dekker/2*", dekker::build(), dekker::property()),
    ];
    let mut group = c.benchmark_group("table2");
    for (label, cpds, property) in rows {
        group.bench_function(label, |b| {
            let cuba = Cuba::new(cpds.clone(), property.clone());
            b.iter(|| {
                let outcome = cuba.run(&config()).expect("within budget");
                std::hint::black_box(outcome.rounds)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rows);
criterion_main!(benches);
