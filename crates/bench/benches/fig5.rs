//! Criterion bench for Fig. 5: Cuba vs the context-bounded baseline
//! on a safe and an unsafe row — the comparison whose shape the paper
//! plots as a scatter (comparable cost, only Cuba proves safety).

use criterion::{criterion_group, criterion_main, Criterion};
use cuba_benchmarks::{bluetooth, bst};
use cuba_core::{cba_baseline, CbaConfig, Cuba, CubaConfig};

fn bench_fig5(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5");

    let unsafe_cpds = bluetooth::build(bluetooth::Version::V1, 1, 1);
    let unsafe_prop = bluetooth::property();
    group.bench_function("cuba/bluetooth-1", |b| {
        let cuba = Cuba::new(unsafe_cpds.clone(), unsafe_prop.clone());
        b.iter(|| cuba.run(&CubaConfig::default()).expect("ok").rounds)
    });
    group.bench_function("cba/bluetooth-1", |b| {
        b.iter(|| {
            cba_baseline(&unsafe_cpds, &unsafe_prop, &CbaConfig::up_to(8))
                .expect("ok")
                .states
        })
    });

    let safe_cpds = bst::build(1, 1);
    let safe_prop = bst::property(2);
    group.bench_function("cuba/bst-insert", |b| {
        let cuba = Cuba::new(safe_cpds.clone(), safe_prop.clone());
        b.iter(|| cuba.run(&CubaConfig::default()).expect("ok").rounds)
    });
    group.bench_function("cba/bst-insert", |b| {
        b.iter(|| {
            cba_baseline(&safe_cpds, &safe_prop, &CbaConfig::up_to(3))
                .expect("ok")
                .states
        })
    });

    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
