//! Regenerates **Fig. 4**: the FCR determination for the Fig. 1 and
//! Fig. 2 systems via their `post*(Q × Σ≤1)` pushdown store automata.
//! Prints per-thread verdicts and Graphviz renderings of the automata
//! (the loop-free ones certify FCR; the self-loops refute it).
//!
//! ```text
//! cargo run --release -p cuba-bench --bin fig4_fcr
//! ```

use cuba_automata::{is_language_finite, psa_to_dot};
use cuba_benchmarks::{fig1, fig2};
use cuba_core::{check_fcr, fcr_psa};

fn main() {
    for (name, cpds) in [("Fig. 1", fig1::build()), ("Fig. 2", fig2::build())] {
        let report = check_fcr(&cpds);
        println!("{name}: {report}");
        for (i, verdict) in report.per_thread.iter().enumerate() {
            let psa = fcr_psa(cpds.thread(i), cpds.num_shared());
            let (trimmed, _) = psa.as_nfa().trim();
            println!(
                "  thread {}: R(Q x Sigma<=1) is {verdict} ({} useful automaton states)",
                i + 1,
                trimmed.num_states()
            );
            assert_eq!(is_language_finite(psa.as_nfa()), *verdict);
            let dot = psa_to_dot(&psa, &format!("A{}", i + 1));
            let path = format!(
                "results/fig4_{}_thread{}.dot",
                name.replace([' ', '.'], "").to_lowercase(),
                i + 1
            );
            std::fs::create_dir_all("results").ok();
            if std::fs::write(&path, &dot).is_ok() {
                println!("  wrote {path}");
            }
        }
    }
}
