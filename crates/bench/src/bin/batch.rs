//! Batch verification of the full Table 2 suite through
//! [`Portfolio::run_suite`]: the service-shaped entry point — many
//! `(Cpds, Property)` problems, bounded parallelism, suite-level
//! caching of FCR/`G∩Z`, results in input order.
//!
//! ```text
//! cargo run --release -p cuba-bench --bin batch [workers] [--json] [--baseline FILE] [--gate-timing]
//! ```
//!
//! * no flags — runs the suite once sequentially and once with
//!   `workers` problems in flight (default: available parallelism),
//!   comparing wall-clock.
//! * `--json` — runs the suite once (through a [`SuiteCache`]) and
//!   emits one JSON object per problem (verdict, winning engine,
//!   rounds, total round wall-clock, suite-cache hit/miss, and the
//!   explored-vs-replayed round counters of the shared-layer path) as
//!   a JSON array on stdout: the bench-regression record CI archives
//!   per PR. The suite includes a multi-property block
//!   (`fig1-multi/*`: one system, three properties) so the gate
//!   covers layer sharing.
//! * `--baseline FILE` — additionally diffs the fresh verdicts
//!   against a committed baseline (`BENCH_baseline.json`) and exits
//!   nonzero on any verdict change. Timing fields are informational
//!   and never compared by default.
//! * `--gate-timing` — opt-in timing-regression gate on top of
//!   `--baseline`: a problem fails the gate only when its fresh
//!   `round_wall_us` is **more than 5×** the baseline's *and* the
//!   absolute slowdown exceeds half a second — a deliberately
//!   generous threshold, so CI noise can never flake the (always-on)
//!   verdict gating it rides along with.

use std::time::Instant;

use cuba_bench::{json_escape, json_unescape, render_table, JsonObject};
use cuba_benchmarks::fig1;
use cuba_benchmarks::suite::{table2_problems, table2_suite};
use cuba_core::{CubaError, CubaOutcome, Portfolio, Property, SessionConfig, SuiteCache, Verdict};
use cuba_explore::ExploreBudget;
use cuba_pds::{Cpds, SharedState, StackSym, VisibleState};

fn portfolio() -> Portfolio {
    Portfolio::auto().with_config(SessionConfig {
        budget: ExploreBudget {
            // Same cap as the table2 harness: keeps the OOM row
            // (stefan-1/8) bounded.
            max_symbolic_states: 20_000,
            ..ExploreBudget::default()
        },
        max_k: 32,
        ..SessionConfig::new()
    })
}

fn verdict_string(result: &Result<CubaOutcome, CubaError>) -> String {
    match result {
        Ok(o) => match &o.verdict {
            Verdict::Safe { .. } => "safe".to_owned(),
            Verdict::Unsafe { .. } => "unsafe".to_owned(),
            Verdict::Undetermined { .. } => "undetermined".to_owned(),
        },
        Err(_) => "error".to_owned(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut workers: Option<usize> = None;
    let mut json = false;
    let mut baseline: Option<String> = None;
    let mut gate_timing = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => json = true,
            "--baseline" => {
                i += 1;
                match args.get(i) {
                    Some(path) => baseline = Some(path.clone()),
                    None => {
                        eprintln!("--baseline needs a file argument");
                        std::process::exit(2);
                    }
                }
            }
            "--gate-timing" => gate_timing = true,
            other => match other.parse::<usize>() {
                Ok(n) => workers = Some(n),
                Err(_) => {
                    eprintln!("unknown argument '{other}'");
                    std::process::exit(2);
                }
            },
        }
        i += 1;
    }
    if gate_timing && baseline.is_none() {
        eprintln!("--gate-timing needs --baseline FILE to compare against");
        std::process::exit(2);
    }
    let workers = workers.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    });

    if json || baseline.is_some() {
        run_json(workers, baseline.as_deref(), gate_timing);
    } else {
        run_comparison(workers);
    }
}

/// The multi-property block: one system (Fig. 1), several properties
/// — the suite entries that exercise shared-layer replay in the gate.
fn multi_property_problems() -> Vec<(String, Cpds, Property)> {
    let vis = |q: u32, tops: &[u32]| {
        VisibleState::new(
            SharedState(q),
            tops.iter().map(|&t| Some(StackSym(t))).collect(),
        )
    };
    vec![
        (
            "fig1-multi/p0-true".to_owned(),
            fig1::build(),
            Property::True,
        ),
        (
            // ⟨1|2,6⟩ first appears at k = 5 (Fig. 1 table): unsafe@5.
            "fig1-multi/p1-bug".to_owned(),
            fig1::build(),
            Property::never_visible(vis(1, &[2, 6])),
        ),
        (
            // ⟨2|1,5⟩ is unreachable: safe at the convergence bound.
            "fig1-multi/p2-unreach".to_owned(),
            fig1::build(),
            Property::never_visible(vis(2, &[1, 5])),
        ),
    ]
}

/// The bench-regression record: run once (suite-cached), emit JSON,
/// optionally gate against a committed baseline.
fn run_json(workers: usize, baseline: Option<&str>, gate_timing: bool) {
    let mut labels: Vec<String> = table2_suite().iter().map(|b| b.label()).collect();
    let mut problems = table2_problems();
    for (label, cpds, property) in multi_property_problems() {
        labels.push(label);
        problems.push((cpds, property));
    }
    // Record per-problem cache hit/miss by warming the artifact slots
    // in input order *before* the (parallel) run — under concurrent
    // workers the in-run lookup order is nondeterministic, so probing
    // up front is the only way the emitted field stays truthful and
    // stable across regenerations.
    let cache = SuiteCache::new();
    let cache_hits: Vec<bool> = problems
        .iter()
        .map(|(cpds, _)| cache.lookup(cpds).1)
        .collect();
    let results = portfolio().run_suite_cached(problems, workers, &cache);

    let mut lines = Vec::new();
    for ((label, result), cache_hit) in labels.iter().zip(&results).zip(&cache_hits) {
        let mut obj = JsonObject::new();
        obj.string("label", label);
        obj.string("verdict", &verdict_string(result));
        obj.string("cache", if *cache_hit { "hit" } else { "miss" });
        match result {
            Ok(o) => {
                match &o.verdict {
                    Verdict::Safe { k, .. } | Verdict::Unsafe { k, .. } => {
                        obj.number("k", *k as f64)
                    }
                    Verdict::Undetermined { .. } => obj.null("k"),
                };
                obj.bool("fcr", o.fcr_holds);
                obj.string("engine", &o.engine.to_string());
                obj.number("rounds", o.rounds as f64);
                obj.number("rounds_explored", o.rounds_explored as f64);
                obj.number("rounds_replayed", o.rounds_replayed as f64);
                obj.number("round_wall_us", o.round_wall.as_micros() as f64);
                obj.number("duration_ms", o.duration.as_millis() as f64);
            }
            Err(e) => {
                obj.string("reason", &e.to_string());
            }
        }
        lines.push(obj.finish());
    }
    // Derive the summary from the per-problem probe (the run itself
    // hits the pre-warmed slots again, which would double-count).
    let misses = cache_hits.iter().filter(|hit| !**hit).count();
    eprintln!(
        "suite cache: {} hits, {} misses, {} distinct systems",
        cache_hits.len() - misses,
        misses,
        cache.len()
    );
    println!("[");
    for (i, line) in lines.iter().enumerate() {
        let comma = if i + 1 < lines.len() { "," } else { "" };
        println!("  {line}{comma}");
    }
    println!("]");

    if let Some(path) = baseline {
        let expected = match std::fs::read_to_string(path) {
            Ok(text) => parse_baseline(&text),
            Err(e) => {
                eprintln!("cannot read baseline {path}: {e}");
                std::process::exit(2);
            }
        };
        let fresh: Vec<(String, String)> = labels
            .iter()
            .zip(&results)
            .map(|(label, result)| (label.clone(), verdict_string(result)))
            .collect();
        let mut changed = false;
        for (label, verdict) in &fresh {
            match expected.iter().find(|entry| &entry.label == label) {
                Some(entry) if &entry.verdict == verdict => {}
                Some(entry) => {
                    changed = true;
                    eprintln!(
                        "VERDICT CHANGE {label}: baseline={}, now={verdict}",
                        entry.verdict
                    );
                }
                None => {
                    changed = true;
                    eprintln!("NEW PROBLEM {label}: verdict={verdict} (not in baseline)");
                }
            }
        }
        for entry in &expected {
            if !fresh.iter().any(|(l, _)| *l == entry.label) {
                changed = true;
                eprintln!(
                    "MISSING PROBLEM {}: baseline={}, gone from suite",
                    entry.label, entry.verdict
                );
            }
        }
        if changed {
            eprintln!("bench regression gate FAILED against {path}");
            std::process::exit(1);
        }
        eprintln!(
            "bench regression gate OK: {} verdicts match {path}",
            fresh.len()
        );

        if gate_timing {
            let mut slow = false;
            for (label, result) in labels.iter().zip(&results) {
                let (Ok(outcome), Some(entry)) =
                    (result, expected.iter().find(|entry| &entry.label == label))
                else {
                    continue;
                };
                let Some(baseline_us) = entry.round_wall_us else {
                    continue; // older baselines lack the field
                };
                let fresh_us = outcome.round_wall.as_micros() as f64;
                if timing_regressed(baseline_us, fresh_us) {
                    slow = true;
                    eprintln!(
                        "TIMING REGRESSION {label}: round_wall_us baseline={baseline_us}, \
                         now={fresh_us} (>{TIMING_RATIO}x and >{TIMING_FLOOR_US}us slower)"
                    );
                }
            }
            if slow {
                eprintln!("timing regression gate FAILED against {path}");
                std::process::exit(1);
            }
            eprintln!("timing regression gate OK against {path}");
        }
    }
}

/// One baseline record, as scanned from a `--json` line.
struct BaselineEntry {
    label: String,
    verdict: String,
    round_wall_us: Option<f64>,
}

/// Extracts the records from a baseline file written by `--json` (one
/// object per line; the workspace builds offline, so the reader is
/// hand-rolled like the writer).
fn parse_baseline(text: &str) -> Vec<BaselineEntry> {
    text.lines()
        .filter_map(|line| {
            Some(BaselineEntry {
                label: extract_string(line, "label")?,
                verdict: extract_string(line, "verdict")?,
                round_wall_us: extract_number(line, "round_wall_us"),
            })
        })
        .collect()
}

/// Pulls the string value of `"key":"…"` out of one JSON line,
/// decoding escapes — a problem name may contain quotes or
/// backslashes, so the scanner must invert [`json_escape`] rather
/// than stop at the first `"`.
fn extract_string(line: &str, key: &str) -> Option<String> {
    let marker = format!("{}:", json_escape(key));
    let start = line.find(&marker)? + marker.len();
    json_unescape(&line[start..]).map(|(value, _)| value)
}

/// Pulls the numeric value of `"key":N` out of one JSON line.
fn extract_number(line: &str, key: &str) -> Option<f64> {
    let marker = format!("{}:", json_escape(key));
    let start = line.find(&marker)? + marker.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit() && !matches!(c, '.' | '-' | '+' | 'e' | 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// The opt-in timing gate's slowdown ratio: fresh must exceed
/// `TIMING_RATIO ×` baseline to count.
const TIMING_RATIO: f64 = 5.0;
/// …and the absolute floor: the slowdown must also exceed this many
/// microseconds, so sub-millisecond problems can never flake the gate
/// on scheduler noise.
const TIMING_FLOOR_US: f64 = 500_000.0;

/// Whether a fresh `round_wall_us` regresses against the baseline
/// under the generous opt-in thresholds.
fn timing_regressed(baseline_us: f64, fresh_us: f64) -> bool {
    fresh_us > TIMING_RATIO * baseline_us && fresh_us - baseline_us > TIMING_FLOOR_US
}

/// The original mode: sequential vs parallel wall-clock comparison.
fn run_comparison(workers: usize) {
    let labels: Vec<String> = table2_suite().iter().map(|b| b.label()).collect();

    let sequential_start = Instant::now();
    let _ = portfolio().run_suite(table2_problems(), 1);
    let sequential = sequential_start.elapsed();

    let batch_start = Instant::now();
    let results = portfolio().run_suite(table2_problems(), workers);
    let batch = batch_start.elapsed();

    let mut rows = Vec::new();
    for (label, result) in labels.iter().zip(&results) {
        let (verdict, engine, k) = match result {
            Ok(o) => (
                verdict_string(result),
                o.engine.to_string(),
                match &o.verdict {
                    Verdict::Safe { k, .. } | Verdict::Unsafe { k, .. } => k.to_string(),
                    Verdict::Undetermined { .. } => "-".to_owned(),
                },
            ),
            Err(e) => (format!("error: {e}"), "-".into(), "-".into()),
        };
        rows.push(vec![label.clone(), verdict, k, engine]);
    }
    println!("Batch verification of the Table 2 suite\n");
    print!(
        "{}",
        render_table(&["program/threads", "verdict", "k", "engine"], &rows)
    );
    println!(
        "\nsequential: {:.2}s, {} workers: {:.2}s ({:.1}x)",
        sequential.as_secs_f64(),
        workers,
        batch.as_secs_f64(),
        sequential.as_secs_f64() / batch.as_secs_f64().max(1e-9),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Regression: the baseline scanner must decode JSON escapes — a
    /// quoted/escaped problem name round-trips through writer and
    /// reader unchanged, and the value ends at the *unescaped* quote.
    #[test]
    fn baseline_scanner_decodes_escaped_names() {
        let nasty = r#"bench "quoted"\weird/name"#;
        let line = format!(
            "{{\"label\":{},\"verdict\":{},\"round_wall_us\":1234}}",
            json_escape(nasty),
            json_escape("safe")
        );
        assert_eq!(extract_string(&line, "label").as_deref(), Some(nasty));
        assert_eq!(extract_string(&line, "verdict").as_deref(), Some("safe"));
        assert_eq!(extract_number(&line, "round_wall_us"), Some(1234.0));

        let entries = parse_baseline(&line);
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].label, nasty);
        assert_eq!(entries[0].verdict, "safe");
        assert_eq!(entries[0].round_wall_us, Some(1234.0));
    }

    /// The pre-hardening scanner stopped at the first quote; make sure
    /// plain names and missing fields still behave.
    #[test]
    fn baseline_scanner_plain_and_missing_fields() {
        let line = r#"{"label":"fig1-multi/p0-true","verdict":"unsafe","k":5}"#;
        assert_eq!(
            extract_string(line, "label").as_deref(),
            Some("fig1-multi/p0-true")
        );
        assert_eq!(extract_number(line, "k"), Some(5.0));
        assert_eq!(extract_number(line, "round_wall_us"), None);
        assert_eq!(extract_string(line, "absent"), None);
        // A numeric field is not a string field and vice versa.
        assert_eq!(extract_string(line, "k"), None);
        // Lines without records are skipped, not misparsed.
        assert!(parse_baseline("[\n]\n").is_empty());
    }

    /// The timing gate fires only past *both* thresholds: the 5×
    /// ratio and the absolute half-second floor.
    #[test]
    fn timing_gate_is_generous() {
        // Microsecond noise on tiny problems: never a regression,
        // whatever the ratio.
        assert!(!timing_regressed(100.0, 10_000.0));
        assert!(!timing_regressed(0.0, 499_999.0));
        // Big but proportionate growth: fine.
        assert!(!timing_regressed(1_000_000.0, 4_000_000.0));
        // Past 5× and past the floor: regression.
        assert!(timing_regressed(200_000.0, 1_200_001.0));
        assert!(timing_regressed(0.0, 500_001.0));
        // Exactly at the ratio boundary: fine (strictly greater).
        assert!(!timing_regressed(200_000.0, 1_000_000.0));
    }
}
