//! Batch verification of the full Table 2 suite through
//! [`Portfolio::run_suite`]: the service-shaped entry point — many
//! `(Cpds, Property)` problems, bounded parallelism, results in input
//! order.
//!
//! ```text
//! cargo run --release -p cuba-bench --bin batch [workers]
//! ```
//!
//! Runs the suite once sequentially and once with `workers` problems
//! in flight (default: available parallelism), comparing wall-clock.

use std::time::Instant;

use cuba_bench::render_table;
use cuba_benchmarks::suite::{table2_problems, table2_suite};
use cuba_core::{Portfolio, SessionConfig, Verdict};
use cuba_explore::ExploreBudget;

fn portfolio() -> Portfolio {
    Portfolio::auto().with_config(SessionConfig {
        budget: ExploreBudget {
            // Same cap as the table2 harness: keeps the OOM row
            // (stefan-1/8) bounded.
            max_symbolic_states: 20_000,
            ..ExploreBudget::default()
        },
        max_k: 32,
        ..SessionConfig::new()
    })
}

fn main() {
    let workers: usize = std::env::args()
        .nth(1)
        .and_then(|w| w.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        });

    let labels: Vec<String> = table2_suite().iter().map(|b| b.label()).collect();

    let sequential_start = Instant::now();
    let _ = portfolio().run_suite(table2_problems(), 1);
    let sequential = sequential_start.elapsed();

    let batch_start = Instant::now();
    let results = portfolio().run_suite(table2_problems(), workers);
    let batch = batch_start.elapsed();

    let mut rows = Vec::new();
    for (label, result) in labels.iter().zip(&results) {
        let (verdict, engine, k) = match result {
            Ok(o) => (
                match &o.verdict {
                    Verdict::Safe { .. } => "safe".to_owned(),
                    Verdict::Unsafe { .. } => "unsafe".to_owned(),
                    Verdict::Undetermined { .. } => "undetermined".to_owned(),
                },
                o.engine.to_string(),
                match &o.verdict {
                    Verdict::Safe { k, .. } | Verdict::Unsafe { k, .. } => k.to_string(),
                    Verdict::Undetermined { .. } => "-".to_owned(),
                },
            ),
            Err(e) => (format!("error: {e}"), "-".into(), "-".into()),
        };
        rows.push(vec![label.clone(), verdict, k, engine]);
    }
    println!("Batch verification of the Table 2 suite\n");
    print!(
        "{}",
        render_table(&["program/threads", "verdict", "k", "engine"], &rows)
    );
    println!(
        "\nsequential: {:.2}s, {} workers: {:.2}s ({:.1}x)",
        sequential.as_secs_f64(),
        workers,
        batch.as_secs_f64(),
        sequential.as_secs_f64() / batch.as_secs_f64().max(1e-9),
    );
}
