//! Batch verification of the full Table 2 suite through
//! [`Portfolio::run_suite`]: the service-shaped entry point — many
//! `(Cpds, Property)` problems, bounded parallelism, suite-level
//! caching of FCR/`G∩Z`, results in input order.
//!
//! ```text
//! cargo run --release -p cuba-bench --bin batch [workers] [--json] [--baseline FILE]
//! ```
//!
//! * no flags — runs the suite once sequentially and once with
//!   `workers` problems in flight (default: available parallelism),
//!   comparing wall-clock.
//! * `--json` — runs the suite once (through a
//!   [`SuiteCache`](cuba_core::SuiteCache)) and
//!   emits one JSON object per problem (verdict, winning engine,
//!   rounds, total round wall-clock, suite-cache hit/miss, and the
//!   explored-vs-replayed round counters of the shared-layer path) as
//!   a JSON array on stdout. The suite is
//!   [`cuba_bench::harness::bench_suite`]: every Table 2 row plus the
//!   multi-property `fig1-multi/*` block, so the record covers layer
//!   sharing.
//! * `--baseline FILE` — additionally diffs the fresh verdicts
//!   against a committed baseline (`BENCH_baseline.json`) through
//!   [`cuba_bench::compare`] and exits nonzero on any verdict change
//!   (error↔error counts as unchanged; error on one side only is a
//!   hard failure). Timing fields are informational here — the
//!   noise-aware timing gate is `cuba bench --compare FILE --gate`,
//!   which measures N samples per workload instead of one.

use std::time::Instant;

use cuba_bench::compare::{self, Thresholds};
use cuba_bench::harness::{bench_config, bench_suite, run_iteration, verdict_word};
use cuba_bench::{render_table, JsonObject};
use cuba_core::{Portfolio, SchedulePolicy, Verdict};

fn portfolio() -> Portfolio {
    Portfolio::auto().with_config(bench_config(SchedulePolicy::default()))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut workers: Option<usize> = None;
    let mut json = false;
    let mut baseline: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => json = true,
            "--baseline" => {
                i += 1;
                match args.get(i) {
                    Some(path) => baseline = Some(path.clone()),
                    None => {
                        eprintln!("--baseline needs a file argument");
                        std::process::exit(2);
                    }
                }
            }
            other => match other.parse::<usize>() {
                Ok(n) => workers = Some(n),
                Err(_) => {
                    eprintln!("unknown argument '{other}'");
                    std::process::exit(2);
                }
            },
        }
        i += 1;
    }
    let workers = workers.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    });

    if json || baseline.is_some() {
        run_json(workers, baseline.as_deref());
    } else {
        run_comparison(workers);
    }
}

/// The bench-regression record: run once (suite-cached), emit JSON,
/// optionally gate verdicts against a committed baseline.
fn run_json(workers: usize, baseline: Option<&str>) {
    let problems = bench_suite();
    let (results, cache_hits) = run_iteration(&portfolio(), &problems, workers);

    let mut lines = Vec::new();
    for (((label, _, _), result), cache_hit) in problems.iter().zip(&results).zip(&cache_hits) {
        let mut obj = JsonObject::new();
        obj.string("label", label);
        obj.string("verdict", &verdict_word(result));
        obj.string("cache", if *cache_hit { "hit" } else { "miss" });
        match result {
            Ok(o) => {
                match &o.verdict {
                    Verdict::Safe { k, .. } | Verdict::Unsafe { k, .. } => {
                        obj.number("k", *k as f64)
                    }
                    Verdict::Undetermined { .. } => obj.null("k"),
                };
                obj.bool("fcr", o.fcr_holds);
                obj.string("engine", &o.engine.to_string());
                obj.number("rounds", o.rounds as f64);
                obj.number("rounds_explored", o.rounds_explored as f64);
                obj.number("rounds_replayed", o.rounds_replayed as f64);
                obj.number("round_wall_us", o.round_wall.as_micros() as f64);
                obj.number("duration_ms", o.duration.as_millis() as f64);
            }
            Err(e) => {
                obj.string("reason", &e.to_string());
            }
        }
        lines.push(obj.finish());
    }
    let misses = cache_hits.iter().filter(|hit| !**hit).count();
    eprintln!(
        "suite cache: {} hits, {} misses",
        cache_hits.len() - misses,
        misses,
    );
    let record = format!(
        "[\n{}\n]",
        lines
            .iter()
            .map(|line| format!("  {line}"))
            .collect::<Vec<_>>()
            .join(",\n")
    );
    println!("{record}");

    if let Some(path) = baseline {
        let expected = match std::fs::read_to_string(path) {
            Ok(text) => compare::parse_records(&text),
            Err(e) => {
                eprintln!("cannot read baseline {path}: {e}");
                std::process::exit(2);
            }
        };
        let fresh = compare::parse_records(&record);
        let report = compare::compare(&expected, &fresh, &Thresholds::default());
        for row in &report.rows {
            if row.fails_verdicts() {
                eprintln!(
                    "VERDICT CHANGE {}: {}",
                    row.label,
                    compare::class_word(&row.status)
                );
            }
        }
        if !report.verdicts_ok() {
            eprintln!("bench regression gate FAILED against {path}");
            std::process::exit(1);
        }
        eprintln!(
            "bench regression gate OK: {} verdicts match {path}",
            report.rows.len()
        );
    }
}

/// The original mode: sequential vs parallel wall-clock comparison.
fn run_comparison(workers: usize) {
    let problems = bench_suite();
    let labels: Vec<&str> = problems.iter().map(|(l, _, _)| l.as_str()).collect();

    let sequential_start = Instant::now();
    let _ = run_iteration(&portfolio(), &problems, 1);
    let sequential = sequential_start.elapsed();

    let batch_start = Instant::now();
    let (results, _) = run_iteration(&portfolio(), &problems, workers);
    let batch = batch_start.elapsed();

    let mut rows = Vec::new();
    for (label, result) in labels.iter().zip(&results) {
        let (verdict, engine, k) = match result {
            Ok(o) => (
                verdict_word(result),
                o.engine.to_string(),
                match &o.verdict {
                    Verdict::Safe { k, .. } | Verdict::Unsafe { k, .. } => k.to_string(),
                    Verdict::Undetermined { .. } => "-".to_owned(),
                },
            ),
            Err(e) => (format!("error: {e}"), "-".into(), "-".into()),
        };
        rows.push(vec![label.to_string(), verdict, k, engine]);
    }
    println!("Batch verification of the Table 2 suite\n");
    print!(
        "{}",
        render_table(&["program/threads", "verdict", "k", "engine"], &rows)
    );
    println!(
        "\nsequential: {:.2}s, {} workers: {:.2}s ({:.1}x)",
        sequential.as_secs_f64(),
        workers,
        batch.as_secs_f64(),
        sequential.as_secs_f64() / batch.as_secs_f64().max(1e-9),
    );
}
