//! Regenerates **Table 2** of the paper: for every benchmark row, the
//! FCR verdict, safety verdict, convergence bounds of `(Rk)` and
//! `(T(Rk))`, runtime and peak memory.
//!
//! ```text
//! cargo run --release -p cuba-bench --bin table2
//! ```
//!
//! Also writes machine-readable records to `results/table2.json`.

use cuba_bench::{fmt_mb, measure, render_table, CountingAlloc, RunRecord};
use cuba_benchmarks::suite::table2_suite;
use cuba_core::{
    check_fcr, scheme1_explicit, scheme1_symbolic, Portfolio, Scheme1Config, SessionConfig, Verdict,
};
use cuba_explore::ExploreBudget;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

fn harness_budget() -> ExploreBudget {
    ExploreBudget {
        // Keep the OOM row (stefan-1/8) from running for minutes: the
        // paper's 4 GB memory limit maps to a symbolic state cap here.
        max_symbolic_states: 20_000,
        ..ExploreBudget::default()
    }
}

fn main() {
    let mut rows = Vec::new();
    let mut records = Vec::new();
    // The §6 race portfolio: explicit arms ∥ CBA refuter under FCR,
    // symbolic arms otherwise. Rows run one at a time so the counting
    // allocator attributes peak memory per row.
    let portfolio = Portfolio::auto().with_config(SessionConfig {
        budget: harness_budget(),
        max_k: 32,
        ..SessionConfig::new()
    });
    for bench in table2_suite() {
        let label = bench.label();
        let fcr = check_fcr(&bench.cpds).holds();

        // Main run: the portfolio race (visible-state convergence).
        let (outcome, seconds, peak) = measure(Some(&ALLOC), || {
            portfolio.run(bench.cpds.clone(), bench.property.clone())
        });

        // Secondary run: Scheme 1 for the (Rk) kmax column, bounded by
        // the bound the main run needed (the paper interrupts the
        // slower method once the faster concludes — the "≥" marks).
        let (safe_text, k_text, k_opt, engine_text, states) = match &outcome {
            Ok(o) => {
                let (verdict_text, k) = match &o.verdict {
                    Verdict::Safe { k, .. } => ("yes".to_owned(), Some(*k)),
                    Verdict::Unsafe { k, .. } => (format!("no ({k})"), Some(*k)),
                    Verdict::Undetermined { .. } => ("?".to_owned(), None),
                };
                (
                    verdict_text,
                    k.map(|k| k.to_string()).unwrap_or_else(|| "-".into()),
                    k,
                    o.engine.to_string(),
                    o.states,
                )
            }
            Err(e) => (format!("OOM ({e})"), "-".into(), None, "-".into(), 0),
        };

        let rk_cap = k_opt.unwrap_or(8) + 2;
        let scheme1_config = Scheme1Config {
            budget: harness_budget(),
            max_k: rk_cap,
            skip_fcr_check: true,
            ..Scheme1Config::default()
        };
        let rk_kmax = if fcr {
            scheme1_explicit(&bench.cpds, &bench.property, &scheme1_config)
        } else {
            scheme1_symbolic(&bench.cpds, &bench.property, &scheme1_config)
        };
        let rk_text = match rk_kmax {
            Ok(r) => match r.verdict {
                Verdict::Safe { k, .. } => k.to_string(),
                Verdict::Unsafe { k, .. } => format!("(bug {k})"),
                Verdict::Undetermined { .. } => format!(">={rk_cap}"),
            },
            Err(_) => "OOM".into(),
        };

        let paper_k = bench
            .expect
            .paper_kmax_visible
            .map(|k| k.to_string())
            .unwrap_or_else(|| "OOM".into());
        rows.push(vec![
            label.clone(),
            if fcr { "yes" } else { "no" }.to_owned(),
            safe_text.clone(),
            rk_text,
            k_text,
            paper_k,
            format!("{seconds:.2}"),
            fmt_mb(peak),
            engine_text.clone(),
        ]);
        records.push(RunRecord {
            label,
            fcr,
            verdict: match &outcome {
                Ok(o) if o.verdict.is_safe() => "safe".into(),
                Ok(o) if o.verdict.is_unsafe() => "unsafe".into(),
                Ok(_) => "undetermined".into(),
                Err(_) => "oom".into(),
            },
            k: k_opt,
            engine: engine_text,
            states,
            seconds,
            peak_bytes: peak,
        });
    }

    println!("Table 2: CUBA results on the benchmark suite");
    println!("(paper-k = kmax of (T(Rk)) reported in the paper)\n");
    print!(
        "{}",
        render_table(
            &[
                "program/threads",
                "FCR?",
                "Safe?",
                "kmax(Rk)",
                "kmax(T)",
                "paper-k",
                "time(s)",
                "mem(MB)",
                "engine"
            ],
            &rows
        )
    );

    std::fs::create_dir_all("results").ok();
    let json = cuba_bench::records_to_json(&records);
    std::fs::write("results/table2.json", json).ok();
    println!("\nwrote results/table2.json");
}
