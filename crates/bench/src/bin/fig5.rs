//! Regenerates **Fig. 5**: Cuba vs the context-bounded baseline
//! ("JMoped-shaped": Qadeer–Rehof symbolic CBA, bug-finding only) on
//! benchmark suites 1–5 and 9, comparing runtime and memory.
//!
//! Protocol as in the paper: the baseline runs with the same context
//! bound at which Cuba terminates; for unsafe rows both stop at the
//! bug, for safe rows the baseline explores the full bound but proves
//! nothing.
//!
//! ```text
//! cargo run --release -p cuba-bench --bin fig5
//! ```
//!
//! Writes scatter data to `results/fig5.csv`.

use cuba_bench::{fmt_mb, measure, render_table, CountingAlloc};
use cuba_benchmarks::suite::fig5_suite;
use cuba_core::{cba_baseline, CbaConfig, Cuba, CubaConfig, Verdict};
use cuba_explore::ExploreBudget;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

fn main() {
    let mut rows = Vec::new();
    let mut csv = String::from("label,status,cuba_s,jmoped_s,cuba_mb,jmoped_mb\n");
    for bench in fig5_suite() {
        let label = bench.label();
        let config = CubaConfig {
            budget: ExploreBudget::default(),
            max_k: 32,
            ..CubaConfig::default()
        };
        let cuba = Cuba::new(bench.cpds.clone(), bench.property.clone());
        let (outcome, cuba_s, cuba_peak) = measure(Some(&ALLOC), || cuba.run(&config));
        let outcome = match outcome {
            Ok(o) => o,
            Err(e) => {
                eprintln!("{label}: cuba failed: {e}");
                continue;
            }
        };
        let (status, k) = match &outcome.verdict {
            Verdict::Safe { k, .. } => ("safe", *k),
            Verdict::Unsafe { k, .. } => ("unsafe", *k),
            Verdict::Undetermined { .. } => ("undet", 0),
        };

        // Baseline at the same bound (k+1 for safe rows: it needs one
        // more round than the collapse bound to match Cuba's work).
        let baseline_bound = k + 1;
        let (baseline, jm_s, jm_peak) = measure(Some(&ALLOC), || {
            cba_baseline(
                &bench.cpds,
                &bench.property,
                &CbaConfig::up_to(baseline_bound),
            )
        });
        let jm_text = match baseline {
            Ok(r) => format!("{:?}", r.verdict),
            Err(e) => format!("error: {e}"),
        };

        rows.push(vec![
            label.clone(),
            status.to_owned(),
            format!("{cuba_s:.3}"),
            format!("{jm_s:.3}"),
            fmt_mb(cuba_peak),
            fmt_mb(jm_peak),
            jm_text,
        ]);
        csv.push_str(&format!(
            "{label},{status},{cuba_s:.4},{jm_s:.4},{},{}\n",
            fmt_mb(cuba_peak),
            fmt_mb(jm_peak)
        ));
    }

    println!("Fig. 5: Cuba vs context-bounded baseline (JMoped-shaped)\n");
    print!(
        "{}",
        render_table(
            &[
                "program/threads",
                "status",
                "cuba(s)",
                "cba(s)",
                "cuba(MB)",
                "cba(MB)",
                "cba verdict"
            ],
            &rows
        )
    );
    println!("\nNote: with comparable resources, only Cuba proves the safe rows;");
    println!("the baseline can merely report the absence of bugs up to the bound.");

    std::fs::create_dir_all("results").ok();
    std::fs::write("results/fig5.csv", csv).ok();
    println!("wrote results/fig5.csv");
}
