//! Regenerates the **Fig. 1 (right)** reachability table: the new
//! global states `Rk \ Rk−1` and new visible states `T(Rk) \ T(Rk−1)`
//! per context bound, plus the Ex. 14 data (G∩Z, plateaus, collapse).
//!
//! ```text
//! cargo run --release -p cuba-bench --bin fig1_table
//! ```

use cuba_benchmarks::fig1;
use cuba_core::{alg3_explicit, Alg3Config, Property, Verdict};
use cuba_explore::{ExplicitEngine, ExploreBudget};

fn main() {
    let cpds = fig1::build();
    let mut engine = ExplicitEngine::new(cpds.clone(), ExploreBudget::default());
    for _ in 0..6 {
        engine.advance().expect("Fig. 1 satisfies FCR");
    }

    println!("Fig. 1 reachability table (new states per bound k):\n");
    println!("{:>2}  {:<40}  T(Rk) \\ T(Rk-1)", "k", "Rk \\ Rk-1");
    println!("{}", "-".repeat(80));
    for k in 0..=6usize {
        let mut states: Vec<String> = engine.layer(k).map(|s| s.to_string()).collect();
        states.sort();
        let mut visible: Vec<String> = engine
            .visible_layer(k)
            .iter()
            .map(|v| v.to_string())
            .collect();
        visible.sort();
        println!(
            "{k:>2}  {:<40}  {}",
            states.join(" "),
            if visible.is_empty() {
                "(plateau)".to_owned()
            } else {
                visible.join(" ")
            }
        );
    }

    // The Ex. 14 run: Alg 3 with the generator test.
    let config = Alg3Config {
        use_state_collapse: false,
        ..Alg3Config::default()
    };
    let report = alg3_explicit(&cpds, &Property::True, &config).expect("FCR holds");
    println!("\nAlg. 3 over (T(Rk)) with stuttering detection:");
    let gz: Vec<String> = report.g_cap_z.iter().map(|v| v.to_string()).collect();
    println!("  G ∩ Z = {{{}}}", gz.join(", "));
    println!(
        "  rejected (stuttering) plateaus at k = {:?}",
        report.rejected_plateaus
    );
    println!("  |T(Rk)| per k: {:?}", report.visible_growth.sizes());
    match report.verdict {
        Verdict::Safe { k, method } => {
            println!("  collapse detected at k = {k} (via {method})")
        }
        other => println!("  unexpected verdict: {other}"),
    }
}
