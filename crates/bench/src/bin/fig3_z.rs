//! Regenerates **Fig. 3 / Ex. 13**: the finite-state abstractions
//! `M1, M2` (Alg. 2) of the Fig. 1 threads and the reachable set `Z`.
//!
//! ```text
//! cargo run --release -p cuba-bench --bin fig3_z
//! ```

use cuba_benchmarks::fig1;
use cuba_core::compute_z;

fn main() {
    let cpds = fig1::build();
    let z = compute_z(&cpds);

    for (i, abstraction) in z.abstractions.iter().enumerate() {
        println!("T{} (abstraction of thread {}):", i + 1, i + 1);
        for t in abstraction {
            println!("  {t}");
        }
    }

    let mut states: Vec<String> = z.states.iter().map(|v| v.to_string()).collect();
    states.sort();
    println!("\nZ (reachable states of M2), {} states:", states.len());
    for s in &states {
        println!("  {s}");
    }
    assert_eq!(states.len(), 8, "Ex. 13 reports exactly 8 states");
}
