//! Regenerates **Fig. 2 / Ex. 8**: the foo/bar program whose stacks
//! grow unboundedly within one context. Shows that `⟨1|4,9⟩` is
//! reachable within 2 contexts but not 1, that explicit exploration
//! is impossible (FCR fails), and that the symbolic sequence collapses
//! at a small bound (`R2 = R3` in the paper).
//!
//! ```text
//! cargo run --release -p cuba-bench --bin fig2_example
//! ```

use cuba_benchmarks::fig2;
use cuba_core::check_fcr;
use cuba_explore::{ExploreBudget, SubsumptionMode, SymbolicEngine};

fn main() {
    let cpds = fig2::build();
    println!("Fig. 2 (foo/bar): initial state {}", cpds.initial_state());

    let fcr = check_fcr(&cpds);
    println!("FCR check: {fcr} — explicit-state (Rk) sets are infinite");

    let target = fig2::example8_state();
    let mut engine = SymbolicEngine::new(cpds, ExploreBudget::default(), SubsumptionMode::Exact);
    println!("\nEx. 8 target state c = {target} (x=1, foo spinning, bar done):");
    let mut collapse_at = None;
    for k in 1..=8usize {
        engine
            .advance()
            .expect("symbolic rounds are budget-free here");
        let covered = engine.covers(&target);
        println!(
            "  k = {k}: |Sk| = {:>3} symbolic states, |T(Sk)| = {:>2}, c reachable: {}",
            engine.num_symbolic_states(),
            engine.num_visible(),
            covered
        );
        if k == 1 {
            assert!(!covered, "c must not be reachable within one context");
        }
        if k == 2 {
            assert!(covered, "c must be reachable within two contexts");
        }
        if engine.is_collapsed() {
            collapse_at = Some(k - 1);
            break;
        }
    }
    match collapse_at {
        Some(k) => println!(
            "\n(Sk) collapsed at k = {k}: R{k} = R{} — matching Ex. 8's R2 = R3",
            k + 1
        ),
        None => println!("\nno collapse within 8 rounds"),
    }
}
