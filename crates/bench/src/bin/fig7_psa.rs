//! Regenerates **Fig. 7 (App. C)**: the example PDS and its pushdown
//! store automaton, built by `post*` saturation from `⟨q0|σ0⟩`.
//!
//! ```text
//! cargo run --release -p cuba-bench --bin fig7_psa
//! ```

use cuba_automata::{post_star_from_config, psa_to_dot};
use cuba_benchmarks::fig7;

fn main() {
    let pds = fig7::build();
    println!("Fig. 7 PDS actions:");
    for a in pds.actions() {
        println!("  {a}");
    }

    let psa = post_star_from_config(&pds, fig7::NUM_SHARED, &fig7::initial_config())
        .expect("q0 is a control state");
    println!("\npost* automaton: {} states", psa.as_nfa().num_states());
    println!("sample accepted configurations (reachable states):");
    for q in 0..fig7::NUM_SHARED {
        let lang = psa.stack_language(cuba_pds::SharedState(q));
        for word in lang.sample_words(4) {
            let text: Vec<String> = word.iter().map(|w| w.to_string()).collect();
            println!("  <{q}|{}>", text.join(""));
        }
    }

    std::fs::create_dir_all("results").ok();
    let dot = psa_to_dot(&psa, "fig7");
    if std::fs::write("results/fig7_psa.dot", &dot).is_ok() {
        println!("\nwrote results/fig7_psa.dot");
    }
}
