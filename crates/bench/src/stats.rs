//! Robust summary statistics for the in-tree bench harness.
//!
//! The container builds fully offline, so criterion is unavailable;
//! this module supplies the statistical core a timing harness needs —
//! medians, interpolated quantiles, the median absolute deviation
//! (MAD), and Tukey-fence outlier rejection — over plain `f64` slices.
//! Everything is deterministic: sorting is total (`f64::total_cmp`)
//! and no randomness is involved, so the same samples always produce
//! the same summary.
//!
//! The robust estimators are chosen over mean/standard deviation on
//! purpose: CI runner timings are heavy-tailed (scheduler
//! preemptions, cache-cold first iterations), and a single stall can
//! drag a mean arbitrarily far while the median and MAD barely move.

/// Converts a MAD to the standard deviation of the underlying normal:
/// `σ ≈ 1.4826 × MAD`. Used to express noise thresholds in familiar
/// sigma units.
pub const MAD_TO_SIGMA: f64 = 1.4826;

/// Returns a sorted copy of `xs` (total order, NaN last).
fn sorted(xs: &[f64]) -> Vec<f64> {
    let mut v = xs.to_vec();
    v.sort_by(f64::total_cmp);
    v
}

/// The interpolated `q`-quantile of `xs` (`0.0 ≤ q ≤ 1.0`), using the
/// linear interpolation rule (type 7, the R/NumPy default): the
/// quantile of `n` sorted samples sits at rank `q·(n−1)`, interpolated
/// between its neighbors.
///
/// Returns `NaN` on an empty slice.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let v = sorted(xs);
    let q = q.clamp(0.0, 1.0);
    let rank = q * (v.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        return v[lo];
    }
    let frac = rank - lo as f64;
    v[lo] + (v[hi] - v[lo]) * frac
}

/// The median of `xs` (`NaN` on an empty slice).
pub fn median(xs: &[f64]) -> f64 {
    quantile(xs, 0.5)
}

/// The median absolute deviation of `xs`: the median of
/// `|x − median(xs)|`. A robust spread estimate — one wild outlier in
/// a window of five leaves it unchanged, where a standard deviation
/// would explode. `NaN` on an empty slice, `0.0` on a singleton.
pub fn mad(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let m = median(xs);
    let deviations: Vec<f64> = xs.iter().map(|x| (x - m).abs()).collect();
    median(&deviations)
}

/// Splits `xs` into `(kept, rejected)` by the Tukey fences: a sample
/// is an outlier when it falls outside `[q25 − k·IQR, q75 + k·IQR]`
/// with the conventional `k = 1.5`. With fewer than 4 samples the
/// fences are meaningless and everything is kept.
pub fn iqr_partition(xs: &[f64]) -> (Vec<f64>, Vec<f64>) {
    if xs.len() < 4 {
        return (xs.to_vec(), Vec::new());
    }
    let q25 = quantile(xs, 0.25);
    let q75 = quantile(xs, 0.75);
    let iqr = q75 - q25;
    let lo = q25 - 1.5 * iqr;
    let hi = q75 + 1.5 * iqr;
    xs.iter().partition(|&&x| (lo..=hi).contains(&x))
}

/// A robust summary of one sample set, computed over the
/// outlier-rejected samples (the rejected count is reported, never
/// silently dropped).
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Samples given.
    pub n: usize,
    /// Samples rejected by the IQR fences.
    pub rejected: usize,
    /// Median of the kept samples.
    pub median: f64,
    /// MAD of the kept samples.
    pub mad: f64,
    /// 25% / 75% quantiles of the kept samples.
    pub q25: f64,
    pub q75: f64,
    /// Extremes of the kept samples.
    pub min: f64,
    pub max: f64,
}

impl Summary {
    /// Summarizes `xs` after IQR outlier rejection. Returns `None` on
    /// an empty slice.
    pub fn of(xs: &[f64]) -> Option<Summary> {
        if xs.is_empty() {
            return None;
        }
        let (kept, rejected) = iqr_partition(xs);
        let v = sorted(&kept);
        Some(Summary {
            n: xs.len(),
            rejected: rejected.len(),
            median: median(&v),
            mad: mad(&v),
            q25: quantile(&v, 0.25),
            q75: quantile(&v, 0.75),
            min: v[0],
            max: v[v.len() - 1],
        })
    }

    /// The MAD expressed as a normal-equivalent standard deviation.
    pub fn sigma(&self) -> f64 {
        self.mad * MAD_TO_SIGMA
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuba_pds::rng::SplitMix64;

    #[test]
    fn quantiles_interpolate() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert_eq!(median(&xs), 2.5);
        assert_eq!(quantile(&xs, 0.25), 1.75);
        assert_eq!(quantile(&xs, 0.75), 3.25);
        // Order must not matter.
        assert_eq!(median(&[3.0, 1.0, 4.0, 2.0]), 2.5);
        // Singleton and empty edges.
        assert_eq!(median(&[7.0]), 7.0);
        assert!(median(&[]).is_nan());
    }

    #[test]
    fn mad_is_robust_to_one_outlier() {
        let clean = [10.0, 11.0, 12.0, 13.0, 14.0];
        let spiked = [10.0, 11.0, 12.0, 13.0, 10_000.0];
        assert_eq!(mad(&clean), 1.0);
        // The spike moves the MAD by at most one rank step, never to
        // the outlier's scale (a standard deviation would be ≈ 4000).
        assert!(mad(&spiked) <= 2.0, "mad = {}", mad(&spiked));
        assert_eq!(mad(&[5.0]), 0.0);
    }

    #[test]
    fn iqr_rejects_planted_outliers() {
        // A tight cluster plus two wild stalls: the fences must drop
        // exactly the stalls.
        let xs = [100.0, 101.0, 99.0, 102.0, 98.0, 100.5, 950.0, 1200.0];
        let (kept, rejected) = iqr_partition(&xs);
        assert_eq!(kept.len(), 6);
        assert_eq!(rejected.len(), 2);
        assert!(rejected.contains(&950.0) && rejected.contains(&1200.0));
        // Tiny sample sets are never filtered.
        let (kept, rejected) = iqr_partition(&[1.0, 1000.0, 2.0]);
        assert_eq!(kept.len(), 3);
        assert!(rejected.is_empty());
    }

    /// On a SplitMix64-generated uniform distribution the estimators
    /// must land where the closed forms say: median ≈ 0.5, quartiles
    /// ≈ 0.25/0.75, MAD ≈ 0.25 for U(0,1).
    #[test]
    fn uniform_distribution_estimates() {
        let mut rng = SplitMix64::new(0xC0FFEE);
        let xs: Vec<f64> = (0..4000).map(|_| rng.gen_f64()).collect();
        assert!((median(&xs) - 0.5).abs() < 0.03, "median {}", median(&xs));
        assert!((quantile(&xs, 0.25) - 0.25).abs() < 0.03);
        assert!((quantile(&xs, 0.75) - 0.75).abs() < 0.03);
        assert!((mad(&xs) - 0.25).abs() < 0.03, "mad {}", mad(&xs));
        // A uniform sample has no Tukey outliers (IQR ≈ 0.5, fences
        // beyond [−0.5, 1.5]).
        let (_, rejected) = iqr_partition(&xs);
        assert!(rejected.is_empty());
    }

    /// A contaminated SplitMix64 sample: 5% of the mass pushed out to
    /// 100×. The summary's median/MAD must stay at the clean scale and
    /// the rejection count must match the contamination.
    #[test]
    fn summary_over_contaminated_samples() {
        let mut rng = SplitMix64::new(42);
        let xs: Vec<f64> = (0..400)
            .map(|i| {
                let base = 1000.0 + 10.0 * rng.gen_f64();
                if i % 20 == 0 {
                    base * 100.0
                } else {
                    base
                }
            })
            .collect();
        let s = Summary::of(&xs).unwrap();
        assert_eq!(s.n, 400);
        assert_eq!(s.rejected, 20, "exactly the planted 5%");
        assert!((1000.0..1010.0).contains(&s.median), "median {}", s.median);
        assert!(s.mad < 10.0, "mad {}", s.mad);
        assert!(s.max < 1011.0, "outliers kept: max {}", s.max);
        assert!(s.sigma() >= s.mad);
        assert!(Summary::of(&[]).is_none());
    }
}
