//! The `cuba tune` sweep: searches the [`FrontierConfig`]
//! neighborhood for a tuning that verifies the whole bench suite in
//! fewer live exploration rounds (wall time as the tie-break) without
//! changing a single verdict.
//!
//! The search is a deterministic coordinate descent over five knobs:
//! the four scheduler knobs the ROADMAP names (window, bonus turns,
//! lead cap, balloon ratio) plus the saturation thread count the
//! sharded backend added: starting from the defaults, each pass sweeps one
//! axis at a time and adopts a candidate only when it is *strictly*
//! better under the lexicographic score `(total live rounds, total
//! wall)` **and** its per-workload verdicts are identical to the
//! default configuration's. The default config is the first candidate
//! evaluated, so the emitted profile can never be worse than the
//! shipped defaults — at the very worst it *is* the defaults.
//!
//! The sweep is generic over an evaluation closure, so the adoption
//! logic is unit-testable without running the (seconds-long) suite.

use cuba_core::{
    fingerprint, FrontierConfig, LearnedProfile, Portfolio, ProbeRecord, ProfileMap,
    SchedulePolicy, SessionConfig, SuiteCache,
};
use cuba_pds::Cpds;

use crate::harness::{bench_config, bench_suite, run_iteration, verdict_word};
use crate::stats;

/// How `cuba tune` searches.
#[derive(Debug, Clone)]
pub struct TunePlan {
    /// Measured suite iterations per candidate.
    pub samples: usize,
    /// Unmeasured iterations before the sweep (shared by all
    /// candidates; the suite binary is warm after the first).
    pub warmup: usize,
    /// Problems in flight per iteration.
    pub workers: usize,
    /// Coordinate-descent passes over the five axes.
    pub passes: usize,
}

impl Default for TunePlan {
    fn default() -> Self {
        TunePlan {
            samples: 1,
            warmup: 1,
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            passes: 1,
        }
    }
}

/// One candidate's measured outcome.
#[derive(Debug, Clone)]
pub struct CandidateEval {
    /// The tuning measured.
    pub config: FrontierConfig,
    /// `(label, verdict)` per workload, in suite order — the
    /// signature that must stay byte-identical to the defaults'.
    pub verdicts: Vec<(String, String)>,
    /// Total live exploration rounds over the suite (mean across
    /// samples). The primary score: live rounds are the work the
    /// scheduler can actually save.
    pub live_rounds: f64,
    /// Total per-workload median `round_wall_us` over the suite
    /// (error rows contribute nothing). The tie-break.
    pub wall_us: f64,
}

impl CandidateEval {
    /// Lexicographic score: fewer live rounds first, wall second.
    fn score(&self) -> (f64, f64) {
        (self.live_rounds, self.wall_us)
    }
}

/// The sweep's result.
#[derive(Debug, Clone)]
pub struct TuneOutcome {
    /// The winning tuning.
    pub best: CandidateEval,
    /// The default configuration's measurement (the baseline the
    /// winner had to beat — or equal, if nothing beat it).
    pub default_eval: CandidateEval,
    /// Candidates evaluated, default included.
    pub evaluated: usize,
}

impl TuneOutcome {
    /// Whether the sweep found anything better than the defaults.
    pub fn improved(&self) -> bool {
        self.best.config != self.default_eval.config
    }
}

/// The candidate values swept per axis (the current value is skipped
/// when revisited). Neighborhoods around the shipped defaults.
const WINDOWS: &[usize] = &[2, 3, 4, 5];
const BONUS_TURNS: &[usize] = &[1, 2, 3, 4, 6];
const MAX_LEADS: &[usize] = &[3, 4, 6, 8, 12];
const BALLOON_RATIOS: &[f64] = &[3.0, 6.0, 8.0, 12.0, 24.0];
/// Saturation worker threads (0 = auto): verdict-neutral by
/// construction, so only the score can move.
const THREADS: &[usize] = &[0, 1, 2, 4, 8];

/// Applies axis `axis` value `index` to `config`, returning `None`
/// past the end of the axis.
fn candidate(config: &FrontierConfig, axis: usize, index: usize) -> Option<FrontierConfig> {
    let mut next = config.clone();
    match axis {
        0 => next.window = *WINDOWS.get(index)?,
        1 => next.bonus_turns = *BONUS_TURNS.get(index)?,
        2 => next.max_lead = *MAX_LEADS.get(index)?,
        3 => next.balloon_ratio = *BALLOON_RATIOS.get(index)?,
        4 => next.threads = *THREADS.get(index)?,
        _ => return None,
    }
    Some(next)
}

/// Runs the coordinate descent from `start`, measuring candidates
/// through `evaluate`. Adoption requires identical verdicts to the
/// *start* configuration's evaluation and a strictly better score, so
/// the result is never worse than `start`. Evaluations are memoized
/// by config and the pass loop stops as soon as a full pass adopts
/// nothing, so extra `--passes` never re-measure a converged
/// landscape.
pub fn sweep(
    start: FrontierConfig,
    passes: usize,
    evaluate: &mut dyn FnMut(&FrontierConfig) -> CandidateEval,
) -> TuneOutcome {
    let default_eval = evaluate(&start);
    let mut best = default_eval.clone();
    // Every evaluation is a full suite run, so never measure the same
    // config twice: later passes revisit axis values around an
    // incumbent that may not have moved.
    let mut seen: Vec<CandidateEval> = vec![default_eval.clone()];
    for _ in 0..passes.max(1) {
        let before = best.config.clone();
        for axis in 0..5 {
            let mut index = 0;
            while let Some(next) = candidate(&best.config, axis, index) {
                index += 1;
                if next == best.config {
                    continue;
                }
                let eval = match seen.iter().find(|e| e.config == next) {
                    Some(eval) => eval.clone(),
                    None => {
                        let eval = evaluate(&next);
                        seen.push(eval.clone());
                        eval
                    }
                };
                if eval.verdicts != default_eval.verdicts {
                    continue; // a tuning that changes answers is out
                }
                if eval.score() < best.score() {
                    best = eval;
                }
            }
        }
        if best.config == before {
            break; // converged: a further pass would change nothing
        }
    }
    TuneOutcome {
        best,
        default_eval,
        evaluated: seen.len(),
    }
}

/// Measures one [`FrontierConfig`] over the bench suite: `samples`
/// fresh-cache iterations, verdicts from the first, live rounds
/// averaged, wall as the sum of per-workload medians.
pub fn evaluate_on_suite(config: &FrontierConfig, samples: usize, workers: usize) -> CandidateEval {
    evaluate_problems(config, &bench_suite(), samples, workers)
}

/// [`evaluate_on_suite`] over an explicit workload list.
pub fn evaluate_problems(
    config: &FrontierConfig,
    problems: &[(String, cuba_pds::Cpds, cuba_core::Property)],
    samples: usize,
    workers: usize,
) -> CandidateEval {
    let portfolio =
        Portfolio::auto().with_config(bench_config(SchedulePolicy::FrontierAware(config.clone())));
    let mut verdicts: Vec<(String, String)> = Vec::new();
    let mut live_rounds_total = 0.0;
    let mut wall: Vec<Vec<f64>> = vec![Vec::new(); problems.len()];
    for sample in 0..samples.max(1) {
        let (results, _) = run_iteration(&portfolio, problems, workers);
        for (i, ((label, _, _), result)) in problems.iter().zip(&results).enumerate() {
            let verdict = verdict_word(result);
            if sample == 0 {
                verdicts.push((label.clone(), verdict));
            }
            if let Ok(outcome) = result {
                live_rounds_total += outcome.rounds_explored as f64;
                wall[i].push(outcome.round_wall.as_micros() as f64);
            }
        }
    }
    CandidateEval {
        config: config.clone(),
        verdicts,
        live_rounds: live_rounds_total / samples.max(1) as f64,
        wall_us: wall
            .iter()
            .filter(|samples| !samples.is_empty())
            .map(|samples| stats::median(samples))
            .sum(),
    }
}

/// Runs the whole `cuba tune` sweep over the real suite.
pub fn run(plan: &TunePlan) -> TuneOutcome {
    // Warm the process once; candidates after the first inherit it.
    let warm = Portfolio::auto().with_config(bench_config(SchedulePolicy::default()));
    let problems = bench_suite();
    for _ in 0..plan.warmup {
        let _ = run_iteration(&warm, &problems, plan.workers);
    }
    let mut evaluated = 0usize;
    sweep(FrontierConfig::default(), plan.passes, &mut |config| {
        evaluated += 1;
        let start = std::time::Instant::now();
        let eval = evaluate_on_suite(config, plan.samples, plan.workers);
        eprintln!(
            "candidate {evaluated}: window={} bonus={} lead={} balloon={} threads={} -> \
             {:.0} live rounds, {:.1}ms wall ({:.2}s)",
            config.window,
            config.bonus_turns,
            config.max_lead,
            config.balloon_ratio,
            config.threads,
            eval.live_rounds,
            eval.wall_us / 1000.0,
            start.elapsed().as_secs_f64(),
        );
        eval
    })
}

/// The probe's budget, shared by `cuba tune --probe`, `cuba tune
/// --emit-map` and the online `--profile-map` path: a single
/// coordinate-descent pass with one sample per candidate. Cheap by
/// construction — with the candidates replaying one shared
/// exploration, the budget bounds scheduler turns, not saturations.
pub const PROBE_PASSES: usize = 1;
/// See [`PROBE_PASSES`].
pub const PROBE_SAMPLES: usize = 1;

/// Measures one [`FrontierConfig`] over `problems` through a
/// caller-owned **warm** [`SuiteCache`] under the `base` session
/// limits: every candidate replays the layers the first run of each
/// system explored, so an evaluation never re-saturates anything.
///
/// Because the layers are shared, live rounds alone would credit
/// whichever candidate happened to run later; the probe therefore
/// scores by **total scheduler rounds** (explored + replayed — the
/// turns the schedule actually spent reaching its verdicts), carried
/// in `live_rounds` with `round_wall` as the tie-break.
pub fn evaluate_problems_cached(
    config: &FrontierConfig,
    problems: &[(String, Cpds, cuba_core::Property)],
    workers: usize,
    cache: &SuiteCache,
    base: &SessionConfig,
) -> CandidateEval {
    let session = SessionConfig {
        schedule: SchedulePolicy::FrontierAware(config.clone()),
        ..base.clone()
    };
    let portfolio = Portfolio::auto().with_config(session);
    let batch: Vec<(Cpds, cuba_core::Property)> = problems
        .iter()
        .map(|(_, cpds, property)| (cpds.clone(), property.clone()))
        .collect();
    let results = portfolio.run_suite_cached(batch, workers, cache);
    let mut verdicts = Vec::new();
    let mut turns = 0.0;
    let mut wall_us = 0.0;
    for ((label, _, _), result) in problems.iter().zip(&results) {
        verdicts.push((label.clone(), verdict_word(result)));
        if let Ok(outcome) = result {
            turns += (outcome.rounds_explored + outcome.rounds_replayed) as f64;
            wall_us += outcome.round_wall.as_micros() as f64;
        }
    }
    CandidateEval {
        config: config.clone(),
        verdicts,
        live_rounds: turns,
        wall_us,
    }
}

/// The cheap tuning probe: a [`PROBE_PASSES`]-pass [`sweep`] whose
/// candidates all replay one shared exploration through `cache` (see
/// [`evaluate_problems_cached`]). The cache is warmed with one
/// unmeasured default-config run first so the default — always the
/// first candidate — replays exactly like its competitors instead of
/// paying for the initial saturation on the clock.
///
/// The adoption invariant is [`sweep`]'s: the winner's verdicts are
/// byte-identical to the default config's, or the winner *is* the
/// default.
pub fn probe_problems(
    problems: &[(String, Cpds, cuba_core::Property)],
    workers: usize,
    cache: &SuiteCache,
    base: &SessionConfig,
) -> TuneOutcome {
    let _ = evaluate_problems_cached(&FrontierConfig::default(), problems, workers, cache, base);
    sweep(FrontierConfig::default(), PROBE_PASSES, &mut |config| {
        evaluate_problems_cached(config, problems, workers, cache, base)
    })
}

/// `cuba tune --probe`: the same probe the online path runs, applied
/// to the whole bench suite through one long-lived cache.
pub fn run_probe(plan: &TunePlan) -> TuneOutcome {
    let problems = bench_suite();
    let cache = SuiteCache::new();
    let base = bench_config(SchedulePolicy::default());
    let start = std::time::Instant::now();
    let outcome = probe_problems(&problems, plan.workers, &cache, &base);
    eprintln!(
        "probe: {} candidates over {} workloads in {:.2}s",
        outcome.evaluated,
        problems.len(),
        start.elapsed().as_secs_f64(),
    );
    outcome
}

/// Probes every fingerprint in `problems` the map has not learned yet
/// and records the winners, grouping the workloads by system so one
/// probe tunes over all of a system's properties at once. Returns the
/// number of probes run.
///
/// Concurrent callers coordinate through the map's probe gate
/// ([`ProfileMap::try_begin_probe`]): exactly one caller probes a
/// given fingerprint, the rest proceed on their fallback schedule and
/// pick the learned profile up on their next session.
pub fn ensure_profiles(
    map: &ProfileMap,
    problems: &[(String, Cpds, cuba_core::Property)],
    workers: usize,
    cache: &SuiteCache,
    base: &SessionConfig,
) -> usize {
    // Group by fingerprint, preserving first-seen order.
    type Group<'a> = (u64, Vec<&'a (String, Cpds, cuba_core::Property)>);
    let mut groups: Vec<Group<'_>> = Vec::new();
    for problem in problems {
        let fp = fingerprint(&problem.1);
        match groups.iter_mut().find(|(known, _)| *known == fp) {
            Some((_, group)) => group.push(problem),
            None => groups.push((fp, vec![problem])),
        }
    }
    let mut probes = 0usize;
    for (fp, group) in groups {
        let cpds = &group[0].1;
        if map.lookup(cpds).is_some() {
            continue;
        }
        let Some(_guard) = map.try_begin_probe(fp) else {
            continue; // another thread is probing this fingerprint
        };
        let mut probe_span =
            cuba_telemetry::trace::span_args("probe", vec![("fingerprint", fp.into())]);
        let group: Vec<(String, Cpds, cuba_core::Property)> = group.into_iter().cloned().collect();
        let outcome = probe_problems(&group, workers, cache, base);
        probe_span.arg("rounds", outcome.best.live_rounds.round() as u64);
        drop(probe_span);
        probes += 1;
        map.learn(
            cpds,
            LearnedProfile {
                config: outcome.best.config.clone(),
                probe: ProbeRecord {
                    rounds: outcome.best.live_rounds,
                    wall_us: outcome.best.wall_us,
                    samples: PROBE_SAMPLES,
                    tuned_at_k: base.max_k,
                },
            },
        );
    }
    probes
}

/// `cuba tune --emit-map`: seeds a fresh [`ProfileMap`] by probing
/// every distinct system of the full bench suite. Returns the map and
/// the number of probes run (= distinct fingerprints).
pub fn seed_map(plan: &TunePlan) -> (ProfileMap, usize) {
    let map = ProfileMap::new();
    let problems = bench_suite();
    let cache = SuiteCache::new();
    let base = bench_config(SchedulePolicy::default());
    let probes = ensure_profiles(&map, &problems, plan.workers, &cache, &base);
    (map, probes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval(config: &FrontierConfig, rounds: f64, wall: f64) -> CandidateEval {
        CandidateEval {
            config: config.clone(),
            verdicts: vec![("w".into(), "safe".into())],
            live_rounds: rounds,
            wall_us: wall,
        }
    }

    /// The sweep never adopts a candidate whose verdicts differ from
    /// the default run's, however good its score.
    #[test]
    fn verdict_changes_are_never_adopted() {
        let outcome = sweep(FrontierConfig::default(), 2, &mut |config| {
            if *config == FrontierConfig::default() {
                eval(config, 100.0, 1000.0)
            } else {
                // Every non-default candidate is "faster" but flips a
                // verdict.
                CandidateEval {
                    verdicts: vec![("w".into(), "unsafe".into())],
                    ..eval(config, 1.0, 1.0)
                }
            }
        });
        assert_eq!(outcome.best.config, FrontierConfig::default());
        assert!(!outcome.improved());
        assert!(outcome.evaluated > 1, "candidates were tried");
    }

    /// Adoption is strictly-better on the lexicographic (rounds,
    /// wall) score: ties keep the incumbent, so the winner's live
    /// rounds are always ≤ the defaults'.
    #[test]
    fn adoption_is_strictly_better_and_monotone() {
        // Score by window only: window 2 is best on rounds; ties on
        // rounds fall to wall.
        let outcome = sweep(FrontierConfig::default(), 1, &mut |config| {
            let rounds = match config.window {
                2 => 80.0,
                3 => 100.0,
                _ => 120.0,
            };
            // max_lead 4 saves wall at equal rounds.
            let wall = if config.max_lead == 4 { 500.0 } else { 900.0 };
            eval(config, rounds, wall)
        });
        assert!(outcome.improved());
        assert_eq!(outcome.best.config.window, 2);
        assert_eq!(outcome.best.config.max_lead, 4);
        assert!(outcome.best.live_rounds <= outcome.default_eval.live_rounds);
        // Untouched axes keep their defaults.
        assert_eq!(
            outcome.best.config.park_floor,
            FrontierConfig::default().park_floor
        );
    }

    /// A flat landscape: nothing beats the default, the sweep returns
    /// it unchanged (ties are not adopted) — and converges after one
    /// pass without ever measuring the same config twice, however
    /// many passes were requested (every evaluation is a full suite
    /// run).
    #[test]
    fn flat_landscape_keeps_defaults_without_remeasuring() {
        let mut calls = 0usize;
        let outcome = sweep(FrontierConfig::default(), 5, &mut |config| {
            calls += 1;
            eval(config, 42.0, 42.0)
        });
        assert_eq!(outcome.best.config, FrontierConfig::default());
        assert_eq!(outcome.best.live_rounds, outcome.default_eval.live_rounds);
        // Default + the off-incumbent values of the five axes, once
        // each: 1 + 3 + 4 + 4 + 4 + 4. Passes 2..5 run from cache and
        // the convergence check stops the loop.
        assert_eq!(calls, 20, "re-measured an already-seen config");
        assert_eq!(outcome.evaluated, calls);
    }

    /// The probe (single pass, probe budget) and the full sweep pick
    /// the same winner for fig1 when both read the same measurements —
    /// the satellite guarantee that `--probe`'s cheap pass is not a
    /// different optimizer, just a shorter one. Measurements are
    /// memoized per config and scored on turns alone (wall zeroed) so
    /// the agreement check is about descent behavior, not timer noise.
    #[test]
    fn probe_agrees_with_full_sweep_on_fig1() {
        let problems: Vec<_> = bench_suite()
            .into_iter()
            .filter(|(label, _, _)| label.starts_with("fig1-multi/"))
            .collect();
        let cache = SuiteCache::new();
        let base = bench_config(SchedulePolicy::default());
        // Warm once, as probe_problems does, so the first candidate
        // replays like the rest.
        let _ = evaluate_problems_cached(&FrontierConfig::default(), &problems, 2, &cache, &base);
        let mut seen: Vec<CandidateEval> = Vec::new();
        let mut measure = |config: &FrontierConfig| -> CandidateEval {
            if let Some(eval) = seen.iter().find(|e| e.config == *config) {
                return eval.clone();
            }
            let mut eval = evaluate_problems_cached(config, &problems, 2, &cache, &base);
            eval.wall_us = 0.0;
            seen.push(eval.clone());
            eval
        };
        let probe = sweep(FrontierConfig::default(), PROBE_PASSES, &mut measure);
        let full = sweep(FrontierConfig::default(), 3, &mut measure);
        assert_eq!(probe.best.config, full.best.config);
        assert_eq!(probe.best.verdicts, full.best.verdicts);
        assert!(probe
            .best
            .verdicts
            .iter()
            .any(|(label, verdict)| label == "fig1-multi/p1-bug" && verdict == "unsafe"));
    }

    /// `ensure_profiles` probes each distinct fingerprint exactly once
    /// — repeats and extra properties of a known system are map hits —
    /// and the learned profile's probe verdicts match the default's by
    /// the sweep invariant.
    #[test]
    fn ensure_profiles_probes_each_fingerprint_once() {
        let problems: Vec<_> = bench_suite()
            .into_iter()
            .filter(|(label, _, _)| label.starts_with("fig1-multi/"))
            .collect();
        let map = ProfileMap::new();
        let cache = SuiteCache::new();
        let base = bench_config(SchedulePolicy::default());
        assert_eq!(ensure_profiles(&map, &problems, 2, &cache, &base), 1);
        assert_eq!(map.len(), 1);
        assert_eq!(ensure_profiles(&map, &problems, 2, &cache, &base), 0);
        let learned = map.lookup_profile(&problems[0].1).expect("learned");
        assert_eq!(learned.probe.tuned_at_k, base.max_k);
        assert!(learned.probe.rounds > 0.0);
    }

    /// One real (tiny) evaluation over the fig1-multi block (the full
    /// suite is seconds per iteration in a debug build; the CI bench
    /// job runs the real sweep in release): the verdict signature
    /// covers every workload and the scores are positive.
    #[test]
    fn evaluate_measures_real_verdicts() {
        let problems: Vec<_> = bench_suite()
            .into_iter()
            .filter(|(label, _, _)| label.starts_with("fig1-multi/"))
            .collect();
        let eval = evaluate_problems(&FrontierConfig::default(), &problems, 1, 4);
        assert_eq!(eval.verdicts.len(), problems.len());
        assert!(eval
            .verdicts
            .iter()
            .any(|(label, verdict)| label == "fig1-multi/p1-bug" && verdict == "unsafe"));
        assert!(eval.live_rounds > 0.0);
        assert!(eval.wall_us > 0.0);
    }
}
