//! Noise-aware comparison of two bench records (`cuba bench
//! --compare`): the statistical replacement for the old single-sample
//! `>5× AND >0.5s` timing heuristic.
//!
//! A workload regresses only when **all three** of these hold, so the
//! gate is deterministic on noisy runners:
//!
//! 1. its current median exceeds `ratio ×` the baseline median
//!    (medians of IQR-filtered samples, not raw single measurements),
//! 2. the absolute difference exceeds `mad_sigmas` normal-equivalent
//!    sigmas of the *larger* side's MAD (run-to-run noise measured
//!    from the samples themselves), and
//! 3. the absolute difference exceeds a hard floor
//!    (`abs_floor_us`), so microsecond workloads can never flake.
//!
//! Improvement is the mirror image. Verdicts are compared exactly:
//! an `error` row matches an `error` row (the committed baseline's
//! `stefan-1/8` exhausts its symbolic budget by design), an `error`
//! on one side only is a hard gate failure, and timing fields are
//! **never** read from error rows — they have none.

use crate::stats::{Summary, MAD_TO_SIGMA};
use crate::{json_escape, json_unescape, render_table};

/// One workload as scanned from a `BENCH_*.json` record line. Error
/// rows (and rows from pre-sampling records without timing fields)
/// have an empty `samples_us`.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Workload label.
    pub label: String,
    /// `safe` / `unsafe` / `undetermined` / `error`.
    pub verdict: String,
    /// Timing samples, microseconds. A single-sample legacy record
    /// (only `round_wall_us`) becomes a one-element vector.
    pub samples_us: Vec<f64>,
}

/// Extracts the records from a `BENCH_*.json` file (one JSON object
/// per line; the workspace builds offline, so the reader is
/// hand-rolled like the writer). Reads both the sampled format
/// (`samples_us` arrays) and the legacy single-sample format
/// (`round_wall_us` only). Timing fields of error rows are never
/// consulted, even if present.
pub fn parse_records(text: &str) -> Vec<BenchRecord> {
    text.lines()
        .filter_map(|line| {
            let label = extract_string(line, "label")?;
            let verdict = extract_string(line, "verdict")?;
            let samples_us = if verdict == "error" {
                Vec::new()
            } else if let Some(samples) = extract_number_array(line, "samples_us") {
                samples
            } else {
                extract_number(line, "round_wall_us")
                    .map(|v| vec![v])
                    .unwrap_or_default()
            };
            Some(BenchRecord {
                label,
                verdict,
                samples_us,
            })
        })
        .collect()
}

/// Pulls the string value of `"key":"…"` out of one JSON line,
/// decoding escapes — a problem name may contain quotes or
/// backslashes, so the scanner must invert
/// [`json_escape`] rather than stop at the first
/// `"`.
pub fn extract_string(line: &str, key: &str) -> Option<String> {
    let marker = format!("{}:", json_escape(key));
    let start = line.find(&marker)? + marker.len();
    json_unescape(&line[start..]).map(|(value, _)| value)
}

/// Pulls the numeric value of `"key":N` out of one JSON line.
pub fn extract_number(line: &str, key: &str) -> Option<f64> {
    let marker = format!("{}:", json_escape(key));
    let start = line.find(&marker)? + marker.len();
    parse_leading_number(&line[start..])
}

/// Pulls the numeric array value of `"key":[N,N,…]` out of one JSON
/// line. `None` when the key is missing or not an array.
pub fn extract_number_array(line: &str, key: &str) -> Option<Vec<f64>> {
    let marker = format!("{}:", json_escape(key));
    let start = line.find(&marker)? + marker.len();
    let rest = line[start..].strip_prefix('[')?;
    let end = rest.find(']')?;
    let body = rest[..end].trim();
    if body.is_empty() {
        return Some(Vec::new());
    }
    body.split(',')
        .map(|cell| parse_leading_number(cell.trim()))
        .collect()
}

fn parse_leading_number(rest: &str) -> Option<f64> {
    let end = rest
        .find(|c: char| !c.is_ascii_digit() && !matches!(c, '.' | '-' | '+' | 'e' | 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// The gate's significance thresholds. A difference must clear *all*
/// of them to classify as improved/regressed.
#[derive(Debug, Clone, PartialEq)]
pub struct Thresholds {
    /// Required median ratio: current vs baseline (or the inverse for
    /// improvement). Kept generous by default because the committed
    /// baseline and a CI runner are different machines.
    pub ratio: f64,
    /// Required distance in normal-equivalent sigmas of the larger
    /// side's MAD — the noise-awareness: a workload whose samples are
    /// themselves spread over a wide band needs a wider band to count.
    pub mad_sigmas: f64,
    /// Hard absolute floor, microseconds: sub-millisecond workloads
    /// can never flake the gate on scheduler noise.
    pub abs_floor_us: f64,
}

impl Default for Thresholds {
    fn default() -> Self {
        Thresholds {
            ratio: 4.0,
            mad_sigmas: 8.0,
            abs_floor_us: 250_000.0,
        }
    }
}

/// Timing classification of one workload whose verdicts match.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimingClass {
    /// Significantly slower than the baseline.
    Regressed,
    /// Significantly faster than the baseline.
    Improved,
    /// Within the noise thresholds.
    Unchanged,
    /// No samples on at least one side (legacy record without timing
    /// fields): nothing to compare, never a failure.
    NoData,
}

/// What became of one workload between baseline and current.
#[derive(Debug, Clone, PartialEq)]
pub enum RowStatus {
    /// Verdicts match and both rows measured: a timing class.
    Timing(TimingClass),
    /// Both sides errored: unchanged by definition (no timings read).
    ErrorBoth,
    /// The verdicts differ — including `error` on exactly one side,
    /// which is always a hard failure.
    VerdictChanged {
        /// Baseline verdict.
        baseline: String,
        /// Current verdict.
        current: String,
    },
    /// In the current record only.
    New,
    /// In the baseline only.
    Missing,
}

/// One workload's comparison.
#[derive(Debug, Clone)]
pub struct RowComparison {
    /// Workload label.
    pub label: String,
    /// The classification.
    pub status: RowStatus,
    /// Median of the baseline samples (IQR-filtered), if measured.
    pub baseline_us: Option<f64>,
    /// Median of the current samples (IQR-filtered), if measured.
    pub current_us: Option<f64>,
    /// The noise guard actually applied, microseconds: the MAD-sigma
    /// band or the absolute floor, whichever was larger.
    pub guard_us: f64,
}

impl RowComparison {
    /// Whether this row fails the gate.
    pub fn fails_gate(&self) -> bool {
        matches!(
            self.status,
            RowStatus::Timing(TimingClass::Regressed)
                | RowStatus::VerdictChanged { .. }
                | RowStatus::New
                | RowStatus::Missing
        )
    }

    /// Whether this row fails on the verdict axis alone (ignoring
    /// timing) — the always-on part of the gate.
    pub fn fails_verdicts(&self) -> bool {
        matches!(
            self.status,
            RowStatus::VerdictChanged { .. } | RowStatus::New | RowStatus::Missing
        )
    }
}

/// The full comparison of two records.
#[derive(Debug, Clone)]
pub struct CompareReport {
    /// Per-workload comparisons: current-record order, then baselines
    /// gone missing.
    pub rows: Vec<RowComparison>,
    /// The thresholds applied.
    pub thresholds: Thresholds,
}

impl CompareReport {
    /// Whether the full gate (verdicts + timing) passes.
    pub fn gate_ok(&self) -> bool {
        self.rows.iter().all(|r| !r.fails_gate())
    }

    /// Whether the verdict-only gate passes (timing ignored) — what
    /// `batch --baseline` enforces.
    pub fn verdicts_ok(&self) -> bool {
        self.rows.iter().all(|r| !r.fails_verdicts())
    }

    /// The classification word per row, label first — the stable
    /// signature two consecutive runs must agree on.
    pub fn classifications(&self) -> Vec<(String, &'static str)> {
        self.rows
            .iter()
            .map(|r| (r.label.clone(), class_word(&r.status)))
            .collect()
    }

    /// Renders the human-readable report table.
    pub fn render(&self) -> String {
        let fmt_us = |us: Option<f64>| match us {
            Some(us) if us >= 10_000.0 => format!("{:.1}ms", us / 1000.0),
            Some(us) => format!("{us:.0}us"),
            None => "-".to_owned(),
        };
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                let change = match (r.baseline_us, r.current_us) {
                    (Some(b), Some(c)) if b > 0.0 => {
                        format!("{:+.1}%", 100.0 * (c - b) / b)
                    }
                    _ => "-".to_owned(),
                };
                let (b, c) = match r.status {
                    RowStatus::ErrorBoth => ("error".to_owned(), "error".to_owned()),
                    _ => (fmt_us(r.baseline_us), fmt_us(r.current_us)),
                };
                let mut detail = class_word(&r.status).to_owned();
                if let RowStatus::VerdictChanged { baseline, current } = &r.status {
                    detail = format!("VERDICT {baseline} -> {current}");
                }
                if matches!(
                    r.status,
                    RowStatus::Timing(TimingClass::Regressed | TimingClass::Improved)
                ) {
                    detail.push_str(&format!(" (guard {:.0}us)", r.guard_us));
                }
                vec![r.label.clone(), b, c, change, detail]
            })
            .collect();
        render_table(
            &["workload", "baseline", "current", "change", "class"],
            &rows,
        )
    }
}

/// The one-word classification of a row status.
pub fn class_word(status: &RowStatus) -> &'static str {
    match status {
        RowStatus::Timing(TimingClass::Regressed) => "regressed",
        RowStatus::Timing(TimingClass::Improved) => "improved",
        RowStatus::Timing(TimingClass::Unchanged) => "unchanged",
        RowStatus::Timing(TimingClass::NoData) => "no-data",
        RowStatus::ErrorBoth => "unchanged",
        RowStatus::VerdictChanged { .. } => "verdict-changed",
        RowStatus::New => "new",
        RowStatus::Missing => "missing",
    }
}

/// Classifies one matched, non-error workload's timing.
fn classify_timing(
    baseline: &[f64],
    current: &[f64],
    th: &Thresholds,
) -> (TimingClass, Option<f64>, Option<f64>, f64) {
    let (Some(b), Some(c)) = (Summary::of(baseline), Summary::of(current)) else {
        return (
            TimingClass::NoData,
            Summary::of(baseline).map(|s| s.median),
            Summary::of(current).map(|s| s.median),
            th.abs_floor_us,
        );
    };
    // The noise band: the wider side's run-to-run spread, expressed
    // in sigmas, but never below the hard floor.
    let noise = th.mad_sigmas * MAD_TO_SIGMA * b.mad.max(c.mad);
    let guard = noise.max(th.abs_floor_us);
    let class = if c.median > b.median * th.ratio && c.median - b.median > guard {
        TimingClass::Regressed
    } else if b.median > c.median * th.ratio && b.median - c.median > guard {
        TimingClass::Improved
    } else {
        TimingClass::Unchanged
    };
    (class, Some(b.median), Some(c.median), guard)
}

/// Compares `current` against `baseline` under `thresholds`.
pub fn compare(
    baseline: &[BenchRecord],
    current: &[BenchRecord],
    thresholds: &Thresholds,
) -> CompareReport {
    let mut rows = Vec::new();
    for cur in current {
        let Some(base) = baseline.iter().find(|b| b.label == cur.label) else {
            rows.push(RowComparison {
                label: cur.label.clone(),
                status: RowStatus::New,
                baseline_us: None,
                current_us: None,
                guard_us: 0.0,
            });
            continue;
        };
        let base_error = base.verdict == "error";
        let cur_error = cur.verdict == "error";
        let row = if base_error && cur_error {
            // error ↔ error is unchanged; timings are never read.
            RowComparison {
                label: cur.label.clone(),
                status: RowStatus::ErrorBoth,
                baseline_us: None,
                current_us: None,
                guard_us: 0.0,
            }
        } else if base.verdict != cur.verdict {
            // Includes error on exactly one side: a hard failure.
            RowComparison {
                label: cur.label.clone(),
                status: RowStatus::VerdictChanged {
                    baseline: base.verdict.clone(),
                    current: cur.verdict.clone(),
                },
                baseline_us: None,
                current_us: None,
                guard_us: 0.0,
            }
        } else {
            let (class, b, c, guard) =
                classify_timing(&base.samples_us, &cur.samples_us, thresholds);
            RowComparison {
                label: cur.label.clone(),
                status: RowStatus::Timing(class),
                baseline_us: b,
                current_us: c,
                guard_us: guard,
            }
        };
        rows.push(row);
    }
    for base in baseline {
        if !current.iter().any(|c| c.label == base.label) {
            rows.push(RowComparison {
                label: base.label.clone(),
                status: RowStatus::Missing,
                baseline_us: None,
                current_us: None,
                guard_us: 0.0,
            });
        }
    }
    CompareReport {
        rows,
        thresholds: thresholds.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(label: &str, verdict: &str, samples: &[f64]) -> BenchRecord {
        BenchRecord {
            label: label.into(),
            verdict: verdict.into(),
            samples_us: samples.to_vec(),
        }
    }

    fn only_status(baseline: BenchRecord, current: BenchRecord) -> RowStatus {
        let report = compare(&[baseline], &[current], &Thresholds::default());
        assert_eq!(report.rows.len(), 1);
        report.rows[0].status.clone()
    }

    /// Error-row semantics: error↔error is unchanged, error↔verdict a
    /// hard failure in both directions, and timings of error rows are
    /// never parsed or compared.
    #[test]
    fn error_rows() {
        assert_eq!(
            only_status(record("x", "error", &[]), record("x", "error", &[])),
            RowStatus::ErrorBoth
        );
        let status = only_status(
            record("x", "error", &[]),
            record("x", "safe", &[100.0, 100.0]),
        );
        assert!(matches!(status, RowStatus::VerdictChanged { .. }));
        let status = only_status(
            record("x", "safe", &[100.0, 100.0]),
            record("x", "error", &[]),
        );
        assert!(matches!(status, RowStatus::VerdictChanged { .. }));
        // A malicious/legacy error row carrying a timing field: the
        // parser must drop it.
        let text = r#"{"label":"stefan-1/8","verdict":"error","reason":"oom","round_wall_us":123}"#;
        let records = parse_records(text);
        assert_eq!(records.len(), 1);
        assert!(records[0].samples_us.is_empty(), "timed an error row");
        // …and the gate stays green against an error baseline.
        let report = compare(&records, &records, &Thresholds::default());
        assert!(report.gate_ok());
    }

    /// The classification boundaries: all three thresholds (ratio,
    /// MAD band, absolute floor) must be cleared to regress.
    #[test]
    fn classification_boundaries() {
        let th = Thresholds {
            ratio: 2.0,
            mad_sigmas: 5.0,
            abs_floor_us: 1000.0,
        };
        let classify = |b: &[f64], c: &[f64]| {
            let report = compare(&[record("w", "safe", b)], &[record("w", "safe", c)], &th);
            match report.rows[0].status {
                RowStatus::Timing(class) => class,
                ref other => panic!("unexpected status {other:?}"),
            }
        };
        let tight = |center: f64| vec![center, center + 1.0, center - 1.0, center, center];

        // 4x slower, well past floor and noise: regressed.
        assert_eq!(
            classify(&tight(10_000.0), &tight(40_000.0)),
            TimingClass::Regressed
        );
        // Mirror image: improved.
        assert_eq!(
            classify(&tight(40_000.0), &tight(10_000.0)),
            TimingClass::Improved
        );
        // 10x slower but under the absolute floor: unchanged.
        assert_eq!(
            classify(&tight(50.0), &tight(500.0)),
            TimingClass::Unchanged
        );
        // Big absolute jump but under the ratio: unchanged.
        assert_eq!(
            classify(&tight(100_000.0), &tight(150_000.0)),
            TimingClass::Unchanged
        );
        // Past ratio and floor, but the samples themselves are so
        // noisy the MAD band swallows the difference: unchanged.
        let noisy_base = [10_000.0, 100.0, 25_000.0, 2_000.0, 40_000.0];
        let noisy_cur = [45_000.0, 800.0, 90_000.0, 30_000.0, 120_000.0];
        assert_eq!(classify(&noisy_base, &noisy_cur), TimingClass::Unchanged);
        // Exactly at the ratio boundary: strictly-greater, unchanged.
        assert_eq!(
            classify(&tight(10_000.0), &tight(20_000.0)),
            TimingClass::Unchanged
        );
        // Legacy single-sample baselines still classify (MAD 0: the
        // floor and ratio govern).
        assert_eq!(
            classify(&[10_000.0], &tight(41_000.0)),
            TimingClass::Regressed
        );
        // One side without timings: no data, never a failure.
        assert_eq!(classify(&[], &tight(10.0)), TimingClass::NoData);
    }

    /// New / missing workloads fail the gate; matching suites with
    /// unchanged timings pass, and the classification signature is a
    /// pure function of the records.
    #[test]
    fn suite_shape_and_signature() {
        let baseline = vec![
            record("a", "safe", &[1000.0, 1010.0, 990.0]),
            record("b", "unsafe", &[2000.0, 2020.0, 1980.0]),
            record("gone", "safe", &[10.0]),
        ];
        let current = vec![
            record("a", "safe", &[1005.0, 1015.0, 995.0]),
            record("b", "unsafe", &[2010.0, 2030.0, 1990.0]),
            record("fresh", "safe", &[10.0]),
        ];
        let report = compare(&baseline, &current, &Thresholds::default());
        assert!(!report.gate_ok());
        assert!(!report.verdicts_ok());
        let classes = report.classifications();
        assert_eq!(
            classes,
            vec![
                ("a".to_owned(), "unchanged"),
                ("b".to_owned(), "unchanged"),
                ("fresh".to_owned(), "new"),
                ("gone".to_owned(), "missing"),
            ]
        );
        // Determinism: same inputs, same classifications.
        let again = compare(&baseline, &current, &Thresholds::default());
        assert_eq!(again.classifications(), classes);
        // The report renders every row.
        let rendered = report.render();
        for (label, _) in &classes {
            assert!(rendered.contains(label), "{label} missing from report");
        }
    }

    /// The record parser reads both formats: sampled (`samples_us`)
    /// and legacy single-sample (`round_wall_us`).
    #[test]
    fn parses_both_record_formats() {
        let text = "[\n  \
            {\"label\":\"a\",\"verdict\":\"safe\",\"k\":5,\"round_wall_us\":1234,\"samples_us\":[1200,1234,1300],\"duration_ms\":1},\n  \
            {\"label\":\"b\",\"verdict\":\"unsafe\",\"k\":7,\"round_wall_us\":99,\"duration_ms\":0},\n  \
            {\"label\":\"c\",\"verdict\":\"undetermined\",\"k\":null}\n]";
        let records = parse_records(text);
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].samples_us, vec![1200.0, 1234.0, 1300.0]);
        assert_eq!(records[1].samples_us, vec![99.0]);
        assert!(records[2].samples_us.is_empty());
        // Escaped names round-trip through writer and reader.
        let nasty = "bench \"quoted\"\\weird/name";
        let line = format!(
            "{{\"label\":{},\"verdict\":\"safe\",\"samples_us\":[1,2]}}",
            json_escape(nasty)
        );
        let records = parse_records(&line);
        assert_eq!(records[0].label, nasty);
        assert_eq!(extract_number_array(&line, "samples_us").unwrap().len(), 2);
        assert_eq!(extract_number_array(&line, "absent"), None);
    }

    /// The legacy scanner ignores the additive per-stage timing keys
    /// (`saturate_us` / `check_us` / `merge_us`): a record carrying
    /// them parses to exactly the same [`BenchRecord`] as one without,
    /// so old baselines stay comparable against new runs.
    #[test]
    fn scanner_ignores_stage_timing_keys() {
        let with_stages = "{\"label\":\"dekker/2*\",\"verdict\":\"safe\",\"k\":4,\
            \"round_wall_us\":1700,\"saturate_us\":900,\"check_us\":800,\"merge_us\":40,\
            \"samples_us\":[1700,1600,1800],\"duration_ms\":1}";
        let without = "{\"label\":\"dekker/2*\",\"verdict\":\"safe\",\"k\":4,\
            \"round_wall_us\":1700,\"samples_us\":[1700,1600,1800],\"duration_ms\":1}";
        assert_eq!(parse_records(with_stages), parse_records(without));

        // And the real writer's output (which now includes the stage
        // medians) still scans to the plain sampled record.
        let row = crate::harness::BenchRow {
            label: "dekker/2*".into(),
            verdict: "safe".into(),
            reason: None,
            cache_hit: false,
            k: Some(4),
            fcr: Some(true),
            engine: Some("Alg3(T(Rk))".into()),
            rounds: 5,
            rounds_explored: 12,
            rounds_replayed: 4,
            samples_us: vec![1700.0, 1600.0, 1800.0],
            saturate_samples_us: vec![900.0, 850.0, 950.0],
            check_samples_us: vec![800.0, 750.0, 850.0],
            merge_samples_us: vec![40.0, 30.0, 50.0],
            duration_ms: 1,
            reduce_removed: None,
            reduce_us: None,
            unstable: false,
        };
        let line = crate::harness::row_to_json(&row);
        assert!(line.contains("\"saturate_us\":900"), "{line}");
        let records = parse_records(&line);
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].verdict, "safe");
        assert_eq!(records[0].samples_us, vec![1700.0, 1600.0, 1800.0]);
        // The timing gate itself is indifferent to the new keys.
        let report = compare(&records, &records, &Thresholds::default());
        assert!(report.gate_ok());
    }
}
