//! Shared infrastructure for the experiment harness: a counting
//! global allocator (the Table 2 / Fig. 5 memory columns), wall-clock
//! measurement, and machine-readable result records.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the
//! paper; see `DESIGN.md` §3 for the experiment index.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

pub mod compare;
pub mod harness;
pub mod stats;
pub mod tune;

/// A wrapper around the system allocator that tracks current and peak
/// heap usage. Install it in a harness binary with:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: cuba_bench::CountingAlloc = cuba_bench::CountingAlloc::new();
/// ```
///
/// The paper's memory columns report process RSS; peak heap bytes is
/// the closest allocator-level analogue (DESIGN.md §2).
pub struct CountingAlloc {
    current: AtomicUsize,
    peak: AtomicUsize,
}

impl CountingAlloc {
    /// A fresh counting allocator.
    pub const fn new() -> Self {
        CountingAlloc {
            current: AtomicUsize::new(0),
            peak: AtomicUsize::new(0),
        }
    }

    /// Current live heap bytes.
    pub fn current_bytes(&self) -> usize {
        self.current.load(Ordering::Relaxed)
    }

    /// Peak live heap bytes since the last [`reset_peak`](Self::reset_peak).
    pub fn peak_bytes(&self) -> usize {
        self.peak.load(Ordering::Relaxed)
    }

    /// Resets the peak to the current level (call between benchmarks).
    pub fn reset_peak(&self) {
        self.peak
            .store(self.current.load(Ordering::Relaxed), Ordering::Relaxed);
    }
}

impl Default for CountingAlloc {
    fn default() -> Self {
        Self::new()
    }
}

// SAFETY: delegates to the system allocator; the counters are
// side-channel bookkeeping only and never affect returned pointers.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            let cur = self.current.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            self.peak.fetch_max(cur, Ordering::Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        self.current.fetch_sub(layout.size(), Ordering::Relaxed);
    }
}

/// One measured run, serializable for EXPERIMENTS.md generation.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// Benchmark row label, e.g. `bluetooth-3/2+1`.
    pub label: String,
    /// Whether FCR holds.
    pub fcr: bool,
    /// `"safe"`, `"unsafe"` or `"undetermined"`.
    pub verdict: String,
    /// Convergence bound (safe) or bug bound (unsafe), if any.
    pub k: Option<usize>,
    /// Engine that decided.
    pub engine: String,
    /// States stored by the deciding engine.
    pub states: usize,
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Peak heap bytes during the run (0 when the counting allocator
    /// is not installed).
    pub peak_bytes: usize,
}

impl RunRecord {
    /// Serializes the record as one JSON object (the workspace builds
    /// offline, so JSON is emitted by hand instead of through serde).
    pub fn to_json(&self) -> String {
        let mut obj = JsonObject::new();
        obj.string("label", &self.label);
        obj.bool("fcr", self.fcr);
        obj.string("verdict", &self.verdict);
        match self.k {
            Some(k) => obj.number("k", k as f64),
            None => obj.null("k"),
        };
        obj.string("engine", &self.engine);
        obj.number("states", self.states as f64);
        obj.number("seconds", self.seconds);
        obj.number("peak_bytes", self.peak_bytes as f64);
        obj.finish()
    }
}

/// Serializes a slice of records as a pretty-printed JSON array.
pub fn records_to_json(records: &[RunRecord]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str("  ");
        out.push_str(&r.to_json());
        if i + 1 < records.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push(']');
    out
}

/// Minimal JSON object writer: escapes strings, formats numbers the
/// standard way, keeps insertion order.
#[derive(Debug, Default)]
pub struct JsonObject {
    fields: Vec<(String, String)>,
}

impl JsonObject {
    /// An empty object.
    pub fn new() -> Self {
        JsonObject::default()
    }

    /// Adds a string field.
    pub fn string(&mut self, key: &str, value: &str) -> &mut Self {
        self.raw(key, json_escape(value));
        self
    }

    /// Adds a boolean field.
    pub fn bool(&mut self, key: &str, value: bool) -> &mut Self {
        self.raw(key, value.to_string());
        self
    }

    /// Adds a numeric field (integers render without a fraction).
    pub fn number(&mut self, key: &str, value: f64) -> &mut Self {
        let text = if value.fract() == 0.0 && value.abs() < 1e15 {
            format!("{}", value as i64)
        } else {
            format!("{value}")
        };
        self.raw(key, text);
        self
    }

    /// Adds an explicit `null` field.
    pub fn null(&mut self, key: &str) -> &mut Self {
        self.raw(key, "null".to_owned());
        self
    }

    /// Adds a field whose value is already rendered JSON.
    pub fn raw(&mut self, key: &str, rendered: String) -> &mut Self {
        self.fields.push((key.to_owned(), rendered));
        self
    }

    /// Renders the object.
    pub fn finish(&self) -> String {
        let body: Vec<String> = self
            .fields
            .iter()
            .map(|(k, v)| format!("{}:{}", json_escape(k), v))
            .collect();
        format!("{{{}}}", body.join(","))
    }
}

/// Escapes a string for JSON output (quotes included).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Decodes the JSON string literal at the *start* of `input` (the
/// opening quote must be `input`'s first character): the inverse of
/// [`json_escape`], for scanners that read the records the harness
/// binaries write. Returns the decoded contents and the number of
/// input bytes consumed, closing quote included — so a caller can
/// keep scanning the rest of the line. `None` on anything that is not
/// a complete, valid string literal.
pub fn json_unescape(input: &str) -> Option<(String, usize)> {
    let mut chars = input.char_indices();
    if chars.next()? != (0, '"') {
        return None;
    }
    let mut out = String::new();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Some((out, i + 1)),
            '\\' => match chars.next()?.1 {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                '/' => out.push('/'),
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'b' => out.push('\u{0008}'),
                'f' => out.push('\u{000c}'),
                'u' => {
                    let mut code = 0u32;
                    for _ in 0..4 {
                        code = code * 16 + chars.next()?.1.to_digit(16)?;
                    }
                    out.push(char::from_u32(code)?);
                }
                _ => return None,
            },
            c if (c as u32) < 0x20 => return None, // raw control byte
            c => out.push(c),
        }
    }
    None // unterminated
}

/// Runs a closure, measuring wall-clock time and (optionally) peak
/// heap via the given allocator reference.
pub fn measure<T>(alloc: Option<&CountingAlloc>, f: impl FnOnce() -> T) -> (T, f64, usize) {
    if let Some(a) = alloc {
        a.reset_peak();
    }
    let before = alloc.map(|a| a.peak_bytes()).unwrap_or(0);
    let start = Instant::now();
    let value = f();
    let seconds = start.elapsed().as_secs_f64();
    let peak = alloc
        .map(|a| a.peak_bytes().saturating_sub(before))
        .unwrap_or(0);
    (value, seconds, peak)
}

/// Formats a byte count as MB with two decimals (Table 2 style).
pub fn fmt_mb(bytes: usize) -> String {
    format!("{:.2}", bytes as f64 / (1024.0 * 1024.0))
}

/// Renders a simple aligned text table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<String>, widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{:width$}", cell, width = widths[i]));
        }
        line.trim_end().to_owned()
    };
    out.push_str(&fmt_row(
        headers.iter().map(|h| h.to_string()).collect(),
        &widths,
    ));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row.clone(), &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_reports_time() {
        let (v, secs, _peak) = measure(None, || 41 + 1);
        assert_eq!(v, 42);
        assert!(secs >= 0.0);
    }

    #[test]
    fn fmt_mb_two_decimals() {
        assert_eq!(fmt_mb(1024 * 1024), "1.00");
        assert_eq!(fmt_mb(0), "0.00");
    }

    #[test]
    fn render_table_aligns() {
        let t = render_table(
            &["id", "k"],
            &[
                vec!["a".to_owned(), "10".to_owned()],
                vec!["longer".to_owned(), "2".to_owned()],
            ],
        );
        assert!(t.contains("id"));
        assert!(t.contains("longer"));
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
    }

    #[test]
    fn run_record_serializes() {
        let r = RunRecord {
            label: "x/1".into(),
            fcr: true,
            verdict: "safe".into(),
            k: Some(5),
            engine: "Alg3(T(Rk))".into(),
            states: 10,
            seconds: 0.1,
            peak_bytes: 1024,
        };
        let json = r.to_json();
        assert!(json.contains("\"k\":5"));
        assert!(json.contains("\"label\":\"x/1\""));
        assert!(json.contains("\"fcr\":true"));
        let none = RunRecord { k: None, ..r };
        assert!(none.to_json().contains("\"k\":null"));
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        let arr = records_to_json(&[]);
        assert_eq!(arr, "[\n]");
    }

    /// `json_unescape` inverts `json_escape` on every escape class the
    /// writer produces, and reports how far it read.
    #[test]
    fn json_unescape_inverts_escape() {
        for nasty in [
            "plain",
            "",
            "quote\" backslash\\ newline\n tab\t cr\r",
            "control\u{0001}byte",
            "unicode ⟨1|2,6⟩",
        ] {
            let escaped = json_escape(nasty);
            let (decoded, used) = json_unescape(&escaped).expect("round trip");
            assert_eq!(decoded, nasty);
            assert_eq!(used, escaped.len(), "consumed the whole literal");
        }
        // Trailing input is left for the caller.
        let (decoded, used) = json_unescape("\"ab\\\"c\",\"rest\"").unwrap();
        assert_eq!(decoded, "ab\"c");
        assert_eq!(used, 7);
        // Solidus and \uXXXX escapes other writers may emit.
        assert_eq!(json_unescape("\"a\\/b\"").unwrap().0, "a/b");
        assert_eq!(json_unescape("\"\\u2329x\"").unwrap().0, "\u{2329}x");
    }

    #[test]
    fn json_unescape_rejects_malformed_literals() {
        for bad in [
            "no-quote",
            "\"unterminated",
            "\"bad escape \\q\"",
            "\"bad unicode \\u12GZ\"",
            "\"raw control \u{0002}\"",
            "",
        ] {
            assert!(json_unescape(bad).is_none(), "{bad:?} must be rejected");
        }
    }
}
