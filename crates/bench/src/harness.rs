//! The criterion-style measurement harness behind `cuba bench`.
//!
//! The container builds fully offline, so criterion itself cannot be
//! reinstated; this module supplies the part of it the CI timing gate
//! actually needs — warmup rounds followed by a fixed number of
//! measured iterations over the whole Table 2 suite, capturing each
//! workload's `round_wall_us` once *per sample* instead of once per
//! run. Downstream, [`crate::stats`] summarizes the sample vectors and
//! [`crate::compare`] classifies them against a committed baseline
//! with noise-aware thresholds.
//!
//! Every iteration runs the suite through a **fresh**
//! [`SuiteCache`], so the per-workload cache hit/miss pattern (and
//! with it the explored-vs-replayed round split) is identical across
//! samples — a sample measures the same work every time, which is what
//! makes the sample vectors comparable at all.

use std::time::Instant;

use cuba_benchmarks::fig1;
use cuba_benchmarks::suite::{table2_problems, table2_suite};
use cuba_core::{
    CubaError, CubaOutcome, Portfolio, Property, SchedulePolicy, SessionConfig, SuiteCache, Verdict,
};
use cuba_explore::{ExploreBudget, SharedExplorer, SnapshotKind};
use cuba_pds::{Cpds, SharedState, StackSym, VisibleState};

use crate::stats;
use crate::JsonObject;

/// The measured workload set: every Table 2 row plus the
/// `fig1-multi/*` block (one system, three properties), so the record
/// covers shared-layer replay too. Labels are unique.
pub fn bench_suite() -> Vec<(String, Cpds, Property)> {
    let mut problems: Vec<(String, Cpds, Property)> = table2_suite()
        .iter()
        .map(|b| b.label())
        .zip(table2_problems())
        .map(|(label, (cpds, property))| (label, cpds, property))
        .collect();
    let vis = |q: u32, tops: &[u32]| {
        VisibleState::new(
            SharedState(q),
            tops.iter().map(|&t| Some(StackSym(t))).collect(),
        )
    };
    problems.push((
        "fig1-multi/p0-true".to_owned(),
        fig1::build(),
        Property::True,
    ));
    // ⟨1|2,6⟩ first appears at k = 5 (Fig. 1 table): unsafe@5.
    problems.push((
        "fig1-multi/p1-bug".to_owned(),
        fig1::build(),
        Property::never_visible(vis(1, &[2, 6])),
    ));
    // ⟨2|1,5⟩ is unreachable: safe at the convergence bound.
    problems.push((
        "fig1-multi/p2-unreach".to_owned(),
        fig1::build(),
        Property::never_visible(vis(2, &[1, 5])),
    ));
    problems
}

/// The suite-wide session limits of the harness (identical to the
/// `table2`/`batch` binaries, so records stay comparable): the
/// symbolic state cap keeps the OOM row (`stefan-1/8`) bounded.
pub fn bench_config(schedule: SchedulePolicy) -> SessionConfig {
    SessionConfig {
        budget: ExploreBudget {
            max_symbolic_states: 20_000,
            ..ExploreBudget::default()
        },
        max_k: 32,
        schedule,
        ..SessionConfig::new()
    }
}

/// How `cuba bench` measures.
#[derive(Debug, Clone)]
pub struct BenchPlan {
    /// Unmeasured suite iterations before sampling starts (cold
    /// caches, page faults, frequency scaling settle here).
    pub warmup: usize,
    /// Measured suite iterations; each contributes one sample per
    /// workload.
    pub samples: usize,
    /// Problems in flight per iteration.
    pub workers: usize,
    /// Arm scheduling policy for every session.
    pub schedule: SchedulePolicy,
    /// Run the verdict-preserving static pre-analysis on every
    /// workload before measuring. The suite cache then keys on the
    /// *reduced* systems, and each row records what the reduction
    /// removed. Verdicts are identical by construction; `--compare`
    /// against an unreduced baseline gates exactly that.
    pub reduce: bool,
    /// Saturation worker threads per context step (`0` = available
    /// parallelism, `1` = the sequential code path). Records are
    /// identical at every value except for the timing fields.
    pub threads: usize,
    /// Learned per-fingerprint tunings (`--profile-map`). Novel
    /// fingerprints are probed once *before* warmup — through a
    /// dedicated cache, so probing never pollutes the measured
    /// iterations — and every measured session then starts with its
    /// system's learned schedule, falling back to `schedule` on a
    /// miss.
    pub profile_map: Option<std::sync::Arc<cuba_core::ProfileMap>>,
    /// A `cuba snapshot` file to seed into every iteration's fresh
    /// cache (`--from-snapshot`): the matching workload replays the
    /// recorded layers instead of exploring live, and its hit probe
    /// reports `"cache":"hit"`. The per-iteration restore keeps
    /// samples comparable — every iteration measures the same
    /// replay-from-depth work.
    pub seed: Option<SnapshotSeed>,
}

/// A pre-explored layer store, as read from a `cuba snapshot` file.
#[derive(Debug, Clone)]
pub struct SnapshotSeed {
    /// Which explorer slot the snapshot restores.
    pub kind: SnapshotKind,
    /// The recorded system's fingerprint (from the file header).
    pub fingerprint: u64,
    /// The raw snapshot file.
    pub bytes: std::sync::Arc<Vec<u8>>,
}

impl Default for BenchPlan {
    fn default() -> Self {
        BenchPlan {
            warmup: 1,
            samples: 5,
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            schedule: SchedulePolicy::default(),
            reduce: false,
            threads: 0,
            profile_map: None,
            seed: None,
        }
    }
}

/// One workload's measured record: the structural outcome (identical
/// across samples by construction) plus the per-sample timing vector.
/// Error rows carry a `reason` and **no** timing fields at all — an
/// errored run has no meaningful `round_wall_us`, and emitting one
/// would invite a comparator to parse it.
#[derive(Debug, Clone)]
pub struct BenchRow {
    /// Workload label, e.g. `bluetooth-3/2+1`.
    pub label: String,
    /// `safe` / `unsafe` / `undetermined` / `error`.
    pub verdict: String,
    /// Error message, for `verdict == "error"` rows only.
    pub reason: Option<String>,
    /// Whether the workload's system was already in the per-iteration
    /// suite cache when it came up (stable across samples).
    pub cache_hit: bool,
    /// Convergence/bug bound, when decided.
    pub k: Option<usize>,
    /// FCR verdict (absent on error rows).
    pub fcr: Option<bool>,
    /// Winning engine (absent on error rows).
    pub engine: Option<String>,
    /// Rounds of the winning arm.
    pub rounds: usize,
    /// Live exploration rounds across all arms.
    pub rounds_explored: usize,
    /// Replayed (shared-layer) rounds across all arms.
    pub rounds_replayed: usize,
    /// One `round_wall_us` measurement per sample, in iteration order.
    pub samples_us: Vec<f64>,
    /// Per-sample saturation wall (exploration advances), µs.
    pub saturate_samples_us: Vec<f64>,
    /// Per-sample check wall (round remainder), µs.
    pub check_samples_us: Vec<f64>,
    /// Per-sample barrier-merge wall (subset of saturate), µs.
    pub merge_samples_us: Vec<f64>,
    /// Whole-outcome duration of the first sample, milliseconds.
    pub duration_ms: u128,
    /// With [`BenchPlan::reduce`]: transitions the pre-analysis
    /// removed from this workload's system (absent otherwise).
    pub reduce_removed: Option<usize>,
    /// With [`BenchPlan::reduce`]: total pre-analysis time for this
    /// workload's system, microseconds (absent otherwise).
    pub reduce_us: Option<u64>,
    /// Whether any later sample disagreed with the first on the
    /// structural outcome (verdict) — should never happen; surfaced
    /// loudly instead of silently averaged away.
    pub unstable: bool,
}

impl BenchRow {
    /// The robust point estimate of the row's timing: median of the
    /// samples (`None` on error rows).
    pub fn median_us(&self) -> Option<f64> {
        if self.samples_us.is_empty() {
            None
        } else {
            Some(stats::median(&self.samples_us))
        }
    }
}

/// A finished measurement: per-workload rows plus run-level metadata.
#[derive(Debug, Clone)]
pub struct BenchRun {
    /// Per-workload records, in suite order.
    pub rows: Vec<BenchRow>,
    /// The plan that produced them.
    pub plan: BenchPlan,
    /// Total wall-clock of the measured iterations, seconds.
    pub measure_seconds: f64,
}

/// The verdict word of one suite result (`error` for hard failures).
pub fn verdict_word(result: &Result<CubaOutcome, CubaError>) -> String {
    match result {
        Ok(o) => match &o.verdict {
            Verdict::Safe { .. } => "safe".to_owned(),
            Verdict::Unsafe { .. } => "unsafe".to_owned(),
            Verdict::Undetermined { .. } => "undetermined".to_owned(),
        },
        Err(_) => "error".to_owned(),
    }
}

/// Runs one suite iteration through a fresh cache, returning the
/// per-problem results and the pre-probed hit pattern.
pub fn run_iteration(
    portfolio: &Portfolio,
    problems: &[(String, Cpds, Property)],
    workers: usize,
) -> (Vec<Result<CubaOutcome, CubaError>>, Vec<bool>) {
    run_iteration_seeded(
        portfolio,
        problems,
        workers,
        None,
        &ExploreBudget::default(),
    )
}

/// As [`run_iteration`], restoring `seed` into the fresh cache first,
/// so the hit probe sees the snapshot-backed system as warm and its
/// sessions replay the recorded bounds.
pub fn run_iteration_seeded(
    portfolio: &Portfolio,
    problems: &[(String, Cpds, Property)],
    workers: usize,
    seed: Option<&SnapshotSeed>,
    budget: &ExploreBudget,
) -> (Vec<Result<CubaOutcome, CubaError>>, Vec<bool>) {
    let cache = SuiteCache::new();
    if let Some(seed) = seed {
        seed_cache(&cache, problems, seed, budget);
    }
    // Probe hit/miss in input order before the (parallel) run — the
    // in-run lookup order is nondeterministic under workers > 1.
    let hits: Vec<bool> = problems
        .iter()
        .map(|(_, cpds, _)| cache.lookup(cpds).1)
        .collect();
    let batch: Vec<(Cpds, Property)> = problems
        .iter()
        .map(|(_, cpds, property)| (cpds.clone(), property.clone()))
        .collect();
    (portfolio.run_suite_cached(batch, workers, &cache), hits)
}

/// Restores `seed` into `cache` for the first workload whose system
/// matches the recorded fingerprint. A snapshot that matches no
/// workload, or that fails verification, is reported on stderr and
/// skipped — the measurement proceeds cold.
fn seed_cache(
    cache: &SuiteCache,
    problems: &[(String, Cpds, Property)],
    seed: &SnapshotSeed,
    budget: &ExploreBudget,
) {
    for (label, cpds, _) in problems {
        if cuba_core::fingerprint(cpds) != seed.fingerprint {
            continue;
        }
        match SharedExplorer::restore(cpds.clone(), budget.clone(), seed.fingerprint, &seed.bytes) {
            Ok(explorer) => {
                let artifacts =
                    cache.adopt(cpds, std::sync::Arc::new(cuba_core::SystemArtifacts::new()));
                artifacts.seed_explorer(seed.kind, std::sync::Arc::new(explorer));
            }
            Err(e) => eprintln!("snapshot seed {label}: {e} (measuring cold)"),
        }
        return;
    }
    eprintln!(
        "snapshot seed: fingerprint {:016x} matches no workload (measuring cold)",
        seed.fingerprint
    );
}

/// Measures the full bench suite under `plan`: `plan.warmup`
/// unmeasured iterations, then `plan.samples` measured ones. Progress
/// goes to stderr (one line per iteration).
pub fn run(plan: &BenchPlan) -> BenchRun {
    run_problems(plan, bench_suite())
}

/// [`run`] over an explicit workload list (tests measure a small
/// subset; the debug-build suite is seconds per iteration).
pub fn run_problems(plan: &BenchPlan, mut problems: Vec<(String, Cpds, Property)>) -> BenchRun {
    let mut config = bench_config(plan.schedule.clone());
    config.budget.threads = plan.threads;
    let mut portfolio = Portfolio::auto().with_config(config.clone());
    if let Some(map) = &plan.profile_map {
        portfolio = portfolio.with_profile_map(map.clone());
    }

    // With --reduce, the pre-analysis runs once per workload up front;
    // every iteration (and the suite cache) then sees only the reduced
    // systems. The reduction is property-independent, so workloads
    // sharing a system still share one cache entry.
    let mut reductions: Vec<Option<(usize, u64)>> = vec![None; problems.len()];
    if plan.reduce {
        for (i, (label, cpds, property)) in problems.iter_mut().enumerate() {
            match cuba_reduce::reduce(cpds, std::slice::from_ref(property)) {
                Ok(reduction) => {
                    let stats = &reduction.stats;
                    reductions[i] = Some((
                        stats.removed_transitions,
                        stats.skeleton_us + stats.coi_us + stats.rebuild_us,
                    ));
                    *cpds = reduction.cpds;
                }
                Err(e) => eprintln!("reduce {label}: {e} (measuring unreduced)"),
            }
        }
    }

    // With --profile-map, probe every fingerprint the map has not
    // learned yet before any measurement (and after --reduce, so the
    // map keys on the systems the sessions will actually see). The
    // probe shares one dedicated cache across its candidates and the
    // measured iterations below never touch it.
    if let Some(map) = &plan.profile_map {
        let start = Instant::now();
        let probes =
            crate::tune::ensure_profiles(map, &problems, plan.workers, &SuiteCache::new(), &config);
        if probes > 0 {
            eprintln!(
                "profile map: {} probes over {} workloads: {:.2}s",
                probes,
                problems.len(),
                start.elapsed().as_secs_f64()
            );
        }
    }

    for i in 0..plan.warmup {
        let start = Instant::now();
        let _ = run_iteration_seeded(
            &portfolio,
            &problems,
            plan.workers,
            plan.seed.as_ref(),
            &config.budget,
        );
        eprintln!(
            "warmup {}/{}: {:.2}s",
            i + 1,
            plan.warmup,
            start.elapsed().as_secs_f64()
        );
    }

    let mut rows: Vec<BenchRow> = Vec::new();
    let measure_start = Instant::now();
    for sample in 0..plan.samples.max(1) {
        let start = Instant::now();
        let (results, hits) = run_iteration_seeded(
            &portfolio,
            &problems,
            plan.workers,
            plan.seed.as_ref(),
            &config.budget,
        );
        for (i, ((label, _, _), result)) in problems.iter().zip(&results).enumerate() {
            if sample == 0 {
                let mut row = BenchRow {
                    label: label.clone(),
                    verdict: verdict_word(result),
                    reason: None,
                    cache_hit: hits[i],
                    k: None,
                    fcr: None,
                    engine: None,
                    rounds: 0,
                    rounds_explored: 0,
                    rounds_replayed: 0,
                    samples_us: Vec::new(),
                    saturate_samples_us: Vec::new(),
                    check_samples_us: Vec::new(),
                    merge_samples_us: Vec::new(),
                    duration_ms: 0,
                    reduce_removed: reductions[i].map(|(removed, _)| removed),
                    reduce_us: reductions[i].map(|(_, us)| us),
                    unstable: false,
                };
                match result {
                    Ok(o) => {
                        row.k = match &o.verdict {
                            Verdict::Safe { k, .. } | Verdict::Unsafe { k, .. } => Some(*k),
                            Verdict::Undetermined { .. } => None,
                        };
                        row.fcr = Some(o.fcr_holds);
                        row.engine = Some(o.engine.to_string());
                        row.rounds = o.rounds;
                        row.rounds_explored = o.rounds_explored;
                        row.rounds_replayed = o.rounds_replayed;
                        row.duration_ms = o.duration.as_millis();
                    }
                    Err(e) => row.reason = Some(e.to_string()),
                }
                rows.push(row);
            } else if rows[i].verdict != verdict_word(result) {
                rows[i].unstable = true;
            }
            // Error rows never accumulate timing samples.
            if let Ok(o) = result {
                if rows[i].verdict != "error" {
                    rows[i].samples_us.push(o.round_wall.as_micros() as f64);
                    rows[i]
                        .saturate_samples_us
                        .push(o.stages.saturate.as_micros() as f64);
                    rows[i]
                        .check_samples_us
                        .push(o.stages.check.as_micros() as f64);
                    rows[i]
                        .merge_samples_us
                        .push(o.stages.merge.as_micros() as f64);
                }
            }
        }
        eprintln!(
            "sample {}/{}: {:.2}s",
            sample + 1,
            plan.samples.max(1),
            start.elapsed().as_secs_f64()
        );
    }

    BenchRun {
        rows,
        plan: plan.clone(),
        measure_seconds: measure_start.elapsed().as_secs_f64(),
    }
}

/// Renders one row as a JSON object. The layout is a superset of the
/// single-sample `batch --json` format: `round_wall_us` stays (as the
/// median, so older readers keep working) and the full sample vector
/// rides in `samples_us`. Error rows get `reason` and no timing
/// fields.
pub fn row_to_json(row: &BenchRow) -> String {
    let mut obj = JsonObject::new();
    obj.string("label", &row.label);
    obj.string("verdict", &row.verdict);
    obj.string("cache", if row.cache_hit { "hit" } else { "miss" });
    if let Some(reason) = &row.reason {
        obj.string("reason", reason);
        if row.unstable {
            obj.bool("unstable", true);
        }
        return obj.finish();
    }
    match row.k {
        Some(k) => obj.number("k", k as f64),
        None => obj.null("k"),
    };
    if let Some(fcr) = row.fcr {
        obj.bool("fcr", fcr);
    }
    if let Some(engine) = &row.engine {
        obj.string("engine", engine);
    }
    obj.number("rounds", row.rounds as f64);
    obj.number("rounds_explored", row.rounds_explored as f64);
    obj.number("rounds_replayed", row.rounds_replayed as f64);
    if let Some(median) = row.median_us() {
        obj.number("round_wall_us", median.round());
    }
    // Additive per-stage medians (µs), sourced from the telemetry
    // registry's stage accumulator. The legacy comparator scanner
    // ignores unknown keys, so these stay invisible to old baselines.
    for (key, samples) in [
        ("saturate_us", &row.saturate_samples_us),
        ("check_us", &row.check_samples_us),
        ("merge_us", &row.merge_samples_us),
    ] {
        if !samples.is_empty() {
            obj.number(key, stats::median(samples).round());
        }
    }
    let samples: Vec<String> = row
        .samples_us
        .iter()
        .map(|s| format!("{}", s.round() as i64))
        .collect();
    obj.raw("samples_us", format!("[{}]", samples.join(",")));
    obj.number("duration_ms", row.duration_ms as f64);
    // Additive reduction fields (present only under `--reduce`): the
    // baseline scanner ignores unknown keys, so records stay
    // comparable across reduced and unreduced runs.
    if let Some(removed) = row.reduce_removed {
        obj.number("reduce_removed", removed as f64);
    }
    if let Some(us) = row.reduce_us {
        obj.number("reduce_us", us as f64);
    }
    if row.unstable {
        obj.bool("unstable", true);
    }
    obj.finish()
}

/// Renders a whole run as the `BENCH_*.json` record: a JSON array,
/// one object per line — the line-oriented layout the hand-rolled
/// baseline scanner depends on.
pub fn run_to_json(run: &BenchRun) -> String {
    let mut out = String::from("[\n");
    for (i, row) in run.rows.iter().enumerate() {
        out.push_str("  ");
        out.push_str(&row_to_json(row));
        if i + 1 < run.rows.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_suite_labels_are_unique_and_cover_table2() {
        let suite = bench_suite();
        let labels: std::collections::HashSet<&str> =
            suite.iter().map(|(l, _, _)| l.as_str()).collect();
        assert_eq!(labels.len(), suite.len());
        // 19 Table 2 rows + the 3-property fig1 block.
        assert_eq!(suite.len(), 22);
        assert!(labels.contains("stefan-1/8"));
        assert!(labels.contains("fig1-multi/p2-unreach"));
    }

    /// Error rows serialize without timing fields; measured rows carry
    /// the full sample vector and the median as `round_wall_us`.
    #[test]
    fn row_json_shapes() {
        let error = BenchRow {
            label: "stefan-1/8".into(),
            verdict: "error".into(),
            reason: Some("budget exceeded".into()),
            cache_hit: false,
            k: None,
            fcr: None,
            engine: None,
            rounds: 0,
            rounds_explored: 0,
            rounds_replayed: 0,
            samples_us: Vec::new(),
            saturate_samples_us: Vec::new(),
            check_samples_us: Vec::new(),
            merge_samples_us: Vec::new(),
            duration_ms: 0,
            reduce_removed: None,
            reduce_us: None,
            unstable: false,
        };
        let json = row_to_json(&error);
        assert!(json.contains("\"verdict\":\"error\""));
        assert!(json.contains("\"reason\":\"budget exceeded\""));
        assert!(!json.contains("round_wall_us"), "no timing on errors");
        assert!(!json.contains("samples_us"), "no samples on errors");

        let measured = BenchRow {
            label: "dekker/2*".into(),
            verdict: "safe".into(),
            reason: None,
            cache_hit: false,
            k: Some(4),
            fcr: Some(true),
            engine: Some("Alg3(T(Rk))".into()),
            rounds: 5,
            rounds_explored: 12,
            rounds_replayed: 4,
            samples_us: vec![1700.0, 1600.0, 1800.0],
            saturate_samples_us: vec![900.0, 850.0, 950.0],
            check_samples_us: vec![800.0, 750.0, 850.0],
            merge_samples_us: vec![40.0, 30.0, 50.0],
            duration_ms: 1,
            reduce_removed: Some(3),
            reduce_us: Some(120),
            unstable: false,
        };
        let json = row_to_json(&measured);
        assert!(json.contains("\"round_wall_us\":1700"), "{json}");
        assert!(json.contains("\"samples_us\":[1700,1600,1800]"));
        assert!(json.contains("\"saturate_us\":900"), "{json}");
        assert!(json.contains("\"check_us\":800"), "{json}");
        assert!(json.contains("\"merge_us\":40"), "{json}");
        assert!(json.contains("\"k\":4"));
    }

    /// `--reduce` changes no verdict and no bound, keeps the shared-
    /// system cache pattern, and records the reduction fields.
    #[test]
    fn reduced_run_agrees_with_unreduced() {
        let plan = BenchPlan {
            warmup: 0,
            samples: 1,
            ..BenchPlan::default()
        };
        let problems: Vec<_> = bench_suite()
            .into_iter()
            .filter(|(label, _, _)| label.starts_with("fig1-multi/"))
            .collect();
        let plain = run_problems(&plan, problems.clone());
        let reduced = run_problems(
            &BenchPlan {
                reduce: true,
                ..plan
            },
            problems,
        );
        for (a, b) in plain.rows.iter().zip(&reduced.rows) {
            assert_eq!(a.verdict, b.verdict, "{}", a.label);
            assert_eq!(a.k, b.k, "{}", a.label);
            assert_eq!(a.engine, b.engine, "{}", a.label);
            assert!(b.reduce_removed.is_some() && b.reduce_us.is_some());
            assert!(a.reduce_removed.is_none());
        }
        // The reduction is property-independent, so the three
        // properties still share one cached system.
        assert!(!reduced.rows[0].cache_hit);
        assert!(reduced.rows[1].cache_hit && reduced.rows[2].cache_hit);
        assert!(run_to_json(&reduced).contains("\"reduce_removed\":"));
    }

    /// `--from-snapshot` seeding: a snapshot of the fig1 system makes
    /// its workloads replay (warm hit probe, fewer live rounds) with
    /// verdicts and bounds identical to the cold run.
    #[test]
    fn snapshot_seed_replays_instead_of_exploring() {
        let problems: Vec<_> = bench_suite()
            .into_iter()
            .filter(|(label, _, _)| label.starts_with("fig1-multi/"))
            .collect();
        let plan = BenchPlan {
            warmup: 0,
            samples: 1,
            ..BenchPlan::default()
        };
        let cold = run_problems(&plan, problems.clone());

        // Produce the snapshot the way `cuba snapshot` does: explore
        // the system once, encode its layer store.
        let cpds = fig1::build();
        let artifacts = cuba_core::SystemArtifacts::new();
        let explorer = artifacts.explicit_explorer(&cpds, &ExploreBudget::default());
        for k in 0..=6 {
            explorer
                .ensure_layer(k, &cuba_explore::Interrupt::none())
                .expect("fig1 explores in budget");
        }
        let fingerprint = cuba_core::fingerprint(&cpds);
        let seed = SnapshotSeed {
            kind: SnapshotKind::Explicit,
            fingerprint,
            bytes: std::sync::Arc::new(explorer.snapshot(fingerprint)),
        };

        let warm = run_problems(
            &BenchPlan {
                seed: Some(seed),
                ..plan
            },
            problems,
        );
        for (a, b) in cold.rows.iter().zip(&warm.rows) {
            assert_eq!(a.verdict, b.verdict, "{}", a.label);
            assert_eq!(a.k, b.k, "{}", a.label);
        }
        // The seeded system probes warm and replays recorded bounds.
        assert!(warm.rows[0].cache_hit, "seeded system probes as warm");
        assert!(
            warm.rows[0].rounds_explored < cold.rows[0].rounds_explored,
            "replay beats exploration: {} vs {}",
            warm.rows[0].rounds_explored,
            cold.rows[0].rounds_explored
        );
        assert!(warm.rows[0].rounds_replayed > 0);
    }

    /// A tiny real run over the fig1-multi block (the full suite is
    /// seconds per iteration in a debug build; the CI bench job
    /// covers it in release): 2 samples, no warmup — every workload
    /// gets exactly one sample per iteration with stable outcomes.
    #[test]
    fn two_sample_run_captures_per_sample_timings() {
        let plan = BenchPlan {
            warmup: 0,
            samples: 2,
            ..BenchPlan::default()
        };
        let problems: Vec<_> = bench_suite()
            .into_iter()
            .filter(|(label, _, _)| label.starts_with("fig1-multi/"))
            .collect();
        let run = run_problems(&plan, problems.clone());
        assert_eq!(run.rows.len(), problems.len());
        for row in &run.rows {
            assert!(
                !row.unstable,
                "{}: verdict flapped across samples",
                row.label
            );
            assert_eq!(
                row.samples_us.len(),
                2,
                "{}: expected one sample per iteration",
                row.label
            );
            assert!(row.median_us().unwrap() > 0.0);
        }
        // Shared-layer replay shows in the record: the later
        // properties of the shared system hit the per-iteration cache.
        assert!(!run.rows[0].cache_hit);
        assert!(run.rows[1].cache_hit && run.rows[2].cache_hit);
        assert_eq!(run.rows[1].verdict, "unsafe");
        assert_eq!(run.rows[2].verdict, "safe");
        // The emitted record parses back with the full sample vectors.
        let records = crate::compare::parse_records(&run_to_json(&run));
        assert_eq!(records.len(), run.rows.len());
        assert_eq!(records[0].samples_us.len(), 2);
    }
}
