//! The static metrics registry: atomic counters, gauges and fixed
//! log-bucket histograms, rendered as Prometheus text exposition
//! (`GET /metrics` on `cuba serve`) and snapshotted into the
//! `telemetry` block of `verify --json`.
//!
//! Everything is always on: an update is one relaxed atomic RMW, far
//! off the analysis decision paths, so observation can never move a
//! verdict. Labeled families (endpoint, stage) are fixed small
//! arrays — no allocation, no label interning.

use std::cell::Cell;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::Duration;

/// A monotonically increasing counter.
#[derive(Debug)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter (const so the registry is a plain static).
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }
    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }
    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl Default for Counter {
    fn default() -> Self {
        Counter::new()
    }
}

/// A value that can go up and down (occupancy, in-flight work).
#[derive(Debug)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A zeroed gauge.
    pub const fn new() -> Self {
        Gauge(AtomicI64::new(0))
    }
    /// Adds `n` (may be negative).
    #[inline]
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }
    /// Overwrites the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }
    /// The current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge::new()
    }
}

/// Power-of-two bucket bounds: `le = 1, 2, 4, …, 2^(BUCKETS-1)`,
/// plus the implicit `+Inf`. 28 buckets cover one microsecond to
/// ~134 seconds (or 1 to ~134M edges) — plenty for every family here.
pub const BUCKETS: usize = 28;

/// A fixed log-bucket histogram (count, sum, per-bucket counts).
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Histogram {
    /// A zeroed histogram.
    pub const fn new() -> Self {
        // Repeat-of-const-item: each array slot gets a fresh atomic.
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram {
            count: ZERO,
            sum: ZERO,
            buckets: [ZERO; BUCKETS],
        }
    }

    /// Records one observation.
    pub fn observe(&self, value: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        // Index of the smallest bound >= value; values above the top
        // bound land only in +Inf (derived from `count` at render).
        let idx = if value <= 1 {
            0
        } else {
            (u64::BITS - (value - 1).leading_zeros()) as usize
        };
        if idx < BUCKETS {
            self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Observations so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Renders the `_bucket`/`_sum`/`_count` sample lines, cumulative
    /// per the exposition format, with `labels` spliced in (either
    /// empty or `key="value",` fragments — see [`render_label`]).
    fn render_into(&self, out: &mut String, name: &str, labels: &str) {
        let mut cumulative = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            cumulative += bucket.load(Ordering::Relaxed);
            let le = 1u64 << i;
            out.push_str(&format!(
                "{name}_bucket{{{labels}le=\"{le}\"}} {cumulative}\n"
            ));
        }
        out.push_str(&format!(
            "{name}_bucket{{{labels}le=\"+Inf\"}} {}\n",
            self.count()
        ));
        let trimmed = labels.trim_end_matches(',');
        let braces = if trimmed.is_empty() {
            String::new()
        } else {
            format!("{{{trimmed}}}")
        };
        out.push_str(&format!("{name}_sum{braces} {}\n", self.sum()));
        out.push_str(&format!("{name}_count{braces} {}\n", self.count()));
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// The service endpoints with per-endpoint request metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// `POST /analyze`.
    Analyze,
    /// `POST /suite`.
    Suite,
    /// `GET /systems`.
    Systems,
    /// `GET /healthz`.
    Healthz,
    /// `GET /metrics`.
    Metrics,
    /// `POST /shutdown`.
    Shutdown,
    /// Anything else (404s, bad methods).
    Other,
}

/// How many endpoint labels exist.
pub const ENDPOINTS: usize = 7;

impl Endpoint {
    /// The label value in the exposition output.
    pub fn label(self) -> &'static str {
        match self {
            Endpoint::Analyze => "analyze",
            Endpoint::Suite => "suite",
            Endpoint::Systems => "systems",
            Endpoint::Healthz => "healthz",
            Endpoint::Metrics => "metrics",
            Endpoint::Shutdown => "shutdown",
            Endpoint::Other => "other",
        }
    }

    /// Classifies a request path.
    pub fn from_path(path: &str) -> Endpoint {
        match path {
            "/analyze" => Endpoint::Analyze,
            "/suite" => Endpoint::Suite,
            "/systems" => Endpoint::Systems,
            "/healthz" => Endpoint::Healthz,
            "/metrics" => Endpoint::Metrics,
            "/shutdown" => Endpoint::Shutdown,
            _ => Endpoint::Other,
        }
    }

    const ALL: [Endpoint; ENDPOINTS] = [
        Endpoint::Analyze,
        Endpoint::Suite,
        Endpoint::Systems,
        Endpoint::Healthz,
        Endpoint::Metrics,
        Endpoint::Shutdown,
        Endpoint::Other,
    ];

    fn index(self) -> usize {
        Endpoint::ALL
            .iter()
            .position(|e| *e == self)
            .expect("listed")
    }
}

/// The analysis stages with per-stage wall-time histograms. The
/// `saturate` window (time inside shared-exploration advances)
/// *contains* `merge` (the deterministic barrier merges within it);
/// `check` is the remainder of a portfolio round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Saturation work: `SharedExplorer::ensure_layer` advances.
    Saturate,
    /// Everything else in a round: membership/convergence checks.
    Check,
    /// Sorted barrier merges (sharded waves, layer commits).
    Merge,
}

/// How many stage labels exist.
pub const STAGES: usize = 3;

impl Stage {
    /// The label value in the exposition output.
    pub fn label(self) -> &'static str {
        match self {
            Stage::Saturate => "saturate",
            Stage::Check => "check",
            Stage::Merge => "merge",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// Every metric family of the process — one plain `static`, zero
/// initialization cost, no registration step.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Portfolio rounds that explored a fresh layer.
    pub rounds_explored: Counter,
    /// Portfolio rounds replayed from a shared exploration.
    pub rounds_replayed: Counter,
    /// Saturation waves (sharded passes and sequential fixpoints).
    pub waves: Counter,
    /// Work-stealing claims outside a worker's own shard.
    pub steals: Counter,
    /// Frontier size (edges) per saturation wave.
    pub frontier_edges: Histogram,
    /// Suite-cache lookups that found the system.
    pub cache_hits: Counter,
    /// Suite-cache lookups that created a fresh entry.
    pub cache_misses: Counter,
    /// Profile-map lookups that found a learned tuning.
    pub profile_hits: Counter,
    /// Profile-map lookups for a novel fingerprint.
    pub profile_misses: Counter,
    /// Online tuning probes started.
    pub probes: Counter,
    /// Static pre-analysis (reduce) passes run.
    pub reduce_passes: Counter,
    /// Trace events shed by a full thread buffer.
    pub trace_events_dropped: Counter,
    /// Layer-store snapshots written to disk.
    pub snapshot_saves: Counter,
    /// Layer-store snapshots restored from disk.
    pub snapshot_loads: Counter,
    /// Systems spilled to disk under `max_systems` pressure.
    pub snapshot_spills: Counter,
    /// Streaming sessions in flight right now.
    pub sessions_active: Gauge,
    /// Analysis worker slots currently occupied (`cuba serve`).
    pub workers_busy: Gauge,
    /// Requests served, per endpoint.
    pub http_requests: [Counter; ENDPOINTS],
    /// Request wall time in microseconds, per endpoint.
    pub http_duration_us: [Histogram; ENDPOINTS],
    /// Per-stage wall time in microseconds, per round.
    pub stage_duration_us: [Histogram; STAGES],
}

impl Metrics {
    const fn new() -> Self {
        // Repeat-of-const-item: each array slot gets a fresh metric.
        #[allow(clippy::declare_interior_mutable_const)]
        const C: Counter = Counter::new();
        #[allow(clippy::declare_interior_mutable_const)]
        const H: Histogram = Histogram::new();
        Metrics {
            rounds_explored: C,
            rounds_replayed: C,
            waves: C,
            steals: C,
            frontier_edges: H,
            cache_hits: C,
            cache_misses: C,
            profile_hits: C,
            profile_misses: C,
            probes: C,
            reduce_passes: C,
            trace_events_dropped: C,
            snapshot_saves: C,
            snapshot_loads: C,
            snapshot_spills: C,
            sessions_active: Gauge::new(),
            workers_busy: Gauge::new(),
            http_requests: [C; ENDPOINTS],
            http_duration_us: [H; ENDPOINTS],
            stage_duration_us: [H; STAGES],
        }
    }

    /// The request counter for `endpoint`.
    pub fn http_requests(&self, endpoint: Endpoint) -> &Counter {
        &self.http_requests[endpoint.index()]
    }

    /// The latency histogram for `endpoint`.
    pub fn http_duration_us(&self, endpoint: Endpoint) -> &Histogram {
        &self.http_duration_us[endpoint.index()]
    }

    /// The wall-time histogram for `stage`.
    pub fn stage_duration_us(&self, stage: Stage) -> &Histogram {
        &self.stage_duration_us[stage.index()]
    }
}

/// The process-wide registry.
pub static METRICS: Metrics = Metrics::new();

/// Escapes a Prometheus label value (backslash, quote, newline — the
/// exposition-format rules).
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// One `key="value",` label fragment for splicing into a sample line.
pub fn render_label(key: &str, value: &str) -> String {
    format!("{key}=\"{}\",", escape_label_value(value))
}

fn family(out: &mut String, name: &str, kind: &str, help: &str) {
    out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
}

/// Renders the whole registry in Prometheus text exposition format
/// (the `GET /metrics` response body).
pub fn render_prometheus() -> String {
    let m = &METRICS;
    let mut out = String::with_capacity(8 * 1024);
    let counters: [(&str, &Counter, &str); 14] = [
        (
            "cuba_rounds_explored_total",
            &m.rounds_explored,
            "Portfolio rounds that explored a fresh layer.",
        ),
        (
            "cuba_rounds_replayed_total",
            &m.rounds_replayed,
            "Portfolio rounds replayed from a shared exploration.",
        ),
        (
            "cuba_waves_total",
            &m.waves,
            "Saturation waves (sharded passes and sequential fixpoints).",
        ),
        (
            "cuba_steals_total",
            &m.steals,
            "Work-stealing claims outside a worker's own shard.",
        ),
        (
            "cuba_cache_hits_total",
            &m.cache_hits,
            "Suite-cache lookups that found the system.",
        ),
        (
            "cuba_cache_misses_total",
            &m.cache_misses,
            "Suite-cache lookups that created a fresh entry.",
        ),
        (
            "cuba_profile_hits_total",
            &m.profile_hits,
            "Profile-map lookups that found a learned tuning.",
        ),
        (
            "cuba_profile_misses_total",
            &m.profile_misses,
            "Profile-map lookups for a novel fingerprint.",
        ),
        (
            "cuba_probes_total",
            &m.probes,
            "Online tuning probes started.",
        ),
        (
            "cuba_reduce_passes_total",
            &m.reduce_passes,
            "Static pre-analysis (reduce) pipeline runs.",
        ),
        (
            "cuba_trace_events_dropped_total",
            &m.trace_events_dropped,
            "Trace events shed by a full thread buffer.",
        ),
        (
            "cuba_snapshot_saves_total",
            &m.snapshot_saves,
            "Layer-store snapshots written to disk.",
        ),
        (
            "cuba_snapshot_loads_total",
            &m.snapshot_loads,
            "Layer-store snapshots restored from disk.",
        ),
        (
            "cuba_snapshot_spills_total",
            &m.snapshot_spills,
            "Systems spilled to disk under max_systems pressure.",
        ),
    ];
    for (name, counter, help) in &counters {
        family(&mut out, name, "counter", help);
        out.push_str(&format!("{name} {}\n", counter.get()));
    }
    family(
        &mut out,
        "cuba_sessions_active",
        "gauge",
        "Streaming sessions in flight right now.",
    );
    out.push_str(&format!(
        "cuba_sessions_active {}\n",
        m.sessions_active.get()
    ));
    family(
        &mut out,
        "cuba_workers_busy",
        "gauge",
        "Analysis worker slots currently occupied.",
    );
    out.push_str(&format!("cuba_workers_busy {}\n", m.workers_busy.get()));
    family(
        &mut out,
        "cuba_http_requests_total",
        "counter",
        "Requests served, per endpoint.",
    );
    for endpoint in Endpoint::ALL {
        out.push_str(&format!(
            "cuba_http_requests_total{{endpoint=\"{}\"}} {}\n",
            endpoint.label(),
            m.http_requests(endpoint).get()
        ));
    }
    family(
        &mut out,
        "cuba_http_request_duration_us",
        "histogram",
        "Request wall time in microseconds, per endpoint.",
    );
    for endpoint in Endpoint::ALL {
        m.http_duration_us(endpoint).render_into(
            &mut out,
            "cuba_http_request_duration_us",
            &render_label("endpoint", endpoint.label()),
        );
    }
    family(
        &mut out,
        "cuba_stage_duration_us",
        "histogram",
        "Per-round analysis stage wall time in microseconds.",
    );
    for stage in [Stage::Saturate, Stage::Check, Stage::Merge] {
        m.stage_duration_us(stage).render_into(
            &mut out,
            "cuba_stage_duration_us",
            &render_label("stage", stage.label()),
        );
    }
    family(
        &mut out,
        "cuba_frontier_edges",
        "histogram",
        "Frontier size (edges) per saturation wave.",
    );
    m.frontier_edges
        .render_into(&mut out, "cuba_frontier_edges", "");
    out
}

// ---------------------------------------------------------------------------
// Per-round stage accounting. The saturation coordinator (shared-
// explorer advances, barrier merges) runs on the session's own
// thread, so a thread-local accumulator scoped to one `step_once`
// collects exactly that round's stage split — no channels, no
// session plumbing through the engine traits.

thread_local! {
    static STAGE_ACTIVE: Cell<bool> = const { Cell::new(false) };
    static STAGE_ACC: Cell<[u64; STAGES]> = const { Cell::new([0; STAGES]) };
}

/// Records `elapsed` against `stage`: always into the registry
/// histogram, and into the calling thread's open [`round_scope`]
/// accumulator, if any.
pub fn stage_time(stage: Stage, elapsed: Duration) {
    let us = elapsed.as_micros() as u64;
    METRICS.stage_duration_us(stage).observe(us);
    STAGE_ACTIVE.with(|active| {
        if active.get() {
            STAGE_ACC.with(|acc| {
                let mut v = acc.get();
                v[stage.index()] += us;
                acc.set(v);
            });
        }
    });
}

/// Opens a per-round stage accumulation scope on this thread; the
/// guard's [`take`](RoundScope::take) returns the microseconds
/// recorded per stage since the scope opened.
pub fn round_scope() -> RoundScope {
    let prior = STAGE_ACTIVE.with(|active| active.replace(true));
    let prior_acc = STAGE_ACC.with(|acc| acc.replace([0; STAGES]));
    RoundScope {
        prior,
        prior_acc,
        taken: false,
    }
}

/// The guard of one [`round_scope`]; restores the outer scope (if
/// any) on drop, so nested sessions on one thread stay separate.
#[derive(Debug)]
pub struct RoundScope {
    prior: bool,
    prior_acc: [u64; STAGES],
    taken: bool,
}

impl RoundScope {
    /// Closes the scope and returns `[saturate, check, merge]`
    /// microseconds accumulated on this thread while it was open.
    pub fn take(mut self) -> [u64; STAGES] {
        self.taken = true;
        let acc = STAGE_ACC.with(|a| a.replace(self.prior_acc));
        STAGE_ACTIVE.with(|a| a.set(self.prior));
        acc
    }
}

impl Drop for RoundScope {
    fn drop(&mut self) {
        if !self.taken {
            STAGE_ACC.with(|a| a.set(self.prior_acc));
            STAGE_ACTIVE.with(|a| a.set(self.prior));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_cumulative_and_monotone() {
        let h = Histogram::new();
        for v in [0, 1, 2, 3, 900, u64::MAX] {
            h.observe(v);
        }
        assert_eq!(h.count(), 6);
        let mut out = String::new();
        h.render_into(&mut out, "t", "");
        let mut last = 0u64;
        let mut bucket_lines = 0;
        for line in out.lines() {
            if let Some(rest) = line.strip_prefix("t_bucket{le=\"") {
                let count: u64 = rest
                    .split("\"} ")
                    .nth(1)
                    .expect("sample value")
                    .parse()
                    .expect("integer");
                assert!(count >= last, "buckets must be cumulative: {out}");
                last = count;
                bucket_lines += 1;
            }
        }
        assert_eq!(bucket_lines, BUCKETS + 1, "+Inf bucket present");
        assert!(out.ends_with("t_sum 906\nt_count 6\n") || out.contains("t_count 6"));
        // u64::MAX overflows every finite bucket but lands in +Inf.
        assert!(out.contains("t_bucket{le=\"+Inf\"} 6"));
        // 0 and 1 both land in the le="1" bucket; 2 in le="2"; 3 in le="4".
        assert!(
            out.starts_with("t_bucket{le=\"1\"} 2\nt_bucket{le=\"2\"} 3\nt_bucket{le=\"4\"} 4\n")
        );
    }

    #[test]
    fn label_escaping() {
        assert_eq!(escape_label_value("plain"), "plain");
        assert_eq!(escape_label_value("a\"b"), "a\\\"b");
        assert_eq!(escape_label_value("a\\b"), "a\\\\b");
        assert_eq!(escape_label_value("a\nb"), "a\\nb");
        assert_eq!(render_label("k", "v\"x"), "k=\"v\\\"x\",");
    }

    #[test]
    fn exposition_contains_every_family_and_is_well_formed() {
        METRICS.waves.inc();
        METRICS.http_requests(Endpoint::Healthz).inc();
        METRICS.http_duration_us(Endpoint::Healthz).observe(120);
        stage_time(Stage::Saturate, Duration::from_micros(5));
        let text = render_prometheus();
        for name in [
            "cuba_rounds_explored_total",
            "cuba_rounds_replayed_total",
            "cuba_waves_total",
            "cuba_steals_total",
            "cuba_cache_hits_total",
            "cuba_cache_misses_total",
            "cuba_profile_hits_total",
            "cuba_profile_misses_total",
            "cuba_probes_total",
            "cuba_reduce_passes_total",
            "cuba_trace_events_dropped_total",
            "cuba_snapshot_saves_total",
            "cuba_snapshot_loads_total",
            "cuba_snapshot_spills_total",
            "cuba_sessions_active",
            "cuba_workers_busy",
            "cuba_http_requests_total",
            "cuba_http_request_duration_us",
            "cuba_stage_duration_us",
            "cuba_frontier_edges",
        ] {
            assert!(text.contains(&format!("# TYPE {name} ")), "missing {name}");
            assert!(text.contains(&format!("# HELP {name} ")), "missing {name}");
        }
        // Every non-comment line is `name{labels}? value`.
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            let (_, value) = line.rsplit_once(' ').expect("sample line");
            assert!(
                value.parse::<i64>().is_ok(),
                "non-numeric sample value in '{line}'"
            );
        }
        assert!(text.contains("endpoint=\"healthz\""));
        assert!(text.contains("stage=\"saturate\""));
        assert!(text.contains("le=\"+Inf\""));
    }

    #[test]
    fn counters_are_monotonic_across_scrapes() {
        let before = METRICS.rounds_explored.get();
        let scrape1 = render_prometheus();
        METRICS.rounds_explored.add(3);
        let scrape2 = render_prometheus();
        let value = |text: &str| -> u64 {
            text.lines()
                .find(|l| l.starts_with("cuba_rounds_explored_total "))
                .and_then(|l| l.rsplit_once(' '))
                .and_then(|(_, v)| v.parse().ok())
                .expect("counter sample")
        };
        assert!(value(&scrape1) >= before);
        assert_eq!(value(&scrape2), value(&scrape1) + 3);
    }

    #[test]
    fn round_scope_collects_and_restores() {
        let scope = round_scope();
        stage_time(Stage::Saturate, Duration::from_micros(40));
        stage_time(Stage::Merge, Duration::from_micros(7));
        {
            // A nested scope must not leak into the outer one…
            let inner = round_scope();
            stage_time(Stage::Saturate, Duration::from_micros(100));
            let acc = inner.take();
            assert_eq!(acc[Stage::Saturate.index()], 100);
        }
        stage_time(Stage::Saturate, Duration::from_micros(2));
        let acc = scope.take();
        assert_eq!(acc[Stage::Saturate.index()], 42);
        assert_eq!(acc[Stage::Merge.index()], 7);
        assert_eq!(acc[Stage::Check.index()], 0);
        // Outside any scope, stage_time still feeds the histograms
        // but no accumulator.
        stage_time(Stage::Check, Duration::from_micros(1));
        let fresh = round_scope().take();
        assert_eq!(fresh, [0; STAGES]);
    }
}
