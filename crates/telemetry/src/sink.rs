//! The `--trace` text sink: prefixed, line-locked stderr output.
//!
//! Before this module, concurrent sessions under `--parallel` each
//! wrote bare `[trace] …` lines with independent `eprintln!` calls,
//! so lines from different arms interleaved with no way to tell who
//! said what. Every trace line now goes through one process-wide
//! line lock and carries a caller-chosen prefix (the property name,
//! the portfolio arm, the serve session id).

use std::io::Write;
use std::sync::Mutex;

static LINE_LOCK: Mutex<()> = Mutex::new(());

/// Writes one `[trace][{prefix}] {line}` record to stderr under the
/// process-wide line lock. With an empty prefix the record is the
/// legacy `[trace] {line}` shape.
pub fn trace_line(prefix: &str, line: &str) {
    let _guard = LINE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let mut stderr = std::io::stderr().lock();
    if prefix.is_empty() {
        let _ = writeln!(stderr, "[trace] {line}");
    } else {
        let _ = writeln!(stderr, "[trace][{prefix}] {line}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_line_does_not_poison_or_panic() {
        // Output lands on stderr (captured by the harness); this
        // exercises both prefix shapes and the lock path.
        trace_line("", "bare line");
        trace_line("fig1#0", "round k=5");
        let threads: Vec<_> = (0..4)
            .map(|i| {
                std::thread::spawn(move || {
                    for j in 0..8 {
                        trace_line(&format!("arm{i}"), &format!("line {j}"));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("sink thread");
        }
    }
}
