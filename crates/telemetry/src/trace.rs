//! The span/event recorder and its Chrome trace-event JSON exporter.
//!
//! Recording is lock-cheap: each thread owns a registered buffer
//! behind its own mutex (uncontended on the hot path — only the
//! exporter ever locks another thread's buffer), timestamps come from
//! the crate-wide epoch, and a global sequence is not needed because
//! buffers preserve per-thread push order, which is exactly the
//! `B`/`E` nesting order Perfetto's importer expects.
//!
//! Span guards push the `B` event on creation and the matching `E`
//! on drop, so a trace can never contain an unmatched `B` from a
//! completed scope. A bounded buffer (1M events per thread) sheds
//! load instead of growing without limit; shed events are counted in
//! the metrics registry (`cuba_trace_events_dropped_total`).

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex};

use crate::{json_escape, metrics::METRICS, now_us, tracing_enabled};

/// Hard cap per thread buffer; beyond it events are dropped and
/// counted, never reallocated.
const BUFFER_CAP: usize = 1 << 20;

/// A recorded argument value.
#[derive(Debug, Clone)]
pub enum ArgValue {
    /// An unsigned counter-like value.
    U64(u64),
    /// A short label (engine name, property spec).
    Str(String),
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::U64(v)
    }
}

impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        ArgValue::U64(v as u64)
    }
}

impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Str(v.to_owned())
    }
}

impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Str(v)
    }
}

/// One Chrome trace event (`ph` is `b'B'`, `b'E'` or `b'i'`).
#[derive(Debug, Clone)]
struct Event {
    name: &'static str,
    ph: u8,
    ts: u64,
    tid: u32,
    args: Vec<(&'static str, ArgValue)>,
}

/// One thread's event buffer, registered globally so the exporter
/// can drain buffers of threads that have since exited.
#[derive(Debug, Default)]
struct Buffer {
    events: Mutex<Vec<Event>>,
}

static REGISTRY: Mutex<Vec<Arc<Buffer>>> = Mutex::new(Vec::new());
static NEXT_TID: AtomicU32 = AtomicU32::new(1);

thread_local! {
    static LOCAL: RefCell<Option<Arc<Buffer>>> = const { RefCell::new(None) };
    static TID: Cell<u32> = const { Cell::new(0) };
}

/// The calling thread's trace track id. Allocated on first use;
/// [`set_thread_tid`] overrides it (saturation shard workers set
/// their shard index so Perfetto renders one row per shard).
pub fn thread_tid() -> u32 {
    TID.with(|t| {
        if t.get() == 0 {
            t.set(NEXT_TID.fetch_add(1, Ordering::Relaxed).max(1));
        }
        t.get()
    })
}

/// Pins the calling thread's track id (e.g. to a worker-shard index).
/// Ids need not be unique across threads — concurrent waves are
/// separated by their timestamps.
pub fn set_thread_tid(tid: u32) {
    TID.with(|t| t.set(tid));
}

fn push(event: Event) {
    LOCAL.with(|local| {
        let mut slot = local.borrow_mut();
        let buffer = slot.get_or_insert_with(|| {
            let buffer = Arc::new(Buffer::default());
            REGISTRY
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(buffer.clone());
            buffer
        });
        let mut events = buffer.events.lock().unwrap_or_else(|e| e.into_inner());
        if events.len() < BUFFER_CAP {
            events.push(event);
        } else {
            METRICS.trace_events_dropped.inc();
        }
    });
}

/// An in-flight span: records `B` on creation, the matching `E` (with
/// any [`arg`](Span::arg)s attached along the way) on drop. When
/// tracing is disabled the constructor returns an inert guard — one
/// relaxed load, no allocation.
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    active: bool,
    end_args: Vec<(&'static str, ArgValue)>,
}

impl Span {
    /// Attaches an argument to the closing `E` event (values known
    /// only at the end of the scope: states found, edges merged).
    pub fn arg(&mut self, key: &'static str, value: impl Into<ArgValue>) {
        if self.active {
            self.end_args.push((key, value.into()));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.active {
            push(Event {
                name: self.name,
                ph: b'E',
                ts: now_us(),
                tid: thread_tid(),
                args: std::mem::take(&mut self.end_args),
            });
        }
    }
}

/// Opens a span with no start arguments.
#[inline]
pub fn span(name: &'static str) -> Span {
    span_args(name, Vec::new())
}

/// Opens a span whose `B` event carries `args`.
pub fn span_args(name: &'static str, args: Vec<(&'static str, ArgValue)>) -> Span {
    if !tracing_enabled() {
        return Span {
            name,
            active: false,
            end_args: Vec::new(),
        };
    }
    push(Event {
        name,
        ph: b'B',
        ts: now_us(),
        tid: thread_tid(),
        args,
    });
    Span {
        name,
        active: true,
        end_args: Vec::new(),
    }
}

/// Records a point event (`ph: "i"`, thread scope).
pub fn instant(name: &'static str, args: Vec<(&'static str, ArgValue)>) {
    if !tracing_enabled() {
        return;
    }
    push(Event {
        name,
        ph: b'i',
        ts: now_us(),
        tid: thread_tid(),
        args,
    });
}

/// Drains every registered buffer (push order per thread preserved).
fn drain() -> Vec<Event> {
    let registry = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    let mut all = Vec::new();
    for buffer in registry.iter() {
        let mut events = buffer.events.lock().unwrap_or_else(|e| e.into_inner());
        all.append(&mut events);
    }
    all
}

fn event_json(event: &Event, pid: u32) -> String {
    let mut out = String::with_capacity(96);
    out.push_str("{\"name\":");
    out.push_str(&json_escape(event.name));
    out.push_str(",\"cat\":\"cuba\",\"ph\":\"");
    out.push(event.ph as char);
    out.push('"');
    if event.ph == b'i' {
        // Instant scope: this thread's track only.
        out.push_str(",\"s\":\"t\"");
    }
    out.push_str(&format!(
        ",\"ts\":{},\"pid\":{pid},\"tid\":{}",
        event.ts, event.tid
    ));
    if !event.args.is_empty() {
        out.push_str(",\"args\":{");
        for (i, (key, value)) in event.args.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json_escape(key));
            out.push(':');
            match value {
                ArgValue::U64(v) => out.push_str(&v.to_string()),
                ArgValue::Str(s) => out.push_str(&json_escape(s)),
            }
        }
        out.push('}');
    }
    out.push('}');
    out
}

/// Drains all buffered events into a Chrome trace-event JSON document
/// (the "JSON Object Format": a `traceEvents` array, loadable by
/// Perfetto and `chrome://tracing`). Order is per-thread push order —
/// importers sort by `ts` themselves.
pub fn chrome_trace_json() -> String {
    let pid = std::process::id();
    let events = drain();
    let mut out = String::from("{\"traceEvents\":[");
    for (i, event) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&event_json(event, pid));
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

/// Writes [`chrome_trace_json`] to `path`.
///
/// # Errors
///
/// The I/O failure message, prefixed with the path.
pub fn export_chrome(path: &str) -> Result<(), String> {
    std::fs::write(path, chrome_trace_json()).map_err(|e| format!("cannot write {path}: {e}"))
}

// ---------------------------------------------------------------------------
// Validation: a minimal JSON reader plus the Perfetto-importer rules
// we guarantee, powering `cuba trace-check`.

/// What a validated trace contains.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct TraceSummary {
    /// Total events.
    pub events: usize,
    /// Matched `B`/`E` span pairs.
    pub spans: usize,
    /// Point (`i`) events.
    pub instants: usize,
    /// Distinct `tid` tracks.
    pub tracks: usize,
    /// Span count per name, for the catalogue assertions.
    pub span_names: BTreeMap<String, usize>,
}

/// A parsed JSON value (just enough for trace files).
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
    fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

struct Parser<'a> {
    text: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            text,
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, message: &str) -> String {
        format!("json error at byte {}: {message}", self.pos)
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(self.error("expected a value")),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{word}'")))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| self.error("bad number"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.error("bad \\u escape"))?;
                            // Surrogate pairs don't occur in our own
                            // output; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.error("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 passes through intact. `pos` only
                    // ever advances by whole chars, so the slice is valid.
                    let c = self.text[self.pos..]
                        .chars()
                        .next()
                        .expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }
}

/// Parses and validates a Chrome trace-event document against the
/// rules Perfetto's importer relies on (and this crate guarantees):
/// a `traceEvents` array; every event an object with a string `name`,
/// a `ph` in `B`/`E`/`i`/`M`, a non-negative numeric `ts`, numeric
/// `pid` and `tid`; and, per `(pid, tid)` track in file order, strict
/// `B`/`E` stack nesting — every `B` closed by an `E` of the same
/// name at a timestamp no earlier than its opening.
///
/// # Errors
///
/// The first violation found, as a message naming the event index.
pub fn validate_chrome_trace(text: &str) -> Result<TraceSummary, String> {
    let mut parser = Parser::new(text);
    let root = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing bytes after the document"));
    }
    let events = match root.get("traceEvents") {
        Some(Json::Arr(events)) => events,
        _ => return Err("top level must be an object with a 'traceEvents' array".to_owned()),
    };
    let mut summary = TraceSummary {
        events: events.len(),
        ..TraceSummary::default()
    };
    // Per-(pid,tid) stacks of (name, ts) for B/E matching.
    let mut stacks: BTreeMap<(u64, u64), Vec<(String, f64)>> = BTreeMap::new();
    for (i, event) in events.iter().enumerate() {
        let at = |what: &str| format!("event {i}: {what}");
        if !matches!(event, Json::Obj(_)) {
            return Err(at("not an object"));
        }
        let name = event
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| at("missing string 'name'"))?;
        let ph = event
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| at("missing string 'ph'"))?;
        let ts = event
            .get("ts")
            .and_then(Json::as_num)
            .ok_or_else(|| at("missing numeric 'ts'"))?;
        if !ts.is_finite() || ts < 0.0 {
            return Err(at("'ts' must be a non-negative number"));
        }
        let pid = event
            .get("pid")
            .and_then(Json::as_num)
            .ok_or_else(|| at("missing numeric 'pid'"))? as u64;
        let tid = event
            .get("tid")
            .and_then(Json::as_num)
            .ok_or_else(|| at("missing numeric 'tid'"))? as u64;
        let stack = stacks.entry((pid, tid)).or_default();
        match ph {
            "B" => stack.push((name.to_owned(), ts)),
            "E" => {
                let (open_name, open_ts) = stack
                    .pop()
                    .ok_or_else(|| at("'E' with no open 'B' on this track"))?;
                if open_name != name {
                    return Err(at(&format!(
                        "'E' for '{name}' but the open span is '{open_name}'"
                    )));
                }
                if ts < open_ts {
                    return Err(at("span ends before it begins"));
                }
                summary.spans += 1;
                *summary.span_names.entry(open_name).or_insert(0) += 1;
            }
            "i" => summary.instants += 1,
            "M" => {}
            other => return Err(at(&format!("unsupported ph '{other}'"))),
        }
    }
    for ((pid, tid), stack) in &stacks {
        if let Some((name, _)) = stack.last() {
            return Err(format!(
                "track pid={pid} tid={tid}: span '{name}' is never closed"
            ));
        }
    }
    summary.tracks = stacks.len();
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Spans record B/E pairs in nesting order and the exported
    /// document validates, including across threads.
    #[test]
    fn spans_export_and_validate() {
        let _serial = crate::TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        crate::enable_tracing();
        {
            let mut outer = span_args("outer", vec![("k", ArgValue::U64(3))]);
            {
                let _inner = span("inner");
                instant("tick", vec![("n", ArgValue::U64(1))]);
            }
            outer.arg("states", 42u64);
        }
        std::thread::spawn(|| {
            set_thread_tid(77);
            let _shard = span("shard");
        })
        .join()
        .expect("worker");
        crate::disable_tracing();
        let json = chrome_trace_json();
        let summary = validate_chrome_trace(&json).expect("valid trace");
        assert!(summary.spans >= 3, "{summary:?}");
        assert!(summary.instants >= 1);
        assert!(summary.tracks >= 2);
        assert!(summary.span_names.contains_key("outer"));
        assert!(summary.span_names.contains_key("shard"));
        assert!(json.contains("\"tid\":77"));
        assert!(json.contains("\"args\":{\"states\":42}"));
    }

    /// Disabled tracing records nothing — the zero-cost path.
    #[test]
    fn disabled_spans_record_nothing() {
        let _serial = crate::TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        crate::disable_tracing();
        let before = chrome_trace_json();
        {
            let mut s = span("ghost");
            s.arg("x", 1u64);
            instant("ghost-instant", Vec::new());
        }
        let after = chrome_trace_json();
        // Both drains see an empty (or equally drained) buffer set.
        assert_eq!(before.matches("ghost").count(), 0);
        assert_eq!(after.matches("ghost").count(), 0);
    }

    #[test]
    fn validator_rejects_malformed_traces() {
        assert!(validate_chrome_trace("[]").is_err(), "array top level");
        assert!(validate_chrome_trace("{\"traceEvents\":3}").is_err());
        // Unmatched B.
        let unmatched =
            "{\"traceEvents\":[{\"name\":\"a\",\"ph\":\"B\",\"ts\":1,\"pid\":1,\"tid\":1}]}";
        let err = validate_chrome_trace(unmatched).unwrap_err();
        assert!(err.contains("never closed"), "{err}");
        // E before B.
        let orphan =
            "{\"traceEvents\":[{\"name\":\"a\",\"ph\":\"E\",\"ts\":1,\"pid\":1,\"tid\":1}]}";
        assert!(validate_chrome_trace(orphan).is_err());
        // Name mismatch.
        let crossed = "{\"traceEvents\":[\
            {\"name\":\"a\",\"ph\":\"B\",\"ts\":1,\"pid\":1,\"tid\":1},\
            {\"name\":\"b\",\"ph\":\"E\",\"ts\":2,\"pid\":1,\"tid\":1}]}";
        let err = validate_chrome_trace(crossed).unwrap_err();
        assert!(err.contains("open span"), "{err}");
        // Negative timestamp.
        let negative =
            "{\"traceEvents\":[{\"name\":\"a\",\"ph\":\"i\",\"ts\":-1,\"pid\":1,\"tid\":1}]}";
        assert!(validate_chrome_trace(negative).is_err());
    }

    #[test]
    fn validator_accepts_escapes_and_interleaved_tracks() {
        let text = "{\"traceEvents\":[\
            {\"name\":\"sp\\u0061n \\\"q\\\"\",\"ph\":\"B\",\"ts\":1.5,\"pid\":1,\"tid\":1},\
            {\"name\":\"other\",\"ph\":\"B\",\"ts\":2,\"pid\":1,\"tid\":2},\
            {\"name\":\"span \\\"q\\\"\",\"ph\":\"E\",\"ts\":3,\"pid\":1,\"tid\":1},\
            {\"name\":\"other\",\"ph\":\"E\",\"ts\":4,\"pid\":1,\"tid\":2}]}";
        let summary = validate_chrome_trace(text).expect("valid");
        assert_eq!(summary.spans, 2);
        assert_eq!(summary.tracks, 2);
        assert_eq!(summary.span_names.get("span \"q\""), Some(&1));
    }
}
