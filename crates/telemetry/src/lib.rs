//! `cuba-telemetry` — the observability layer of the CUBA
//! reproduction: structured tracing spans and a static metrics
//! registry, both dependency-free (hand-rolled like the workspace's
//! JSON emitters) and both designed to never perturb an analysis.
//!
//! # Two halves
//!
//! **Tracing** ([`trace`]): a lock-cheap span/event recorder. Each
//! thread buffers its events in its own registered buffer (one
//! uncontended mutex per thread); a global epoch gives every event a
//! microsecond timestamp; span guards push a `B` event on creation
//! and the matching `E` on drop, so every exported trace nests by
//! construction. [`trace::export_chrome`] drains the buffers into
//! Chrome trace-event JSON (`ph: B/E/i`) loadable in Perfetto or
//! `chrome://tracing`, and [`trace::validate_chrome_trace`] re-parses
//! and checks an exported file (the `cuba trace-check` subcommand).
//!
//! **Metrics** ([`metrics`]): a static registry of atomic counters,
//! gauges and fixed log-bucket histograms — always on (one relaxed
//! atomic per update), exposed as Prometheus text exposition at
//! `GET /metrics` on `cuba serve` and as the `telemetry` block of
//! `verify --json` records.
//!
//! # Observation never perturbs verdicts
//!
//! Tracing is disabled until [`enable_tracing`] is called (by
//! `--trace-out`); a disabled span site costs one relaxed atomic
//! load. Metric updates are relaxed atomics off the decision paths.
//! Nothing in this crate feeds back into scheduling or saturation,
//! so verdicts, bounds and growth logs are byte-identical with
//! telemetry on — `tests/parallel_determinism.rs` pins this.

pub mod metrics;
pub mod sink;
pub mod trace;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

static TRACING: AtomicBool = AtomicBool::new(false);
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Turns the span recorder on (idempotent). Until this is called,
/// every span site is a single relaxed load and records nothing.
pub fn enable_tracing() {
    EPOCH.get_or_init(Instant::now);
    TRACING.store(true, Ordering::Release);
}

/// Turns the span recorder back off. Buffered events stay buffered
/// (an export after disabling still sees them).
pub fn disable_tracing() {
    TRACING.store(false, Ordering::Release);
}

/// Whether spans are being recorded — the one relaxed load every
/// span site pays when tracing is off.
#[inline]
pub fn tracing_enabled() -> bool {
    TRACING.load(Ordering::Relaxed)
}

/// Microseconds since the tracing epoch (first `enable_tracing`).
pub(crate) fn now_us() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_micros() as u64
}

/// Minimal JSON string escaping shared by the Chrome-trace writer and
/// the Prometheus `HELP` renderer — the workspace idiom, re-rolled
/// here because this crate sits below `cuba-bench` in the dependency
/// order.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Serializes tests that touch the process-global tracing state (the
/// enable flag and the thread-buffer registry): cargo's parallel test
/// threads would otherwise race on them.
#[cfg(test)]
pub(crate) static TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enable_disable_round_trip() {
        let _serial = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        enable_tracing();
        assert!(tracing_enabled());
        disable_tracing();
        assert!(!tracing_enabled());
    }

    #[test]
    fn json_escape_escapes_controls() {
        assert_eq!(json_escape("plain"), "\"plain\"");
        assert_eq!(json_escape("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_escape("line\nbreak"), "\"line\\nbreak\"");
        assert_eq!(json_escape("\u{1}"), "\"\\u0001\"");
    }
}
