/// Mixed-radix encoder for shared states composed of several small
/// fields (flags, channels, bounded counters).
///
/// The benchmark models keep Boolean-program-style shared variables;
/// `FieldEnc` maps a tuple of field values to the dense shared-state
/// id a [`Cpds`](cuba_pds::Cpds) needs, and back.
///
/// # Example
///
/// ```
/// use cuba_benchmarks::FieldEnc;
///
/// // fields: req ∈ 0..3, flag ∈ 0..2, stopped ∈ 0..2
/// let enc = FieldEnc::new(&[3, 2, 2]);
/// assert_eq!(enc.total(), 12);
/// let q = enc.encode(&[2, 1, 0]);
/// assert_eq!(enc.decode(q), vec![2, 1, 0]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldEnc {
    sizes: Vec<u32>,
}

impl FieldEnc {
    /// Creates an encoder for fields with the given cardinalities.
    ///
    /// # Panics
    ///
    /// Panics if any field size is zero.
    pub fn new(sizes: &[u32]) -> Self {
        assert!(sizes.iter().all(|&s| s > 0), "field sizes must be positive");
        FieldEnc {
            sizes: sizes.to_vec(),
        }
    }

    /// The number of encoded states (product of field sizes).
    pub fn total(&self) -> u32 {
        self.sizes.iter().product()
    }

    /// Number of fields.
    pub fn num_fields(&self) -> usize {
        self.sizes.len()
    }

    /// Encodes a value tuple (little-endian mixed radix).
    ///
    /// # Panics
    ///
    /// Panics if the tuple length or any value is out of range.
    pub fn encode(&self, vals: &[u32]) -> u32 {
        assert_eq!(vals.len(), self.sizes.len(), "wrong number of fields");
        let mut q = 0u32;
        let mut mult = 1u32;
        for (v, s) in vals.iter().zip(&self.sizes) {
            assert!(v < s, "field value {v} out of range 0..{s}");
            q += v * mult;
            mult *= s;
        }
        q
    }

    /// Decodes a shared-state id back into field values.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn decode(&self, q: u32) -> Vec<u32> {
        assert!(q < self.total(), "state {q} out of range");
        let mut rest = q;
        self.sizes
            .iter()
            .map(|&s| {
                let v = rest % s;
                rest /= s;
                v
            })
            .collect()
    }

    /// Enumerates all value tuples (in encoding order).
    pub fn iter_all(&self) -> impl Iterator<Item = Vec<u32>> + '_ {
        (0..self.total()).map(|q| self.decode(q))
    }

    /// Encodes a tuple equal to `vals` except field `idx` set to `v`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range inputs.
    pub fn with(&self, vals: &[u32], idx: usize, v: u32) -> u32 {
        let mut copy = vals.to_vec();
        copy[idx] = v;
        self.encode(&copy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all() {
        let enc = FieldEnc::new(&[3, 2, 4]);
        assert_eq!(enc.total(), 24);
        for q in 0..enc.total() {
            assert_eq!(enc.encode(&enc.decode(q)), q);
        }
    }

    #[test]
    fn encoding_is_bijective() {
        let enc = FieldEnc::new(&[2, 3]);
        let mut seen = std::collections::HashSet::new();
        for vals in enc.iter_all() {
            assert!(seen.insert(enc.encode(&vals)));
        }
        assert_eq!(seen.len(), 6);
    }

    #[test]
    fn with_replaces_one_field() {
        let enc = FieldEnc::new(&[3, 2, 2]);
        let vals = vec![1, 0, 1];
        let q = enc.with(&vals, 1, 1);
        assert_eq!(enc.decode(q), vec![1, 1, 1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_value_panics() {
        FieldEnc::new(&[2]).encode(&[2]);
    }

    #[test]
    #[should_panic(expected = "wrong number")]
    fn wrong_arity_panics() {
        FieldEnc::new(&[2, 2]).encode(&[1]);
    }
}
