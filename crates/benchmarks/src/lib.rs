//! The benchmark programs of the CUBA paper (§6, Table 2) and its
//! running examples (Fig. 1, Fig. 2, Fig. 7), rebuilt as concurrent
//! pushdown systems.
//!
//! The paper's artifact (C/Java sources put through predicate
//! abstraction) is no longer available; each model here is
//! reconstructed from the published descriptions of the original
//! programs. See `DESIGN.md` §2 for the substitution notes and
//! [`suite::table2_suite`] for the full Table 2 configuration list.
//!
//! # Example
//!
//! ```
//! use cuba_benchmarks::suite::table2_suite;
//!
//! let suite = table2_suite();
//! assert!(suite.iter().any(|b| b.id == "bluetooth-1"));
//! for bench in &suite {
//!     assert!(bench.cpds.num_threads() >= 2);
//! }
//! ```

pub mod bluetooth;
pub mod bst;
pub mod crawler;
pub mod dekker;
mod encode;
pub mod fig1;
pub mod fig2;
pub mod fig7;
pub mod proc2;
pub mod random;
pub mod stefan;
pub mod suite;
pub mod textfmt;

pub use encode::FieldEnc;
pub use suite::{Benchmark, Expectation};
