//! The Windows NT Bluetooth driver benchmark (Table 2, programs 1–3),
//! after Qadeer/Wu (KISS, PLDI 2004) and Chaki et al. (TACAS 2006).
//!
//! Two thread templates — *stoppers*, which halt the driver, and
//! *adders*, which perform I/O — synchronize through a pending-I/O
//! counter, a stopping flag, a stopping event and a stopped bit. As in
//! the paper, the counter is modeled by a *recursive procedure*: a
//! dedicated counter thread whose stack depth mirrors `pendingIo`,
//! driven through a shared request channel. Because every push of the
//! counter consumes a request that only another thread can issue, the
//! per-context stack growth is bounded and FCR holds, while the stack
//! itself is unbounded across contexts — exactly the regime CUBA
//! targets.
//!
//! Three versions, as in the paper's evaluation:
//!
//! * **V1** — the original driver: the adder checks `stoppingFlag`
//!   *before* registering its I/O, so a stop can slip in between and
//!   the adder later performs I/O on a stopped driver
//!   (`assert(!stopped)` fails).
//! * **V2** — the historical "fix": the adder increments first and
//!   re-checks, but the stopper may declare the driver stopped without
//!   the stopping event having fired (a stop-without-wait race kept
//!   from the driver's history, reconstructed; see DESIGN.md §2).
//!   Still unsafe.
//! * **V3** — both fixes applied; safe for any number of contexts.

use cuba_pds::{Action, Cpds, CpdsBuilder, Pds, PdsBuilder, SharedState, StackSym};

use cuba_core::Property;

use crate::FieldEnc;

/// Which historical version of the driver to model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Version {
    /// Original driver (check-then-increment race).
    V1,
    /// First fix (increment-then-check) with the stop-without-wait
    /// stopper race.
    V2,
    /// Fully fixed driver.
    V3,
}

/// Field layout of the shared state:
/// `req ∈ {none, inc, dec}`, `flag`, `event`, `stopped`, `err`.
pub fn encoder() -> FieldEnc {
    FieldEnc::new(&[3, 2, 2, 2, 2])
}

const REQ: usize = 0;
const FLAG: usize = 1;
const EVENT: usize = 2;
const STOPPED: usize = 3;
const ERR: usize = 4;

const REQ_NONE: u32 = 0;
const REQ_INC: u32 = 1;
const REQ_DEC: u32 = 2;

// Counter thread stack symbols.
const Z: u32 = 0; // bottom sentinel: pendingIo == 0
const C: u32 = 1; // one unit of pendingIo

// Adder program counters.
const A0: u32 = 0;
const A1: u32 = 1;
const A2: u32 = 2;
const A3: u32 = 3;
const A4: u32 = 4;
const A5: u32 = 5;
const A6: u32 = 6;
const A7: u32 = 7;

// Stopper program counters.
const S0: u32 = 0;
const S1: u32 = 1;
const S2: u32 = 2;
const S3: u32 = 3;
const S4: u32 = 4;

fn q(enc: &FieldEnc, vals: &[u32]) -> SharedState {
    SharedState(enc.encode(vals))
}

/// Builds the counter thread: a recursive procedure whose stack depth
/// is the current `pendingIo`. Consumes `inc`/`dec` requests; fires
/// the stopping event when the count reaches zero under a raised flag;
/// a `dec` at zero is a counter underflow and raises `err`.
fn counter_pds(enc: &FieldEnc) -> Pds {
    let mut b = PdsBuilder::new(enc.total(), 2);
    b.name_symbol(StackSym(Z), "Z");
    b.name_symbol(StackSym(C), "C");
    for vals in enc.iter_all() {
        if vals[ERR] == 1 {
            continue;
        }
        // inc: push one unit, acknowledge by clearing the channel.
        if vals[REQ] == REQ_INC {
            let post = q(enc, &{
                let mut v = vals.clone();
                v[REQ] = REQ_NONE;
                v
            });
            for top in [Z, C] {
                b.action(Action::push(
                    q(enc, &vals),
                    StackSym(top),
                    post,
                    StackSym(C),
                    StackSym(top),
                ))
                .expect("static model");
            }
        }
        // dec: pop one unit; at the sentinel it is an underflow.
        if vals[REQ] == REQ_DEC {
            let post = q(enc, &{
                let mut v = vals.clone();
                v[REQ] = REQ_NONE;
                v
            });
            b.action(Action::pop(q(enc, &vals), StackSym(C), post))
                .expect("static model");
            let err_post = q(enc, &{
                let mut v = vals.clone();
                v[ERR] = 1;
                v
            });
            b.action(Action::overwrite(
                q(enc, &vals),
                StackSym(Z),
                err_post,
                StackSym(Z),
            ))
            .expect("static model");
        }
        // Zero detection: count == 0 (sentinel on top) with the flag
        // raised fires the stopping event.
        if vals[REQ] == REQ_NONE && vals[FLAG] == 1 && vals[EVENT] == 0 {
            let post = q(enc, &{
                let mut v = vals.clone();
                v[EVENT] = 1;
                v
            });
            b.action(Action::overwrite(
                q(enc, &vals),
                StackSym(Z),
                post,
                StackSym(Z),
            ))
            .expect("static model");
        }
    }
    b.build().expect("static model")
}

/// Builds the adder template for `version`.
fn adder_pds(enc: &FieldEnc, version: Version) -> Pds {
    let mut b = PdsBuilder::new(enc.total(), 8);
    for vals in enc.iter_all() {
        if vals[ERR] == 1 {
            continue;
        }
        let here = q(enc, &vals);
        let with = |field: usize, v: u32| -> SharedState {
            let mut copy = vals.clone();
            copy[field] = v;
            q(enc, &copy)
        };
        match version {
            Version::V1 => {
                // A0: check flag, then register I/O — the race.
                if vals[FLAG] == 0 {
                    b.overwrite(here, StackSym(A0), here, StackSym(A1))
                        .expect("static");
                } else {
                    b.pop(here, StackSym(A0), here).expect("static");
                }
                // A1: issue inc (channel must be free).
                if vals[REQ] == REQ_NONE {
                    b.overwrite(here, StackSym(A1), with(REQ, REQ_INC), StackSym(A2))
                        .expect("static");
                    // A2: await acknowledgement.
                    b.overwrite(here, StackSym(A2), here, StackSym(A3))
                        .expect("static");
                    // A4: issue dec.
                    b.overwrite(here, StackSym(A4), with(REQ, REQ_DEC), StackSym(A5))
                        .expect("static");
                    // A5: await acknowledgement, then return.
                    b.pop(here, StackSym(A5), here).expect("static");
                }
                // A3: the work step with the driver assertion.
                if vals[STOPPED] == 1 {
                    b.overwrite(here, StackSym(A3), with(ERR, 1), StackSym(A3))
                        .expect("static");
                } else {
                    b.overwrite(here, StackSym(A3), here, StackSym(A4))
                        .expect("static");
                }
            }
            Version::V2 | Version::V3 => {
                // A0: register I/O first.
                if vals[REQ] == REQ_NONE {
                    b.overwrite(here, StackSym(A0), with(REQ, REQ_INC), StackSym(A1))
                        .expect("static");
                    // A1: await acknowledgement.
                    b.overwrite(here, StackSym(A1), here, StackSym(A2))
                        .expect("static");
                    // A4: issue dec after work.
                    b.overwrite(here, StackSym(A4), with(REQ, REQ_DEC), StackSym(A5))
                        .expect("static");
                    b.pop(here, StackSym(A5), here).expect("static");
                    // A6: abort path — undo the registration.
                    b.overwrite(here, StackSym(A6), with(REQ, REQ_DEC), StackSym(A7))
                        .expect("static");
                    b.pop(here, StackSym(A7), here).expect("static");
                }
                // A2: re-check the flag after registering.
                if vals[FLAG] == 1 {
                    b.overwrite(here, StackSym(A2), here, StackSym(A6))
                        .expect("static");
                } else {
                    b.overwrite(here, StackSym(A2), here, StackSym(A3))
                        .expect("static");
                }
                // A3: the work step with the driver assertion.
                if vals[STOPPED] == 1 {
                    b.overwrite(here, StackSym(A3), with(ERR, 1), StackSym(A3))
                        .expect("static");
                } else {
                    b.overwrite(here, StackSym(A3), here, StackSym(A4))
                        .expect("static");
                }
            }
        }
    }
    b.build().expect("static model")
}

/// Builds the stopper template for `version`.
fn stopper_pds(enc: &FieldEnc, version: Version) -> Pds {
    let mut b = PdsBuilder::new(enc.total(), 5);
    for vals in enc.iter_all() {
        if vals[ERR] == 1 {
            continue;
        }
        let here = q(enc, &vals);
        let with = |field: usize, v: u32| -> SharedState {
            let mut copy = vals.clone();
            copy[field] = v;
            q(enc, &copy)
        };
        // S0: claim the stop (only the first stopper proceeds).
        if vals[FLAG] == 0 {
            b.overwrite(here, StackSym(S0), with(FLAG, 1), StackSym(S1))
                .expect("static");
        } else {
            b.pop(here, StackSym(S0), here).expect("static");
        }
        // S1: release the driver's own token (issue dec).
        if vals[REQ] == REQ_NONE {
            b.overwrite(here, StackSym(S1), with(REQ, REQ_DEC), StackSym(S2))
                .expect("static");
            // S2: await acknowledgement.
            b.overwrite(here, StackSym(S2), here, StackSym(S3))
                .expect("static");
        }
        // S3: wait for the stopping event …
        if vals[EVENT] == 1 {
            b.overwrite(here, StackSym(S3), here, StackSym(S4))
                .expect("static");
        }
        // … except V2's stop-without-wait race: the stopper may give
        // up waiting and declare the driver stopped anyway.
        if version == Version::V2 && vals[EVENT] == 0 {
            b.overwrite(here, StackSym(S3), here, StackSym(S4))
                .expect("static");
        }
        // S4: mark stopped and return.
        b.action(Action::pop(here, StackSym(S4), with(STOPPED, 1)))
            .expect("static");
    }
    b.build().expect("static model")
}

/// Builds the Bluetooth CPDS: `num_stoppers` stoppers, `num_adders`
/// adders, plus the recursive counter thread (thread index 0) with
/// `pendingIo` initialized to 1 (the driver's own token).
pub fn build(version: Version, num_stoppers: usize, num_adders: usize) -> Cpds {
    let enc = encoder();
    let init = q(&enc, &[REQ_NONE, 0, 0, 0, 0]);
    let counter = counter_pds(&enc);
    let stopper = stopper_pds(&enc, version);
    let adder = adder_pds(&enc, version);
    let mut builder = CpdsBuilder::new(enc.total(), init)
        // Counter starts with one pending unit above the sentinel.
        .thread(counter, [StackSym(C), StackSym(Z)]);
    builder = builder.threads(&stopper, [StackSym(S0)], num_stoppers);
    builder = builder.threads(&adder, [StackSym(A0)], num_adders);
    builder.build().expect("static model")
}

/// The safety property: no error state is ever entered (covers both
/// the `assert(!stopped)` in the adder and counter underflow).
pub fn property() -> Property {
    let enc = encoder();
    let err_states = enc
        .iter_all()
        .filter(|v| v[ERR] == 1)
        .map(|v| q(&enc, &v))
        .collect();
    Property::NeverShared(err_states)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuba_core::{check_fcr, Cuba, CubaConfig, Verdict};

    #[test]
    fn all_versions_satisfy_fcr() {
        for version in [Version::V1, Version::V2, Version::V3] {
            let cpds = build(version, 1, 1);
            assert!(check_fcr(&cpds).holds(), "{version:?} must satisfy FCR");
        }
    }

    #[test]
    fn v1_is_unsafe() {
        let cpds = build(Version::V1, 1, 1);
        let outcome = Cuba::new(cpds, property())
            .run(&CubaConfig::default())
            .unwrap();
        assert!(outcome.verdict.is_unsafe(), "v1 1+1: {:?}", outcome.verdict);
        if let Verdict::Unsafe { k, .. } = outcome.verdict {
            assert!(k <= 8, "bug should appear at a small bound, got {k}");
        }
    }

    #[test]
    fn v2_is_unsafe() {
        let cpds = build(Version::V2, 1, 1);
        let outcome = Cuba::new(cpds, property())
            .run(&CubaConfig::default())
            .unwrap();
        assert!(outcome.verdict.is_unsafe(), "v2 1+1: {:?}", outcome.verdict);
    }

    #[test]
    fn v3_is_safe() {
        let cpds = build(Version::V3, 1, 1);
        let outcome = Cuba::new(cpds, property())
            .run(&CubaConfig::default())
            .unwrap();
        assert!(outcome.verdict.is_safe(), "v3 1+1: {:?}", outcome.verdict);
    }

    #[test]
    fn counter_stack_grows_across_contexts() {
        // With two adders the counter can reach depth 3 (1 + 2).
        let cpds = build(Version::V3, 1, 2);
        assert_eq!(cpds.num_threads(), 4);
        assert_eq!(cpds.initial_stack(0).len(), 2);
    }
}
