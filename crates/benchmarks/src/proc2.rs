//! Proc-2 (Table 2, program 7), standing in for the message-passing
//! example of Chaki et al. (TACAS 2006): two *recursive* server
//! threads handle requests from two non-recursive client threads over
//! per-client request/reply bits.
//!
//! The servers recurse freely (no shared-state gate), so FCR fails and
//! the symbolic engines are required — matching the paper's Table 2
//! row. Safety: a request and its reply are never both in flight.

use cuba_core::Property;
use cuba_pds::{Cpds, CpdsBuilder, Pds, PdsBuilder, SharedState, StackSym};

use crate::FieldEnc;

/// Shared fields: `p1, r1, p2, r2` (request/reply per client).
pub fn encoder() -> FieldEnc {
    FieldEnc::new(&[2, 2, 2, 2])
}

// Server stack symbols.
const S0: u32 = 0; // main loop
const SR: u32 = 1; // return pc of a recursive call

// Client stack symbols.
const C0: u32 = 0; // ready to request
const C1: u32 = 1; // awaiting reply

fn q(enc: &FieldEnc, vals: &[u32]) -> SharedState {
    SharedState(enc.encode(vals))
}

fn server_pds(enc: &FieldEnc) -> Pds {
    let mut b = PdsBuilder::new(enc.total(), 2);
    for vals in enc.iter_all() {
        let here = q(enc, &vals);
        // Unguarded recursion: the FCR-breaking self call.
        b.push(here, StackSym(S0), here, StackSym(S0), StackSym(SR))
            .expect("static");
        // Return from a recursive call.
        b.pop(here, StackSym(S0), here).expect("static");
        b.overwrite(here, StackSym(SR), here, StackSym(S0))
            .expect("static");
        // Serve client i: consume the request, post the reply.
        for client in 0..2usize {
            let (p, r) = (2 * client, 2 * client + 1);
            if vals[p] == 1 && vals[r] == 0 {
                let mut c = vals.clone();
                c[p] = 0;
                c[r] = 1;
                b.overwrite(here, StackSym(S0), q(enc, &c), StackSym(S0))
                    .expect("static");
            }
        }
    }
    b.build().expect("static")
}

fn client_pds(enc: &FieldEnc, client: usize) -> Pds {
    let (p, r) = (2 * client, 2 * client + 1);
    let mut b = PdsBuilder::new(enc.total(), 2);
    for vals in enc.iter_all() {
        let here = q(enc, &vals);
        // Send a request when the channel is clear.
        if vals[p] == 0 && vals[r] == 0 {
            let mut c = vals.clone();
            c[p] = 1;
            b.overwrite(here, StackSym(C0), q(enc, &c), StackSym(C1))
                .expect("static");
        }
        // Consume the reply.
        if vals[r] == 1 {
            let mut c = vals.clone();
            c[r] = 0;
            b.overwrite(here, StackSym(C1), q(enc, &c), StackSym(C0))
                .expect("static");
        }
    }
    b.build().expect("static")
}

/// Builds Proc-2: two recursive servers plus two non-recursive
/// clients (the paper's `2+2•`).
pub fn build() -> Cpds {
    let enc = encoder();
    let init = q(&enc, &[0, 0, 0, 0]);
    let server = server_pds(&enc);
    CpdsBuilder::new(enc.total(), init)
        .threads(&server, [StackSym(S0)], 2)
        .thread(client_pds(&enc, 0), [StackSym(C0)])
        .thread(client_pds(&enc, 1), [StackSym(C0)])
        .build()
        .expect("static")
}

/// Safety: for each client, request and reply are never both raised
/// (the channel protocol invariant).
pub fn property() -> Property {
    let enc = encoder();
    let bad = enc
        .iter_all()
        .filter(|v| (v[0] == 1 && v[1] == 1) || (v[2] == 1 && v[3] == 1))
        .map(|v| q(&enc, &v))
        .collect();
    Property::NeverShared(bad)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuba_core::{check_fcr, Cuba, CubaConfig};

    #[test]
    fn violates_fcr() {
        assert!(!check_fcr(&build()).holds());
    }

    #[test]
    fn is_safe() {
        let outcome = Cuba::new(build(), property())
            .run(&CubaConfig::default())
            .unwrap();
        assert!(outcome.verdict.is_safe(), "{:?}", outcome.verdict);
    }
}
