//! The paper's running example: the two-thread CPDS of Fig. 1.
//!
//! `P2 = {P1, P2}` with `Q = {0,1,2,3}`, `Σ1 = {1,2}`, `Σ2 = {4,5,6}`,
//! initial state `⟨0|1,4⟩`. Its visible-state sequence plateaus (fake)
//! at `k = 2` and collapses at `k = 5` (Ex. 5, Ex. 9, Ex. 14); FCR
//! holds although the global reachability set is infinite (Ex. 15).

use cuba_pds::{Cpds, CpdsBuilder, PdsBuilder, SharedState, StackSym, VisibleState};

/// Builds the Fig. 1 CPDS.
pub fn build() -> Cpds {
    let q = SharedState;
    let s = StackSym;
    let mut p1 = PdsBuilder::new(4, 3);
    p1.named_action("f1", cuba_pds::Action::overwrite(q(0), s(1), q(1), s(2)))
        .expect("static model");
    p1.named_action("f2", cuba_pds::Action::overwrite(q(3), s(2), q(0), s(1)))
        .expect("static model");
    let mut p2 = PdsBuilder::new(4, 7);
    p2.named_action("b1", cuba_pds::Action::pop(q(0), s(4), q(0)))
        .expect("static model");
    p2.named_action("b2", cuba_pds::Action::overwrite(q(1), s(4), q(2), s(5)))
        .expect("static model");
    p2.named_action("b3", cuba_pds::Action::push(q(2), s(5), q(3), s(4), s(6)))
        .expect("static model");
    CpdsBuilder::new(4, q(0))
        .thread(p1.build().expect("static model"), [s(1)])
        .thread(p2.build().expect("static model"), [s(4)])
        .build()
        .expect("static model")
}

/// A visible state that is *not* reachable (useful as a safe property
/// target): `⟨2|1,5⟩` — thread 1 still at its initial symbol while
/// thread 2 already holds 5 at shared state 2, which Fig. 1's table
/// shows never happens.
pub fn unreachable_visible() -> VisibleState {
    VisibleState::new(SharedState(2), vec![Some(StackSym(1)), Some(StackSym(5))])
}

/// A visible state first reachable at context bound 5 (Fig. 1 table):
/// `⟨1|2,6⟩`. Using it as an error target exercises bug finding at a
/// non-trivial bound.
pub fn deep_visible() -> VisibleState {
    VisibleState::new(SharedState(1), vec![Some(StackSym(2)), Some(StackSym(6))])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_state() {
        assert_eq!(build().initial_state().to_string(), "<0|1,4>");
    }

    #[test]
    fn action_names_preserved() {
        let cpds = build();
        assert_eq!(cpds.thread(0).action_name(0), Some("f1"));
        assert_eq!(cpds.thread(1).action_name(2), Some("b3"));
    }
}
