//! Concurrent binary search tree (Table 2, program 4), after
//! Kung/Lehman's concurrent BST manipulation (TODS 1980).
//!
//! *Inserters* descend the tree recursively and splice a node in under
//! a writer lock; *searchers* descend and read under the same lock.
//! The abstraction tracks the remaining descent height in the stack
//! symbols (the predicate abstraction of a tree bounds the tracked
//! depth), so descents genuinely push and pop but are finite per
//! context — FCR holds. The safety property is that no reader observes
//! a torn write: an inserter in its write window and a searcher in its
//! read window are mutually exclusive.

use cuba_core::Property;
use cuba_pds::{Cpds, CpdsBuilder, Pds, PdsBuilder, SharedState, StackSym};

use crate::FieldEnc;

/// Tracked descent height.
pub const HEIGHT: u32 = 3;

/// Shared fields: `lock ∈ {0,1}`.
pub fn encoder() -> FieldEnc {
    FieldEnc::new(&[2])
}

// Stack symbol ids (shared layout for both templates):
// 0..=HEIGHT: descent frames D_h (h = remaining height);
const ACQ: u32 = HEIGHT + 1; // waiting for the lock
const MID: u32 = HEIGHT + 2; // critical window (write resp. read)
const REL: u32 = HEIGHT + 3; // releasing
const UNWIND: u32 = HEIGHT + 4; // popping back up

/// The critical-window stack symbol (used by the mutex property).
pub const CRITICAL: StackSym = StackSym(MID);

fn template() -> Pds {
    let enc = encoder();
    let unlocked = SharedState(enc.encode(&[0]));
    let locked = SharedState(enc.encode(&[1]));
    let mut b = PdsBuilder::new(enc.total(), HEIGHT + 5);
    for q in [unlocked, locked] {
        for h in 1..=HEIGHT {
            // Descend one level: push the child frame.
            b.push(q, StackSym(h), q, StackSym(h - 1), StackSym(h))
                .expect("static");
            // Or stop here and operate on this node.
            b.overwrite(q, StackSym(h), q, StackSym(ACQ))
                .expect("static");
        }
        // Leaves must operate.
        b.overwrite(q, StackSym(0), q, StackSym(ACQ))
            .expect("static");
        // The critical window itself takes one step.
        b.overwrite(q, StackSym(MID), q, StackSym(REL))
            .expect("static");
        // Unwind: pop the current frame; the exposed frame may operate
        // again (another insert/search on the way up).
        b.pop(q, StackSym(UNWIND), q).expect("static");
    }
    // Lock handshake.
    b.overwrite(unlocked, StackSym(ACQ), locked, StackSym(MID))
        .expect("static");
    b.overwrite(locked, StackSym(REL), unlocked, StackSym(UNWIND))
        .expect("static");
    b.build().expect("static")
}

/// Builds the BST benchmark with the given numbers of inserters and
/// searchers (both use the same locked descent skeleton; the property
/// distinguishes them only by thread index).
pub fn build(num_inserters: usize, num_searchers: usize) -> Cpds {
    let enc = encoder();
    let init = SharedState(enc.encode(&[0]));
    let t = template();
    CpdsBuilder::new(enc.total(), init)
        .threads(&t, [StackSym(HEIGHT)], num_inserters + num_searchers)
        .build()
        .expect("static")
}

/// Pairwise mutual exclusion of the critical window across all thread
/// pairs: no two tree operations overlap their lock-protected windows.
pub fn property(num_threads: usize) -> Property {
    let mut pairs = Vec::new();
    for i in 0..num_threads {
        for j in i + 1..num_threads {
            pairs.push(Property::MutualExclusion(vec![
                (i, CRITICAL),
                (j, CRITICAL),
            ]));
        }
    }
    Property::All(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuba_core::{check_fcr, Cuba, CubaConfig};

    #[test]
    fn satisfies_fcr() {
        assert!(check_fcr(&build(1, 1)).holds());
    }

    #[test]
    fn one_plus_one_is_safe() {
        let cpds = build(1, 1);
        let outcome = Cuba::new(cpds, property(2))
            .run(&CubaConfig::default())
            .unwrap();
        assert!(outcome.verdict.is_safe(), "{:?}", outcome.verdict);
    }

    #[test]
    fn without_lock_the_property_would_fail() {
        // Sanity check that the property is not vacuous: two threads
        // *can* reach ACQ simultaneously; only the lock serializes MID.
        let cpds = build(1, 1);
        let bogus = Property::MutualExclusion(vec![(0, StackSym(ACQ)), (1, StackSym(ACQ))]);
        let outcome = Cuba::new(cpds, bogus).run(&CubaConfig::default()).unwrap();
        assert!(outcome.verdict.is_unsafe());
    }
}
