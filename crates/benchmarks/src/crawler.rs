//! Parallel file crawler (Table 2, program 5): one non-recursive user
//! thread hands work tokens to crawler threads that recursively enter
//! directories; the user may shut the system down only when no token
//! is in flight. Safety: no crawler ever starts work after shutdown.
//!
//! Directory nesting is tracked to a bounded depth (as in the paper's
//! abstraction, where both reachability sequences collapse at the
//! same bound — Table 2 reports `kmax = 6` for `(Rk)` itself, so the
//! crawler's global reachability set is finite). Descents are gated on
//! the work token, so FCR holds.

use cuba_core::Property;
use cuba_pds::{Cpds, CpdsBuilder, Pds, PdsBuilder, SharedState, StackSym};

use crate::FieldEnc;

/// Maximum tracked directory nesting depth.
pub const DEPTH: u32 = 3;

/// Shared fields: `work`, `shut`, `err`.
pub fn encoder() -> FieldEnc {
    FieldEnc::new(&[2, 2, 2])
}

const WORK: usize = 0;
const SHUT: usize = 1;
const ERR: usize = 2;

// Crawler stack symbols: 0 = idle at the root, d = processing at
// nesting depth d (1..=DEPTH).
const C0: u32 = 0;

// User stack symbols.
const U0: u32 = 0; // producing work
const U1: u32 = 1; // shut down

fn q(enc: &FieldEnc, vals: &[u32]) -> SharedState {
    SharedState(enc.encode(vals))
}

fn crawler_pds(enc: &FieldEnc) -> Pds {
    let mut b = PdsBuilder::new(enc.total(), DEPTH + 1);
    for vals in enc.iter_all() {
        if vals[ERR] == 1 {
            continue;
        }
        let here = q(enc, &vals);
        let with = |f: usize, v: u32| {
            let mut c = vals.clone();
            c[f] = v;
            q(enc, &c)
        };
        // Take a token and enter the next directory level.
        if vals[WORK] == 1 && vals[SHUT] == 0 {
            for d in 0..DEPTH {
                b.push(
                    here,
                    StackSym(d),
                    with(WORK, 0),
                    StackSym(d + 1),
                    StackSym(d),
                )
                .expect("static");
            }
        }
        // The crawler's assertion: consuming work after shutdown is an
        // error. Unreachable because the user retires the token first,
        // but the abstraction must carry the check.
        if vals[WORK] == 1 && vals[SHUT] == 1 {
            for d in 0..=DEPTH {
                b.overwrite(here, StackSym(d), with(ERR, 1), StackSym(d))
                    .expect("static");
            }
        }
        // Finish the current directory.
        for d in 1..=DEPTH {
            b.pop(here, StackSym(d), here).expect("static");
        }
        // Exit entirely once shut down.
        if vals[SHUT] == 1 {
            b.pop(here, StackSym(C0), here).expect("static");
        }
    }
    b.build().expect("static")
}

fn user_pds(enc: &FieldEnc) -> Pds {
    let mut b = PdsBuilder::new(enc.total(), 2);
    for vals in enc.iter_all() {
        if vals[ERR] == 1 {
            continue;
        }
        let here = q(enc, &vals);
        let with = |f: usize, v: u32| {
            let mut c = vals.clone();
            c[f] = v;
            q(enc, &c)
        };
        // Produce a work token.
        if vals[WORK] == 0 && vals[SHUT] == 0 {
            b.overwrite(here, StackSym(U0), with(WORK, 1), StackSym(U0))
                .expect("static");
        }
        // Shut down, but only while no token is in flight.
        if vals[WORK] == 0 && vals[SHUT] == 0 {
            b.overwrite(here, StackSym(U0), with(SHUT, 1), StackSym(U1))
                .expect("static");
        }
        // Halt.
        b.pop(here, StackSym(U1), here).expect("static");
    }
    b.build().expect("static")
}

/// Builds the crawler benchmark: one user plus `num_crawlers`
/// crawlers (the paper's configuration is `1• + 2`).
pub fn build(num_crawlers: usize) -> Cpds {
    let enc = encoder();
    let init = q(&enc, &[0, 0, 0]);
    let user = user_pds(&enc);
    let crawler = crawler_pds(&enc);
    CpdsBuilder::new(enc.total(), init)
        .thread(user, [StackSym(U0)])
        .threads(&crawler, [StackSym(C0)], num_crawlers)
        .build()
        .expect("static")
}

/// Safety: the crawler assertion never fires.
pub fn property() -> Property {
    let enc = encoder();
    let errs = enc
        .iter_all()
        .filter(|v| v[ERR] == 1)
        .map(|v| q(&enc, &v))
        .collect();
    Property::NeverShared(errs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuba_core::{check_fcr, Cuba, CubaConfig};

    #[test]
    fn satisfies_fcr() {
        assert!(check_fcr(&build(2)).holds());
    }

    #[test]
    fn is_safe_with_two_crawlers() {
        let outcome = Cuba::new(build(2), property())
            .run(&CubaConfig::default())
            .unwrap();
        assert!(outcome.verdict.is_safe(), "{:?}", outcome.verdict);
    }

    #[test]
    fn nesting_is_reachable() {
        // Depth-2 processing is reachable — the model is not vacuous.
        let cpds = build(1);
        let reach_depth2 = Property::MutualExclusion(vec![(1, StackSym(2))]);
        let outcome = Cuba::new(cpds, reach_depth2)
            .run(&CubaConfig::default())
            .unwrap();
        assert!(outcome.verdict.is_unsafe());
    }

    #[test]
    fn shutdown_exit_empties_the_stack() {
        // After shutdown a crawler can pop everything: visible ε tops.
        let cpds = build(1);
        let enc = encoder();
        let dead = Property::MutualExclusion(vec![(0, StackSym(U1))]);
        let _ = enc;
        let outcome = Cuba::new(cpds, dead).run(&CubaConfig::default()).unwrap();
        assert!(outcome.verdict.is_unsafe()); // i.e. U1 reachable
    }
}
