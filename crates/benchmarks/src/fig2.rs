//! The foo/bar program of Fig. 2 (adapted from Prabhu et al.\[33\]):
//! two recursive procedures ping-ponging a shared Boolean `x`.
//!
//! Both stacks can grow without bound *within a single context*, so
//! finite context reachability fails (Fig. 4 right) and only the
//! symbolic engines apply. Ex. 8 shows `R1 ⊊ R2 = R3`. This is also
//! Table 2's benchmark 6 ("K-Induction").

use cuba_pds::{
    Cpds, CpdsBuilder, GlobalState, PdsBuilder, SharedState, Stack, StackSym, VisibleState,
};

/// Shared state `⊥` (x uninitialized).
pub const BOT: SharedState = SharedState(0);
/// Shared state for `x = 0`.
pub const X0: SharedState = SharedState(1);
/// Shared state for `x = 1`.
pub const X1: SharedState = SharedState(2);

/// Builds the Fig. 2 CPDS. Stack symbols are the paper's line numbers:
/// `Σ1 = {2,3,4,5}` (foo), `Σ2 = {6,7,8,9}` (bar).
pub fn build() -> Cpds {
    let s = StackSym;
    let mut p1 = PdsBuilder::new(3, 6);
    p1.overwrite(BOT, s(2), X0, s(2)).expect("static"); // f0
    p1.overwrite(BOT, s(2), X1, s(2)).expect("static");
    for x in [X0, X1] {
        p1.overwrite(x, s(2), x, s(3)).expect("static"); // f2a
        p1.overwrite(x, s(2), x, s(4)).expect("static"); // f2b
        p1.push(x, s(3), x, s(2), s(4)).expect("static"); // f3
        p1.pop(x, s(5), X1).expect("static"); // f5
    }
    p1.overwrite(X1, s(4), X1, s(4)).expect("static"); // f4a
    p1.overwrite(X0, s(4), X0, s(5)).expect("static"); // f4b
    let mut p2 = PdsBuilder::new(3, 10);
    p2.overwrite(BOT, s(6), X0, s(6)).expect("static"); // b0
    p2.overwrite(BOT, s(6), X1, s(6)).expect("static");
    for x in [X0, X1] {
        p2.overwrite(x, s(6), x, s(7)).expect("static"); // b6a
        p2.overwrite(x, s(6), x, s(8)).expect("static"); // b6b
        p2.push(x, s(7), x, s(6), s(8)).expect("static"); // b7
        p2.pop(x, s(9), X0).expect("static"); // b9
    }
    p2.overwrite(X0, s(8), X0, s(8)).expect("static"); // b8a
    p2.overwrite(X1, s(8), X1, s(9)).expect("static"); // b8b
    CpdsBuilder::new(3, BOT)
        .thread(p1.build().expect("static"), [s(2)])
        .thread(p2.build().expect("static"), [s(6)])
        .build()
        .expect("static")
}

/// The Ex. 8 target state `⟨1|4,9⟩`: `x = 1`, foo spinning at its
/// while loop, bar at its final assignment. Reachable within 2
/// contexts but not 1.
pub fn example8_state() -> GlobalState {
    GlobalState::new(
        X1,
        vec![
            Stack::from_top_down([StackSym(4)]),
            Stack::from_top_down([StackSym(9)]),
        ],
    )
}

/// A visible state that is unreachable: foo past its loop (top 5,
/// which requires `x = 0`) while `x` is still `⊥`. Any analysis that
/// proves this unreachable must handle the unbounded stacks.
pub fn unreachable_visible() -> VisibleState {
    VisibleState::new(BOT, vec![Some(StackSym(5)), Some(StackSym(9))])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_state() {
        assert_eq!(build().initial_state().to_string(), "<0|2,6>");
    }

    #[test]
    fn example8_state_shape() {
        let s = example8_state();
        assert_eq!(s.to_string(), "<2|4,9>");
        assert_eq!(s.visible().to_string(), "<2|4,9>");
    }
}
