//! Dekker's mutual-exclusion protocol (Table 2, program 9) — the one
//! recursion-free benchmark, from Prabhu et al.\[33\].
//!
//! Two threads with intent flags and a turn variable; each thread's
//! program counter lives in its single stack frame (overwrites only,
//! no pushes), so FCR holds trivially and the stacks stay at depth 1.

use cuba_core::Property;
use cuba_pds::{Cpds, CpdsBuilder, Pds, PdsBuilder, SharedState, StackSym};

use crate::FieldEnc;

/// Shared fields: `flag0`, `flag1`, `turn`.
pub fn encoder() -> FieldEnc {
    FieldEnc::new(&[2, 2, 2])
}

// Program counters.
const D0: u32 = 0; // raise own flag
const D1: u32 = 1; // check other's flag
const D2: u32 = 2; // contention: maybe back off
const D2A: u32 = 3; // backed off, waiting for the turn
const D3: u32 = 4; // critical section
const D4: u32 = 5; // exit protocol

/// The critical-section stack symbol.
pub const CRITICAL: StackSym = StackSym(D3);

fn thread_pds(me: usize) -> Pds {
    let enc = encoder();
    let other = 1 - me;
    let mut b = PdsBuilder::new(enc.total(), 6);
    for vals in enc.iter_all() {
        let here = SharedState(enc.encode(&vals));
        let with = |f: usize, v: u32| {
            let mut c = vals.clone();
            c[f] = v;
            SharedState(enc.encode(&c))
        };
        // D0: flag[me] := 1.
        b.overwrite(here, StackSym(D0), with(me, 1), StackSym(D1))
            .expect("static");
        // D1: if !flag[other] enter, else contend.
        if vals[other] == 0 {
            b.overwrite(here, StackSym(D1), here, StackSym(D3))
                .expect("static");
        } else {
            b.overwrite(here, StackSym(D1), here, StackSym(D2))
                .expect("static");
        }
        // D2: if it's my turn, recheck; else back off.
        if vals[2] == me as u32 {
            b.overwrite(here, StackSym(D2), here, StackSym(D1))
                .expect("static");
        } else {
            b.overwrite(here, StackSym(D2), with(me, 0), StackSym(D2A))
                .expect("static");
        }
        // D2A: wait for my turn, then re-raise the flag.
        if vals[2] == me as u32 {
            b.overwrite(here, StackSym(D2A), with(me, 1), StackSym(D1))
                .expect("static");
        } else {
            b.overwrite(here, StackSym(D2A), here, StackSym(D2A))
                .expect("static");
        }
        // D3: critical section, one step.
        b.overwrite(here, StackSym(D3), here, StackSym(D4))
            .expect("static");
        // D4: hand over the turn, lower the flag, restart.
        let mut c = vals.clone();
        c[me] = 0;
        c[2] = other as u32;
        b.overwrite(
            here,
            StackSym(D4),
            SharedState(enc.encode(&c)),
            StackSym(D0),
        )
        .expect("static");
    }
    b.build().expect("static")
}

/// Builds the two-thread Dekker protocol.
pub fn build() -> Cpds {
    let enc = encoder();
    let init = SharedState(enc.encode(&[0, 0, 0]));
    CpdsBuilder::new(enc.total(), init)
        .thread(thread_pds(0), [StackSym(D0)])
        .thread(thread_pds(1), [StackSym(D0)])
        .build()
        .expect("static")
}

/// Mutual exclusion of the two critical sections.
pub fn property() -> Property {
    Property::mutex(0, CRITICAL, 1, CRITICAL)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuba_core::{check_fcr, Cuba, CubaConfig};

    #[test]
    fn satisfies_fcr() {
        assert!(check_fcr(&build()).holds());
    }

    #[test]
    fn mutual_exclusion_holds() {
        let outcome = Cuba::new(build(), property())
            .run(&CubaConfig::default())
            .unwrap();
        assert!(outcome.verdict.is_safe(), "{:?}", outcome.verdict);
    }

    #[test]
    fn critical_section_reachable() {
        let reach = Property::MutualExclusion(vec![(0, CRITICAL)]);
        let outcome = Cuba::new(build(), reach)
            .run(&CubaConfig::default())
            .unwrap();
        assert!(outcome.verdict.is_unsafe());
    }

    #[test]
    fn without_turn_logic_mutex_would_break() {
        // Sanity: both threads can reach D1 simultaneously; it is the
        // protocol, not the scheduler, that protects D3.
        let both_d1 = Property::mutex(0, StackSym(D1), 1, StackSym(D1));
        let outcome = Cuba::new(build(), both_d1)
            .run(&CubaConfig::default())
            .unwrap();
        assert!(outcome.verdict.is_unsafe());
    }
}
