//! The Table 2 benchmark registry: every program × thread
//! configuration of the paper's evaluation, with the paper's reported
//! outcomes attached for comparison in `EXPERIMENTS.md`.

use cuba_core::Property;
use cuba_pds::Cpds;

use crate::{bluetooth, bst, crawler, dekker, fig2, proc2, stefan};

/// What the paper's Table 2 reports for a row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Expectation {
    /// `Safe?` column (`None` = the paper ran out of memory).
    pub safe: Option<bool>,
    /// `FCR?` column.
    pub fcr: bool,
    /// `kmax` of `(T(Rk))` (`None` = OOM row).
    pub paper_kmax_visible: Option<usize>,
    /// Parenthesized bug bound for unsafe rows.
    pub paper_bug_k: Option<usize>,
}

/// One Table 2 row: a CPDS, its property, and the paper's outcomes.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Program id, e.g. `"bluetooth-1"`.
    pub id: &'static str,
    /// Thread configuration in the paper's notation, e.g. `"1+2"`.
    pub config: &'static str,
    /// The system.
    pub cpds: Cpds,
    /// The safety property.
    pub property: Property,
    /// The paper's reported outcomes.
    pub expect: Expectation,
}

impl Benchmark {
    /// `"{id}/{config}"`, the row label used by the harness.
    pub fn label(&self) -> String {
        format!("{}/{}", self.id, self.config)
    }
}

fn bluetooth_rows(suite: &mut Vec<Benchmark>) {
    use bluetooth::Version;
    let versions = [
        ("bluetooth-1", Version::V1, None, Some(4usize)),
        ("bluetooth-2", Version::V2, None, Some(4)),
        ("bluetooth-3", Version::V3, Some(true), None),
    ];
    let configs: [(&'static str, usize, usize, usize); 3] =
        [("1+1", 1, 1, 6), ("1+2", 1, 2, 6), ("2+1", 2, 1, 7)];
    for (id, version, safe, bug_k) in versions {
        for (config, stoppers, adders, kmax) in configs {
            suite.push(Benchmark {
                id,
                config,
                cpds: bluetooth::build(version, stoppers, adders),
                property: bluetooth::property(),
                expect: Expectation {
                    safe: safe.or(Some(false)),
                    fcr: true,
                    paper_kmax_visible: Some(kmax),
                    paper_bug_k: bug_k,
                },
            });
        }
    }
}

/// Builds the full Table 2 suite.
///
/// Thread configurations follow the paper's `n+m` notation; the
/// Bluetooth rows additionally carry the recursive counter thread (see
/// the module docs of [`bluetooth`]).
pub fn table2_suite() -> Vec<Benchmark> {
    let mut suite = Vec::new();
    bluetooth_rows(&mut suite);
    // 4: BST-Insert.
    for (config, ins, srch, kmax) in [("1+1", 1, 1, 2), ("2+1", 2, 1, 3), ("2+2", 2, 2, 4)] {
        suite.push(Benchmark {
            id: "bst-insert",
            config,
            cpds: bst::build(ins, srch),
            property: bst::property(ins + srch),
            expect: Expectation {
                safe: Some(true),
                fcr: true,
                paper_kmax_visible: Some(kmax),
                paper_bug_k: None,
            },
        });
    }
    // 5: FileCrawler (1 non-recursive user + 2 crawlers).
    suite.push(Benchmark {
        id: "filecrawler",
        config: "1*+2",
        cpds: crawler::build(2),
        property: crawler::property(),
        expect: Expectation {
            safe: Some(true),
            fcr: true,
            paper_kmax_visible: Some(6),
            paper_bug_k: None,
        },
    });
    // 6: K-Induction (the Fig. 2 program, FCR fails).
    suite.push(Benchmark {
        id: "k-induction",
        config: "1+1",
        cpds: fig2::build(),
        property: Property::never_visible(fig2::unreachable_visible()),
        expect: Expectation {
            safe: Some(true),
            fcr: false,
            paper_kmax_visible: Some(3),
            paper_bug_k: None,
        },
    });
    // 7: Proc-2 (2 recursive servers + 2 non-recursive clients).
    suite.push(Benchmark {
        id: "proc-2",
        config: "2+2*",
        cpds: proc2::build(),
        property: proc2::property(),
        expect: Expectation {
            safe: Some(true),
            fcr: false,
            paper_kmax_visible: Some(3),
            paper_bug_k: None,
        },
    });
    // 8: Stefan-1 with 2, 4 and 8 identical threads; the 8-thread
    // instance exhausts memory in the paper.
    for (config, n, kmax, safe) in [
        ("2", 2usize, Some(2usize), Some(true)),
        ("4", 4, Some(4), Some(true)),
        ("8", 8, None, None),
    ] {
        suite.push(Benchmark {
            id: "stefan-1",
            config,
            cpds: stefan::build(n),
            property: stefan::property(n),
            expect: Expectation {
                safe,
                fcr: false,
                paper_kmax_visible: kmax,
                paper_bug_k: None,
            },
        });
    }
    // 9: Dekker (recursion-free).
    suite.push(Benchmark {
        id: "dekker",
        config: "2*",
        cpds: dekker::build(),
        property: dekker::property(),
        expect: Expectation {
            safe: Some(true),
            fcr: true,
            paper_kmax_visible: Some(6),
            paper_bug_k: None,
        },
    });
    suite
}

/// The suite as a plain list of `(Cpds, Property)` problems, the
/// shape [`Portfolio::run_suite`](cuba_core::Portfolio::run_suite)
/// consumes; zipped positionally with [`table2_suite`] for labels and
/// expectations.
pub fn table2_problems() -> Vec<(Cpds, Property)> {
    table2_suite()
        .into_iter()
        .map(|b| (b.cpds, b.property))
        .collect()
}

/// The subset of the suite used for the Fig. 5 tool comparison
/// (suites 1–5 and 9, as in the paper: the others have no JMoped
/// translation).
pub fn fig5_suite() -> Vec<Benchmark> {
    table2_suite()
        .into_iter()
        .filter(|b| {
            matches!(
                b.id,
                "bluetooth-1"
                    | "bluetooth-2"
                    | "bluetooth-3"
                    | "bst-insert"
                    | "filecrawler"
                    | "dekker"
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_all_table2_rows() {
        let suite = table2_suite();
        // 3 bluetooth × 3 configs + 3 bst + 1 crawler + 1 k-induction
        // + 1 proc2 + 3 stefan + 1 dekker = 19 rows.
        assert_eq!(suite.len(), 19);
        let ids: std::collections::HashSet<&str> = suite.iter().map(|b| b.id).collect();
        assert_eq!(ids.len(), 9);
    }

    #[test]
    fn labels_are_unique() {
        let suite = table2_suite();
        let labels: std::collections::HashSet<String> = suite.iter().map(|b| b.label()).collect();
        assert_eq!(labels.len(), suite.len());
    }

    #[test]
    fn fig5_subset() {
        let suite = fig5_suite();
        assert!(suite
            .iter()
            .all(|b| !matches!(b.id, "k-induction" | "proc-2" | "stefan-1")));
        assert_eq!(suite.len(), 14);
    }

    #[test]
    fn fcr_expectations_match_reality() {
        for bench in table2_suite() {
            let fcr = cuba_core::check_fcr(&bench.cpds).holds();
            assert_eq!(
                fcr,
                bench.expect.fcr,
                "{}: FCR mismatch with the paper",
                bench.label()
            );
        }
    }
}
