//! A plain-text interchange format for CPDS, in the spirit of the
//! original artifact's input files.
//!
//! ```text
//! # Fig. 1 of the paper
//! shared 4
//! init 0
//! thread 3
//! stack 1
//! (0,1) -> (1,2)
//! (3,2) -> (0,1)
//! thread 7
//! stack 4
//! (0,4) -> (0,eps)
//! (1,4) -> (2,5)
//! (2,5) -> (3,4 6)
//! ```
//!
//! `eps` denotes the empty stack (left) or the empty word (right); a
//! two-symbol right-hand side `ρ0 ρ1` is a push (`ρ0` becomes the new
//! top). `#` starts a comment.

use cuba_pds::{Cpds, CpdsBuilder, PdsBuilder, SharedState, StackSym};

/// A parse failure with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the offending input.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError {
        line,
        message: message.into(),
    })
}

/// Parses the text format into a [`Cpds`].
///
/// # Errors
///
/// Returns a [`ParseError`] with a line number on malformed input or
/// when the assembled system fails validation.
pub fn parse_cpds(input: &str) -> Result<Cpds, ParseError> {
    let mut num_shared: Option<u32> = None;
    let mut init: Option<u32> = None;
    // An action as raw numbers: (line, q, top, q', rhs word).
    type RawAction = (usize, u32, Option<u32>, u32, Vec<u32>);
    struct RawThread {
        alphabet: u32,
        stack: Vec<u32>,
        actions: Vec<RawAction>,
    }
    let mut threads: Vec<RawThread> = Vec::new();

    for (idx, raw_line) in input.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw_line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("shared") {
            num_shared = Some(parse_num(rest.trim(), line_no)?);
        } else if let Some(rest) = line.strip_prefix("init") {
            init = Some(parse_num(rest.trim(), line_no)?);
        } else if let Some(rest) = line.strip_prefix("thread") {
            threads.push(RawThread {
                alphabet: parse_num(rest.trim(), line_no)?,
                stack: Vec::new(),
                actions: Vec::new(),
            });
        } else if let Some(rest) = line.strip_prefix("stack") {
            let thread = match threads.last_mut() {
                Some(t) => t,
                None => return err(line_no, "'stack' before any 'thread'"),
            };
            for tok in rest.split_whitespace() {
                thread.stack.push(parse_num(tok, line_no)?);
            }
        } else if line.starts_with('(') {
            let thread_idx = threads.len();
            let thread = match threads.last_mut() {
                Some(t) => t,
                None => return err(line_no, "action before any 'thread'"),
            };
            let _ = thread_idx;
            let (lhs, rhs) = match line.split_once("->") {
                Some(pair) => pair,
                None => return err(line_no, "expected '->' in action"),
            };
            let (q, top) = parse_pair(lhs.trim(), line_no)?;
            let (q2, word) = parse_rhs(rhs.trim(), line_no)?;
            let top = match top.as_str() {
                "eps" => None,
                t => Some(parse_num(t, line_no)?),
            };
            thread.actions.push((line_no, q, top, q2, word));
        } else {
            return err(line_no, format!("unrecognized line: '{line}'"));
        }
    }

    let num_shared = match num_shared {
        Some(n) => n,
        None => return err(0, "missing 'shared' declaration"),
    };
    let init = init.unwrap_or(0);

    let mut builder = CpdsBuilder::new(num_shared, SharedState(init));
    for raw in threads {
        let mut pds = PdsBuilder::new(num_shared, raw.alphabet);
        for (line_no, q, top, q2, word) in raw.actions {
            let result = match (top, word.as_slice()) {
                (Some(t), []) => pds.pop(SharedState(q), StackSym(t), SharedState(q2)),
                (Some(t), [s]) => {
                    pds.overwrite(SharedState(q), StackSym(t), SharedState(q2), StackSym(*s))
                }
                (Some(t), [r0, r1]) => pds.push(
                    SharedState(q),
                    StackSym(t),
                    SharedState(q2),
                    StackSym(*r0),
                    StackSym(*r1),
                ),
                (None, []) => pds.from_empty(SharedState(q), SharedState(q2), None),
                (None, [s]) => pds.from_empty(SharedState(q), SharedState(q2), Some(StackSym(*s))),
                _ => return err(line_no, "right-hand side has more than two symbols"),
            };
            if let Err(e) = result {
                return err(line_no, e.to_string());
            }
        }
        let built = match pds.build() {
            Ok(p) => p,
            Err(e) => return err(0, e.to_string()),
        };
        builder = builder.thread(built, raw.stack.into_iter().map(StackSym));
    }
    builder.build().map_err(|e| ParseError {
        line: 0,
        message: e.to_string(),
    })
}

fn parse_num(tok: &str, line: usize) -> Result<u32, ParseError> {
    tok.parse::<u32>().map_err(|_| ParseError {
        line,
        message: format!("expected a number, found '{tok}'"),
    })
}

/// Parses `(q,top)`.
fn parse_pair(text: &str, line: usize) -> Result<(u32, String), ParseError> {
    let inner = text
        .strip_prefix('(')
        .and_then(|t| t.strip_suffix(')'))
        .ok_or_else(|| ParseError {
            line,
            message: format!("expected '(q,sym)', found '{text}'"),
        })?;
    let (a, b) = inner.split_once(',').ok_or_else(|| ParseError {
        line,
        message: "expected ',' inside parentheses".to_owned(),
    })?;
    Ok((parse_num(a.trim(), line)?, b.trim().to_owned()))
}

/// Parses `(q', eps | s | s s)`.
fn parse_rhs(text: &str, line: usize) -> Result<(u32, Vec<u32>), ParseError> {
    let (q2, word_text) = parse_pair(text, line)?;
    if word_text == "eps" {
        return Ok((q2, Vec::new()));
    }
    let mut word = Vec::new();
    for tok in word_text.split_whitespace() {
        word.push(parse_num(tok, line)?);
    }
    Ok((q2, word))
}

/// Prints a [`Cpds`] in the text format (parse/print round-trips).
pub fn print_cpds(cpds: &Cpds) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "shared {}", cpds.num_shared());
    let _ = writeln!(out, "init {}", cpds.q_init());
    for (i, pds) in cpds.threads().iter().enumerate() {
        let _ = writeln!(out, "thread {}", pds.alphabet_size());
        let stack: Vec<String> = cpds
            .initial_stack(i)
            .iter_top_down()
            .map(|s| s.to_string())
            .collect();
        if !stack.is_empty() {
            let _ = writeln!(out, "stack {}", stack.join(" "));
        }
        for a in pds.actions() {
            let top = match a.top {
                Some(s) => s.to_string(),
                None => "eps".to_owned(),
            };
            let rhs = match a.rhs {
                cuba_pds::Rhs::Empty => "eps".to_owned(),
                cuba_pds::Rhs::One(s) => s.to_string(),
                cuba_pds::Rhs::Two { top, below } => format!("{top} {below}"),
            };
            let _ = writeln!(out, "({},{}) -> ({},{})", a.q, top, a.q_post, rhs);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIG1: &str = r"
# Fig. 1 of the paper
shared 4
init 0
thread 3
stack 1
(0,1) -> (1,2)
(3,2) -> (0,1)
thread 7
stack 4
(0,4) -> (0,eps)
(1,4) -> (2,5)
(2,5) -> (3,4 6)
";

    #[test]
    fn parses_fig1() {
        let cpds = parse_cpds(FIG1).unwrap();
        assert_eq!(cpds.num_shared(), 4);
        assert_eq!(cpds.num_threads(), 2);
        assert_eq!(cpds.initial_state().to_string(), "<0|1,4>");
        assert_eq!(cpds.thread(1).actions().len(), 3);
    }

    #[test]
    fn parse_print_roundtrip() {
        let cpds = parse_cpds(FIG1).unwrap();
        let printed = print_cpds(&cpds);
        let again = parse_cpds(&printed).unwrap();
        assert_eq!(cpds.initial_state(), again.initial_state());
        for i in 0..cpds.num_threads() {
            assert_eq!(cpds.thread(i).actions(), again.thread(i).actions());
        }
    }

    #[test]
    fn roundtrip_matches_builder_fig1() {
        let parsed = parse_cpds(FIG1).unwrap();
        let built = crate::fig1::build();
        for i in 0..2 {
            assert_eq!(parsed.thread(i).actions(), built.thread(i).actions());
        }
    }

    #[test]
    fn error_reports_line() {
        let bad = "shared 2\nthread 2\n(0,1) -> 1,2)\n";
        let e = parse_cpds(bad).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.to_string().contains("line 3"));
    }

    #[test]
    fn action_before_thread_rejected() {
        let bad = "shared 2\n(0,1) -> (1,1)\n";
        let e = parse_cpds(bad).unwrap_err();
        assert!(e.message.contains("before any"));
    }

    #[test]
    fn missing_shared_rejected() {
        assert!(parse_cpds("thread 2\n").is_err());
    }

    #[test]
    fn empty_stack_actions_parse() {
        let text = "shared 2\nthread 2\n(0,eps) -> (1,0)\n(1,eps) -> (0,eps)\n";
        let cpds = parse_cpds(text).unwrap();
        assert_eq!(cpds.thread(0).actions().len(), 2);
        let printed = print_cpds(&cpds);
        assert!(printed.contains("(0,eps) -> (1,0)"));
    }

    #[test]
    fn out_of_range_symbol_reported_with_line() {
        let bad = "shared 2\nthread 2\n(0,5) -> (1,0)\n";
        let e = parse_cpds(bad).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("out of range"));
    }
}

#[cfg(test)]
mod roundtrip_properties {
    use super::*;
    use crate::random::{random_cpds, RandomCpdsConfig};

    /// Print → parse is the identity on arbitrary generated systems.
    #[test]
    fn print_parse_roundtrip_on_random_systems() {
        for seed in 0..60u64 {
            let cfg = RandomCpdsConfig {
                num_threads: 1 + (seed as usize % 3),
                push_probability: 0.3,
                ..RandomCpdsConfig::default()
            };
            let cpds = random_cpds(&cfg, seed);
            let printed = print_cpds(&cpds);
            let parsed =
                parse_cpds(&printed).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{printed}"));
            assert_eq!(parsed.num_shared(), cpds.num_shared());
            assert_eq!(parsed.q_init(), cpds.q_init());
            assert_eq!(parsed.initial_state(), cpds.initial_state());
            for i in 0..cpds.num_threads() {
                assert_eq!(parsed.thread(i).actions(), cpds.thread(i).actions());
            }
        }
    }
}
