//! Stefan-1 (Table 2, program 8), standing in for the recursive
//! example from Schwoon's thesis: `n` identical threads, each
//! recursing freely and entering a token-guarded critical section.
//!
//! Recursion is unguarded, so FCR fails; the symbolic state set grows
//! steeply with the thread count — the 8-thread instance exhausts the
//! symbolic budget, reproducing the paper's out-of-memory entry.

use cuba_core::Property;
use cuba_pds::{Cpds, CpdsBuilder, Pds, PdsBuilder, SharedState, StackSym};

// Stack symbols.
const E: u32 = 0; // entry / main loop
const CRIT: u32 = 1; // critical section
const DONE: u32 = 2; // after the critical section
const RET: u32 = 3; // return pc of a recursive call

/// The critical-section stack symbol (for the mutex property).
pub const CRITICAL: StackSym = StackSym(CRIT);

fn template() -> Pds {
    let free = SharedState(0);
    let held = SharedState(1);
    let mut b = PdsBuilder::new(2, 4);
    for q in [free, held] {
        // Unguarded recursion (breaks FCR).
        b.push(q, StackSym(E), q, StackSym(E), StackSym(RET))
            .expect("static");
        // Return path.
        b.pop(q, StackSym(DONE), q).expect("static");
        b.overwrite(q, StackSym(RET), q, StackSym(E))
            .expect("static");
    }
    // Token-guarded critical section.
    b.overwrite(free, StackSym(E), held, StackSym(CRIT))
        .expect("static");
    b.overwrite(held, StackSym(CRIT), free, StackSym(DONE))
        .expect("static");
    b.build().expect("static")
}

/// Builds Stefan-1 with `n` identical threads.
pub fn build(n: usize) -> Cpds {
    let t = template();
    CpdsBuilder::new(2, SharedState(0))
        .threads(&t, [StackSym(E)], n)
        .build()
        .expect("static")
}

/// Pairwise mutual exclusion of the critical section.
pub fn property(n: usize) -> Property {
    let mut pairs = Vec::new();
    for i in 0..n {
        for j in i + 1..n {
            pairs.push(Property::MutualExclusion(vec![
                (i, CRITICAL),
                (j, CRITICAL),
            ]));
        }
    }
    Property::All(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuba_core::{check_fcr, Cuba, CubaConfig};

    #[test]
    fn violates_fcr() {
        assert!(!check_fcr(&build(2)).holds());
    }

    #[test]
    fn two_threads_safe() {
        let outcome = Cuba::new(build(2), property(2))
            .run(&CubaConfig::default())
            .unwrap();
        assert!(outcome.verdict.is_safe(), "{:?}", outcome.verdict);
    }

    #[test]
    fn critical_section_is_reachable() {
        // The property is not vacuous: a single thread reaches CRIT.
        let reach = Property::MutualExclusion(vec![(0, CRITICAL)]);
        let outcome = Cuba::new(build(2), reach)
            .run(&CubaConfig::default())
            .unwrap();
        assert!(outcome.verdict.is_unsafe());
    }
}
