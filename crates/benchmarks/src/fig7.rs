//! The sequential PDS of App. C Fig. 7, used to exercise pushdown
//! store automata and `post*` saturation.

use cuba_pds::{Pds, PdsBuilder, PdsConfig, SharedState, Stack, StackSym};

/// Builds the Fig. 7 PDS:
/// `(q0,σ0)→(q1,σ1σ0)`, `(q1,σ1)→(q2,σ2σ0)`, `(q2,σ2)→(q0,σ1)`,
/// `(q0,σ1)→(q0,ε)`.
pub fn build() -> Pds {
    let q = SharedState;
    let s = StackSym;
    let mut b = PdsBuilder::new(3, 3);
    b.push(q(0), s(0), q(1), s(1), s(0)).expect("static");
    b.push(q(1), s(1), q(2), s(2), s(0)).expect("static");
    b.overwrite(q(2), s(2), q(0), s(1)).expect("static");
    b.pop(q(0), s(1), q(0)).expect("static");
    b.build().expect("static")
}

/// The number of control states of the Fig. 7 PDS.
pub const NUM_SHARED: u32 = 3;

/// The initial configuration `⟨q0|σ0⟩`.
pub fn initial_config() -> PdsConfig {
    PdsConfig::new(SharedState(0), Stack::from_top_down([StackSym(0)]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_four_actions() {
        assert_eq!(build().actions().len(), 4);
    }

    #[test]
    fn initial() {
        assert_eq!(initial_config().to_string(), "<0|0>");
    }
}
