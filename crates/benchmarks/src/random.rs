//! Seeded random CPDS generation for property-based testing.
//!
//! The cross-validation property tests (explicit vs symbolic engines,
//! `T(R) ⊆ Z`, `post*` vs bounded search) need many small systems;
//! this module produces them deterministically from a seed.

use cuba_pds::rng::SplitMix64;
use cuba_pds::{Cpds, CpdsBuilder, PdsBuilder, SharedState, StackSym};

/// Shape parameters for [`random_cpds`].
#[derive(Debug, Clone)]
pub struct RandomCpdsConfig {
    /// Number of shared states (≥ 1).
    pub num_shared: u32,
    /// Number of threads (≥ 1).
    pub num_threads: usize,
    /// Stack alphabet size per thread (≥ 1).
    pub alphabet: u32,
    /// Actions generated per thread.
    pub actions_per_thread: usize,
    /// Probability that an action is a push (the rest splits between
    /// overwrites and pops). Pushes make FCR violations likely.
    pub push_probability: f64,
}

impl Default for RandomCpdsConfig {
    fn default() -> Self {
        RandomCpdsConfig {
            num_shared: 3,
            num_threads: 2,
            alphabet: 3,
            actions_per_thread: 6,
            push_probability: 0.25,
        }
    }
}

impl RandomCpdsConfig {
    /// A shape whose instances almost always satisfy FCR: no pushes at
    /// all (overwrites and pops only), so stacks never grow.
    pub fn shrinking() -> Self {
        RandomCpdsConfig {
            push_probability: 0.0,
            ..RandomCpdsConfig::default()
        }
    }
}

/// Generates a random CPDS from a seed. The same `(config, seed)`
/// always yields the same system.
pub fn random_cpds(config: &RandomCpdsConfig, seed: u64) -> Cpds {
    let mut rng = SplitMix64::new(seed);
    let mut builder = CpdsBuilder::new(config.num_shared, SharedState(0));
    for _ in 0..config.num_threads {
        let mut pds = PdsBuilder::new(config.num_shared, config.alphabet);
        for _ in 0..config.actions_per_thread {
            let q = SharedState(rng.gen_u32(config.num_shared));
            let q2 = SharedState(rng.gen_u32(config.num_shared));
            let top = StackSym(rng.gen_u32(config.alphabet));
            let roll: f64 = rng.gen_f64();
            if roll < config.push_probability {
                let rho0 = StackSym(rng.gen_u32(config.alphabet));
                let rho1 = StackSym(rng.gen_u32(config.alphabet));
                pds.push(q, top, q2, rho0, rho1).expect("in range");
            } else if roll < config.push_probability + 0.5 * (1.0 - config.push_probability) {
                let s2 = StackSym(rng.gen_u32(config.alphabet));
                pds.overwrite(q, top, q2, s2).expect("in range");
            } else {
                pds.pop(q, top, q2).expect("in range");
            }
        }
        let initial = StackSym(rng.gen_u32(config.alphabet));
        builder = builder.thread(pds.build().expect("in range"), [initial]);
    }
    builder.build().expect("valid by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let cfg = RandomCpdsConfig::default();
        let a = random_cpds(&cfg, 42);
        let b = random_cpds(&cfg, 42);
        assert_eq!(a.initial_state(), b.initial_state());
        for i in 0..a.num_threads() {
            assert_eq!(a.thread(i).actions(), b.thread(i).actions());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = RandomCpdsConfig::default();
        let a = random_cpds(&cfg, 1);
        let b = random_cpds(&cfg, 2);
        let same = (0..a.num_threads()).all(|i| a.thread(i).actions() == b.thread(i).actions());
        assert!(!same);
    }

    #[test]
    fn shrinking_systems_satisfy_fcr() {
        let cfg = RandomCpdsConfig::shrinking();
        for seed in 0..20 {
            let cpds = random_cpds(&cfg, seed);
            assert!(
                cuba_core::check_fcr(&cpds).holds(),
                "push-free system must satisfy FCR (seed {seed})"
            );
        }
    }

    #[test]
    fn respects_shape() {
        let cfg = RandomCpdsConfig {
            num_threads: 3,
            actions_per_thread: 4,
            ..RandomCpdsConfig::default()
        };
        let cpds = random_cpds(&cfg, 7);
        assert_eq!(cpds.num_threads(), 3);
        for i in 0..3 {
            assert_eq!(cpds.thread(i).actions().len(), 4);
        }
    }
}
