//! The structured diagnostics ("lint") model shared by `cuba lint`,
//! the reduction pipeline, and the `boolprog` frontend passes.
//!
//! A [`Lint`] is plain data: a stable kebab-case code, a severity, a
//! message, and an optional 1-based source position (meaningful for
//! `.bp` inputs, absent for textual CPDS models). Rendering — human
//! text or JSON — is left to the consumer so this crate stays free of
//! serialization concerns.

/// Severity of a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LintLevel {
    /// Informational: worth knowing, never actionable on its own.
    Note,
    /// Suspicious: almost certainly dead weight or a spec mistake.
    Warn,
    /// Definite error: `cuba lint` exits non-zero when any is present.
    Deny,
}

impl std::fmt::Display for LintLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LintLevel::Note => write!(f, "note"),
            LintLevel::Warn => write!(f, "warn"),
            LintLevel::Deny => write!(f, "deny"),
        }
    }
}

/// One machine-readable diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lint {
    /// Stable kebab-case identifier (`dead-transition`, …).
    pub code: &'static str,
    /// Severity.
    pub level: LintLevel,
    /// Human-readable description of the finding.
    pub message: String,
    /// 1-based source line, when the model came from a `.bp` file.
    pub line: Option<usize>,
    /// 1-based source column, when the model came from a `.bp` file.
    pub col: Option<usize>,
}

impl Lint {
    /// A lint without a source position.
    pub fn new(code: &'static str, level: LintLevel, message: impl Into<String>) -> Self {
        Lint {
            code,
            level,
            message: message.into(),
            line: None,
            col: None,
        }
    }

    /// Attaches a 1-based source position.
    pub fn with_span(mut self, line: usize, col: usize) -> Self {
        self.line = Some(line);
        self.col = Some(col);
        self
    }
}

impl std::fmt::Display for Lint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}[{}]", self.level, self.code)?;
        if let (Some(line), Some(col)) = (self.line, self.col) {
            write!(f, " {line}:{col}")?;
        }
        write!(f, ": {}", self.message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_by_severity() {
        assert!(LintLevel::Note < LintLevel::Warn);
        assert!(LintLevel::Warn < LintLevel::Deny);
    }

    #[test]
    fn display_includes_span_when_present() {
        let plain = Lint::new("dead-transition", LintLevel::Warn, "never fires");
        assert_eq!(plain.to_string(), "warn[dead-transition]: never fires");
        let spanned =
            Lint::new("write-only-variable", LintLevel::Warn, "g never read").with_span(3, 7);
        assert_eq!(
            spanned.to_string(),
            "warn[write-only-variable] 3:7: g never read"
        );
    }
}
