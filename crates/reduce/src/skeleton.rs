//! The labeled context-insensitive skeleton: the same stack-cut-at-one
//! asynchronous product that [`cuba_core::compute_z`] explores (Alg. 2),
//! rebuilt here with two additions the reduction pipeline needs:
//!
//! * every abstract edge is *labeled* with the concrete action that
//!   induced it, so a backward pass can name the transitions lying on
//!   some path into a property violation (cone of influence);
//! * the pop-guess set is widened with the non-top symbols of each
//!   thread's initial stack, so the skeleton stays an overapproximation
//!   of the reachable visible states even for initial stacks deeper
//!   than one symbol.
//!
//! Everything flagged unreachable here is unreachable in the concrete
//! semantics (the skeleton is a superset, Lemma 12 direction), which is
//! what makes deleting it verdict-preserving.

use std::collections::{HashMap, HashSet, VecDeque};

use cuba_core::Property;
use cuba_pds::{Cpds, Pds, Rhs, StackSym, ThreadVisible, VisibleState};

/// One abstract move: firing `action` of the owning thread takes the
/// thread-visible pair `from` to `to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Move {
    from: ThreadVisible,
    to: ThreadVisible,
    action: usize,
}

/// The thread abstraction with action labels. `extra_emerging` holds
/// symbols a pop may reveal beyond the push-written ones — the non-top
/// symbols of the thread's initial stack.
fn labeled_abstraction(pds: &Pds, extra_emerging: &[StackSym]) -> Vec<Move> {
    let mut emerging: Vec<StackSym> = pds.emerging_symbols();
    for &sym in extra_emerging {
        if !emerging.contains(&sym) {
            emerging.push(sym);
        }
    }
    let mut seen: HashSet<Move> = HashSet::new();
    let mut out: Vec<Move> = Vec::new();
    let mut push = |m: Move, out: &mut Vec<Move>| {
        if seen.insert(m) {
            out.push(m);
        }
    };
    for (action, a) in pds.actions().iter().enumerate() {
        let from = ThreadVisible { q: a.q, top: a.top };
        let to_top = match a.rhs {
            Rhs::Empty => None,
            Rhs::One(s) => Some(s),
            Rhs::Two { top, .. } => Some(top),
        };
        push(
            Move {
                from,
                to: ThreadVisible {
                    q: a.q_post,
                    top: to_top,
                },
                action,
            },
            &mut out,
        );
        // Pops reveal an unknown symbol: guess every emerging symbol.
        if a.rhs.is_empty() && a.top.is_some() {
            for &rho in &emerging {
                push(
                    Move {
                        from,
                        to: ThreadVisible {
                            q: a.q_post,
                            top: Some(rho),
                        },
                        action,
                    },
                    &mut out,
                );
            }
        }
    }
    out
}

/// The explored skeleton: the overapproximated visible-state space with
/// labeled reverse edges, plus the per-action firability verdicts.
pub(crate) struct Skeleton {
    /// Interned product states (index = state id).
    pub states: Vec<VisibleState>,
    /// Reverse adjacency: `preds[v]` lists `(u, thread, action)` for
    /// every abstract edge `u → v`.
    pub preds: Vec<Vec<(u32, u32, u32)>>,
    /// Per thread, per action index: can the action's left-hand side
    /// `(q, top)` occur in any skeleton state?
    pub firable: Vec<Vec<bool>>,
    /// Per shared state: does any skeleton state carry it?
    pub reachable_shared: Vec<bool>,
}

impl Skeleton {
    /// Number of product states explored (`|Z|` of the widened
    /// skeleton).
    pub fn num_states(&self) -> usize {
        self.states.len()
    }
}

/// Explores the asynchronous product of the labeled thread
/// abstractions from the initial visible state.
pub(crate) fn explore(cpds: &Cpds) -> Skeleton {
    // Per thread: moves indexed by their source pair.
    let moves: Vec<HashMap<ThreadVisible, Vec<(ThreadVisible, u32)>>> = (0..cpds.num_threads())
        .map(|i| {
            let below: Vec<StackSym> = cpds.initial_stack(i).iter_top_down().skip(1).collect();
            let mut by_from: HashMap<ThreadVisible, Vec<(ThreadVisible, u32)>> = HashMap::new();
            for m in labeled_abstraction(cpds.thread(i), &below) {
                by_from
                    .entry(m.from)
                    .or_default()
                    .push((m.to, m.action as u32));
            }
            by_from
        })
        .collect();

    let start = cpds.initial_state().visible();
    let mut states: Vec<VisibleState> = vec![start.clone()];
    let mut index: HashMap<VisibleState, u32> = HashMap::new();
    index.insert(start, 0);
    let mut preds: Vec<Vec<(u32, u32, u32)>> = vec![Vec::new()];
    let mut queue: VecDeque<u32> = VecDeque::new();
    queue.push_back(0);
    while let Some(u) = queue.pop_front() {
        for (i, by_from) in moves.iter().enumerate() {
            let tv = states[u as usize].thread_visible(i);
            let Some(outgoing) = by_from.get(&tv) else {
                continue;
            };
            for &(to, action) in outgoing {
                let mut next = states[u as usize].clone();
                next.q = to.q;
                next.tops[i] = to.top;
                let v = match index.get(&next) {
                    Some(&v) => v,
                    None => {
                        let v = states.len() as u32;
                        states.push(next.clone());
                        index.insert(next, v);
                        preds.push(Vec::new());
                        queue.push_back(v);
                        v
                    }
                };
                preds[v as usize].push((u, i as u32, action));
            }
        }
    }

    let mut reachable_shared = vec![false; cpds.num_shared() as usize];
    for v in &states {
        reachable_shared[v.q.0 as usize] = true;
    }
    let mut firable: Vec<Vec<bool>> = cpds
        .threads()
        .iter()
        .map(|pds| vec![false; pds.actions().len()])
        .collect();
    for v in &states {
        for (i, pds) in cpds.threads().iter().enumerate() {
            for &idx in pds.actions_from(v.q, v.tops[i]) {
                firable[i][idx] = true;
            }
        }
    }
    Skeleton {
        states,
        preds,
        firable,
        reachable_shared,
    }
}

/// The property-directed backward closure (cone of influence).
pub(crate) struct Relevance {
    /// Per thread, per action index: does the action label some
    /// skeleton edge on a path into a violation of *any* of the checked
    /// properties?
    pub relevant: Vec<Vec<bool>>,
    /// Per property: is the violation unreachable even in the skeleton
    /// (the property holds trivially)?
    pub vacuous: Vec<bool>,
}

/// Walks the skeleton backward from every state violating one of
/// `properties`, marking the actions that can still influence a
/// violation. Actions left unmarked are property-irrelevant: a cone-of
/// -influence slice could drop them, at the price of changing the
/// convergence bound — see the crate docs for why the default pipeline
/// reports them instead of removing them.
pub(crate) fn relevance(cpds: &Cpds, skel: &Skeleton, properties: &[Property]) -> Relevance {
    let mut relevant: Vec<Vec<bool>> = cpds
        .threads()
        .iter()
        .map(|pds| vec![false; pds.actions().len()])
        .collect();
    let mut vacuous = Vec::with_capacity(properties.len());
    let mut in_cone = vec![false; skel.states.len()];
    let mut queue: VecDeque<u32> = VecDeque::new();
    for property in properties {
        let mut any = false;
        for (id, v) in skel.states.iter().enumerate() {
            if property.violated_by(v) {
                any = true;
                if !in_cone[id] {
                    in_cone[id] = true;
                    queue.push_back(id as u32);
                }
            }
        }
        vacuous.push(!any);
    }
    // One shared closure over the union of all targets: an edge is
    // relevant as soon as its target can reach any violation.
    while let Some(v) = queue.pop_front() {
        for &(u, thread, action) in &skel.preds[v as usize] {
            relevant[thread as usize][action as usize] = true;
            if !in_cone[u as usize] {
                in_cone[u as usize] = true;
                queue.push_back(u);
            }
        }
    }
    Relevance { relevant, vacuous }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuba_pds::{CpdsBuilder, PdsBuilder, SharedState};

    fn q(n: u32) -> SharedState {
        SharedState(n)
    }
    fn s(n: u32) -> StackSym {
        StackSym(n)
    }

    /// Fig. 1 of the paper, with names for readability.
    fn fig1() -> Cpds {
        let mut p1 = PdsBuilder::new(4, 3);
        p1.overwrite(q(0), s(1), q(1), s(2)).unwrap();
        p1.overwrite(q(3), s(2), q(0), s(1)).unwrap();
        let mut p2 = PdsBuilder::new(4, 7);
        p2.pop(q(0), s(4), q(0)).unwrap();
        p2.overwrite(q(1), s(4), q(2), s(5)).unwrap();
        p2.push(q(2), s(5), q(3), s(4), s(6)).unwrap();
        CpdsBuilder::new(4, q(0))
            .thread(p1.build().unwrap(), [s(1)])
            .thread(p2.build().unwrap(), [s(4)])
            .build()
            .unwrap()
    }

    #[test]
    fn fig1_everything_firable() {
        let cpds = fig1();
        let skel = explore(&cpds);
        assert!(skel.firable.iter().flatten().all(|&f| f));
        assert!(skel.reachable_shared.iter().all(|&r| r));
        // Matches the Fig. 3 Z set: eight visible states.
        assert_eq!(skel.num_states(), 8);
    }

    #[test]
    fn dead_action_detected() {
        // Shared state 9 is never produced, so an action reading it can
        // never fire.
        let mut p1 = PdsBuilder::new(10, 3);
        p1.overwrite(q(0), s(1), q(1), s(2)).unwrap();
        p1.overwrite(q(9), s(1), q(0), s(1)).unwrap(); // dead
        let cpds = CpdsBuilder::new(10, q(0))
            .thread(p1.build().unwrap(), [s(1)])
            .build()
            .unwrap();
        let skel = explore(&cpds);
        assert_eq!(skel.firable[0], vec![true, false]);
        assert!(!skel.reachable_shared[9]);
        assert!(skel.reachable_shared[0] && skel.reachable_shared[1]);
    }

    #[test]
    fn deep_initial_stack_symbols_emerge() {
        // Thread starts with stack [0, 1] (0 on top); popping 0 reveals
        // 1, which is not written under any push. The widened skeleton
        // must still see (1, top 1) so the second action stays firable.
        let mut p = PdsBuilder::new(2, 2);
        p.pop(q(0), s(0), q(1)).unwrap();
        p.overwrite(q(1), s(1), q(0), s(1)).unwrap();
        let cpds = CpdsBuilder::new(2, q(0))
            .thread(p.build().unwrap(), [s(0), s(1)])
            .build()
            .unwrap();
        let skel = explore(&cpds);
        assert!(skel.firable[0].iter().all(|&f| f));
    }

    #[test]
    fn relevance_follows_paths_to_violation() {
        let cpds = fig1();
        let skel = explore(&cpds);
        // ⟨2|·⟩ is reachable; every action can sit on a path to it
        // except nothing — in Fig. 1 all actions feed the loop.
        let rel = relevance(&cpds, &skel, &[Property::never_shared(q(2))]);
        assert_eq!(rel.vacuous, vec![false]);
        assert!(rel.relevant[0]
            .iter()
            .chain(rel.relevant[1].iter())
            .any(|&r| r));
    }

    #[test]
    fn vacuous_property_has_empty_cone() {
        let cpds = fig1();
        let skel = explore(&cpds);
        // ⟨2|1,5⟩ is outside Z (Ex. 14): statically safe.
        let target = VisibleState::new(q(2), vec![Some(s(1)), Some(s(5))]);
        let rel = relevance(&cpds, &skel, &[Property::never_visible(target)]);
        assert_eq!(rel.vacuous, vec![true]);
        assert!(rel.relevant.iter().flatten().all(|&r| !r));
    }
}
