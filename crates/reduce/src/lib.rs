//! Verdict-preserving static pre-analysis for CUBA models.
//!
//! CUBA's cost is dominated by `post*`/`pre*` saturation over the full
//! CPDS, yet models routinely carry control states and transitions
//! that provably cannot occur: translation artifacts, disabled
//! configuration branches, left-over states. This crate runs a cheap
//! multi-pass analysis *before* exploration:
//!
//! 1. **Skeleton reachability**: the context-insensitive
//!    stack-cut-at-one product of Alg. 2, labeled with concrete
//!    actions. Every transition whose left-hand side `(q, σ)` is not
//!    covered by any skeleton state can never fire in the concrete
//!    semantics (the skeleton overapproximates the reachable visible
//!    states, Lemma 12) — such *dead transitions* are deleted.
//! 2. **Cone of influence**: the backward closure of the skeleton
//!    from every state violating a checked [`Property`]. Transitions
//!    outside the cone cannot influence the verdict's *word*
//!    (safe/unsafe), but slicing them away would change the
//!    convergence bound `k` that [`Verdict::Safe`](cuba_core::Verdict)
//!    certifies — so the default pipeline *reports* them (statistics,
//!    lints) instead of removing them.
//! 3. **Diagnostics** ([`Lint`]): machine-readable findings —
//!    unreachable control states, dead transitions, vacuous or
//!    ill-formed property specs — suitable for `cuba lint`.
//!
//! # Why the result is verdict-preserving
//!
//! Deleting a dead transition leaves every reachability layer `Rk`
//! untouched (it never fires), but CUBA's *convergence machinery* also
//! reads the program text: the generator set `G` is built from pop
//! targets and emerging symbols (Eq. 2), the overapproximation `Z`
//! from emerging symbols (Alg. 2), and engine selection from the FCR
//! check (§5), which starts from *all* of `Q × Σ≤1`, not just reachable
//! configurations. The pipeline therefore deletes a dead transition
//! only when the deletion provably cannot shift any of those inputs:
//!
//! * per-thread **emerging symbols**, **pop targets** and **used
//!   symbols** must be unchanged — a dead transition that is the sole
//!   contributor of one of these is retained;
//! * the per-thread **FCR classification** must be unchanged — checked
//!   directly by re-running the finiteness test on the candidate
//!   reduction and reverting the thread if it flips.
//!
//! Under these guards the sequences `(Rk)`, `(Sk)`, `(T(Rk))`, the set
//! `G ∩ Z`, and the engine lineup all coincide with the original
//! system's, so every engine reports the identical verdict, bound and
//! convergence method. Shared states and stack symbols are never
//! renumbered: unreachable control states are retired in place by
//! dropping their incident transitions, so properties and witnesses
//! keep their meaning on the reduced system.

mod lint;
mod skeleton;

use std::collections::HashSet;
use std::time::Instant;

use cuba_automata::is_language_finite;
use cuba_core::{fcr_psa, Property};
use cuba_pds::{Cpds, CpdsBuilder, Pds, PdsBuilder, PdsError, Rhs, SharedState, StackSym};

pub use lint::{Lint, LintLevel};

/// Counters and pass timings of one [`reduce`] run, designed to be
/// embedded verbatim in `verify --json` output and BENCH records.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ReductionStats {
    /// States of the explored context-insensitive skeleton.
    pub skeleton_states: usize,
    /// Shared states of the model.
    pub shared_states: usize,
    /// Shared states no skeleton state carries (unreachable).
    pub unreachable_shared: usize,
    /// Transitions across all threads before reduction.
    pub transitions: usize,
    /// Transitions that can never fire (dead).
    pub dead_transitions: usize,
    /// Dead transitions actually removed — dead ones whose removal
    /// would disturb a convergence invariant are retained.
    pub removed_transitions: usize,
    /// Firable transitions outside every checked property's cone of
    /// influence (reported, not removed).
    pub irrelevant_transitions: usize,
    /// Checked properties whose violation is unreachable even in the
    /// skeleton.
    pub vacuous_properties: usize,
    /// Wall time of the skeleton pass, microseconds.
    pub skeleton_us: u64,
    /// Wall time of the cone-of-influence pass, microseconds.
    pub coi_us: u64,
    /// Wall time of guard checks and the system rebuild, microseconds.
    pub rebuild_us: u64,
}

impl ReductionStats {
    /// Whether the reduced system differs from the original.
    pub fn changed(&self) -> bool {
        self.removed_transitions > 0
    }
}

/// The outcome of the pre-analysis pipeline.
#[derive(Debug, Clone)]
pub struct Reduction {
    /// The reduced system — identical ids and names, possibly fewer
    /// transitions. Safe to verify in place of the original: every
    /// engine reports the same verdict, bound and method.
    pub cpds: Cpds,
    /// Counters and pass timings.
    pub stats: ReductionStats,
    /// Diagnostics discovered along the way.
    pub lints: Vec<Lint>,
}

impl Reduction {
    /// Whether any diagnostic reaches [`LintLevel::Deny`].
    pub fn has_deny(&self) -> bool {
        self.lints.iter().any(|l| l.level == LintLevel::Deny)
    }
}

/// Symbols an action mentions (left-hand top and right-hand writes).
fn mentioned_symbols(a: &cuba_pds::Action) -> impl Iterator<Item = StackSym> {
    let mut syms: Vec<StackSym> = Vec::with_capacity(3);
    if let Some(top) = a.top {
        syms.push(top);
    }
    match a.rhs {
        Rhs::Empty => {}
        Rhs::One(s) => syms.push(s),
        Rhs::Two { top, below } => {
            syms.push(top);
            syms.push(below);
        }
    }
    syms.into_iter()
}

/// Chooses which actions of one thread to keep: every firable action,
/// plus any dead action whose removal would change the thread's
/// emerging-symbol, pop-target or used-symbol aggregates (the inputs
/// of `G`, `Z` and the FCR initial set).
fn decide_keep(pds: &Pds, firable: &[bool]) -> Vec<bool> {
    let mut keep = firable.to_vec();
    let mut emerging: HashSet<StackSym> = HashSet::new();
    let mut pop_targets: HashSet<SharedState> = HashSet::new();
    let mut used: HashSet<StackSym> = HashSet::new();
    let absorb = |a: &cuba_pds::Action,
                  emerging: &mut HashSet<StackSym>,
                  pop_targets: &mut HashSet<SharedState>,
                  used: &mut HashSet<StackSym>| {
        if let Rhs::Two { below, .. } = a.rhs {
            emerging.insert(below);
        }
        if a.is_pop() {
            pop_targets.insert(a.q_post);
        }
        used.extend(mentioned_symbols(a));
    };
    for (idx, a) in pds.actions().iter().enumerate() {
        if keep[idx] {
            absorb(a, &mut emerging, &mut pop_targets, &mut used);
        }
    }
    for (idx, a) in pds.actions().iter().enumerate() {
        if keep[idx] {
            continue;
        }
        let contributes_emerging =
            matches!(a.rhs, Rhs::Two { below, .. } if !emerging.contains(&below));
        let contributes_pop = a.is_pop() && !pop_targets.contains(&a.q_post);
        let contributes_sym = mentioned_symbols(a).any(|s| !used.contains(&s));
        if contributes_emerging || contributes_pop || contributes_sym {
            keep[idx] = true;
            absorb(a, &mut emerging, &mut pop_targets, &mut used);
        }
    }
    keep
}

/// Rebuilds one thread's PDS with only the `keep`-flagged actions,
/// preserving action names, symbol names, and the alphabet (ids are
/// never renumbered).
fn rebuild_pds(pds: &Pds, keep: &[bool]) -> Result<Pds, PdsError> {
    let mut b = PdsBuilder::new(pds.num_shared(), pds.alphabet_size());
    for (idx, a) in pds.actions().iter().enumerate() {
        if !keep[idx] {
            continue;
        }
        match pds.action_name(idx) {
            Some(name) => b.named_action(name, *a)?,
            None => b.action(*a)?,
        };
    }
    for sym in 0..pds.alphabet_size() {
        if let Some(name) = pds.sym_name(StackSym(sym)) {
            b.name_symbol(StackSym(sym), name);
        }
    }
    b.build()
}

/// Runs the full pre-analysis pipeline on `cpds` with respect to the
/// properties that will be checked.
///
/// The returned [`Reduction::cpds`] is a drop-in replacement for the
/// original system: verifying it yields the identical
/// [`Verdict`](cuba_core::Verdict) (word, bound *and* convergence
/// method) at no more exploration work. Pass the reduced system to the
/// [`SuiteCache`](cuba_core::SuiteCache) so cached artifacts are keyed
/// on what is actually explored.
///
/// # Errors
///
/// Propagates [`PdsError`] from the rebuild — unreachable in practice,
/// since every kept action was validated when the input was built.
pub fn reduce(cpds: &Cpds, properties: &[Property]) -> Result<Reduction, PdsError> {
    cuba_telemetry::metrics::METRICS.reduce_passes.inc();
    let t0 = Instant::now();
    let skel = {
        let _span = cuba_telemetry::trace::span("reduce-skeleton");
        skeleton::explore(cpds)
    };
    let skeleton_us = t0.elapsed().as_micros() as u64;

    let t1 = Instant::now();
    let rel = {
        let _span = cuba_telemetry::trace::span("reduce-coi");
        skeleton::relevance(cpds, &skel, properties)
    };
    let coi_us = t1.elapsed().as_micros() as u64;

    let t2 = Instant::now();
    let rebuild_span = cuba_telemetry::trace::span("reduce-rebuild");
    let mut builder = CpdsBuilder::new(cpds.num_shared(), cpds.q_init());
    let mut keeps: Vec<Vec<bool>> = Vec::with_capacity(cpds.num_threads());
    for (i, pds) in cpds.threads().iter().enumerate() {
        let mut keep = decide_keep(pds, &skel.firable[i]);
        if keep.iter().any(|&k| !k) {
            // FCR guard: engine selection reads the per-thread
            // finiteness of R(Q × Σ≤1). Revert the thread if the
            // candidate reduction flips it.
            let original = is_language_finite(fcr_psa(pds, cpds.num_shared()).as_nfa());
            let candidate = rebuild_pds(pds, &keep)?;
            let reduced = is_language_finite(fcr_psa(&candidate, cpds.num_shared()).as_nfa());
            if reduced == original {
                builder = builder.thread(candidate, cpds.initial_stack(i).iter_top_down());
            } else {
                keep = vec![true; pds.actions().len()];
                builder = builder.thread(
                    rebuild_pds(pds, &keep)?,
                    cpds.initial_stack(i).iter_top_down(),
                );
            }
        } else {
            builder = builder.thread(
                rebuild_pds(pds, &keep)?,
                cpds.initial_stack(i).iter_top_down(),
            );
        }
        keeps.push(keep);
    }
    for q in 0..cpds.num_shared() {
        if let Some(name) = cpds.shared_name(SharedState(q)) {
            builder = builder.name_shared(SharedState(q), name);
        }
    }
    let reduced = builder.build()?;
    drop(rebuild_span);
    let rebuild_us = t2.elapsed().as_micros() as u64;

    let transitions: usize = cpds.threads().iter().map(|p| p.actions().len()).sum();
    let dead_transitions: usize = skel
        .firable
        .iter()
        .flatten()
        .filter(|&&firable| !firable)
        .count();
    let removed_transitions: usize = keeps.iter().flatten().filter(|&&keep| !keep).count();
    let irrelevant_transitions: usize = skel
        .firable
        .iter()
        .zip(rel.relevant.iter())
        .flat_map(|(f, r)| f.iter().zip(r.iter()))
        .filter(|&(&firable, &relevant)| firable && !relevant)
        .count();
    let vacuous_properties = rel.vacuous.iter().filter(|&&v| v).count();
    let stats = ReductionStats {
        skeleton_states: skel.num_states(),
        shared_states: cpds.num_shared() as usize,
        unreachable_shared: skel.reachable_shared.iter().filter(|&&r| !r).count(),
        transitions,
        dead_transitions,
        removed_transitions,
        irrelevant_transitions,
        vacuous_properties,
        skeleton_us,
        coi_us,
        rebuild_us,
    };

    let lints = collect_lints(cpds, properties, &skel, &rel, &keeps);
    Ok(Reduction {
        cpds: reduced,
        stats,
        lints,
    })
}

/// Produces the CPDS-level lint catalogue from the analysis results.
fn collect_lints(
    cpds: &Cpds,
    properties: &[Property],
    skel: &skeleton::Skeleton,
    rel: &skeleton::Relevance,
    keeps: &[Vec<bool>],
) -> Vec<Lint> {
    let mut lints = Vec::new();
    for (p, property) in properties.iter().enumerate() {
        match property.validate(cpds) {
            Err(message) => {
                lints.push(Lint::new("unknown-state", LintLevel::Deny, message));
            }
            Ok(()) => {
                if rel.vacuous[p] && !matches!(property, Property::True) {
                    lints.push(Lint::new(
                        "vacuous-property",
                        LintLevel::Note,
                        format!(
                            "property `{property}` cannot be violated even in the \
                             context-insensitive overapproximation; verification is trivial"
                        ),
                    ));
                }
            }
        }
    }
    for q in 0..cpds.num_shared() {
        if !skel.reachable_shared[q as usize] {
            let name = cpds
                .shared_name(SharedState(q))
                .map(|n| format!(" (`{n}`)"))
                .unwrap_or_default();
            lints.push(Lint::new(
                "unreachable-state",
                LintLevel::Warn,
                format!("shared state {q}{name} is unreachable from the initial state"),
            ));
        }
    }
    for (i, pds) in cpds.threads().iter().enumerate() {
        for (idx, a) in pds.actions().iter().enumerate() {
            if skel.firable[i][idx] {
                continue;
            }
            let what = pds
                .action_name(idx)
                .map(|n| format!("`{n}`"))
                .unwrap_or_else(|| format!("`{a}`"));
            let retained = if keeps[i][idx] {
                " (retained: removing it would change the convergence certificate)"
            } else {
                ""
            };
            lints.push(Lint::new(
                "dead-transition",
                LintLevel::Warn,
                format!(
                    "thread {i}: transition {what} can never fire — its source pair \
                     is unreachable{retained}"
                ),
            ));
        }
    }
    lints
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuba_pds::VisibleState;

    fn q(n: u32) -> SharedState {
        SharedState(n)
    }
    fn s(n: u32) -> StackSym {
        StackSym(n)
    }

    fn fig1() -> Cpds {
        let mut p1 = PdsBuilder::new(4, 3);
        p1.overwrite(q(0), s(1), q(1), s(2)).unwrap();
        p1.overwrite(q(3), s(2), q(0), s(1)).unwrap();
        let mut p2 = PdsBuilder::new(4, 7);
        p2.pop(q(0), s(4), q(0)).unwrap();
        p2.overwrite(q(1), s(4), q(2), s(5)).unwrap();
        p2.push(q(2), s(5), q(3), s(4), s(6)).unwrap();
        CpdsBuilder::new(4, q(0))
            .thread(p1.build().unwrap(), [s(1)])
            .thread(p2.build().unwrap(), [s(4)])
            .build()
            .unwrap()
    }

    /// Fig. 1 with an injected dead branch: state 4 ("debug") is never
    /// produced, so both actions reading it are dead.
    fn fig1_with_dead_code() -> Cpds {
        let mut p1 = PdsBuilder::new(5, 3);
        p1.overwrite(q(0), s(1), q(1), s(2)).unwrap();
        p1.overwrite(q(3), s(2), q(0), s(1)).unwrap();
        p1.named_action(
            "debug-dump",
            cuba_pds::Action::overwrite(q(4), s(1), q(0), s(1)),
        )
        .unwrap();
        let mut p2 = PdsBuilder::new(5, 7);
        p2.pop(q(0), s(4), q(0)).unwrap();
        p2.overwrite(q(1), s(4), q(2), s(5)).unwrap();
        p2.push(q(2), s(5), q(3), s(4), s(6)).unwrap();
        p2.overwrite(q(4), s(4), q(4), s(5)).unwrap();
        CpdsBuilder::new(5, q(0))
            .thread(p1.build().unwrap(), [s(1)])
            .thread(p2.build().unwrap(), [s(4)])
            .name_shared(q(4), "debug")
            .build()
            .unwrap()
    }

    #[test]
    fn fig1_reduces_to_identity() {
        let cpds = fig1();
        let r = reduce(&cpds, &[Property::True]).unwrap();
        assert_eq!(r.stats.removed_transitions, 0);
        assert_eq!(r.stats.dead_transitions, 0);
        assert_eq!(r.stats.unreachable_shared, 0);
        assert!(!r.stats.changed());
        assert_eq!(
            cuba_core::fingerprint(&r.cpds),
            cuba_core::fingerprint(&cpds)
        );
        assert!(r.lints.is_empty(), "{:?}", r.lints);
    }

    #[test]
    fn dead_code_is_removed_and_linted() {
        let cpds = fig1_with_dead_code();
        let r = reduce(&cpds, &[Property::never_shared(q(2))]).unwrap();
        assert_eq!(r.stats.dead_transitions, 2);
        assert_eq!(r.stats.removed_transitions, 2);
        assert_eq!(r.stats.unreachable_shared, 1);
        assert_eq!(r.cpds.thread(0).actions().len(), 2);
        assert_eq!(r.cpds.thread(1).actions().len(), 3);
        // Ids and names survive untouched.
        assert_eq!(r.cpds.num_shared(), 5);
        assert_eq!(r.cpds.shared_name(q(4)), Some("debug"));
        let codes: Vec<&str> = r.lints.iter().map(|l| l.code).collect();
        assert!(codes.contains(&"unreachable-state"));
        assert_eq!(codes.iter().filter(|&&c| c == "dead-transition").count(), 2);
        // The named dead action is reported by name.
        assert!(r
            .lints
            .iter()
            .any(|l| l.code == "dead-transition" && l.message.contains("`debug-dump`")));
    }

    #[test]
    fn reduction_preserves_convergence_aggregates() {
        let cpds = fig1_with_dead_code();
        let r = reduce(&cpds, &[Property::True]).unwrap();
        for i in 0..cpds.num_threads() {
            assert_eq!(
                r.cpds.thread(i).emerging_symbols(),
                cpds.thread(i).emerging_symbols(),
                "thread {i} emerging symbols changed"
            );
            assert_eq!(
                r.cpds.thread(i).pop_targets(),
                cpds.thread(i).pop_targets(),
                "thread {i} pop targets changed"
            );
            assert_eq!(
                r.cpds.thread(i).used_symbols(),
                cpds.thread(i).used_symbols(),
                "thread {i} used symbols changed"
            );
        }
    }

    #[test]
    fn sole_contributor_dead_actions_are_retained() {
        // The dead push is the only producer of emerging symbol 2 and
        // the dead pop the only pop targeting state 1: removing either
        // would shrink G/Z, so both must be kept (and flagged).
        let mut p = PdsBuilder::new(3, 4);
        p.overwrite(q(0), s(0), q(0), s(1)).unwrap();
        p.push(q(2), s(0), q(2), s(3), s(2)).unwrap(); // dead, sole emerging producer
        p.pop(q(2), s(3), q(1)).unwrap(); // dead, sole pop target
        let cpds = CpdsBuilder::new(3, q(0))
            .thread(p.build().unwrap(), [s(0)])
            .build()
            .unwrap();
        let r = reduce(&cpds, &[Property::True]).unwrap();
        assert_eq!(r.stats.dead_transitions, 2);
        assert_eq!(r.stats.removed_transitions, 0);
        assert_eq!(r.cpds.thread(0).actions().len(), 3);
        assert!(r
            .lints
            .iter()
            .any(|l| l.code == "dead-transition" && l.message.contains("retained")));
    }

    #[test]
    fn unknown_state_property_is_denied() {
        let cpds = fig1();
        let bogus = Property::never_shared(q(9));
        let r = reduce(&cpds, &[bogus]).unwrap();
        assert!(r.has_deny());
        assert!(r
            .lints
            .iter()
            .any(|l| l.code == "unknown-state" && l.level == LintLevel::Deny));
    }

    #[test]
    fn vacuous_property_is_noted() {
        let cpds = fig1();
        // ⟨2|1,5⟩ is outside Z (Ex. 14).
        let target = VisibleState::new(q(2), vec![Some(s(1)), Some(s(5))]);
        let r = reduce(&cpds, &[Property::never_visible(target)]).unwrap();
        assert!(r
            .lints
            .iter()
            .any(|l| l.code == "vacuous-property" && l.level == LintLevel::Note));
        assert_eq!(r.stats.vacuous_properties, 1);
    }

    #[test]
    fn reduced_system_verifies_identically() {
        use cuba_core::{Portfolio, Verdict};
        let cpds = fig1_with_dead_code();
        let property = Property::never_shared(q(2));
        let original = Portfolio::auto()
            .run(cpds.clone(), property.clone())
            .unwrap();
        let r = reduce(&cpds, std::slice::from_ref(&property)).unwrap();
        assert!(r.stats.changed());
        let reduced = Portfolio::auto().run(r.cpds, property).unwrap();
        match (&original.verdict, &reduced.verdict) {
            (Verdict::Unsafe { k: k0, .. }, Verdict::Unsafe { k: k1, .. }) => {
                assert_eq!(k0, k1)
            }
            (a, b) => assert_eq!(a, b),
        }
    }
}
