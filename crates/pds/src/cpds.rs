use crate::{
    GlobalState, Pds, PdsConfig, PdsError, SharedState, Stack, StackSym, ThreadId, VisibleState,
};

/// A concurrent pushdown system `Pn = (P1,…,Pn)` (paper §2.2): a fixed
/// number of sequential [`Pds`] sharing the state set `Q` and initial
/// shared state `qI`, each with its own stack alphabet and program.
///
/// A step nondeterministically picks a thread and fires one of its
/// enabled actions on the shared state and that thread's stack; all
/// other stacks are untouched.
#[derive(Debug, Clone)]
pub struct Cpds {
    num_shared: u32,
    q_init: SharedState,
    threads: Vec<Pds>,
    initial_stacks: Vec<Stack>,
    shared_names: Vec<Option<String>>,
}

impl Cpds {
    /// Number of shared states `|Q|`.
    pub fn num_shared(&self) -> u32 {
        self.num_shared
    }

    /// The initial shared state `qI`.
    pub fn q_init(&self) -> SharedState {
        self.q_init
    }

    /// Number of threads `n`.
    pub fn num_threads(&self) -> usize {
        self.threads.len()
    }

    /// The sequential PDS of thread `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn thread(&self, i: usize) -> &Pds {
        &self.threads[i]
    }

    /// All thread PDSs.
    pub fn threads(&self) -> &[Pds] {
        &self.threads
    }

    /// The initial stack contents of thread `i` (paper examples mostly
    /// start each stack with the name of the thread's entry function).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn initial_stack(&self, i: usize) -> &Stack {
        &self.initial_stacks[i]
    }

    /// The initial global state `⟨qI|w1^0,…,wn^0⟩`.
    pub fn initial_state(&self) -> GlobalState {
        GlobalState::new(self.q_init, self.initial_stacks.clone())
    }

    /// The display name of a shared state, if registered.
    pub fn shared_name(&self, q: SharedState) -> Option<&str> {
        self.shared_names
            .get(q.0 as usize)
            .and_then(|n| n.as_deref())
    }

    /// All one-step successors of `state` triggered by thread `i`
    /// (other threads' stacks are untouched).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn successors_of_thread(&self, state: &GlobalState, i: usize) -> Vec<GlobalState> {
        let mut out = Vec::new();
        self.successors_of_thread_into(state, i, &mut |s, _| out.push(s));
        out
    }

    /// Like [`successors_of_thread`](Cpds::successors_of_thread), but
    /// passes each successor plus the index of the `Δi` action that
    /// produced it to `f` (used for witness-path reconstruction).
    pub fn successors_of_thread_into(
        &self,
        state: &GlobalState,
        i: usize,
        f: &mut dyn FnMut(GlobalState, usize),
    ) {
        let pds = &self.threads[i];
        let config = PdsConfig::new(state.q, state.stacks[i].clone());
        pds.successors_into(&config, &mut |succ, idx| {
            let mut stacks = state.stacks.clone();
            stacks[i] = succ.stack;
            f(GlobalState::new(succ.q, stacks), idx);
        });
    }

    /// All one-step successors of `state` under any thread, each tagged
    /// with the triggering [`ThreadId`].
    pub fn successors(&self, state: &GlobalState) -> Vec<(ThreadId, GlobalState)> {
        let mut out = Vec::new();
        for i in 0..self.num_threads() {
            self.successors_of_thread_into(state, i, &mut |s, _| out.push((ThreadId(i), s)));
        }
        out
    }

    /// The visible-state projection `T(s)` (Eq. 1), delegated to
    /// [`GlobalState::visible`]; exposed here for discoverability.
    pub fn project(&self, state: &GlobalState) -> VisibleState {
        state.visible()
    }

    /// Enumerates the *entire* finite domain of visible states
    /// `Q × Σ≤1_1 × … × Σ≤1_n` (symbols restricted to those actually
    /// used by each thread, plus `ε`). The size of this set bounds the
    /// length of any strict growth of `(T(Rk))` (Prop. 3).
    pub fn all_visible_states(&self) -> Vec<VisibleState> {
        let mut per_thread: Vec<Vec<Option<StackSym>>> = Vec::with_capacity(self.num_threads());
        for t in &self.threads {
            let mut tops: Vec<Option<StackSym>> = vec![None];
            tops.extend(t.used_symbols().into_iter().map(Some));
            per_thread.push(tops);
        }
        let mut out = Vec::new();
        for q in 0..self.num_shared {
            let mut tuple: Vec<Option<StackSym>> = vec![None; self.num_threads()];
            enumerate_tuples(&per_thread, 0, &mut tuple, &mut |tops| {
                out.push(VisibleState::new(SharedState(q), tops.to_vec()));
            });
        }
        out
    }
}

fn enumerate_tuples(
    domains: &[Vec<Option<StackSym>>],
    i: usize,
    tuple: &mut Vec<Option<StackSym>>,
    f: &mut dyn FnMut(&[Option<StackSym>]),
) {
    if i == domains.len() {
        f(tuple);
        return;
    }
    for &choice in &domains[i] {
        tuple[i] = choice;
        enumerate_tuples(domains, i + 1, tuple, f);
    }
}

/// Builder for [`Cpds`].
#[derive(Debug, Clone)]
pub struct CpdsBuilder {
    num_shared: u32,
    q_init: SharedState,
    threads: Vec<Pds>,
    initial_stacks: Vec<Stack>,
    shared_names: Vec<Option<String>>,
}

impl CpdsBuilder {
    /// Starts a CPDS with `num_shared` shared states and initial shared
    /// state `q_init`.
    pub fn new(num_shared: u32, q_init: SharedState) -> Self {
        CpdsBuilder {
            num_shared,
            q_init,
            threads: Vec::new(),
            initial_stacks: Vec::new(),
            shared_names: vec![None; num_shared as usize],
        }
    }

    /// Adds a thread with the given initial stack (listed top-first).
    pub fn thread<I: IntoIterator<Item = StackSym>>(mut self, pds: Pds, initial_stack: I) -> Self {
        self.threads.push(pds);
        self.initial_stacks
            .push(Stack::from_top_down(initial_stack));
        self
    }

    /// Adds `count` identical threads (thread templates, as in the
    /// paper's `n + m` thread configurations of Table 2).
    pub fn threads<I: IntoIterator<Item = StackSym> + Clone>(
        mut self,
        pds: &Pds,
        initial_stack: I,
        count: usize,
    ) -> Self {
        for _ in 0..count {
            self = self.thread(pds.clone(), initial_stack.clone());
        }
        self
    }

    /// Registers a display name for a shared state.
    pub fn name_shared(mut self, q: SharedState, name: &str) -> Self {
        if let Some(slot) = self.shared_names.get_mut(q.0 as usize) {
            *slot = Some(name.to_owned());
        }
        self
    }

    /// Finishes construction.
    ///
    /// # Errors
    ///
    /// Returns an error if there are no threads, if any thread
    /// disagrees on `|Q|`, if `q_init` is out of range, or if an
    /// initial stack uses an out-of-range symbol.
    pub fn build(self) -> Result<Cpds, PdsError> {
        if self.threads.is_empty() {
            return Err(PdsError::NoThreads);
        }
        if self.q_init.0 >= self.num_shared {
            return Err(PdsError::SharedStateOutOfRange {
                state: self.q_init,
                num_shared: self.num_shared,
            });
        }
        for (i, t) in self.threads.iter().enumerate() {
            if t.num_shared() != self.num_shared {
                return Err(PdsError::MismatchedSharedCount {
                    expected: self.num_shared,
                    found: t.num_shared(),
                    thread: i,
                });
            }
            for sym in self.initial_stacks[i].iter_top_down() {
                if sym.0 >= t.alphabet_size() {
                    return Err(PdsError::InitialStackSymbolOutOfRange { thread: i, sym });
                }
            }
        }
        Ok(Cpds {
            num_shared: self.num_shared,
            q_init: self.q_init,
            threads: self.threads,
            initial_stacks: self.initial_stacks,
            shared_names: self.shared_names,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PdsBuilder;

    fn q(n: u32) -> SharedState {
        SharedState(n)
    }
    fn s(n: u32) -> StackSym {
        StackSym(n)
    }

    /// The CPDS of Fig. 1.
    fn fig1() -> Cpds {
        let mut p1 = PdsBuilder::new(4, 3);
        p1.overwrite(q(0), s(1), q(1), s(2)).unwrap(); // f1
        p1.overwrite(q(3), s(2), q(0), s(1)).unwrap(); // f2
        let mut p2 = PdsBuilder::new(4, 7);
        p2.pop(q(0), s(4), q(0)).unwrap(); // b1
        p2.overwrite(q(1), s(4), q(2), s(5)).unwrap(); // b2
        p2.push(q(2), s(5), q(3), s(4), s(6)).unwrap(); // b3
        CpdsBuilder::new(4, q(0))
            .thread(p1.build().unwrap(), [s(1)])
            .thread(p2.build().unwrap(), [s(4)])
            .build()
            .unwrap()
    }

    #[test]
    fn initial_state_is_fig1s() {
        let c = fig1();
        assert_eq!(c.initial_state().to_string(), "<0|1,4>");
        assert_eq!(c.q_init(), q(0));
        assert_eq!(c.num_threads(), 2);
    }

    #[test]
    fn step_only_touches_one_stack() {
        let c = fig1();
        let init = c.initial_state();
        let succ1 = c.successors_of_thread(&init, 0);
        assert_eq!(succ1.len(), 1);
        assert_eq!(succ1[0].to_string(), "<1|2,4>"); // f1
        let succ2 = c.successors_of_thread(&init, 1);
        assert_eq!(succ2.len(), 1);
        assert_eq!(succ2[0].to_string(), "<0|1,eps>"); // b1
    }

    #[test]
    fn successors_tag_threads() {
        let c = fig1();
        let all = c.successors(&c.initial_state());
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].0, ThreadId(0));
        assert_eq!(all[1].0, ThreadId(1));
    }

    #[test]
    fn fig1_three_step_path() {
        // <0|1,4> -f1-> <1|2,4> -b2-> <2|2,5> -b3-> <3|2,46>
        let c = fig1();
        let s1 = c.successors_of_thread(&c.initial_state(), 0).remove(0);
        let s2 = c.successors_of_thread(&s1, 1).remove(0);
        let s3 = c.successors_of_thread(&s2, 1).remove(0);
        assert_eq!(s3.to_string(), "<3|2,46>");
        assert_eq!(s3.visible().to_string(), "<3|2,4>");
    }

    #[test]
    fn build_validation() {
        let p_ok = PdsBuilder::new(4, 2).build().unwrap();
        let p_bad = PdsBuilder::new(3, 2).build().unwrap();
        assert_eq!(
            CpdsBuilder::new(4, q(0)).build().unwrap_err(),
            PdsError::NoThreads
        );
        assert_eq!(
            CpdsBuilder::new(4, q(9))
                .thread(p_ok.clone(), [])
                .build()
                .unwrap_err(),
            PdsError::SharedStateOutOfRange {
                state: q(9),
                num_shared: 4
            }
        );
        assert_eq!(
            CpdsBuilder::new(4, q(0))
                .thread(p_ok.clone(), [])
                .thread(p_bad, [])
                .build()
                .unwrap_err(),
            PdsError::MismatchedSharedCount {
                expected: 4,
                found: 3,
                thread: 1
            }
        );
        assert_eq!(
            CpdsBuilder::new(4, q(0))
                .thread(p_ok, [s(5)])
                .build()
                .unwrap_err(),
            PdsError::InitialStackSymbolOutOfRange {
                thread: 0,
                sym: s(5)
            }
        );
    }

    #[test]
    fn thread_templates_clone() {
        let p = PdsBuilder::new(2, 1).build().unwrap();
        let c = CpdsBuilder::new(2, q(0))
            .threads(&p, [s(0)], 3)
            .build()
            .unwrap();
        assert_eq!(c.num_threads(), 3);
        assert_eq!(c.initial_stack(2).top(), Some(s(0)));
    }

    #[test]
    fn all_visible_states_enumerates_finite_domain() {
        let c = fig1();
        let all = c.all_visible_states();
        // |Q| = 4, thread 1 uses {1,2} (+eps), thread 2 uses {4,5,6} (+eps)
        assert_eq!(all.len(), 4 * 3 * 4);
        // all distinct:
        let set: std::collections::HashSet<_> = all.iter().cloned().collect();
        assert_eq!(set.len(), all.len());
    }

    #[test]
    fn shared_names() {
        let p = PdsBuilder::new(3, 1).build().unwrap();
        let c = CpdsBuilder::new(3, q(0))
            .name_shared(q(2), "bot")
            .thread(p, [])
            .build()
            .unwrap();
        assert_eq!(c.shared_name(q(2)), Some("bot"));
        assert_eq!(c.shared_name(q(0)), None);
    }
}
