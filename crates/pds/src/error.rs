use crate::{SharedState, StackSym};

/// Errors raised while constructing or validating pushdown systems.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PdsError {
    /// A shared state id is `>= num_shared`.
    SharedStateOutOfRange {
        /// The offending state.
        state: SharedState,
        /// The number of shared states of the system.
        num_shared: u32,
    },
    /// A stack symbol id is `>= alphabet_size`.
    SymbolOutOfRange {
        /// The offending symbol.
        sym: StackSym,
        /// The alphabet size of the thread.
        alphabet_size: u32,
    },
    /// An action with an empty-stack left-hand side tried to push two
    /// symbols; the model only allows `w' ∈ Σ≤1` from the empty stack
    /// (paper §2.1, case (b)).
    PushFromEmptyStack,
    /// A CPDS was built from threads that disagree on the number of
    /// shared states.
    MismatchedSharedCount {
        /// `num_shared` expected by the CPDS.
        expected: u32,
        /// `num_shared` found in the offending thread.
        found: u32,
        /// Index of the offending thread.
        thread: usize,
    },
    /// A CPDS must have at least one thread.
    NoThreads,
    /// A thread index was out of range.
    ThreadOutOfRange {
        /// The offending index.
        thread: usize,
        /// The number of threads.
        num_threads: usize,
    },
    /// An initial stack mentions a symbol outside the thread's alphabet.
    InitialStackSymbolOutOfRange {
        /// Index of the offending thread.
        thread: usize,
        /// The offending symbol.
        sym: StackSym,
    },
}

impl std::fmt::Display for PdsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PdsError::SharedStateOutOfRange { state, num_shared } => write!(
                f,
                "shared state {state} out of range (system has {num_shared} shared states)"
            ),
            PdsError::SymbolOutOfRange { sym, alphabet_size } => write!(
                f,
                "stack symbol {sym} out of range (alphabet size is {alphabet_size})"
            ),
            PdsError::PushFromEmptyStack => {
                write!(
                    f,
                    "actions from the empty stack may write at most one symbol"
                )
            }
            PdsError::MismatchedSharedCount {
                expected,
                found,
                thread,
            } => write!(
                f,
                "thread {thread} has {found} shared states, expected {expected}"
            ),
            PdsError::NoThreads => write!(f, "a CPDS must have at least one thread"),
            PdsError::ThreadOutOfRange {
                thread,
                num_threads,
            } => write!(
                f,
                "thread index {thread} out of range ({num_threads} threads)"
            ),
            PdsError::InitialStackSymbolOutOfRange { thread, sym } => write!(
                f,
                "initial stack of thread {thread} uses out-of-range symbol {sym}"
            ),
        }
    }
}

impl std::error::Error for PdsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase_start() {
        let errors: Vec<PdsError> = vec![
            PdsError::SharedStateOutOfRange {
                state: SharedState(9),
                num_shared: 3,
            },
            PdsError::SymbolOutOfRange {
                sym: StackSym(7),
                alphabet_size: 2,
            },
            PdsError::PushFromEmptyStack,
            PdsError::MismatchedSharedCount {
                expected: 2,
                found: 3,
                thread: 1,
            },
            PdsError::NoThreads,
            PdsError::ThreadOutOfRange {
                thread: 4,
                num_threads: 2,
            },
            PdsError::InitialStackSymbolOutOfRange {
                thread: 0,
                sym: StackSym(5),
            },
        ];
        for e in errors {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
            assert!(!msg.ends_with('.'));
        }
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(PdsError::NoThreads);
        assert!(e.to_string().contains("at least one thread"));
    }
}
