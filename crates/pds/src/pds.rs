use std::collections::HashMap;

use crate::{Action, PdsConfig, PdsError, Rhs, SharedState, StackSym};

/// A sequential pushdown system `P = (Q, Σ, Δ, qI)` (paper §2.1).
///
/// Shared states are `0..num_shared`, stack symbols `0..alphabet_size`.
/// The initial shared state lives in the owning [`Cpds`](crate::Cpds);
/// a standalone `Pds` carries only `Q`, `Σ` and `Δ`, which is all the
/// reachability machinery needs (cf. Lemma 16: "the initial shared
/// state is irrelevant here").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pds {
    num_shared: u32,
    alphabet_size: u32,
    actions: Vec<Action>,
    /// Indices into `actions`, keyed by the left-hand side `(q, w)`.
    index: HashMap<(SharedState, Option<StackSym>), Vec<usize>>,
    /// Optional display names for stack symbols.
    sym_names: HashMap<StackSym, String>,
    /// Optional display names for actions (e.g. "f1", "b3" in Fig. 1).
    action_names: Vec<Option<String>>,
}

impl Pds {
    /// Number of shared states `|Q|`.
    pub fn num_shared(&self) -> u32 {
        self.num_shared
    }

    /// Size of the stack alphabet `|Σ|`.
    ///
    /// Symbols are the dense range `0..alphabet_size`; a thread need
    /// not use every id (Fig. 1 numbers the two threads' alphabets
    /// disjointly: `Σ1 = {1,2}`, `Σ2 = {4,5,6}`).
    pub fn alphabet_size(&self) -> u32 {
        self.alphabet_size
    }

    /// All actions `Δ`, in insertion order.
    pub fn actions(&self) -> &[Action] {
        &self.actions
    }

    /// Actions enabled on the left-hand side `(q, top)`.
    pub fn actions_from(&self, q: SharedState, top: Option<StackSym>) -> &[usize] {
        self.index
            .get(&(q, top))
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// The display name of an action, if one was set.
    pub fn action_name(&self, idx: usize) -> Option<&str> {
        self.action_names.get(idx).and_then(|n| n.as_deref())
    }

    /// The display name of a stack symbol, if one was set.
    pub fn sym_name(&self, sym: StackSym) -> Option<&str> {
        self.sym_names.get(&sym).map(|s| s.as_str())
    }

    /// The set of *distinct* stack symbols actually mentioned by `Δ`
    /// (left-hand sides, right-hand sides), sorted.
    pub fn used_symbols(&self) -> Vec<StackSym> {
        let mut syms: Vec<StackSym> = Vec::new();
        for a in &self.actions {
            if let Some(s) = a.top {
                syms.push(s);
            }
            match a.rhs {
                Rhs::Empty => {}
                Rhs::One(s) => syms.push(s),
                Rhs::Two { top, below } => {
                    syms.push(top);
                    syms.push(below);
                }
            }
        }
        syms.sort_unstable();
        syms.dedup();
        syms
    }

    /// All successor configurations of `⟨q|w⟩` under single actions of
    /// this PDS (paper §2.1 semantics).
    pub fn successors(&self, config: &PdsConfig) -> Vec<PdsConfig> {
        let mut out = Vec::new();
        self.successors_into(config, &mut |c, _| out.push(c));
        out
    }

    /// Like [`successors`](Pds::successors) but invokes `f` with each
    /// successor and the index of the action that produced it, avoiding
    /// intermediate allocation on hot paths.
    pub fn successors_into(&self, config: &PdsConfig, f: &mut dyn FnMut(PdsConfig, usize)) {
        let top = config.stack.top();
        for &idx in self.actions_from(config.q, top) {
            let action = &self.actions[idx];
            let mut stack = config.stack.clone();
            match (action.top, &action.rhs) {
                (Some(_), Rhs::Empty) => {
                    stack.pop();
                }
                (Some(_), Rhs::One(s)) => {
                    stack.overwrite_top(*s);
                }
                (Some(_), Rhs::Two { top, below }) => {
                    stack.overwrite_top(*below);
                    stack.push(*top);
                }
                (None, Rhs::Empty) => {}
                (None, Rhs::One(s)) => {
                    stack.push(*s);
                }
                (None, Rhs::Two { .. }) => unreachable!("rejected at construction"),
            }
            f(PdsConfig::new(action.q_post, stack), idx);
        }
    }

    /// Shared states `q` that are the target of a pop edge, i.e. `q`
    /// with some `(·,·) → (q,ε) ∈ Δ`. Used by Eq. 2 (generator sets).
    pub fn pop_targets(&self) -> Vec<SharedState> {
        let mut v: Vec<SharedState> = self
            .actions
            .iter()
            .filter(|a| a.is_pop())
            .map(|a| a.q_post)
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// The *emerging symbols* `E`: every `ρ1` written directly under a
    /// pushed symbol (Alg. 2, lines 2–3). After a pop, the symbol that
    /// surfaces is either `ε` or one of these.
    pub fn emerging_symbols(&self) -> Vec<StackSym> {
        let mut v: Vec<StackSym> = self
            .actions
            .iter()
            .filter_map(|a| a.push_symbols().map(|(_, below)| below))
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

/// Builder for [`Pds`]; validates every action against `Q` and `Σ`.
#[derive(Debug, Clone)]
pub struct PdsBuilder {
    num_shared: u32,
    alphabet_size: u32,
    actions: Vec<Action>,
    action_names: Vec<Option<String>>,
    sym_names: HashMap<StackSym, String>,
}

impl PdsBuilder {
    /// Starts a PDS with `num_shared` shared states and stack symbols
    /// `0..alphabet_size`.
    pub fn new(num_shared: u32, alphabet_size: u32) -> Self {
        PdsBuilder {
            num_shared,
            alphabet_size,
            actions: Vec::new(),
            action_names: Vec::new(),
            sym_names: HashMap::new(),
        }
    }

    fn check_q(&self, q: SharedState) -> Result<(), PdsError> {
        if q.0 >= self.num_shared {
            return Err(PdsError::SharedStateOutOfRange {
                state: q,
                num_shared: self.num_shared,
            });
        }
        Ok(())
    }

    fn check_sym(&self, s: StackSym) -> Result<(), PdsError> {
        if s.0 >= self.alphabet_size {
            return Err(PdsError::SymbolOutOfRange {
                sym: s,
                alphabet_size: self.alphabet_size,
            });
        }
        Ok(())
    }

    /// Adds a validated action.
    pub fn action(&mut self, a: Action) -> Result<&mut Self, PdsError> {
        self.check_q(a.q)?;
        self.check_q(a.q_post)?;
        if let Some(s) = a.top {
            self.check_sym(s)?;
        }
        match a.rhs {
            Rhs::Empty => {}
            Rhs::One(s) => self.check_sym(s)?,
            Rhs::Two { top, below } => {
                if a.top.is_none() {
                    return Err(PdsError::PushFromEmptyStack);
                }
                self.check_sym(top)?;
                self.check_sym(below)?;
            }
        }
        self.actions.push(a);
        self.action_names.push(None);
        Ok(self)
    }

    /// Adds a named action (names show up in witness paths, e.g. "f1").
    pub fn named_action(&mut self, name: &str, a: Action) -> Result<&mut Self, PdsError> {
        self.action(a)?;
        *self.action_names.last_mut().expect("just pushed") = Some(name.to_owned());
        Ok(self)
    }

    /// Adds the pop action `(q,σ) → (q',ε)`.
    pub fn pop(
        &mut self,
        q: SharedState,
        sym: StackSym,
        q2: SharedState,
    ) -> Result<&mut Self, PdsError> {
        self.action(Action::pop(q, sym, q2))
    }

    /// Adds the overwrite action `(q,σ) → (q',σ')`.
    pub fn overwrite(
        &mut self,
        q: SharedState,
        sym: StackSym,
        q2: SharedState,
        sym2: StackSym,
    ) -> Result<&mut Self, PdsError> {
        self.action(Action::overwrite(q, sym, q2, sym2))
    }

    /// Adds the push action `(q,σ) → (q',ρ0ρ1)`.
    pub fn push(
        &mut self,
        q: SharedState,
        sym: StackSym,
        q2: SharedState,
        rho0: StackSym,
        rho1: StackSym,
    ) -> Result<&mut Self, PdsError> {
        self.action(Action::push(q, sym, q2, rho0, rho1))
    }

    /// Adds the empty-stack action `(q,ε) → (q',w')`, `w' ∈ Σ≤1`.
    pub fn from_empty(
        &mut self,
        q: SharedState,
        q2: SharedState,
        sym2: Option<StackSym>,
    ) -> Result<&mut Self, PdsError> {
        self.action(Action::from_empty(q, q2, sym2))
    }

    /// Registers a display name for a stack symbol.
    pub fn name_symbol(&mut self, sym: StackSym, name: &str) -> &mut Self {
        self.sym_names.insert(sym, name.to_owned());
        self
    }

    /// Finishes construction.
    ///
    /// # Errors
    ///
    /// Currently infallible after per-action validation, but returns
    /// `Result` so cross-action validation can be added compatibly.
    pub fn build(&self) -> Result<Pds, PdsError> {
        let mut index: HashMap<(SharedState, Option<StackSym>), Vec<usize>> = HashMap::new();
        for (i, a) in self.actions.iter().enumerate() {
            index.entry((a.q, a.top)).or_default().push(i);
        }
        Ok(Pds {
            num_shared: self.num_shared,
            alphabet_size: self.alphabet_size,
            actions: self.actions.clone(),
            index,
            sym_names: self.sym_names.clone(),
            action_names: self.action_names.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Stack;

    fn q(n: u32) -> SharedState {
        SharedState(n)
    }
    fn s(n: u32) -> StackSym {
        StackSym(n)
    }

    fn fig1_thread2() -> Pds {
        // ∆2 of Fig. 1: b1 (0,4)->(0,ε), b2 (1,4)->(2,5), b3 (2,5)->(3,46)
        let mut b = PdsBuilder::new(4, 7);
        b.named_action("b1", Action::pop(q(0), s(4), q(0))).unwrap();
        b.named_action("b2", Action::overwrite(q(1), s(4), q(2), s(5)))
            .unwrap();
        b.named_action("b3", Action::push(q(2), s(5), q(3), s(4), s(6)))
            .unwrap();
        b.build().unwrap()
    }

    #[test]
    fn successors_pop() {
        let p = fig1_thread2();
        let c = PdsConfig::new(q(0), Stack::from_top_down([s(4), s(6)]));
        let succ = p.successors(&c);
        assert_eq!(
            succ,
            vec![PdsConfig::new(q(0), Stack::from_top_down([s(6)]))]
        );
    }

    #[test]
    fn successors_overwrite() {
        let p = fig1_thread2();
        let c = PdsConfig::new(q(1), Stack::from_top_down([s(4)]));
        let succ = p.successors(&c);
        assert_eq!(
            succ,
            vec![PdsConfig::new(q(2), Stack::from_top_down([s(5)]))]
        );
    }

    #[test]
    fn successors_push_overwrites_below() {
        let p = fig1_thread2();
        let c = PdsConfig::new(q(2), Stack::from_top_down([s(5), s(6)]));
        let succ = p.successors(&c);
        // (2,5) -> (3,46): top 5 replaced by 6, then 4 pushed: stack 466
        assert_eq!(
            succ,
            vec![PdsConfig::new(
                q(3),
                Stack::from_top_down([s(4), s(6), s(6)])
            )]
        );
    }

    #[test]
    fn no_action_enabled_means_no_successors() {
        let p = fig1_thread2();
        let c = PdsConfig::new(q(3), Stack::from_top_down([s(4)]));
        assert!(p.successors(&c).is_empty());
        // empty stack, no empty-stack actions in ∆2:
        let c = PdsConfig::new(q(0), Stack::new());
        assert!(p.successors(&c).is_empty());
    }

    #[test]
    fn empty_stack_actions() {
        let mut b = PdsBuilder::new(2, 2);
        b.from_empty(q(0), q(1), None).unwrap();
        b.from_empty(q(0), q(0), Some(s(1))).unwrap();
        let p = b.build().unwrap();
        let c = PdsConfig::new(q(0), Stack::new());
        let succ = p.successors(&c);
        assert_eq!(succ.len(), 2);
        assert!(succ.contains(&PdsConfig::new(q(1), Stack::new())));
        assert!(succ.contains(&PdsConfig::new(q(0), Stack::from_top_down([s(1)]))));
    }

    #[test]
    fn builder_rejects_out_of_range() {
        let mut b = PdsBuilder::new(2, 2);
        assert_eq!(
            b.pop(q(2), s(0), q(0)).unwrap_err(),
            PdsError::SharedStateOutOfRange {
                state: q(2),
                num_shared: 2
            }
        );
        assert_eq!(
            b.overwrite(q(0), s(2), q(0), s(0)).unwrap_err(),
            PdsError::SymbolOutOfRange {
                sym: s(2),
                alphabet_size: 2
            }
        );
        assert_eq!(
            b.action(Action {
                q: q(0),
                top: None,
                q_post: q(0),
                rhs: Rhs::Two {
                    top: s(0),
                    below: s(1)
                },
            })
            .unwrap_err(),
            PdsError::PushFromEmptyStack
        );
    }

    #[test]
    fn pop_targets_and_emerging_symbols() {
        let p = fig1_thread2();
        assert_eq!(p.pop_targets(), vec![q(0)]);
        assert_eq!(p.emerging_symbols(), vec![s(6)]);
    }

    #[test]
    fn used_symbols_sorted_dedup() {
        let p = fig1_thread2();
        assert_eq!(p.used_symbols(), vec![s(4), s(5), s(6)]);
    }

    #[test]
    fn action_names_retained() {
        let p = fig1_thread2();
        assert_eq!(p.action_name(0), Some("b1"));
        assert_eq!(p.action_name(2), Some("b3"));
    }

    #[test]
    fn successors_into_reports_action_indices() {
        let p = fig1_thread2();
        let c = PdsConfig::new(q(2), Stack::from_top_down([s(5)]));
        let mut seen = Vec::new();
        p.successors_into(&c, &mut |cfg, idx| seen.push((cfg, idx)));
        assert_eq!(seen.len(), 1);
        assert_eq!(seen[0].1, 2);
    }
}
