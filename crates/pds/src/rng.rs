//! A tiny deterministic pseudo-random number generator.
//!
//! The workspace builds without network access, so external PRNG
//! crates are unavailable; this SplitMix64 generator covers the two
//! in-tree uses — seeded random model generation
//! (`cuba_benchmarks::random`) and property-style tests — with stable
//! cross-platform output. SplitMix64 passes BigCrush and is the
//! recommended seeder for the xoshiro family; its statistical quality
//! is far beyond what model fuzzing needs.

/// A seeded SplitMix64 generator.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. The same seed always yields
    /// the same sequence.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniformly distributed `u32` in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn gen_u32(&mut self, bound: u32) -> u32 {
        assert!(bound > 0, "gen_u32 bound must be positive");
        // Lemire-style rejection-free reduction is overkill here; the
        // modulo bias for bounds ≪ 2^64 is negligible for test data.
        (self.next_u64() % u64::from(bound)) as u32
    }

    /// A uniformly distributed `usize` in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn gen_usize(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "gen_usize bound must be positive");
        (self.next_u64() % bound as u64) as usize
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        // 53 mantissa bits of the raw output.
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A fair coin flip.
    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn bounds_respected() {
        let mut rng = SplitMix64::new(1);
        for _ in 0..1000 {
            assert!(rng.gen_u32(7) < 7);
            assert!(rng.gen_usize(3) < 3);
            let f = rng.gen_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn spread_is_reasonable() {
        let mut rng = SplitMix64::new(42);
        let mut counts = [0usize; 4];
        for _ in 0..4000 {
            counts[rng.gen_usize(4)] += 1;
        }
        for c in counts {
            assert!((800..1200).contains(&c), "skewed counts: {counts:?}");
        }
    }
}
