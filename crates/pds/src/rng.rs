//! A tiny deterministic pseudo-random number generator.
//!
//! The workspace builds without network access, so external PRNG
//! crates are unavailable; this SplitMix64 generator covers the two
//! in-tree uses — seeded random model generation
//! (`cuba_benchmarks::random`) and property-style tests — with stable
//! cross-platform output. SplitMix64 passes BigCrush and is the
//! recommended seeder for the xoshiro family; its statistical quality
//! is far beyond what model fuzzing needs.

/// A seeded SplitMix64 generator.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. The same seed always yields
    /// the same sequence.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniformly distributed `u32` in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn gen_u32(&mut self, bound: u32) -> u32 {
        assert!(bound > 0, "gen_u32 bound must be positive");
        // Lemire-style rejection-free reduction is overkill here; the
        // modulo bias for bounds ≪ 2^64 is negligible for test data.
        (self.next_u64() % u64::from(bound)) as u32
    }

    /// A uniformly distributed `usize` in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn gen_usize(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "gen_usize bound must be positive");
        (self.next_u64() % bound as u64) as usize
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        // 53 mantissa bits of the raw output.
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A fair coin flip.
    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

/// Greedy proptest-style shrinking of a failing counterexample.
///
/// `candidates` proposes smaller variants of a value (halved sizes,
/// dropped components); `fails` re-runs the property under test.
/// Starting from a known-failing `value`, the search moves to the
/// first candidate that still fails and repeats until every candidate
/// passes, returning a locally minimal failing input. Termination is
/// the candidate function's job: each candidate must be strictly
/// smaller under some well-founded measure (as [`shrink_usize`] is);
/// a defensive step bound guards against candidate functions that
/// violate that.
pub fn shrink<T>(
    mut value: T,
    candidates: impl Fn(&T) -> Vec<T>,
    mut fails: impl FnMut(&T) -> bool,
) -> T {
    for _ in 0..10_000 {
        let Some(next) = candidates(&value).into_iter().find(|c| fails(c)) else {
            return value;
        };
        value = next;
    }
    value
}

/// Shrink candidates for a size parameter: zero first (the biggest
/// jump), then the half, then the predecessor — the classic integer
/// shrinking ladder. Every candidate is strictly smaller than `n`, so
/// [`shrink`] over these terminates. Empty for `n == 0`.
pub fn shrink_usize(n: usize) -> Vec<usize> {
    let mut out = Vec::new();
    if n == 0 {
        return out;
    }
    out.push(0);
    if n / 2 != 0 {
        out.push(n / 2);
    }
    if n - 1 != 0 && n - 1 != n / 2 {
        out.push(n - 1);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn bounds_respected() {
        let mut rng = SplitMix64::new(1);
        for _ in 0..1000 {
            assert!(rng.gen_u32(7) < 7);
            assert!(rng.gen_usize(3) < 3);
            let f = rng.gen_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shrink_finds_minimal_threshold() {
        // Property "n < 13" fails for n ≥ 13; shrinking from 100 must
        // land exactly on the boundary.
        let minimal = shrink(100usize, |&n| shrink_usize(n), |&n| n >= 13);
        assert_eq!(minimal, 13);
        // An input where everything below fails shrinks to zero.
        assert_eq!(shrink(64usize, |&n| shrink_usize(n), |_| true), 0);
        // Pairs shrink coordinate-wise.
        let minimal = shrink(
            (9usize, 6usize),
            |&(a, b)| {
                let mut next: Vec<(usize, usize)> =
                    shrink_usize(a).into_iter().map(|a2| (a2, b)).collect();
                next.extend(shrink_usize(b).into_iter().map(|b2| (a, b2)));
                next
            },
            |&(a, b)| a >= 3 && b >= 2,
        );
        assert_eq!(minimal, (3, 2));
    }

    #[test]
    fn shrink_usize_ladder() {
        assert!(shrink_usize(0).is_empty());
        assert_eq!(shrink_usize(1), vec![0]);
        assert_eq!(shrink_usize(2), vec![0, 1]);
        assert_eq!(shrink_usize(9), vec![0, 4, 8]);
        for n in 1..100usize {
            assert!(shrink_usize(n).iter().all(|&c| c < n));
        }
    }

    #[test]
    fn spread_is_reasonable() {
        let mut rng = SplitMix64::new(42);
        let mut counts = [0usize; 4];
        for _ in 0..4000 {
            counts[rng.gen_usize(4)] += 1;
        }
        for c in counts {
            assert!((800..1200).contains(&c), "skewed counts: {counts:?}");
        }
    }
}
