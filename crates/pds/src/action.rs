use crate::{SharedState, StackSym};

/// Right-hand side `w' ∈ Σ≤2` of an action `(q, w) → (q', w')`.
///
/// The paper writes a two-symbol right-hand side as `ρ0ρ1` where `ρ0`
/// becomes the new top of the stack and `ρ1` overwrites the old top
/// (modelling a procedure call where the *callee* frame `ρ0` is pushed
/// and the caller's program counter advances to `ρ1`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rhs {
    /// `w' = ε`: pop the top symbol (procedure return).
    Empty,
    /// `w' = σ'`: overwrite the top symbol (intraprocedural step).
    One(StackSym),
    /// `w' = ρ0ρ1`: push `top` (= `ρ0`) above `below` (= `ρ1`), which
    /// replaces the old top (procedure call).
    Two {
        /// The new top of the stack (`ρ0`, the callee entry).
        top: StackSym,
        /// The symbol written directly underneath (`ρ1`, the return site).
        below: StackSym,
    },
}

impl Rhs {
    /// Number of symbols written, `|w'|`.
    pub fn len(&self) -> usize {
        match self {
            Rhs::Empty => 0,
            Rhs::One(_) => 1,
            Rhs::Two { .. } => 2,
        }
    }

    /// Whether `w' = ε`.
    pub fn is_empty(&self) -> bool {
        matches!(self, Rhs::Empty)
    }
}

/// Classification of an action by its stack effect (paper §2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ActionKind {
    /// `(q,σ) → (q',ε)`: pops `σ` (a terminating procedure).
    Pop,
    /// `(q,σ) → (q',σ')`: overwrites `σ` by `σ'`.
    Overwrite,
    /// `(q,σ) → (q',ρ0ρ1)`: pushes `ρ0`, overwrites `σ` by `ρ1`.
    Push,
    /// `(q,ε) → (q',ε)`: fires on the empty stack, changes only `q`.
    EmptyOverwrite,
    /// `(q,ε) → (q',σ)`: fires on the empty stack, pushes one symbol.
    EmptyPush,
}

/// A single action `(q, w) → (q', w')` with `w ∈ Σ≤1`, `w' ∈ Σ≤2` of a
/// [`Pds`](crate::Pds) program `Δ`.
///
/// Construct actions through [`PdsBuilder`](crate::PdsBuilder), which
/// validates ranges, or directly when ids are known to be in range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Action {
    /// Source shared state `q`.
    pub q: SharedState,
    /// Required top-of-stack `w` (`None` means the stack must be empty).
    pub top: Option<StackSym>,
    /// Target shared state `q'`.
    pub q_post: SharedState,
    /// Stack effect `w'`.
    pub rhs: Rhs,
}

impl Action {
    /// A pop action `(q,σ) → (q',ε)`.
    pub fn pop(q: SharedState, sym: StackSym, q_post: SharedState) -> Self {
        Action {
            q,
            top: Some(sym),
            q_post,
            rhs: Rhs::Empty,
        }
    }

    /// An overwrite action `(q,σ) → (q',σ')`.
    pub fn overwrite(
        q: SharedState,
        sym: StackSym,
        q_post: SharedState,
        sym_post: StackSym,
    ) -> Self {
        Action {
            q,
            top: Some(sym),
            q_post,
            rhs: Rhs::One(sym_post),
        }
    }

    /// A push action `(q,σ) → (q',ρ0ρ1)`.
    pub fn push(
        q: SharedState,
        sym: StackSym,
        q_post: SharedState,
        rho0: StackSym,
        rho1: StackSym,
    ) -> Self {
        Action {
            q,
            top: Some(sym),
            q_post,
            rhs: Rhs::Two {
                top: rho0,
                below: rho1,
            },
        }
    }

    /// An empty-stack action `(q,ε) → (q',w')` with `w' ∈ Σ≤1`.
    ///
    /// # Panics
    ///
    /// Does not panic; two-symbol right-hand sides from the empty stack
    /// are rejected by [`PdsBuilder`](crate::PdsBuilder) instead.
    pub fn from_empty(q: SharedState, q_post: SharedState, sym_post: Option<StackSym>) -> Self {
        Action {
            q,
            top: None,
            q_post,
            rhs: match sym_post {
                None => Rhs::Empty,
                Some(s) => Rhs::One(s),
            },
        }
    }

    /// The action's [`ActionKind`].
    pub fn kind(&self) -> ActionKind {
        match (self.top, &self.rhs) {
            (Some(_), Rhs::Empty) => ActionKind::Pop,
            (Some(_), Rhs::One(_)) => ActionKind::Overwrite,
            (Some(_), Rhs::Two { .. }) => ActionKind::Push,
            (None, Rhs::Empty) => ActionKind::EmptyOverwrite,
            (None, Rhs::One(_)) => ActionKind::EmptyPush,
            (None, Rhs::Two { .. }) => {
                unreachable!("two-symbol rhs from empty stack is rejected at construction")
            }
        }
    }

    /// Whether this is a pop action `(·,·) → (·,ε)` with a non-empty
    /// left-hand side. Used by the generator-set construction (Eq. 2).
    pub fn is_pop(&self) -> bool {
        self.kind() == ActionKind::Pop
    }

    /// Whether this is a push action. For a push, returns `(ρ0, ρ1)`.
    pub fn push_symbols(&self) -> Option<(StackSym, StackSym)> {
        match self.rhs {
            Rhs::Two { top, below } => Some((top, below)),
            _ => None,
        }
    }
}

impl std::fmt::Display for Action {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({},", self.q)?;
        match self.top {
            Some(s) => write!(f, "{s}")?,
            None => write!(f, "eps")?,
        }
        write!(f, ") -> ({},", self.q_post)?;
        match self.rhs {
            Rhs::Empty => write!(f, "eps")?,
            Rhs::One(s) => write!(f, "{s}")?,
            Rhs::Two { top, below } => write!(f, "{top}{below}")?,
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(n: u32) -> SharedState {
        SharedState(n)
    }
    fn s(n: u32) -> StackSym {
        StackSym(n)
    }

    #[test]
    fn kinds_classify_all_action_shapes() {
        assert_eq!(Action::pop(q(0), s(1), q(2)).kind(), ActionKind::Pop);
        assert_eq!(
            Action::overwrite(q(0), s(1), q(2), s(3)).kind(),
            ActionKind::Overwrite
        );
        assert_eq!(
            Action::push(q(0), s(1), q(2), s(3), s(4)).kind(),
            ActionKind::Push
        );
        assert_eq!(
            Action::from_empty(q(0), q(1), None).kind(),
            ActionKind::EmptyOverwrite
        );
        assert_eq!(
            Action::from_empty(q(0), q(1), Some(s(2))).kind(),
            ActionKind::EmptyPush
        );
    }

    #[test]
    fn push_symbols_only_for_pushes() {
        assert_eq!(
            Action::push(q(0), s(1), q(2), s(3), s(4)).push_symbols(),
            Some((s(3), s(4)))
        );
        assert_eq!(Action::pop(q(0), s(1), q(2)).push_symbols(), None);
        assert_eq!(
            Action::overwrite(q(0), s(1), q(2), s(3)).push_symbols(),
            None
        );
    }

    #[test]
    fn display_matches_paper_notation() {
        let a = Action::push(q(2), s(5), q(3), s(4), s(6));
        assert_eq!(a.to_string(), "(2,5) -> (3,46)");
        let b = Action::pop(q(0), s(4), q(0));
        assert_eq!(b.to_string(), "(0,4) -> (0,eps)");
        let c = Action::from_empty(q(1), q(2), None);
        assert_eq!(c.to_string(), "(1,eps) -> (2,eps)");
    }

    #[test]
    fn rhs_len() {
        assert_eq!(Rhs::Empty.len(), 0);
        assert!(Rhs::Empty.is_empty());
        assert_eq!(Rhs::One(s(1)).len(), 1);
        assert_eq!(
            Rhs::Two {
                top: s(1),
                below: s(2)
            }
            .len(),
            2
        );
    }
}
