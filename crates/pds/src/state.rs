use crate::{SharedState, Stack, StackSym};

/// A state `⟨q|w⟩` of a sequential [`Pds`](crate::Pds).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PdsConfig {
    /// The shared state `q`.
    pub q: SharedState,
    /// The stack contents `w`.
    pub stack: Stack,
}

impl PdsConfig {
    /// Creates the state `⟨q|w⟩`.
    pub fn new(q: SharedState, stack: Stack) -> Self {
        PdsConfig { q, stack }
    }

    /// The thread-visible projection `T(q, w) = (q, T(w))`.
    pub fn visible(&self) -> ThreadVisible {
        ThreadVisible {
            q: self.q,
            top: self.stack.top(),
        }
    }
}

impl std::fmt::Display for PdsConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "<{}|{}>", self.q, self.stack)
    }
}

/// A thread-visible state `(q, T(w))`: the shared state plus the top
/// symbol of one thread's stack (paper §2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ThreadVisible {
    /// The shared state.
    pub q: SharedState,
    /// The visible top of the stack (`None` encodes `ε`).
    pub top: Option<StackSym>,
}

impl std::fmt::Display for ThreadVisible {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.top {
            Some(s) => write!(f, "({},{})", self.q, s),
            None => write!(f, "({},eps)", self.q),
        }
    }
}

/// A global state `⟨q|w1,…,wn⟩` of a [`Cpds`](crate::Cpds).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GlobalState {
    /// The shared state `q`.
    pub q: SharedState,
    /// Stack contents per thread.
    pub stacks: Vec<Stack>,
}

impl GlobalState {
    /// Creates the state `⟨q|w1,…,wn⟩`.
    pub fn new(q: SharedState, stacks: Vec<Stack>) -> Self {
        GlobalState { q, stacks }
    }

    /// Number of threads.
    pub fn num_threads(&self) -> usize {
        self.stacks.len()
    }

    /// Thread `i`'s state `(q, wi)` as a [`PdsConfig`].
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn thread_config(&self, i: usize) -> PdsConfig {
        PdsConfig {
            q: self.q,
            stack: self.stacks[i].clone(),
        }
    }

    /// The visible-state projection `T(s) = ⟨q|T(w1),…,T(wn)⟩` (Eq. 1).
    pub fn visible(&self) -> VisibleState {
        VisibleState {
            q: self.q,
            tops: self.stacks.iter().map(|w| w.top()).collect(),
        }
    }

    /// Total number of stack symbols across all threads (a size measure
    /// used by exploration budgets and statistics).
    pub fn total_stack_len(&self) -> usize {
        self.stacks.iter().map(|s| s.len()).sum()
    }

    /// The maximum single-thread stack depth.
    pub fn max_stack_len(&self) -> usize {
        self.stacks.iter().map(|s| s.len()).max().unwrap_or(0)
    }
}

impl std::fmt::Display for GlobalState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "<{}|", self.q)?;
        for (i, st) in self.stacks.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{st}")?;
        }
        write!(f, ">")
    }
}

/// A visible state `⟨q|σ1,…,σn⟩ = T(s)`: the shared state plus each
/// thread's top-of-stack (or `ε`). The domain of visible states is
/// finite, which makes the observation sequence `(T(Rk))` convergent
/// (paper §4.1).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VisibleState {
    /// The shared state.
    pub q: SharedState,
    /// Top of each thread's stack (`None` encodes `ε`).
    pub tops: Vec<Option<StackSym>>,
}

impl VisibleState {
    /// Creates the visible state `⟨q|σ1,…,σn⟩`.
    pub fn new(q: SharedState, tops: Vec<Option<StackSym>>) -> Self {
        VisibleState { q, tops }
    }

    /// Number of threads.
    pub fn num_threads(&self) -> usize {
        self.tops.len()
    }

    /// Thread `i`'s visible state `(q, σi)`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn thread_visible(&self, i: usize) -> ThreadVisible {
        ThreadVisible {
            q: self.q,
            top: self.tops[i],
        }
    }
}

impl std::fmt::Display for VisibleState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "<{}|", self.q)?;
        for (i, top) in self.tops.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            match top {
                Some(s) => write!(f, "{s}")?,
                None => write!(f, "eps")?,
            }
        }
        write!(f, ">")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(n: u32) -> SharedState {
        SharedState(n)
    }
    fn s(n: u32) -> StackSym {
        StackSym(n)
    }

    #[test]
    fn visible_projection_takes_tops() {
        let g = GlobalState::new(
            q(3),
            vec![
                Stack::from_top_down([s(2)]),
                Stack::from_top_down([s(4), s(6), s(6)]),
            ],
        );
        let v = g.visible();
        assert_eq!(v, VisibleState::new(q(3), vec![Some(s(2)), Some(s(4))]));
        assert_eq!(v.to_string(), "<3|2,4>");
    }

    #[test]
    fn visible_projection_maps_empty_to_eps() {
        let g = GlobalState::new(q(1), vec![Stack::from_top_down([s(2)]), Stack::new()]);
        assert_eq!(g.visible().to_string(), "<1|2,eps>");
    }

    #[test]
    fn display_matches_paper() {
        let g = GlobalState::new(
            q(0),
            vec![
                Stack::from_top_down([s(1)]),
                Stack::from_top_down([s(4), s(6), s(6)]),
            ],
        );
        assert_eq!(g.to_string(), "<0|1,466>");
        assert_eq!(g.thread_config(1).to_string(), "<0|466>");
    }

    #[test]
    fn thread_visible_display() {
        let v = VisibleState::new(q(2), vec![None, Some(s(5))]);
        assert_eq!(v.thread_visible(0).to_string(), "(2,eps)");
        assert_eq!(v.thread_visible(1).to_string(), "(2,5)");
        assert_eq!(v.num_threads(), 2);
    }

    #[test]
    fn size_measures() {
        let g = GlobalState::new(
            q(0),
            vec![Stack::new(), Stack::from_top_down([s(1), s(2), s(3)])],
        );
        assert_eq!(g.total_stack_len(), 3);
        assert_eq!(g.max_stack_len(), 3);
        assert_eq!(g.num_threads(), 2);
    }
}
