//! Pushdown systems (PDS) and concurrent pushdown systems (CPDS): the
//! program model underlying CUBA (Liu & Wahl, PLDI 2018, §2).
//!
//! A *pushdown system* is a tuple `(Q, Σ, Δ, qI)` of shared states,
//! stack alphabet, actions and an initial shared state. A *concurrent*
//! pushdown system is a fixed number of PDSs that share `Q` and `qI`
//! but have individual stack alphabets and actions; threads interleave
//! asynchronously and communicate only through the shared state.
//!
//! # Example
//!
//! The two-thread CPDS of Fig. 1 of the paper:
//!
//! ```
//! use cuba_pds::{CpdsBuilder, PdsBuilder, SharedState, StackSym};
//!
//! # fn main() -> Result<(), cuba_pds::PdsError> {
//! let q = |n| SharedState(n);
//! let s = |n| StackSym(n);
//!
//! let mut p1 = PdsBuilder::new(4, 3); // 4 shared states, symbols {0,1,2}
//! p1.overwrite(q(0), s(1), q(1), s(2))?; // f1
//! p1.overwrite(q(3), s(2), q(0), s(1))?; // f2
//!
//! let mut p2 = PdsBuilder::new(4, 7);
//! p2.pop(q(0), s(4), q(0))?; // b1
//! p2.overwrite(q(1), s(4), q(2), s(5))?; // b2
//! p2.push(q(2), s(5), q(3), s(4), s(6))?; // b3
//!
//! let cpds = CpdsBuilder::new(4, q(0))
//!     .thread(p1.build()?, [s(1)])
//!     .thread(p2.build()?, [s(4)])
//!     .build()?;
//! assert_eq!(cpds.num_threads(), 2);
//! assert_eq!(format!("{}", cpds.initial_state()), "<0|1,4>");
//! # Ok(())
//! # }
//! ```

mod action;
mod cpds;
mod error;
mod pds;
pub mod rng;
mod stack;
mod state;

pub use action::{Action, ActionKind, Rhs};
pub use cpds::{Cpds, CpdsBuilder};
pub use error::PdsError;
pub use pds::{Pds, PdsBuilder};
pub use stack::Stack;
pub use state::{GlobalState, PdsConfig, ThreadVisible, VisibleState};

/// Identifier of a shared (global) state, an element of `Q`.
///
/// Shared states are dense integers `0..num_shared` of the owning
/// [`Pds`]/[`Cpds`]; human-readable names, when present, live in the
/// system's name tables rather than in the id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SharedState(pub u32);

/// Identifier of a stack symbol, an element of some thread's alphabet `Σi`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StackSym(pub u32);

/// Index of a thread within a [`Cpds`] (0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ThreadId(pub usize);

impl std::fmt::Display for SharedState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::fmt::Display for StackSym {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::fmt::Display for ThreadId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for SharedState {
    fn from(v: u32) -> Self {
        SharedState(v)
    }
}

impl From<u32> for StackSym {
    fn from(v: u32) -> Self {
        StackSym(v)
    }
}

impl From<usize> for ThreadId {
    fn from(v: usize) -> Self {
        ThreadId(v)
    }
}
