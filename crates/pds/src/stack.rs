use crate::StackSym;

/// A thread's call stack, a word `w ∈ Σ*`.
///
/// The paper writes stacks top-first (`w = σ1…σz` with `σ1` the top);
/// internally the top is stored at the *end* of the vector so that push
/// and pop are O(1). All display output and the
/// [`iter_top_down`](Stack::iter_top_down) iterator use paper order.
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Stack {
    /// Bottom-first storage; `syms.last()` is the top of the stack.
    syms: Vec<StackSym>,
}

impl Stack {
    /// The empty stack `ε`.
    pub fn new() -> Self {
        Stack { syms: Vec::new() }
    }

    /// Builds a stack from symbols listed top-first, the paper's order:
    /// `Stack::from_top_down([a, b])` has `a` on top of `b`.
    pub fn from_top_down<I: IntoIterator<Item = StackSym>>(syms: I) -> Self {
        let mut v: Vec<StackSym> = syms.into_iter().collect();
        v.reverse();
        Stack { syms: v }
    }

    /// The top symbol `T(w)`, or `None` for the empty stack.
    pub fn top(&self) -> Option<StackSym> {
        self.syms.last().copied()
    }

    /// Number of symbols on the stack, `|w|`.
    pub fn len(&self) -> usize {
        self.syms.len()
    }

    /// Whether the stack is the empty word `ε`.
    pub fn is_empty(&self) -> bool {
        self.syms.is_empty()
    }

    /// Pushes `sym` on top of the stack.
    pub fn push(&mut self, sym: StackSym) {
        self.syms.push(sym);
    }

    /// Pops and returns the top symbol, or `None` if the stack is empty.
    pub fn pop(&mut self) -> Option<StackSym> {
        self.syms.pop()
    }

    /// Replaces the top symbol by `sym`.
    ///
    /// # Panics
    ///
    /// Panics if the stack is empty; callers check enabledness first.
    pub fn overwrite_top(&mut self, sym: StackSym) {
        let top = self
            .syms
            .last_mut()
            .expect("overwrite_top on an empty stack");
        *top = sym;
    }

    /// Iterates over the symbols top-first (paper order `σ1…σz`).
    pub fn iter_top_down(&self) -> impl Iterator<Item = StackSym> + '_ {
        self.syms.iter().rev().copied()
    }

    /// Iterates over the symbols bottom-first (storage order).
    pub fn iter_bottom_up(&self) -> impl Iterator<Item = StackSym> + '_ {
        self.syms.iter().copied()
    }

    /// Removes the *bottom* symbol, keeping the rest of the stack.
    ///
    /// This is the operation used in the proof of Lemma 16 (case b); it
    /// is exposed for tests and for the finiteness analysis.
    pub fn drop_bottom(&mut self) -> Option<StackSym> {
        if self.syms.is_empty() {
            None
        } else {
            Some(self.syms.remove(0))
        }
    }

    /// The bottom symbol, or `None` for the empty stack.
    pub fn bottom(&self) -> Option<StackSym> {
        self.syms.first().copied()
    }
}

impl FromIterator<StackSym> for Stack {
    /// Collects symbols given *top-first* (paper order).
    fn from_iter<I: IntoIterator<Item = StackSym>>(iter: I) -> Self {
        Stack::from_top_down(iter)
    }
}

impl Extend<StackSym> for Stack {
    /// Pushes each symbol in turn (the last extended symbol ends on top).
    fn extend<I: IntoIterator<Item = StackSym>>(&mut self, iter: I) {
        self.syms.extend(iter);
    }
}

impl std::fmt::Display for Stack {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_empty() {
            return write!(f, "eps");
        }
        for sym in self.iter_top_down() {
            write!(f, "{sym}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(n: u32) -> StackSym {
        StackSym(n)
    }

    #[test]
    fn empty_stack() {
        let st = Stack::new();
        assert!(st.is_empty());
        assert_eq!(st.len(), 0);
        assert_eq!(st.top(), None);
        assert_eq!(st.to_string(), "eps");
    }

    #[test]
    fn from_top_down_puts_first_symbol_on_top() {
        let st = Stack::from_top_down([s(4), s(6), s(6)]);
        assert_eq!(st.top(), Some(s(4)));
        assert_eq!(st.bottom(), Some(s(6)));
        assert_eq!(st.to_string(), "466");
    }

    #[test]
    fn push_pop_roundtrip() {
        let mut st = Stack::from_top_down([s(1)]);
        st.push(s(2));
        assert_eq!(st.top(), Some(s(2)));
        assert_eq!(st.len(), 2);
        assert_eq!(st.pop(), Some(s(2)));
        assert_eq!(st.pop(), Some(s(1)));
        assert_eq!(st.pop(), None);
    }

    #[test]
    fn overwrite_top_replaces_only_top() {
        let mut st = Stack::from_top_down([s(5), s(6)]);
        st.overwrite_top(s(4));
        assert_eq!(st.to_string(), "46");
    }

    #[test]
    #[should_panic(expected = "overwrite_top on an empty stack")]
    fn overwrite_empty_panics() {
        Stack::new().overwrite_top(s(0));
    }

    #[test]
    fn drop_bottom_keeps_upper_frames() {
        let mut st = Stack::from_top_down([s(1), s(2), s(3)]);
        assert_eq!(st.drop_bottom(), Some(s(3)));
        assert_eq!(st.to_string(), "12");
        assert_eq!(st.top(), Some(s(1)));
    }

    #[test]
    fn iter_orders_are_reverses() {
        let st = Stack::from_top_down([s(1), s(2), s(3)]);
        let down: Vec<_> = st.iter_top_down().collect();
        let mut up: Vec<_> = st.iter_bottom_up().collect();
        up.reverse();
        assert_eq!(down, up);
        assert_eq!(down, vec![s(1), s(2), s(3)]);
    }

    #[test]
    fn collect_uses_paper_order() {
        let st: Stack = [s(7), s(8)].into_iter().collect();
        assert_eq!(st.top(), Some(s(7)));
    }

    #[test]
    fn extend_pushes_in_sequence() {
        let mut st = Stack::new();
        st.extend([s(1), s(2)]);
        assert_eq!(st.top(), Some(s(2)));
    }
}
