//! Property tests of the PDS/CPDS step semantics (§2.1–2.2), driven
//! by the in-tree deterministic generator (`cuba_pds::rng`) instead of
//! an external property-testing framework: each test fixes a seed
//! range and checks the invariant on every generated instance. On a
//! failure, the generator size caps are shrunk ([`rng::shrink`],
//! proptest-style) while the property keeps failing, so the panic
//! names the smallest instance sizes that reproduce the bug.

use cuba_pds::rng::{self, SplitMix64};
use cuba_pds::{
    Action, ActionKind, Cpds, CpdsBuilder, GlobalState, PdsBuilder, PdsConfig, Rhs, SharedState,
    Stack, StackSym,
};

/// Default generator size caps: up to this many PDS actions…
const MAX_ACTIONS: usize = 9;
/// …and stacks of up to this depth.
const MAX_STACK: usize = 6;

fn gen_stack(rng: &mut SplitMix64, max_depth: usize) -> Stack {
    let len = if max_depth == 0 {
        0
    } else {
        rng.gen_usize(max_depth)
    };
    Stack::from_top_down((0..len).map(|_| StackSym(rng.gen_u32(4))))
}

fn gen_action(rng: &mut SplitMix64) -> Action {
    let q = SharedState(rng.gen_u32(3));
    let q2 = SharedState(rng.gen_u32(3));
    let top = if rng.gen_usize(5) == 0 {
        None
    } else {
        Some(StackSym(rng.gen_u32(4)))
    };
    let kind = rng.gen_u32(4) % 3;
    let s1 = StackSym(rng.gen_u32(4));
    let s2 = StackSym(rng.gen_u32(4));
    match (top, kind) {
        (Some(t), 0) => Action::pop(q, t, q2),
        (Some(t), 1) => Action::overwrite(q, t, q2, s1),
        (Some(t), _) => Action::push(q, t, q2, s1, s2),
        (None, 0) => Action::from_empty(q, q2, None),
        (None, _) => Action::from_empty(q, q2, Some(s1)),
    }
}

fn gen_pds(rng: &mut SplitMix64, max_actions: usize) -> cuba_pds::Pds {
    let n = if max_actions == 0 {
        0
    } else {
        1 + rng.gen_usize(max_actions)
    };
    let mut b = PdsBuilder::new(3, 4);
    for _ in 0..n {
        b.action(gen_action(rng)).expect("generated in range");
    }
    b.build().expect("in range")
}

const CASES: u64 = 128;

/// Sweeps `holds(seed, max_actions, max_stack)` over the seed range at
/// full instance sizes; on the first failing seed, shrinks the size
/// caps while the property still fails and panics naming the minimal
/// reproduction (re-run the predicate at those caps to debug it).
fn check(name: &str, holds: impl Fn(u64, usize, usize) -> bool) {
    for seed in 0..CASES {
        if holds(seed, MAX_ACTIONS, MAX_STACK) {
            continue;
        }
        let (actions, stack) = rng::shrink(
            (MAX_ACTIONS, MAX_STACK),
            |&(a, s)| {
                let mut next: Vec<(usize, usize)> =
                    rng::shrink_usize(a).into_iter().map(|a2| (a2, s)).collect();
                next.extend(rng::shrink_usize(s).into_iter().map(|s2| (a, s2)));
                next
            },
            |&(a, s)| !holds(seed, a, s),
        );
        panic!(
            "{name}: seed {seed} fails; shrunk to caps of {actions} action(s), \
             stack depth {stack}"
        );
    }
}

/// Stack effects: a step changes the stack size by at most one, and
/// only according to its action kind.
#[test]
fn step_changes_stack_by_at_most_one() {
    check(
        "stack delta bounded by one",
        |seed, max_actions, max_stack| {
            let mut rng = SplitMix64::new(seed);
            let pds = gen_pds(&mut rng, max_actions);
            let config =
                PdsConfig::new(SharedState(rng.gen_u32(3)), gen_stack(&mut rng, max_stack));
            let before = config.stack.len() as isize;
            pds.successors(&config)
                .iter()
                .all(|succ| (before - succ.stack.len() as isize).abs() <= 1)
        },
    );
}

/// Enabledness: a successor exists only if some action matches the
/// current (shared state, top) pair exactly.
#[test]
fn successors_match_enabled_actions() {
    check(
        "successors equal enabled actions",
        |seed, max_actions, max_stack| {
            let mut rng = SplitMix64::new(seed);
            let pds = gen_pds(&mut rng, max_actions);
            let config =
                PdsConfig::new(SharedState(rng.gen_u32(3)), gen_stack(&mut rng, max_stack));
            let n_enabled = pds.actions_from(config.q, config.stack.top()).len();
            pds.successors(&config).len() == n_enabled
        },
    );
}

/// Below-top stack content is never touched by a step.
#[test]
fn step_preserves_stack_below_top() {
    check(
        "below-top content preserved",
        |seed, max_actions, max_stack| {
            let mut rng = SplitMix64::new(seed);
            let pds = gen_pds(&mut rng, max_actions);
            let config =
                PdsConfig::new(SharedState(rng.gen_u32(3)), gen_stack(&mut rng, max_stack));
            let tail: Vec<StackSym> = config.stack.iter_top_down().skip(1).collect();
            pds.successors(&config).iter().all(|succ| {
                let succ_all: Vec<StackSym> = succ.stack.iter_top_down().collect();
                succ_all.ends_with(&tail)
            })
        },
    );
}

/// CPDS asynchrony: a thread-i step leaves all other stacks untouched
/// and matches the thread's own PDS step.
#[test]
fn cpds_steps_are_asynchronous() {
    check(
        "CPDS steps are asynchronous",
        |seed, max_actions, max_stack| {
            let mut rng = SplitMix64::new(seed);
            let pds = gen_pds(&mut rng, max_actions);
            let q = rng.gen_u32(3);
            let s1 = gen_stack(&mut rng, max_stack);
            let s2 = gen_stack(&mut rng, max_stack);
            let cpds: Cpds = CpdsBuilder::new(3, SharedState(0))
                .thread(pds.clone(), [])
                .thread(pds.clone(), [])
                .build()
                .unwrap();
            let state = GlobalState::new(SharedState(q), vec![s1.clone(), s2.clone()]);
            (0..2usize).all(|i| {
                cpds.successors_of_thread(&state, i).iter().all(|succ| {
                    if succ.stacks[1 - i] != state.stacks[1 - i] {
                        return false;
                    }
                    // The moved component is a legal sequential step.
                    let thread_cfg = PdsConfig::new(state.q, state.stacks[i].clone());
                    let expected: Vec<PdsConfig> = pds.successors(&thread_cfg);
                    let got = PdsConfig::new(succ.q, succ.stacks[i].clone());
                    expected.contains(&got)
                })
            })
        },
    );
}

/// The visible projection commutes with steps on the untouched
/// threads: `T` of an unmoved stack is stable.
#[test]
fn visible_projection_of_unmoved_threads_is_stable() {
    check(
        "visible projection stable",
        |seed, max_actions, max_stack| {
            let mut rng = SplitMix64::new(seed);
            let pds = gen_pds(&mut rng, max_actions);
            let q = rng.gen_u32(3);
            let s1 = gen_stack(&mut rng, max_stack);
            let s2 = gen_stack(&mut rng, max_stack);
            let cpds = CpdsBuilder::new(3, SharedState(0))
                .thread(pds.clone(), [])
                .thread(pds, [])
                .build()
                .unwrap();
            let state = GlobalState::new(SharedState(q), vec![s1, s2]);
            let before = state.visible();
            cpds.successors_of_thread(&state, 0)
                .iter()
                .all(|succ| succ.visible().tops[1] == before.tops[1])
        },
    );
}

/// Rhs arity is consistent with the action constructors.
#[test]
fn action_rhs_arity() {
    for seed in 0..CASES * 4 {
        let mut rng = SplitMix64::new(seed);
        let a = gen_action(&mut rng);
        match a.kind() {
            ActionKind::Pop | ActionKind::EmptyOverwrite => assert_eq!(a.rhs.len(), 0),
            ActionKind::Overwrite | ActionKind::EmptyPush => assert_eq!(a.rhs.len(), 1),
            ActionKind::Push => {
                assert_eq!(a.rhs.len(), 2);
                assert!(matches!(a.rhs, Rhs::Two { .. }));
            }
        }
    }
}
