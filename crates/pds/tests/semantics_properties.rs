//! Property tests of the PDS/CPDS step semantics (§2.1–2.2).

use cuba_pds::{
    Action, Cpds, CpdsBuilder, GlobalState, PdsBuilder, PdsConfig, Rhs, SharedState, Stack,
    StackSym,
};
use proptest::prelude::*;

fn arb_stack() -> impl Strategy<Value = Stack> {
    proptest::collection::vec(0u32..4, 0..6)
        .prop_map(|syms| Stack::from_top_down(syms.into_iter().map(StackSym)))
}

fn arb_action() -> impl Strategy<Value = Action> {
    (
        0u32..3,
        proptest::option::of(0u32..4),
        0u32..3,
        0u32..4,
        0u32..4,
        0u32..4,
    )
        .prop_map(|(q, top, q2, kind, s1, s2)| {
            let q = SharedState(q);
            let q2 = SharedState(q2);
            match (top, kind % 3) {
                (Some(t), 0) => Action::pop(q, StackSym(t), q2),
                (Some(t), 1) => Action::overwrite(q, StackSym(t), q2, StackSym(s1)),
                (Some(t), _) => Action::push(q, StackSym(t), q2, StackSym(s1), StackSym(s2)),
                (None, 0) => Action::from_empty(q, q2, None),
                (None, _) => Action::from_empty(q, q2, Some(StackSym(s1))),
            }
        })
}

fn arb_pds() -> impl Strategy<Value = cuba_pds::Pds> {
    proptest::collection::vec(arb_action(), 1..10).prop_map(|actions| {
        let mut b = PdsBuilder::new(3, 4);
        for a in actions {
            b.action(a).expect("generated in range");
        }
        b.build().expect("in range")
    })
}

proptest! {
    /// Stack effects: a step changes the stack size by at most one,
    /// and only according to its action kind.
    #[test]
    fn step_changes_stack_by_at_most_one(pds in arb_pds(), q in 0u32..3, stack in arb_stack()) {
        let config = PdsConfig::new(SharedState(q), stack);
        let before = config.stack.len();
        for succ in pds.successors(&config) {
            let after = succ.stack.len();
            prop_assert!(
                (before as isize - after as isize).abs() <= 1,
                "stack jumped from {} to {}", before, after
            );
        }
    }

    /// Enabledness: a successor exists only if some action matches the
    /// current (shared state, top) pair exactly.
    #[test]
    fn successors_match_enabled_actions(pds in arb_pds(), q in 0u32..3, stack in arb_stack()) {
        let config = PdsConfig::new(SharedState(q), stack);
        let n_enabled = pds.actions_from(config.q, config.stack.top()).len();
        prop_assert_eq!(pds.successors(&config).len(), n_enabled);
    }

    /// Below-top stack content is never touched by a step.
    #[test]
    fn step_preserves_stack_below_top(pds in arb_pds(), q in 0u32..3, stack in arb_stack()) {
        let config = PdsConfig::new(SharedState(q), stack);
        let tail: Vec<StackSym> = config.stack.iter_top_down().skip(1).collect();
        for succ in pds.successors(&config) {
            let succ_all: Vec<StackSym> = succ.stack.iter_top_down().collect();
            prop_assert!(
                succ_all.ends_with(&tail),
                "below-top content changed: {:?} vs tail {:?}", succ_all, tail
            );
        }
    }

    /// CPDS asynchrony: a thread-i step leaves all other stacks
    /// untouched and matches the thread's own PDS step.
    #[test]
    fn cpds_steps_are_asynchronous(
        pds in arb_pds(),
        q in 0u32..3,
        s1 in arb_stack(),
        s2 in arb_stack(),
    ) {
        let cpds: Cpds = CpdsBuilder::new(3, SharedState(0))
            .thread(pds.clone(), [])
            .thread(pds.clone(), [])
            .build()
            .unwrap();
        let state = GlobalState::new(SharedState(q), vec![s1.clone(), s2.clone()]);
        for i in 0..2usize {
            for succ in cpds.successors_of_thread(&state, i) {
                prop_assert_eq!(&succ.stacks[1 - i], &state.stacks[1 - i]);
                // The moved component is a legal sequential step.
                let thread_cfg = PdsConfig::new(state.q, state.stacks[i].clone());
                let expected: Vec<PdsConfig> = pds.successors(&thread_cfg);
                let got = PdsConfig::new(succ.q, succ.stacks[i].clone());
                prop_assert!(expected.contains(&got));
            }
        }
    }

    /// The visible projection commutes with steps on the untouched
    /// threads: `T` of an unmoved stack is stable.
    #[test]
    fn visible_projection_of_unmoved_threads_is_stable(
        pds in arb_pds(),
        q in 0u32..3,
        s1 in arb_stack(),
        s2 in arb_stack(),
    ) {
        let cpds = CpdsBuilder::new(3, SharedState(0))
            .thread(pds.clone(), [])
            .thread(pds, [])
            .build()
            .unwrap();
        let state = GlobalState::new(SharedState(q), vec![s1, s2]);
        let before = state.visible();
        for succ in cpds.successors_of_thread(&state, 0) {
            let after = succ.visible();
            prop_assert_eq!(after.tops[1], before.tops[1]);
        }
    }

    /// Rhs arity is consistent with the action constructors.
    #[test]
    fn action_rhs_arity(a in arb_action()) {
        match a.kind() {
            cuba_pds::ActionKind::Pop | cuba_pds::ActionKind::EmptyOverwrite =>
                prop_assert_eq!(a.rhs.len(), 0),
            cuba_pds::ActionKind::Overwrite | cuba_pds::ActionKind::EmptyPush =>
                prop_assert_eq!(a.rhs.len(), 1),
            cuba_pds::ActionKind::Push => {
                prop_assert_eq!(a.rhs.len(), 2);
                let is_two = matches!(a.rhs, Rhs::Two { .. });
                prop_assert!(is_two);
            }
        }
    }
}
