//! Property tests of the PDS/CPDS step semantics (§2.1–2.2), driven
//! by the in-tree deterministic generator (`cuba_pds::rng`) instead of
//! an external property-testing framework: each test fixes a seed
//! range and checks the invariant on every generated instance.

use cuba_pds::rng::SplitMix64;
use cuba_pds::{
    Action, ActionKind, Cpds, CpdsBuilder, GlobalState, PdsBuilder, PdsConfig, Rhs, SharedState,
    Stack, StackSym,
};

fn gen_stack(rng: &mut SplitMix64) -> Stack {
    let len = rng.gen_usize(6);
    Stack::from_top_down((0..len).map(|_| StackSym(rng.gen_u32(4))))
}

fn gen_action(rng: &mut SplitMix64) -> Action {
    let q = SharedState(rng.gen_u32(3));
    let q2 = SharedState(rng.gen_u32(3));
    let top = if rng.gen_usize(5) == 0 {
        None
    } else {
        Some(StackSym(rng.gen_u32(4)))
    };
    let kind = rng.gen_u32(4) % 3;
    let s1 = StackSym(rng.gen_u32(4));
    let s2 = StackSym(rng.gen_u32(4));
    match (top, kind) {
        (Some(t), 0) => Action::pop(q, t, q2),
        (Some(t), 1) => Action::overwrite(q, t, q2, s1),
        (Some(t), _) => Action::push(q, t, q2, s1, s2),
        (None, 0) => Action::from_empty(q, q2, None),
        (None, _) => Action::from_empty(q, q2, Some(s1)),
    }
}

fn gen_pds(rng: &mut SplitMix64) -> cuba_pds::Pds {
    let n = 1 + rng.gen_usize(9);
    let mut b = PdsBuilder::new(3, 4);
    for _ in 0..n {
        b.action(gen_action(rng)).expect("generated in range");
    }
    b.build().expect("in range")
}

const CASES: u64 = 128;

/// Stack effects: a step changes the stack size by at most one, and
/// only according to its action kind.
#[test]
fn step_changes_stack_by_at_most_one() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(seed);
        let pds = gen_pds(&mut rng);
        let config = PdsConfig::new(SharedState(rng.gen_u32(3)), gen_stack(&mut rng));
        let before = config.stack.len();
        for succ in pds.successors(&config) {
            let after = succ.stack.len();
            assert!(
                (before as isize - after as isize).abs() <= 1,
                "seed {seed}: stack jumped from {before} to {after}"
            );
        }
    }
}

/// Enabledness: a successor exists only if some action matches the
/// current (shared state, top) pair exactly.
#[test]
fn successors_match_enabled_actions() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(seed);
        let pds = gen_pds(&mut rng);
        let config = PdsConfig::new(SharedState(rng.gen_u32(3)), gen_stack(&mut rng));
        let n_enabled = pds.actions_from(config.q, config.stack.top()).len();
        assert_eq!(pds.successors(&config).len(), n_enabled, "seed {seed}");
    }
}

/// Below-top stack content is never touched by a step.
#[test]
fn step_preserves_stack_below_top() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(seed);
        let pds = gen_pds(&mut rng);
        let config = PdsConfig::new(SharedState(rng.gen_u32(3)), gen_stack(&mut rng));
        let tail: Vec<StackSym> = config.stack.iter_top_down().skip(1).collect();
        for succ in pds.successors(&config) {
            let succ_all: Vec<StackSym> = succ.stack.iter_top_down().collect();
            assert!(
                succ_all.ends_with(&tail),
                "seed {seed}: below-top content changed: {succ_all:?} vs tail {tail:?}"
            );
        }
    }
}

/// CPDS asynchrony: a thread-i step leaves all other stacks untouched
/// and matches the thread's own PDS step.
#[test]
fn cpds_steps_are_asynchronous() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(seed);
        let pds = gen_pds(&mut rng);
        let q = rng.gen_u32(3);
        let s1 = gen_stack(&mut rng);
        let s2 = gen_stack(&mut rng);
        let cpds: Cpds = CpdsBuilder::new(3, SharedState(0))
            .thread(pds.clone(), [])
            .thread(pds.clone(), [])
            .build()
            .unwrap();
        let state = GlobalState::new(SharedState(q), vec![s1.clone(), s2.clone()]);
        for i in 0..2usize {
            for succ in cpds.successors_of_thread(&state, i) {
                assert_eq!(&succ.stacks[1 - i], &state.stacks[1 - i], "seed {seed}");
                // The moved component is a legal sequential step.
                let thread_cfg = PdsConfig::new(state.q, state.stacks[i].clone());
                let expected: Vec<PdsConfig> = pds.successors(&thread_cfg);
                let got = PdsConfig::new(succ.q, succ.stacks[i].clone());
                assert!(expected.contains(&got), "seed {seed}");
            }
        }
    }
}

/// The visible projection commutes with steps on the untouched
/// threads: `T` of an unmoved stack is stable.
#[test]
fn visible_projection_of_unmoved_threads_is_stable() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(seed);
        let pds = gen_pds(&mut rng);
        let q = rng.gen_u32(3);
        let s1 = gen_stack(&mut rng);
        let s2 = gen_stack(&mut rng);
        let cpds = CpdsBuilder::new(3, SharedState(0))
            .thread(pds.clone(), [])
            .thread(pds, [])
            .build()
            .unwrap();
        let state = GlobalState::new(SharedState(q), vec![s1, s2]);
        let before = state.visible();
        for succ in cpds.successors_of_thread(&state, 0) {
            let after = succ.visible();
            assert_eq!(after.tops[1], before.tops[1], "seed {seed}");
        }
    }
}

/// Rhs arity is consistent with the action constructors.
#[test]
fn action_rhs_arity() {
    for seed in 0..CASES * 4 {
        let mut rng = SplitMix64::new(seed);
        let a = gen_action(&mut rng);
        match a.kind() {
            ActionKind::Pop | ActionKind::EmptyOverwrite => assert_eq!(a.rhs.len(), 0),
            ActionKind::Overwrite | ActionKind::EmptyPush => assert_eq!(a.rhs.len(), 1),
            ActionKind::Push => {
                assert_eq!(a.rhs.len(), 2);
                assert!(matches!(a.rhs, Rhs::Two { .. }));
            }
        }
    }
}
