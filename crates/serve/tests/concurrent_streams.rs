//! The acceptance test of the serve milestone: four concurrent
//! streaming clients (2 properties × 2 connections) analyze one
//! system through the server, and
//!
//! * every client's `verdict` NDJSON line is **byte-identical** to a
//!   direct `Portfolio` run of the same problem under the same
//!   configuration (fresh, unshared artifacts), and
//! * the server-side backend explored each layer **exactly once**:
//!   `/systems` reports the same `rounds_explored` as one private
//!   shared exploration serving both properties sequentially — not
//!   4 × it.
//!
//! The round-robin schedule is pinned on both sides: it advances arms
//! in lockstep, so winner, rounds, and states are pure functions of
//! (system, property, configuration) and byte comparison is fair.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Barrier};

use cuba_core::{Portfolio, Property, SchedulePolicy, SessionConfig, SystemArtifacts};
use cuba_serve::{parse_model, verdict_line, ServeConfig, Server};

/// The Fig. 1 sample, exactly as a CLI user would POST it.
const MODEL: &str = include_str!("../../../samples/fig1.cpds");

/// `(url spec, decoded spec)` pairs: the bug property needs a percent
/// escape for `|` in the query string.
const PROPERTIES: [(&str, &str); 2] = [
    ("true", "true"),
    ("never-visible:1%7C2,6", "never-visible:1|2,6"),
];

fn test_session_config() -> SessionConfig {
    SessionConfig {
        schedule: SchedulePolicy::RoundRobin,
        ..SessionConfig::new()
    }
}

/// One raw HTTP exchange; returns `(status head, body)`.
fn request_raw(addr: std::net::SocketAddr, head: &str, body: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "{head} HTTP/1.1\r\nHost: cuba\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("header/body separator");
    (head.to_owned(), body.to_owned())
}

/// One raw HTTP exchange that must answer 200; returns the body.
fn request(addr: std::net::SocketAddr, head: &str, body: &str) -> String {
    let (head, body) = request_raw(addr, head, body);
    assert!(
        head.starts_with("HTTP/1.1 200"),
        "expected 200, got: {head}"
    );
    body
}

/// Extracts the single line of the given NDJSON `type` from a body.
fn line_of_type<'a>(body: &'a str, event_type: &str) -> &'a str {
    let marker = format!("{{\"type\":\"{event_type}\"");
    let mut lines = body.lines().filter(|l| l.starts_with(&marker));
    let line = lines
        .next()
        .unwrap_or_else(|| panic!("no '{event_type}' line in:\n{body}"));
    assert!(lines.next().is_none(), "duplicate '{event_type}' line");
    line
}

/// Pulls `"key":NUMBER` out of a JSON line.
fn number_field(line: &str, key: &str) -> usize {
    let marker = format!("\"{key}\":");
    let start = line.find(&marker).expect(key) + marker.len();
    line[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .expect(key)
}

#[test]
fn four_streaming_clients_share_one_exploration() {
    let server = Server::bind(ServeConfig {
        workers: 4,
        session: test_session_config(),
        ..ServeConfig::default()
    })
    .expect("bind");
    let broker = server.broker();
    let handle = server.spawn().expect("spawn");
    let addr = handle.addr();

    // Direct, unshared baseline runs: one fresh Portfolio per
    // property, same configuration as the server's.
    let (cpds, _) = parse_model("cpds", MODEL).expect("sample parses");
    let portfolio = Portfolio::auto().with_config(test_session_config());
    let expected_verdicts: Vec<String> = PROPERTIES
        .iter()
        .map(|(_, spec)| {
            let property = Property::parse(spec).expect("spec parses");
            let outcome = portfolio
                .run(cpds.clone(), property)
                .expect("direct run succeeds");
            verdict_line(spec, &outcome)
        })
        .collect();
    // The exactly-once baseline: one private shared exploration
    // serving both properties sequentially.
    let baseline_artifacts = Arc::new(SystemArtifacts::new());
    for (_, spec) in PROPERTIES {
        let property = Property::parse(spec).expect("spec parses");
        portfolio
            .session_with(cpds.clone(), property, &baseline_artifacts)
            .expect("session opens")
            .run()
            .expect("baseline run succeeds");
    }
    let baseline_explorer = baseline_artifacts
        .explicit_explorer_if_started()
        .expect("explicit backend ran");
    let expected_explored = baseline_explorer.rounds_explored();
    let expected_depth = baseline_explorer.depth();
    assert!(expected_explored > 0, "fig1 needs live exploration");

    // 2 properties × 2 connections, all four in flight at once.
    let barrier = Arc::new(Barrier::new(4));
    let bodies: Vec<(usize, String)> = std::thread::scope(|scope| {
        let clients: Vec<_> = (0..4)
            .map(|client| {
                let barrier = barrier.clone();
                scope.spawn(move || {
                    let (url_spec, _) = PROPERTIES[client % 2];
                    barrier.wait();
                    let body = request(addr, &format!("POST /analyze?property={url_spec}"), MODEL);
                    (client % 2, body)
                })
            })
            .collect();
        clients
            .into_iter()
            .map(|c| c.join().expect("client thread"))
            .collect()
    });

    for (property_index, body) in &bodies {
        // Byte-identical verdicts: shared exploration must not change
        // a single character of the deterministic verdict record.
        assert_eq!(
            line_of_type(body, "verdict"),
            expected_verdicts[*property_index],
            "server verdict differs from the direct run"
        );
        // The stream is live, not a summary: rounds and the final
        // cost trailer are all there.
        assert!(body.lines().any(|l| l.starts_with("{\"type\":\"round\"")));
        line_of_type(body, "start");
        line_of_type(body, "done");
        assert!(
            body.lines()
                .any(|l| l.starts_with("{\"type\":\"layer\"") && l.contains("\"k\":1")),
            "layer pushes missing from the stream"
        );
    }

    // Exactly-once exploration across all four clients: the explicit
    // backend's live-round counter matches the sequential
    // shared-exploration baseline — not 4 × it.
    let systems = request(addr, "GET /systems", "");
    assert!(systems.contains("\"systems\":1"), "one distinct system");
    let explicit = systems
        .split("\"explicit\":{")
        .nth(1)
        .expect("explicit explorer reported")
        .split('}')
        .next()
        .expect("explorer object");
    assert_eq!(
        number_field(explicit, "rounds_explored"),
        expected_explored,
        "each layer must be explored exactly once, whoever pays"
    );
    assert_eq!(number_field(explicit, "depth"), expected_depth);
    // …and the broker agrees (in-process view of the same registry).
    let entry = &broker.cache.entries()[0];
    let server_explorer = entry
        .artifacts
        .explicit_explorer_if_started()
        .expect("server explored explicitly");
    assert_eq!(server_explorer.rounds_explored(), expected_explored);

    // A late client replays the warm layers: the explorer's counter
    // must not move. (The session's own `rounds_explored` stays
    // nonzero — the CBA refuter arm has no shared store — so the
    // shared-backend counter is the meaningful exactly-once witness.)
    let body = request(
        addr,
        &format!("POST /analyze?property={}", PROPERTIES[0].0),
        MODEL,
    );
    assert_eq!(line_of_type(&body, "verdict"), expected_verdicts[0]);
    let done = line_of_type(&body, "done");
    assert!(
        number_field(done, "rounds_replayed") > 0,
        "a warm property must replay shared layers: {done}"
    );
    assert_eq!(server_explorer.rounds_explored(), expected_explored);

    let health = request(addr, "GET /healthz", "");
    assert_eq!(number_field(&health, "sessions_total"), 5);
    assert_eq!(number_field(&health, "sessions_active"), 0);

    let shutdown = request(addr, "POST /shutdown?mode=graceful", "");
    assert!(shutdown.contains("\"status\":\"shutting-down\""));
    handle.join().expect("clean shutdown");
}

/// `/suite` over the long-lived cache: correct verdicts, and a repeat
/// batch is a cache hit with no new exploration.
#[test]
fn suite_endpoint_reuses_the_cache() {
    let server = Server::bind(ServeConfig {
        workers: 2,
        session: test_session_config(),
        ..ServeConfig::default()
    })
    .expect("bind");
    let handle = server.spawn().expect("spawn");
    let addr = handle.addr();
    let url = "POST /suite?property=true&property=never-visible:1%7C2,6&workers=2";

    let first = request(addr, url, MODEL);
    assert!(first.contains("\"cache\":\"miss\""));
    assert!(first.contains("\"verdict\":\"safe\""));
    assert!(first.contains("\"verdict\":\"unsafe\""));

    let second = request(addr, url, MODEL);
    assert!(second.contains("\"cache\":\"hit\""));
    assert!(second.contains("\"verdict\":\"safe\""));

    // The systems registry shows one system, fully warm.
    let systems = request(addr, "GET /systems", "");
    assert!(systems.contains("\"systems\":1"));

    request(addr, "POST /shutdown", "");
    handle.join().expect("clean shutdown");
}

/// An FCR-violating model is served by the symbolic backend, and an
/// abort-mode shutdown (which fires the service-wide cancel token —
/// covered unit-wise in the broker tests) still answers the request
/// and drains the server cleanly.
#[test]
fn abort_shutdown_drains_cleanly() {
    // A single thread pushing without a context switch: finite
    // context reachability fails, only the symbolic arms apply.
    let unbounded = "\
shared 3
init 0
thread 2
stack 1
(0,1) -> (0,1 1)
(0,1) -> (1,eps)
(1,1) -> (2,eps)
";
    let server = Server::bind(ServeConfig {
        workers: 2,
        session: test_session_config(),
        ..ServeConfig::default()
    })
    .expect("bind");
    let handle = server.spawn().expect("spawn");
    let addr = handle.addr();

    // Forcing the explicit lineup onto an FCR-violating system is a
    // clean 400 — and must not register a phantom explorer.
    let (head, body) = request_raw(addr, "POST /analyze?engine=explicit", unbounded);
    assert!(head.starts_with("HTTP/1.1 400"), "got: {head}");
    assert!(body.contains("finite context reachability"));
    let systems = request(addr, "GET /systems", "");
    assert!(systems.contains("\"fcr\":false"));
    assert!(
        systems.contains("\"symbolic_exact\":null"),
        "a rejected request must not register explorers: {systems}"
    );

    // Sanity: the model analyzes fine when left alone.
    let body = request(addr, "POST /analyze?property=true", unbounded);
    assert!(line_of_type(&body, "start").contains("\"backend\":\"symbolic\""));
    line_of_type(&body, "verdict");

    let shutdown = request(addr, "POST /shutdown?mode=abort", "");
    assert!(shutdown.contains("\"mode\":\"abort\""));
    handle.join().expect("clean shutdown");
}

/// Control endpoints never queue behind the bounded analysis pool: a
/// saturated pool delays `/analyze` (no session starts) while
/// `/healthz` and `/systems` keep answering, and the queued analysis
/// completes as soon as a slot frees.
#[test]
fn control_endpoints_bypass_the_analysis_pool() {
    let server = Server::bind(ServeConfig {
        workers: 1,
        session: test_session_config(),
        ..ServeConfig::default()
    })
    .expect("bind");
    let broker = server.broker();
    let handle = server.spawn().expect("spawn");
    let addr = handle.addr();

    // Saturate the single analysis slot from outside.
    let slot = broker.acquire_slot();
    let queued = std::thread::spawn(move || request(addr, "POST /analyze?property=true", MODEL));
    // The stream request is parked on the pool: no session starts…
    std::thread::sleep(std::time::Duration::from_millis(150));
    assert_eq!(broker.sessions_total(), 0, "analysis must wait for a slot");
    // …while control endpoints answer immediately, and the pool
    // occupancy shows the saturated slot.
    let health = request(addr, "GET /healthz", "");
    assert!(health.contains("\"status\":\"ok\""));
    assert_eq!(number_field(&health, "workers_busy"), 1);
    assert_eq!(number_field(&health, "workers_idle"), 0);
    request(addr, "GET /systems", "");

    drop(slot);
    let body = queued.join().expect("queued client");
    line_of_type(&body, "verdict");
    assert_eq!(broker.sessions_total(), 1);

    request(addr, "POST /shutdown", "");
    handle.join().expect("clean shutdown");
}

/// `GET /metrics` serves the process-wide registry in Prometheus text
/// format, `/healthz` reports build/version liveness fields, and
/// wrong-method requests on both are clean 405s.
#[test]
fn metrics_endpoint_exposes_prometheus_text() {
    let server = Server::bind(ServeConfig {
        workers: 2,
        session: test_session_config(),
        ..ServeConfig::default()
    })
    .expect("bind");
    let handle = server.spawn().expect("spawn");
    let addr = handle.addr();

    // Run one analysis so the analysis-side families carry data.
    let body = request(addr, "POST /analyze?property=true", MODEL);
    line_of_type(&body, "verdict");

    let (head, metrics) = request_raw(addr, "GET /metrics", "");
    assert!(head.starts_with("HTTP/1.1 200"), "got: {head}");
    assert!(
        head.contains("text/plain; version=0.0.4"),
        "Prometheus content type missing: {head}"
    );
    // Required families: analysis counters, stage histograms, and the
    // HTTP families this very scrape feeds.
    for family in [
        "cuba_rounds_explored_total",
        "cuba_waves_total",
        "cuba_cache_hits_total",
        "cuba_sessions_active",
        "cuba_workers_busy",
        "cuba_stage_duration_us",
        "cuba_http_requests_total",
        "cuba_http_request_duration_us",
        "cuba_frontier_edges",
    ] {
        assert!(
            metrics.contains(&format!("# TYPE {family} ")),
            "family '{family}' missing from exposition"
        );
    }
    // The analysis above must be visible in the counters (the registry
    // is process-global, so sibling tests may have added more), and
    // this scrape counted itself as an endpoint hit.
    assert!(metrics.contains("cuba_http_requests_total{endpoint=\"analyze\"}"));
    assert!(metrics.contains("cuba_http_requests_total{endpoint=\"metrics\"}"));
    assert!(
        metrics.lines().any(|l| {
            l.strip_prefix("cuba_waves_total ")
                .and_then(|v| v.parse::<u64>().ok())
                .is_some_and(|v| v > 0)
        }),
        "saturation waves should have been counted:\n{metrics}"
    );

    // Wrong method: GET-only endpoint.
    let (head, _) = request_raw(addr, "POST /metrics", "");
    assert!(head.starts_with("HTTP/1.1 405"), "got: {head}");

    // Healthz liveness fields ride along.
    let health = request(addr, "GET /healthz", "");
    assert!(health.contains("\"version\":\""));
    assert!(health.contains("\"draining\":false"));

    request(addr, "POST /shutdown", "");
    handle.join().expect("clean shutdown");
}
