//! `cuba-serve` — an event-driven analysis service that multiplexes
//! streaming sessions over shared explorations.
//!
//! The CUBA paper's layered sequences `(Rk)`/`(Sk)` are
//! property-independent, so one live exploration per system can serve
//! any number of concurrent property queries: the first client to
//! need a bound pays for it, every other client replays it, and push
//! subscriptions ([`SharedExplorer::subscribe`]) notify streaming
//! consumers of each freshly explored layer the moment *anyone*
//! computes it. This crate is that service — a dependency-free
//! (`std::net` only) HTTP/1.1 server with NDJSON event streaming,
//! exposed as the `cuba serve` CLI subcommand.
//!
//! # Endpoints
//!
//! Every endpoint is mounted twice: at its legacy unprefixed path and
//! under the versioned `/v1/` prefix, answering identically. `GET
//! /v1` returns a JSON index of the versioned surface — endpoints,
//! their legacy aliases, and the server's capabilities (workers,
//! `max_systems`, whether a state directory is active).
//!
//! | Endpoint | Semantics |
//! |---|---|
//! | `POST /analyze` | Body: a model (`.cpds` text by default, `?format=bp` for Boolean programs). Repeatable `?property=SPEC` (the CLI `--property` grammar). `?schedule=` overrides the arm scheduling per request (the CLI `--schedule` grammar; `frontier:<name>` selects a profile preloaded at boot via `cuba serve --profile`, `frontier:key=value,...` tunes inline — requests can never make the server read a file). `?reduce=true` runs the verdict-preserving static pre-analysis (`cuba lint`'s reduction pipeline) on the parsed system before analysis; the stream then opens with one `reduced` line. Streams NDJSON events per property until the verdict. |
//! | `POST /suite` | Same body/parameters (`?schedule=` and `?reduce=` included); runs every property through [`Portfolio::run_suite_cached`](cuba_core::Portfolio::run_suite_cached) with bounded parallelism (`?workers=N`) and answers one JSON document. |
//! | `GET /systems` | The shared-exploration registry: per system its fingerprint, residency (`resident` in the registry, or `spilled` — pushed out by `max_systems` but revivable/reloadable), FCR verdict (if decided) and per-backend explorer counters (`rounds_explored`, `depth`), plus service-wide snapshot counters (spills, revives, saves, reloads). |
//! | `GET /healthz` | Liveness + service counters: uptime, build version, analysis-pool occupancy (`workers_busy`/`workers_idle`), the draining flag. |
//! | `GET /metrics` | The process-wide telemetry registry ([`cuba_telemetry::metrics`]) in Prometheus text exposition format — counters, gauges, and latency histograms across every subsystem, plus the per-endpoint HTTP families this crate feeds. |
//! | `POST /shutdown` | `?mode=graceful` (default) drains in-flight sessions; `?mode=abort` additionally fires the service-wide [`CancelToken`](cuba_explore::CancelToken) so explorations stop at their next interrupt poll. |
//!
//! # NDJSON event stream
//!
//! `POST /analyze` answers `200` with `Content-Type:
//! application/x-ndjson` and one JSON object per line, close-
//! delimited. Per property, in order: one `start` line, then
//! interleaved `layer` lines (pushed by the shared explorer — also
//! for layers a *concurrent* client paid for), `round` /
//! `engine-concluded` / `engine-failed` lines from the racing arms,
//! an optional `witness` line, the deterministic `verdict` line, and
//! a final `done` line carrying the timing counters. The `verdict`
//! line is free of wall-clock fields on purpose: it is byte-identical
//! to a direct [`Portfolio`](cuba_core::Portfolio) run of the same problem under the same
//! configuration, shared exploration or not.
//!
//! Disconnecting mid-stream cancels that client's session through the
//! session's own [`CancelToken`](cuba_explore::CancelToken); interrupted rounds roll back, so
//! the shared layers stay valid for every other client.

use std::collections::HashMap;
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use cuba_bench::JsonObject;
use cuba_core::{
    CubaOutcome, EngineKind, FrontierConfig, Lineup, Property, SchedulePolicy, SequenceEvent,
    SessionConfig, SessionEvent, Verdict,
};
use cuba_explore::{LayerView, SharedExplorer};
use cuba_pds::Cpds;

mod broker;
mod http;

pub use broker::{Broker, SessionGuard, ShutdownMode, SlotGuard};
pub use http::{read_request, write_response, write_stream_head, HttpError, Request};

/// Configuration of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// The bind address; port `0` picks an ephemeral port (read it
    /// back from [`Server::local_addr`]).
    pub addr: String,
    /// Size of the bounded analysis pool — the maximum number of
    /// `/analyze`/`/suite` requests doing analysis work at once;
    /// further analysis requests queue for a slot. Control endpoints
    /// (`/healthz`, `/systems`, `/shutdown`) never queue behind it.
    pub workers: usize,
    /// Hard cap on simultaneously open connections (any endpoint);
    /// connections over the cap are answered `503` immediately.
    pub max_connections: usize,
    /// Hard cap on distinct systems kept in the long-lived registry;
    /// beyond it the oldest system is evicted FIFO (in-flight
    /// sessions keep their artifacts, the next request re-explores).
    pub max_systems: usize,
    /// Base session configuration; `/analyze` and `/suite` requests
    /// may override `max_k` per request. The `cancel` slot is
    /// reserved for the service's abort token.
    pub session: SessionConfig,
    /// Base engine lineup (requests may override via `?engine=`).
    pub lineup: Lineup,
    /// Named schedule profiles preloaded at boot (`cuba serve
    /// --profile <file>`): requests select one with
    /// `?schedule=frontier:<name>`. Requests can also tune inline
    /// (`?schedule=frontier:key=value,...`) — but never name a file:
    /// the service resolves profiles against this map only, so a
    /// request cannot make the server read disk.
    pub profiles: HashMap<String, FrontierConfig>,
    /// Learned per-fingerprint tunings (`cuba serve --profile-map`):
    /// the first request for a novel fingerprint runs one cheap
    /// tuning probe through the broker's shared cache and the winner
    /// is recorded here; every later session on that system starts
    /// with it. A per-request `?schedule=` override outranks the map.
    /// The CLI loads the file at boot and flushes the map back on
    /// graceful shutdown; embedded servers save through
    /// [`Broker::profile_map`].
    pub profile_map: Option<Arc<cuba_core::ProfileMap>>,
    /// Snapshot directory (`cuba serve --state-dir`): layer stores are
    /// persisted here — on `max_systems` spills and on graceful
    /// shutdown — and lazily reloaded on the next request for a
    /// system, including across a process restart (warm start).
    /// `None` disables persistence; spilled systems then survive only
    /// while some client still holds their artifacts.
    pub state_dir: Option<String>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get().min(8))
            .unwrap_or(4);
        ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers,
            // Analysis slots bound the heavy work; allow a healthy
            // margin of cheap/queued connections on top before 503.
            max_connections: workers * 8 + 32,
            max_systems: 64,
            session: SessionConfig::new(),
            lineup: Lineup::Auto,
            profiles: HashMap::new(),
            profile_map: None,
            state_dir: None,
        }
    }
}

/// The analysis service: a bound listener plus its [`Broker`].
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    broker: Arc<Broker>,
}

/// A spawned [`Server`], running on a background thread until a
/// `POST /shutdown` request (or a fatal accept error) stops it.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    thread: std::thread::JoinHandle<std::io::Result<()>>,
}

impl ServerHandle {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Waits for the server to finish shutting down.
    pub fn join(self) -> std::io::Result<()> {
        self.thread
            .join()
            .unwrap_or_else(|_| Err(std::io::Error::other("server thread panicked")))
    }
}

impl Server {
    /// Binds the listener. The service does not serve until
    /// [`run`](Self::run) (or [`spawn`](Self::spawn)) is called, but
    /// the port is yours from here on.
    ///
    /// When the session budget leaves the saturation thread count on
    /// auto (`0`), it is resolved here to `available_parallelism /
    /// workers` (floored at 1): with `workers` sessions analyzing
    /// concurrently, each saturation gets its share of the machine
    /// instead of all of it — `workers × threads` stays at the core
    /// count rather than oversubscribing quadratically. An explicit
    /// `--threads` wins.
    ///
    /// # Errors
    ///
    /// Address parse/bind failures, or an unusable `state_dir`.
    pub fn bind(mut config: ServeConfig) -> std::io::Result<Server> {
        if let Some(dir) = &config.state_dir {
            // Fail the boot on an unusable state directory (the broker
            // re-opens it; create_dir_all is idempotent).
            cuba_core::SnapshotStore::open(dir).map_err(std::io::Error::other)?;
        }
        if config.session.budget.threads == 0 {
            let avail = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1);
            config.session.budget.threads = (avail / config.workers.max(1)).max(1);
        }
        let listener = TcpListener::bind(&config.addr)?;
        Ok(Server {
            listener,
            broker: Arc::new(Broker::new(config)),
        })
    }

    /// The actually-bound address (resolves ephemeral ports).
    ///
    /// # Errors
    ///
    /// Propagates the OS's `getsockname` failure, if any.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The service's shared state (counters, cache) — mainly for
    /// embedding tests.
    pub fn broker(&self) -> Arc<Broker> {
        self.broker.clone()
    }

    /// Serves until shutdown: each accepted connection gets its own
    /// handler thread (capped by `max_connections`; over-cap
    /// connections are answered `503` from the acceptor), and the
    /// `/analyze`/`/suite` handlers queue for one of the `workers`
    /// analysis slots — so control endpoints (`/healthz`,
    /// `/shutdown`) stay responsive however long the streams run.
    /// `POST /shutdown` stops the accept loop (the handler wakes it
    /// with a loopback connection); in-flight connections then drain
    /// before `run` returns.
    ///
    /// # Errors
    ///
    /// Persistent accept failure (e.g. fd exhaustion): after many
    /// consecutive errors the loop gives up and returns the last one,
    /// rather than spinning unserveable forever.
    pub fn run(self) -> std::io::Result<()> {
        let addr = self.listener.local_addr()?;
        let mut consecutive_errors = 0u32;
        loop {
            match self.listener.accept() {
                Ok(stream) => {
                    consecutive_errors = 0;
                    if self.broker.is_draining() {
                        // The shutdown wake-up (or a late client).
                        break;
                    }
                    let (stream, _) = stream;
                    let broker = self.broker.clone();
                    // The count is claimed here (not in the thread) so
                    // the cap can never be overshot by a spawn burst;
                    // the handler thread balances it via a drop guard.
                    if !broker.try_open_connection() {
                        let _ = respond_error(
                            &mut (&stream),
                            503,
                            "Service Unavailable",
                            "connection capacity exhausted, retry later",
                        );
                        continue;
                    }
                    std::thread::spawn(move || {
                        let _closed = ConnectionClosed(&broker);
                        handle_connection(stream, &broker, addr);
                    });
                }
                Err(_) if self.broker.is_draining() => break,
                Err(error) => {
                    consecutive_errors += 1;
                    if consecutive_errors >= 100 {
                        return Err(error);
                    }
                    std::thread::sleep(Duration::from_millis(10));
                }
            }
        }
        self.broker.wait_connections_drained();
        // Flush every resident system's layers before the process
        // exits — the warm-start half of `--state-dir` (no-op without
        // one). Abort shutdowns flush too: interrupted rounds rolled
        // back, so the stores are consistent at their last bound.
        self.broker.flush_snapshots();
        Ok(())
    }

    /// Runs the server on a background thread.
    ///
    /// # Errors
    ///
    /// As for [`local_addr`](Self::local_addr).
    pub fn spawn(self) -> std::io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let thread = std::thread::spawn(move || self.run());
        Ok(ServerHandle { addr, thread })
    }
}

/// Balances the acceptor's `try_open_connection` when the handler
/// thread finishes — panic included, so the drain count never leaks.
struct ConnectionClosed<'a>(&'a Broker);

impl Drop for ConnectionClosed<'_> {
    fn drop(&mut self) {
        self.0.connection_closed();
    }
}

/// Serves one connection: parse, route, answer, close.
fn handle_connection(stream: TcpStream, broker: &Arc<Broker>, addr: SocketAddr) {
    // A hostile or dead peer must not pin its handler thread (and,
    // transitively, an analysis slot) forever.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(30)));
    let mut reader = BufReader::new(&stream);
    let request = match read_request(&mut reader) {
        Ok(request) => request,
        Err(error) => {
            if let Some((status, reason)) = error.status() {
                let _ = respond_error(&mut (&stream), status, reason, &error.message());
            }
            return;
        }
    };
    drop(reader);
    broker.count_request();
    // The versioned surface: `/v1/<endpoint>` answers identically to
    // the legacy unprefixed path (same handler, same bytes), and bare
    // `/v1` is the API index. Telemetry classifies by the canonical
    // (unprefixed) path so both spellings land in one family.
    let canonical = match request.path.as_str() {
        "/v1" | "/v1/" => "/v1",
        path => path
            .strip_prefix("/v1")
            .filter(|rest| rest.starts_with('/'))
            .unwrap_or(path),
    };
    let endpoint = cuba_telemetry::metrics::Endpoint::from_path(canonical);
    cuba_telemetry::metrics::METRICS
        .http_requests(endpoint)
        .inc();
    let handle_start = std::time::Instant::now();
    let mut out = &stream;
    let result = match (request.method.as_str(), canonical) {
        ("GET", "/v1") => handle_index(&mut out, broker),
        ("POST", "/analyze") => handle_analyze(&mut out, &request, broker),
        ("POST", "/suite") => handle_suite(&mut out, &request, broker),
        ("GET", "/systems") => handle_systems(&mut out, broker),
        ("GET", "/healthz") => handle_healthz(&mut out, broker),
        ("GET", "/metrics") => handle_metrics(&mut out),
        ("POST", "/shutdown") => handle_shutdown(&mut out, &request, broker, addr),
        (_, "/analyze" | "/suite" | "/shutdown") => {
            respond_error(&mut out, 405, "Method Not Allowed", "use POST")
        }
        (_, "/v1" | "/systems" | "/healthz" | "/metrics") => {
            respond_error(&mut out, 405, "Method Not Allowed", "use GET")
        }
        _ => respond_error(
            &mut out,
            404,
            "Not Found",
            &format!("no such endpoint '{}'", request.path),
        ),
    };
    cuba_telemetry::metrics::METRICS
        .http_duration_us(endpoint)
        .observe(handle_start.elapsed().as_micros() as u64);
    // Write errors mean the client went away: nothing left to do.
    let _ = result;
}

/// Writes a JSON error body with the given status.
fn respond_error(
    out: &mut impl Write,
    status: u16,
    reason: &str,
    message: &str,
) -> std::io::Result<()> {
    let mut obj = JsonObject::new();
    obj.string("error", message);
    write_response(
        out,
        status,
        reason,
        "application/json",
        obj.finish().as_bytes(),
    )
}

/// Everything a `/analyze` or `/suite` request resolved to.
#[derive(Debug)]
struct AnalyzeRequest {
    cpds: Cpds,
    /// `(spec, property)` pairs, the file's default when none given.
    properties: Vec<(String, Property)>,
    lineup: Option<Lineup>,
    max_k: Option<usize>,
    /// Per-request scheduling override (`?schedule=`), the CLI
    /// `--schedule` grammar with profiles resolved against the
    /// service's preloaded map.
    schedule: Option<SchedulePolicy>,
    /// When `?reduce=true` was given, the number of transitions the
    /// verdict-preserving pre-analysis removed from `cpds` (which is
    /// already the reduced system). `None` means no reduction was
    /// requested.
    reduce_removed: Option<usize>,
}

/// Parses the shared `/analyze`–`/suite` request shape. `profiles`
/// resolves `schedule=frontier:<name>` — requests never reach the
/// filesystem.
fn parse_analyze_request(
    request: &Request,
    profiles: &HashMap<String, FrontierConfig>,
) -> Result<AnalyzeRequest, String> {
    let format = request.query_first("format").unwrap_or("cpds");
    let source = request.body_utf8().map_err(|e| e.message())?;
    if source.trim().is_empty() {
        return Err("empty request body: POST the model source".to_owned());
    }
    let (cpds, default_property) = parse_model(format, source)?;
    let mut properties = Vec::new();
    for spec in request.query_all("property") {
        properties.push((spec.to_owned(), Property::parse(spec)?));
    }
    if properties.is_empty() {
        properties.push(("default".to_owned(), default_property));
    }
    let lineup = match request.query_first("engine") {
        None | Some("auto") => None,
        Some("explicit") => Some(Lineup::Fixed(vec![
            EngineKind::Alg3Explicit,
            EngineKind::Scheme1Explicit,
        ])),
        Some("symbolic") => Some(Lineup::Fixed(vec![
            EngineKind::Alg3Symbolic,
            EngineKind::Scheme1Symbolic,
        ])),
        Some(other) => return Err(format!("bad engine '{other}'")),
    };
    let max_k = match request.query_first("max_k") {
        None => None,
        Some(raw) => Some(
            raw.parse::<usize>()
                .map_err(|_| format!("bad max_k '{raw}'"))?,
        ),
    };
    let schedule = match request.query_first("schedule") {
        None => None,
        Some(spec) => Some(SchedulePolicy::parse_spec(spec, &|name| {
            profiles
                .get(name)
                .cloned()
                .ok_or_else(|| format!("unknown schedule profile '{name}'"))
        })?),
    };
    let reduce = match request.query_first("reduce") {
        None | Some("false") | Some("0") => false,
        Some("true") | Some("1") | Some("") => true,
        Some(other) => return Err(format!("bad reduce '{other}' (expected true or false)")),
    };
    // Reduce *before* the broker sees the system: the shared cache
    // fingerprints structure, so reduced requests key on the reduced
    // CPDS and share exploration with each other, never with the
    // unreduced original. Reduction is property-independent (the
    // verdict-preservation invariant), so one reduced system serves
    // every property of the request.
    let (cpds, reduce_removed) = if reduce {
        let props: Vec<Property> = properties.iter().map(|(_, p)| p.clone()).collect();
        let reduction = cuba_reduce::reduce(&cpds, &props).map_err(|e| format!("reduce: {e}"))?;
        let removed = reduction.stats.removed_transitions;
        (reduction.cpds, Some(removed))
    } else {
        (cpds, None)
    };
    Ok(AnalyzeRequest {
        cpds,
        properties,
        lineup,
        max_k,
        schedule,
        reduce_removed,
    })
}

/// Parses a model source by format name: `cpds` (text interchange
/// format) or `bp` (concurrent Boolean program).
///
/// # Errors
///
/// A parse/translation message naming the format.
pub fn parse_model(format: &str, source: &str) -> Result<(Cpds, Property), String> {
    match format {
        "cpds" => {
            let cpds = cuba_benchmarks::textfmt::parse_cpds(source).map_err(|e| e.to_string())?;
            Ok((cpds, Property::True))
        }
        "bp" => {
            let program = cuba_boolprog::parse(source).map_err(|e| e.to_string())?;
            let translated = cuba_boolprog::translate(&program).map_err(|e| e.to_string())?;
            let property = translated.error_free_property();
            Ok((translated.cpds, property))
        }
        other => Err(format!("unknown format '{other}' (expected cpds or bp)")),
    }
}

/// `POST /analyze`: one NDJSON stream, one session per property, all
/// properties of the request (and all concurrent requests for the
/// same system) sharing one exploration per backend.
fn handle_analyze(
    out: &mut impl Write,
    request: &Request,
    broker: &Arc<Broker>,
) -> std::io::Result<()> {
    let parsed = match parse_analyze_request(request, &broker.config().profiles) {
        Ok(parsed) => parsed,
        Err(message) => return respond_error(out, 400, "Bad Request", &message),
    };
    // Queue for an analysis slot *before* touching the registry: the
    // bounded pool applies to analysis work only, never to control
    // endpoints.
    let _slot = broker.acquire_slot();
    // Learn a tuning for novel fingerprints before the sessions start
    // (skipped entirely when the request pins its own schedule — the
    // override outranks the map, so probing for it would be wasted).
    if parsed.schedule.is_none() {
        broker.ensure_profiles(&parsed.cpds, &parsed.properties);
    }
    let portfolio = broker.portfolio(parsed.lineup.clone(), parsed.max_k, parsed.schedule.clone());
    let artifacts = broker.artifacts_for(&parsed.cpds);
    let fcr = artifacts.fcr(&parsed.cpds).holds();
    // A lineup that cannot field a single arm is a client error;
    // reject it before any explorer gets registered for it.
    if let Some(Lineup::Fixed(kinds)) = &parsed.lineup {
        if !fcr && kinds.iter().all(EngineKind::needs_fcr) {
            return respond_error(
                out,
                400,
                "Bad Request",
                "engine=explicit requires finite context reachability, \
                 which this system violates (use auto or symbolic)",
            );
        }
    }
    // Watch the backend the race will actually drive: layer events are
    // pushed from the shared explorer, whichever client computes them.
    let explicit_backend = match &parsed.lineup {
        None | Some(Lineup::Auto) => fcr,
        Some(Lineup::Fixed(kinds)) => {
            fcr && kinds
                .iter()
                .any(|k| matches!(k, EngineKind::Alg3Explicit | EngineKind::Scheme1Explicit))
        }
    };
    let config = portfolio.config().clone();
    let explorer: Arc<SharedExplorer> = if explicit_backend {
        artifacts.explicit_explorer(&parsed.cpds, &config.budget)
    } else {
        artifacts.symbolic_explorer(&parsed.cpds, &config.budget, config.subsumption)
    };
    let backend = if explicit_backend {
        "explicit"
    } else {
        "symbolic"
    };
    let subscription = explorer.subscribe();

    write_stream_head(out, "application/x-ndjson")?;
    let mut client_gone = false;
    if let Some(removed) = parsed.reduce_removed {
        send_line(out, &reduced_line(removed), &mut client_gone);
    }
    for (spec, property) in parsed.properties {
        if client_gone {
            break;
        }
        let _guard = broker.session_started();
        send_line(out, &start_line(&spec, fcr, backend), &mut client_gone);
        let session = portfolio.session_with(parsed.cpds.clone(), property, &artifacts);
        let mut session = match session {
            Ok(session) => session,
            Err(error) => {
                send_line(
                    out,
                    &error_line(&spec, &error.to_string()),
                    &mut client_gone,
                );
                continue;
            }
        };
        let token = session.cancel_token();
        while let Some(event) = session.next_event() {
            for view in subscription.drain() {
                send_line(out, &layer_line(backend, &view), &mut client_gone);
            }
            for line in event_lines(&spec, &event) {
                send_line(out, &line, &mut client_gone);
            }
            if client_gone {
                // The client hung up: stop this session cooperatively.
                // Interrupted rounds roll back, the shared layers stay
                // valid for everyone else.
                token.cancel();
            }
        }
        for view in subscription.drain() {
            send_line(out, &layer_line(backend, &view), &mut client_gone);
        }
        if let Some(Err(error)) = session.outcome() {
            send_line(
                out,
                &error_line(&spec, &error.to_string()),
                &mut client_gone,
            );
        }
    }
    Ok(())
}

/// Writes one NDJSON line; flips `failed` on the first write error
/// instead of propagating, so the caller can wind the session down.
fn send_line(out: &mut impl Write, line: &str, failed: &mut bool) {
    if *failed {
        return;
    }
    let write = out
        .write_all(line.as_bytes())
        .and_then(|()| out.write_all(b"\n"))
        .and_then(|()| out.flush());
    if write.is_err() {
        *failed = true;
    }
}

/// `POST /suite`: batch verification through the broker's long-lived
/// cache, one JSON document as the answer.
fn handle_suite(
    out: &mut impl Write,
    request: &Request,
    broker: &Arc<Broker>,
) -> std::io::Result<()> {
    let parsed = match parse_analyze_request(request, &broker.config().profiles) {
        Ok(parsed) => parsed,
        Err(message) => return respond_error(out, 400, "Bad Request", &message),
    };
    let workers = match request.query_first("workers") {
        None => broker.config().workers,
        Some(raw) => match raw.parse::<usize>() {
            Ok(n) if (1..=64).contains(&n) => n,
            _ => {
                return respond_error(
                    out,
                    400,
                    "Bad Request",
                    &format!("bad workers '{raw}' (expected 1..=64)"),
                )
            }
        },
    };
    // One analysis slot per suite request; the batch's own bounded
    // parallelism runs within it.
    let _slot = broker.acquire_slot();
    broker.count_suite();
    if parsed.schedule.is_none() {
        broker.ensure_profiles(&parsed.cpds, &parsed.properties);
    }
    let portfolio = broker.portfolio(parsed.lineup, parsed.max_k, parsed.schedule);
    // Probe the registry up front so the reported hit/miss reflects
    // this request's arrival, not the in-run lookup race. The
    // broker-level lookup also revives/reloads spilled systems, so a
    // spilled-but-warm system reports `hit` here.
    let (_, cache_hit) = broker.lookup_for(&parsed.cpds);
    let problems: Vec<(Cpds, Property)> = parsed
        .properties
        .iter()
        .map(|(_, property)| (parsed.cpds.clone(), property.clone()))
        .collect();
    let results = portfolio.run_suite_cached(problems, workers, &broker.cache);
    // Re-track after the run: had a concurrent request evicted this
    // system mid-batch, the suite's internal lookup re-created the
    // slot outside the FIFO queue — this puts it back under the cap.
    broker.artifacts_for(&parsed.cpds);

    let mut records = Vec::new();
    for ((spec, _), result) in parsed.properties.iter().zip(&results) {
        let mut obj = JsonObject::new();
        obj.string("property", spec);
        match result {
            Ok(outcome) => {
                fill_outcome(&mut obj, outcome);
                obj.number("duration_ms", outcome.duration.as_millis() as f64);
                obj.number("round_wall_us", outcome.round_wall.as_micros() as f64);
                obj.number("rounds_explored", outcome.rounds_explored as f64);
                obj.number("rounds_replayed", outcome.rounds_replayed as f64);
            }
            Err(error) => {
                obj.string("error", &error.to_string());
            }
        }
        records.push(obj.finish());
    }
    let stats = broker.cache.stats();
    let mut body = JsonObject::new();
    body.string("cache", if cache_hit { "hit" } else { "miss" });
    if let Some(removed) = parsed.reduce_removed {
        body.number("reduce_removed", removed as f64);
    }
    body.raw("results", format!("[{}]", records.join(",")));
    body.number("systems", stats.systems as f64);
    write_response(out, 200, "OK", "application/json", body.finish().as_bytes())
}

/// `GET /v1`: a JSON index of the versioned API — every endpoint with
/// its method and legacy alias, plus the server's capabilities.
fn handle_index(out: &mut impl Write, broker: &Arc<Broker>) -> std::io::Result<()> {
    let endpoints: [(&str, &str, &str); 6] = [
        ("POST", "/v1/analyze", "stream NDJSON verdicts for a model"),
        (
            "POST",
            "/v1/suite",
            "batch-verify every property, one JSON answer",
        ),
        (
            "GET",
            "/v1/systems",
            "the shared-exploration registry with residency",
        ),
        ("GET", "/v1/healthz", "liveness and service counters"),
        ("GET", "/v1/metrics", "Prometheus text exposition"),
        ("POST", "/v1/shutdown", "graceful or abort shutdown"),
    ];
    let rendered: Vec<String> = endpoints
        .iter()
        .map(|(method, path, description)| {
            let mut obj = JsonObject::new();
            obj.string("method", method);
            obj.string("path", path);
            obj.string("legacy", path.strip_prefix("/v1").expect("v1-prefixed"));
            obj.string("description", description);
            obj.finish()
        })
        .collect();
    let mut capabilities = JsonObject::new();
    capabilities.number("workers", broker.config().workers as f64);
    capabilities.number("max_systems", broker.config().max_systems as f64);
    capabilities.bool("state_dir", broker.state_dir_enabled());
    capabilities.bool("profile_map", broker.profile_map().is_some());
    let mut body = JsonObject::new();
    body.string("service", "cuba-serve");
    body.string("version", env!("CARGO_PKG_VERSION"));
    body.raw("api_versions", "[\"v1\"]".to_owned());
    body.raw("endpoints", format!("[{}]", rendered.join(",")));
    body.raw("capabilities", capabilities.finish());
    write_response(out, 200, "OK", "application/json", body.finish().as_bytes())
}

/// `GET /systems`: the shared-exploration registry.
fn handle_systems(out: &mut impl Write, broker: &Arc<Broker>) -> std::io::Result<()> {
    let mut entries: Vec<String> = broker
        .cache
        .entries()
        .iter()
        .map(|entry| {
            let mut obj = JsonObject::new();
            obj.string("fingerprint", &format!("{:016x}", entry.fingerprint));
            obj.string("residency", "resident");
            obj.number("threads", entry.system.num_threads() as f64);
            obj.number("shared_states", entry.system.num_shared() as f64);
            match entry.artifacts.fcr_if_checked() {
                Some(report) => obj.bool("fcr", report.holds()),
                None => obj.null("fcr"),
            };
            explorer_field(
                &mut obj,
                "explicit",
                entry.artifacts.explicit_explorer_if_started(),
            );
            explorer_field(
                &mut obj,
                "symbolic_exact",
                entry
                    .artifacts
                    .symbolic_explorer_if_started(cuba_explore::SubsumptionMode::Exact),
            );
            explorer_field(
                &mut obj,
                "symbolic_pointwise",
                entry
                    .artifacts
                    .symbolic_explorer_if_started(cuba_explore::SubsumptionMode::Pointwise),
            );
            if let Some(map) = broker.profile_map() {
                profile_field(&mut obj, map.peek(entry.fingerprint));
            }
            obj.finish()
        })
        .collect();
    // Spilled systems follow the resident ones: pushed out of the
    // registry by `max_systems` but not gone — revivable through a
    // still-live client `Arc` or reloadable from the state directory.
    for (fingerprint, system) in broker.spilled_systems() {
        let mut obj = JsonObject::new();
        obj.string("fingerprint", &format!("{fingerprint:016x}"));
        obj.string("residency", "spilled");
        obj.number("threads", system.num_threads() as f64);
        obj.number("shared_states", system.num_shared() as f64);
        entries.push(obj.finish());
    }
    let stats = broker.cache.stats();
    let mut body = JsonObject::new();
    body.number("systems", stats.systems as f64);
    body.number("cache_hits", stats.hits as f64);
    body.number("cache_misses", stats.misses as f64);
    body.number("spills_total", broker.spills_total() as f64);
    body.number("revives_total", broker.revives_total() as f64);
    body.number("snapshot_saves_total", broker.saves_total() as f64);
    body.number("snapshot_reloads_total", broker.reloads_total() as f64);
    if let Some(map) = broker.profile_map() {
        let profile_stats = map.stats();
        body.number("profiles_learned", profile_stats.entries as f64);
        body.number("profile_hits", profile_stats.hits as f64);
        body.number("profile_misses", profile_stats.misses as f64);
        body.number("probes_started", profile_stats.probes_started as f64);
        body.number("probes_learned", profile_stats.probes_learned as f64);
    }
    body.raw("entries", format!("[{}]", entries.join(",")));
    write_response(out, 200, "OK", "application/json", body.finish().as_bytes())
}

/// Renders one system's learned profile (or `null` while unprobed):
/// the full tuning plus the probe provenance the map persists.
fn profile_field(obj: &mut JsonObject, profile: Option<cuba_core::LearnedProfile>) {
    match profile {
        Some(profile) => {
            let mut inner = JsonObject::new();
            inner.number("window", profile.config.window as f64);
            inner.number("bonus_turns", profile.config.bonus_turns as f64);
            inner.number("max_lead", profile.config.max_lead as f64);
            inner.number("balloon_ratio", profile.config.balloon_ratio);
            inner.number("park_floor", profile.config.park_floor as f64);
            inner.number("park_after", profile.config.park_after as f64);
            inner.number("threads", profile.config.threads as f64);
            inner.number("probe_rounds", profile.probe.rounds);
            inner.number("probe_samples", profile.probe.samples as f64);
            inner.number("tuned_at_k", profile.probe.tuned_at_k as f64);
            obj.raw("profile", inner.finish());
        }
        None => {
            obj.null("profile");
        }
    }
}

/// Renders one backend explorer slot (or `null` when never started).
fn explorer_field(obj: &mut JsonObject, key: &str, explorer: Option<Arc<SharedExplorer>>) {
    match explorer {
        Some(explorer) => {
            let mut inner = JsonObject::new();
            inner.number("rounds_explored", explorer.rounds_explored() as f64);
            inner.number("depth", explorer.depth() as f64);
            obj.raw(key, inner.finish());
        }
        None => {
            obj.null(key);
        }
    }
}

/// `GET /metrics`: the process-wide telemetry registry in Prometheus
/// text exposition format. Scrape-ready — every metric family carries
/// `# HELP`/`# TYPE` lines and histograms render cumulatively with a
/// terminal `+Inf` bucket.
fn handle_metrics(out: &mut impl Write) -> std::io::Result<()> {
    let body = cuba_telemetry::metrics::render_prometheus();
    write_response(
        out,
        200,
        "OK",
        "text/plain; version=0.0.4; charset=utf-8",
        body.as_bytes(),
    )
}

/// `GET /healthz`: liveness and service counters.
fn handle_healthz(out: &mut impl Write, broker: &Arc<Broker>) -> std::io::Result<()> {
    let stats = broker.cache.stats();
    let mut body = JsonObject::new();
    body.string(
        "status",
        if broker.is_draining() {
            "draining"
        } else {
            "ok"
        },
    );
    body.string("version", env!("CARGO_PKG_VERSION"));
    body.bool("draining", broker.is_draining());
    body.number("uptime_ms", broker.uptime_ms() as f64);
    body.number("workers", broker.config().workers as f64);
    body.number("workers_busy", broker.workers_busy() as f64);
    body.number("workers_idle", broker.workers_idle() as f64);
    body.number("connections_active", broker.connections_active() as f64);
    body.number("requests_total", broker.requests_total() as f64);
    body.number("sessions_active", broker.sessions_active() as f64);
    body.number("sessions_total", broker.sessions_total() as f64);
    body.number("suites_total", broker.suites_total() as f64);
    body.number("systems", stats.systems as f64);
    body.number("cache_hits", stats.hits as f64);
    body.number("cache_misses", stats.misses as f64);
    write_response(out, 200, "OK", "application/json", body.finish().as_bytes())
}

/// `POST /shutdown`: answer, then stop the service.
fn handle_shutdown(
    out: &mut impl Write,
    request: &Request,
    broker: &Arc<Broker>,
    addr: SocketAddr,
) -> std::io::Result<()> {
    let mode = match request.query_first("mode") {
        None | Some("graceful") => ShutdownMode::Graceful,
        Some("abort") => ShutdownMode::Abort,
        Some(other) => {
            return respond_error(
                out,
                400,
                "Bad Request",
                &format!("bad mode '{other}' (expected graceful or abort)"),
            )
        }
    };
    let mut body = JsonObject::new();
    body.string("status", "shutting-down");
    body.string(
        "mode",
        if mode == ShutdownMode::Abort {
            "abort"
        } else {
            "graceful"
        },
    );
    let answer = write_response(out, 200, "OK", "application/json", body.finish().as_bytes());
    broker.initiate_shutdown(mode);
    // Wake the acceptor so it observes the draining flag.
    let _ = TcpStream::connect(addr);
    answer
}

// ---------------------------------------------------------------------------
// NDJSON serialization. Kept public (and free of wall-clock fields in
// the `verdict` line) so tests and clients can reproduce the exact
// bytes from a direct `Portfolio` run.

/// The stream-level `reduced` line, sent once before the first
/// property when the request asked for `?reduce=true`.
pub fn reduced_line(removed: usize) -> String {
    let mut obj = JsonObject::new();
    obj.string("type", "reduced");
    obj.number("removed_transitions", removed as f64);
    obj.finish()
}

/// The per-property `start` line.
pub fn start_line(property: &str, fcr: bool, backend: &str) -> String {
    let mut obj = JsonObject::new();
    obj.string("type", "start");
    obj.string("property", property);
    obj.bool("fcr", fcr);
    obj.string("backend", backend);
    obj.finish()
}

/// A pushed shared-exploration layer.
pub fn layer_line(backend: &str, view: &LayerView) -> String {
    let mut obj = JsonObject::new();
    obj.string("type", "layer");
    obj.string("backend", backend);
    obj.number("k", view.k as f64);
    obj.number("states", view.states as f64);
    obj.number("visible", view.visible as f64);
    obj.number("new_visible", view.new_visible.len() as f64);
    obj.bool("collapsed", view.collapsed);
    obj.finish()
}

/// A mid-stream error (construction failure or hard engine error).
pub fn error_line(property: &str, message: &str) -> String {
    let mut obj = JsonObject::new();
    obj.string("type", "error");
    obj.string("property", property);
    obj.string("message", message);
    obj.finish()
}

/// The NDJSON lines for one [`SessionEvent`], in stream order.
pub fn event_lines(property: &str, event: &SessionEvent) -> Vec<String> {
    match event {
        SessionEvent::RoundCompleted {
            engine,
            k,
            states,
            delta_states,
            elapsed,
            event,
            replayed,
        } => {
            let tag = match event {
                SequenceEvent::Grew => "grew",
                SequenceEvent::NewPlateau => "new-plateau",
                SequenceEvent::OngoingPlateau => "plateau",
            };
            let mut obj = JsonObject::new();
            obj.string("type", "round");
            obj.string("property", property);
            obj.string("engine", &engine.to_string());
            obj.number("k", *k as f64);
            obj.number("states", *states as f64);
            obj.number("delta_states", *delta_states as f64);
            obj.number("elapsed_us", elapsed.as_micros() as f64);
            obj.string("event", tag);
            obj.bool("replayed", *replayed);
            vec![obj.finish()]
        }
        SessionEvent::EngineConcluded {
            engine,
            verdict,
            rounds,
            states,
        } => {
            let mut obj = JsonObject::new();
            obj.string("type", "engine-concluded");
            obj.string("property", property);
            obj.string("engine", &engine.to_string());
            obj.string("verdict", verdict_word(verdict));
            obj.number("rounds", *rounds as f64);
            obj.number("states", *states as f64);
            vec![obj.finish()]
        }
        SessionEvent::EngineFailed { engine, error } => {
            let mut obj = JsonObject::new();
            obj.string("type", "engine-failed");
            obj.string("property", property);
            obj.string("engine", &engine.to_string());
            obj.string("error", &error.to_string());
            vec![obj.finish()]
        }
        SessionEvent::Verdict { outcome } => {
            let mut lines = Vec::new();
            if let Verdict::Unsafe {
                witness: Some(witness),
                ..
            } = &outcome.verdict
            {
                let mut obj = JsonObject::new();
                obj.string("type", "witness");
                obj.string("property", property);
                obj.number("steps", witness.len() as f64);
                obj.number("contexts", witness.num_contexts() as f64);
                lines.push(obj.finish());
            }
            lines.push(verdict_line(property, outcome));
            lines.push(done_line(property, outcome));
            lines
        }
    }
}

/// The word for a verdict.
fn verdict_word(verdict: &Verdict) -> &'static str {
    match verdict {
        Verdict::Safe { .. } => "safe",
        Verdict::Unsafe { .. } => "unsafe",
        Verdict::Undetermined { .. } => "undetermined",
    }
}

/// Adds the deterministic outcome fields shared by the `verdict` line
/// and the `/suite` records.
fn fill_outcome(obj: &mut JsonObject, outcome: &CubaOutcome) {
    obj.string("verdict", verdict_word(&outcome.verdict));
    match &outcome.verdict {
        Verdict::Safe { k, method } => {
            obj.number("k", *k as f64);
            obj.string("method", &method.to_string());
        }
        Verdict::Unsafe { k, .. } => {
            obj.number("k", *k as f64);
        }
        Verdict::Undetermined { reason } => {
            obj.null("k");
            obj.string("reason", reason);
        }
    }
    obj.string("engine", &outcome.engine.to_string());
    obj.number("rounds", outcome.rounds as f64);
    obj.number("states", outcome.states as f64);
    obj.bool("fcr", outcome.fcr_holds);
}

/// The deterministic `verdict` line: every field is a pure function
/// of (system, property, configuration) — no wall-clock, no
/// shared-vs-fresh exploration difference — so a service answer can
/// be byte-compared to a direct [`Portfolio`](cuba_core::Portfolio) run.
pub fn verdict_line(property: &str, outcome: &CubaOutcome) -> String {
    let mut obj = JsonObject::new();
    obj.string("type", "verdict");
    obj.string("property", property);
    fill_outcome(&mut obj, outcome);
    obj.finish()
}

/// The per-property trailer carrying the timing/cost counters.
pub fn done_line(property: &str, outcome: &CubaOutcome) -> String {
    let mut obj = JsonObject::new();
    obj.string("type", "done");
    obj.string("property", property);
    obj.number("duration_ms", outcome.duration.as_millis() as f64);
    obj.number("round_wall_us", outcome.round_wall.as_micros() as f64);
    obj.number("rounds_explored", outcome.rounds_explored as f64);
    obj.number("rounds_replayed", outcome.rounds_replayed as f64);
    obj.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuba_core::{ConvergenceMethod, EngineUsed};

    fn outcome(verdict: Verdict) -> CubaOutcome {
        CubaOutcome {
            verdict,
            fcr_holds: true,
            engine: EngineUsed::Alg3Explicit,
            states: 12,
            rounds: 7,
            duration: Duration::from_millis(3),
            round_wall: Duration::from_micros(250),
            rounds_explored: 6,
            rounds_replayed: 1,
            stages: cuba_core::StageTimes::default(),
        }
    }

    /// The verdict line must be deterministic: no wall-clock fields,
    /// stable field order.
    #[test]
    fn verdict_line_is_timing_free() {
        let safe = outcome(Verdict::Safe {
            k: 5,
            method: ConvergenceMethod::GeneratorTest,
        });
        assert_eq!(
            verdict_line("true", &safe),
            "{\"type\":\"verdict\",\"property\":\"true\",\"verdict\":\"safe\",\"k\":5,\
             \"method\":\"generator test\",\"engine\":\"Alg3(T(Rk))\",\"rounds\":7,\
             \"states\":12,\"fcr\":true}"
        );
        let undetermined = outcome(Verdict::Undetermined {
            reason: "round limit".into(),
        });
        let line = verdict_line("p", &undetermined);
        assert!(line.contains("\"k\":null"));
        assert!(line.contains("\"reason\":\"round limit\""));
        assert!(!line.contains("duration"), "no wall-clock in the verdict");
        let done = done_line("p", &undetermined);
        assert!(done.contains("\"duration_ms\":3"));
        assert!(done.contains("\"rounds_explored\":6"));
    }

    /// Booting resolves an auto saturation thread count to the
    /// machine's cores divided by the worker slots (never below 1),
    /// and an explicit count is never overridden.
    #[test]
    fn bind_splits_threads_across_workers() {
        let avail = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let config = ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        };
        let server = Server::bind(config).unwrap();
        assert_eq!(server.broker().config().session.budget.threads, avail);

        let config = ServeConfig {
            workers: avail * 4,
            ..ServeConfig::default()
        };
        let server = Server::bind(config).unwrap();
        assert_eq!(server.broker().config().session.budget.threads, 1);

        let mut config = ServeConfig {
            workers: 4,
            ..ServeConfig::default()
        };
        config.session.budget.threads = 3;
        let server = Server::bind(config).unwrap();
        assert_eq!(server.broker().config().session.budget.threads, 3);
    }

    /// Model parsing: both formats and the error paths.
    #[test]
    fn parse_model_formats() {
        let cpds_src = "shared 2\ninit 0\nthread 2\nstack 1\n(0,1) -> (1,1)\n";
        let (cpds, property) = parse_model("cpds", cpds_src).unwrap();
        assert_eq!(cpds.num_threads(), 1);
        assert_eq!(property, Property::True);
        assert!(parse_model("cpds", "not a model").is_err());
        assert!(parse_model("toml", cpds_src).is_err());
    }

    /// The analyze-request parser: defaults, repeats, overrides,
    /// rejections.
    #[test]
    fn analyze_request_parsing() {
        let model = "shared 2\ninit 0\nthread 2\nstack 1\n(0,1) -> (1,1)\n";
        let mut request = Request {
            method: "POST".into(),
            path: "/analyze".into(),
            body: model.as_bytes().to_vec(),
            ..Request::default()
        };
        let parsed = parse_analyze_request(&request, &HashMap::new()).unwrap();
        assert_eq!(parsed.properties, vec![("default".into(), Property::True)]);
        assert_eq!(parsed.lineup, None);
        assert_eq!(parsed.max_k, None);

        request.query = vec![
            ("property".into(), "never-shared:1".into()),
            ("property".into(), "true".into()),
            ("engine".into(), "symbolic".into()),
            ("max_k".into(), "9".into()),
        ];
        let parsed = parse_analyze_request(&request, &HashMap::new()).unwrap();
        assert_eq!(parsed.properties.len(), 2);
        assert_eq!(parsed.properties[0].0, "never-shared:1");
        assert_eq!(parsed.max_k, Some(9));
        assert_eq!(parsed.schedule, None);
        assert!(matches!(parsed.lineup, Some(Lineup::Fixed(_))));

        // Per-request scheduling: plain names, inline tunings, and
        // profiles resolved against the boot-time map only.
        request.query = vec![("schedule".into(), "round-robin".into())];
        let parsed = parse_analyze_request(&request, &HashMap::new()).unwrap();
        assert_eq!(parsed.schedule, Some(SchedulePolicy::RoundRobin));
        request.query = vec![("schedule".into(), "frontier:window=2".into())];
        let parsed = parse_analyze_request(&request, &HashMap::new()).unwrap();
        match parsed.schedule {
            Some(SchedulePolicy::FrontierAware(config)) => assert_eq!(config.window, 2),
            other => panic!("unexpected schedule {other:?}"),
        }
        let mut profiles = HashMap::new();
        profiles.insert(
            "tuned".to_owned(),
            FrontierConfig {
                bonus_turns: 1,
                ..FrontierConfig::default()
            },
        );
        request.query = vec![("schedule".into(), "frontier:tuned".into())];
        let parsed = parse_analyze_request(&request, &profiles).unwrap();
        match parsed.schedule {
            Some(SchedulePolicy::FrontierAware(config)) => assert_eq!(config.bonus_turns, 1),
            other => panic!("unexpected schedule {other:?}"),
        }
        // An unknown profile (a file path, say) is a client error —
        // never a filesystem access.
        request.query = vec![("schedule".into(), "frontier:/etc/passwd".into())];
        let error = parse_analyze_request(&request, &profiles).unwrap_err();
        assert!(error.contains("unknown schedule profile"), "{error}");

        request.query = vec![("engine".into(), "quantum".into())];
        assert!(parse_analyze_request(&request, &HashMap::new()).is_err());
        request.query.clear();
        request.body.clear();
        assert!(
            parse_analyze_request(&request, &HashMap::new()).is_err(),
            "empty body"
        );
    }

    /// `?reduce=true` applies the verdict-preserving pre-analysis to
    /// the parsed system before the broker ever sees it.
    #[test]
    fn analyze_request_reduce_param() {
        // One live transition, one dead one from an unreachable shared
        // state: the reduction must drop exactly the dead transition.
        let model = "shared 3\ninit 0\nthread 2\nstack 1\n(0,1) -> (1,1)\n(2,1) -> (2,1)\n";
        let mut request = Request {
            method: "POST".into(),
            path: "/analyze".into(),
            body: model.as_bytes().to_vec(),
            ..Request::default()
        };
        let plain = parse_analyze_request(&request, &HashMap::new()).unwrap();
        assert_eq!(plain.reduce_removed, None);

        request.query = vec![("reduce".into(), "true".into())];
        let reduced = parse_analyze_request(&request, &HashMap::new()).unwrap();
        assert_eq!(reduced.reduce_removed, Some(1));
        assert_eq!(reduced.cpds.num_threads(), plain.cpds.num_threads());

        request.query = vec![("reduce".into(), "false".into())];
        let parsed = parse_analyze_request(&request, &HashMap::new()).unwrap();
        assert_eq!(parsed.reduce_removed, None);

        request.query = vec![("reduce".into(), "maybe".into())];
        let error = parse_analyze_request(&request, &HashMap::new()).unwrap_err();
        assert!(error.contains("bad reduce"), "{error}");
    }

    /// The stream-level `reduced` line is stable JSON.
    #[test]
    fn reduced_line_shape() {
        assert_eq!(
            reduced_line(4),
            "{\"type\":\"reduced\",\"removed_transitions\":4}"
        );
    }
}
