//! The session broker: the shared state every connection of the
//! service operates on — a long-lived [`SuiteCache`] (so concurrent
//! clients asking about the same CPDS share one saturation per
//! backend, FIFO-bounded so the registry cannot grow without limit),
//! the base portfolio configuration, the bounded analysis-slot pool
//! (analysis work queues for a slot; control endpoints never do),
//! service counters, and the shutdown machinery (a draining flag plus
//! the abort [`CancelToken`] wired into every session's interrupt).
//!
//! Under `max_systems` pressure the registry *spills* instead of
//! discarding: the oldest system's layer stores are snapshotted to the
//! state directory (when one is configured) and a weak handle is kept,
//! so the next request for that system revives the still-live
//! artifacts of any in-flight client — or, failing that, reloads the
//! saturation from disk — rather than paying for a cold re-exploration.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::time::Instant;

use cuba_core::{
    fingerprint, same_system, Lineup, Portfolio, ProfileMap, Property, SessionConfig,
    SnapshotStore, SuiteCache, SystemArtifacts,
};
use cuba_explore::CancelToken;
use cuba_pds::Cpds;

use crate::ServeConfig;

/// How the service should wind down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShutdownMode {
    /// Stop accepting, let in-flight sessions run to their verdicts.
    Graceful,
    /// Additionally fire the abort token: in-flight explorations stop
    /// at their next interrupt poll and their sessions conclude
    /// `Undetermined` (interrupted rounds roll back, so the shared
    /// layers stay valid for a later restart).
    Abort,
}

/// One registry entry in arrival order: fingerprint, the system, and
/// its artifacts.
type TrackedEntry = (u64, Arc<Cpds>, Arc<SystemArtifacts>);

/// One spill bucket: the system for structural verification plus a
/// weak handle to the evicted artifacts (live while any client still
/// holds them).
type SpillBucket = Vec<(Arc<Cpds>, Weak<SystemArtifacts>)>;

/// Shared per-service state (one [`Broker`] per [`Server`]).
///
/// [`Server`]: crate::Server
#[derive(Debug)]
pub struct Broker {
    /// Per-system artifacts, shared across every request for the
    /// lifetime of the service: the registry behind `/systems`.
    pub cache: SuiteCache,
    config: ServeConfig,
    /// Fired on [`ShutdownMode::Abort`]; polled by every session.
    abort: CancelToken,
    draining: AtomicBool,
    started: Instant,
    requests_total: AtomicUsize,
    sessions_active: AtomicUsize,
    sessions_total: AtomicUsize,
    suites_total: AtomicUsize,
    /// Free analysis slots (the bounded pool): `/analyze` and
    /// `/suite` handlers block here, control endpoints never touch it.
    slots: Mutex<usize>,
    slots_cv: Condvar,
    /// Live connections (any endpoint), for the accept-time cap and
    /// the drain-on-shutdown wait.
    connections: Mutex<usize>,
    connections_cv: Condvar,
    /// Cached systems in arrival order — the FIFO spill queue
    /// bounding the registry at `config.max_systems`. The system is
    /// kept alongside its artifacts so a spill can snapshot it and a
    /// graceful shutdown can flush every resident system.
    tracked: Mutex<VecDeque<TrackedEntry>>,
    /// Systems pushed out of the registry, by fingerprint. The
    /// bucket is a list for the same collision reason as the cache's.
    spilled: Mutex<HashMap<u64, SpillBucket>>,
    /// The snapshot directory behind `--state-dir`, when configured.
    snapshots: Option<SnapshotStore>,
    spills_total: AtomicUsize,
    reloads_total: AtomicUsize,
    revives_total: AtomicUsize,
    saves_total: AtomicUsize,
}

impl Broker {
    /// A fresh broker for one service instance. A configured
    /// `state_dir` that cannot be opened disables persistence with a
    /// warning rather than failing the boot — [`Server::bind`] checks
    /// the directory up front, so the CLI still reports a bad
    /// `--state-dir` as an error.
    ///
    /// [`Server::bind`]: crate::Server::bind
    pub fn new(config: ServeConfig) -> Self {
        let slots = config.workers.max(1);
        let snapshots = config.state_dir.as_ref().and_then(|dir| {
            SnapshotStore::open(dir)
                .map_err(|e| eprintln!("warning: state dir disabled: {e}"))
                .ok()
        });
        Broker {
            cache: SuiteCache::new(),
            config,
            abort: CancelToken::new(),
            draining: AtomicBool::new(false),
            started: Instant::now(),
            requests_total: AtomicUsize::new(0),
            sessions_active: AtomicUsize::new(0),
            sessions_total: AtomicUsize::new(0),
            suites_total: AtomicUsize::new(0),
            slots: Mutex::new(slots),
            slots_cv: Condvar::new(),
            connections: Mutex::new(0),
            connections_cv: Condvar::new(),
            tracked: Mutex::new(VecDeque::new()),
            spilled: Mutex::new(HashMap::new()),
            snapshots,
            spills_total: AtomicUsize::new(0),
            reloads_total: AtomicUsize::new(0),
            revives_total: AtomicUsize::new(0),
            saves_total: AtomicUsize::new(0),
        }
    }

    /// Claims one analysis slot, blocking while all `workers` slots
    /// are busy — the bounded pool that queues analysis work without
    /// ever queueing `/healthz` or `/shutdown` behind it.
    pub fn acquire_slot(&self) -> SlotGuard<'_> {
        let mut free = self.slots.lock().expect("slot count");
        while *free == 0 {
            free = self.slots_cv.wait(free).expect("slot count");
        }
        *free -= 1;
        cuba_telemetry::metrics::METRICS.workers_busy.add(1);
        SlotGuard { broker: self }
    }

    /// Analysis slots currently claimed (busy workers).
    pub fn workers_busy(&self) -> usize {
        let free = *self.slots.lock().expect("slot count");
        self.config.workers.max(1).saturating_sub(free)
    }

    /// Analysis slots currently free (idle workers).
    pub fn workers_idle(&self) -> usize {
        *self.slots.lock().expect("slot count")
    }

    /// Registers one accepted connection, or reports that the live
    /// cap is reached (the acceptor then answers 503 instead of
    /// spawning a handler). Every `true` must be paired with exactly
    /// one [`connection_closed`](Self::connection_closed) — the
    /// handler thread does this through a drop guard, so a panicking
    /// handler still balances the count.
    pub fn try_open_connection(&self) -> bool {
        let mut live = self.connections.lock().expect("connection count");
        if *live >= self.config.max_connections.max(1) {
            return false;
        }
        *live += 1;
        true
    }

    /// Balances one [`try_open_connection`](Self::try_open_connection)
    /// and wakes a draining shutdown.
    pub fn connection_closed(&self) {
        let mut live = self.connections.lock().expect("connection count");
        *live = live.saturating_sub(1);
        self.connections_cv.notify_all();
    }

    /// Blocks until every live connection has finished — the drain
    /// step of a shutdown.
    pub fn wait_connections_drained(&self) {
        let mut live = self.connections.lock().expect("connection count");
        while *live > 0 {
            live = self.connections_cv.wait(live).expect("connection count");
        }
    }

    /// Live connections right now.
    pub fn connections_active(&self) -> usize {
        *self.connections.lock().expect("connection count")
    }

    /// The per-system artifacts for `cpds` from the long-lived cache,
    /// keeping the registry FIFO-bounded at `max_systems`: when a new
    /// system would exceed the cap, the oldest cached system is
    /// *spilled* — snapshotted to the state directory (when one is
    /// configured) and remembered weakly — rather than discarded.
    /// A later request for a spilled system re-admits the still-live
    /// artifacts any in-flight session holds (so two clients never
    /// race a cold re-exploration of one system), or reloads the
    /// saturation from disk, and only re-explores when neither exists.
    pub fn artifacts_for(&self, cpds: &Cpds) -> Arc<SystemArtifacts> {
        self.lookup_for(cpds).0
    }

    /// As [`artifacts_for`](Self::artifacts_for), also reporting
    /// whether the system was already warm (`true` = resident in the
    /// registry or revived from a spill).
    pub fn lookup_for(&self, cpds: &Cpds) -> (Arc<SystemArtifacts>, bool) {
        let key = fingerprint(cpds);
        let revived = self.try_revive(key, cpds);
        let (artifacts, hit) = self.cache.lookup(cpds);
        if !hit && !revived {
            self.hydrate(cpds, &artifacts);
        }
        self.track(key, cpds, &artifacts);
        (artifacts, hit || revived)
    }

    /// Re-admits a spilled system's artifacts while some client still
    /// holds them. Returns `true` when the live `Arc` went back into
    /// the cache (the caller's lookup will now hit it).
    fn try_revive(&self, key: u64, cpds: &Cpds) -> bool {
        let live = {
            let mut spilled = self.spilled.lock().expect("spill registry");
            let Some(bucket) = spilled.get_mut(&key) else {
                return false;
            };
            let mut found = None;
            // Dead weak handles are garbage wherever they appear:
            // compact the bucket while scanning it.
            bucket.retain(|(known, weak)| match weak.upgrade() {
                Some(artifacts) if found.is_none() && same_system(known, cpds) => {
                    found = Some(artifacts);
                    false
                }
                Some(_) => true,
                None => false,
            });
            if bucket.is_empty() {
                spilled.remove(&key);
            }
            match found {
                Some(live) => live,
                None => return false,
            }
        };
        self.cache.adopt(cpds, live);
        self.revives_total.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Seeds a cold system's explorer slots from the state directory,
    /// if its snapshots are there. Unreadable snapshots log a warning
    /// and leave the system cold — persistence must never make a
    /// request fail.
    fn hydrate(&self, cpds: &Cpds, artifacts: &Arc<SystemArtifacts>) {
        let Some(store) = &self.snapshots else {
            return;
        };
        match store.load(cpds, artifacts, &self.config.session.budget) {
            Ok(loaded) if loaded > 0 => {
                self.reloads_total.fetch_add(loaded, Ordering::Relaxed);
            }
            Ok(_) => {}
            Err(error) => eprintln!("warning: snapshot load skipped: {error}"),
        }
    }

    /// Tracks `artifacts` in the FIFO queue and spills whatever the
    /// `max_systems` cap pushes out. The spill work (snapshot write)
    /// runs after the queue lock is released, so a slow disk never
    /// stalls other requests' registry lookups.
    fn track(&self, key: u64, cpds: &Cpds, artifacts: &Arc<SystemArtifacts>) {
        let mut evicted = Vec::new();
        {
            let mut tracked = self.tracked.lock().expect("eviction queue");
            if !tracked.iter().any(|(_, _, a)| Arc::ptr_eq(a, artifacts)) {
                tracked.push_back((key, Arc::new(cpds.clone()), artifacts.clone()));
            }
            let cap = self.config.max_systems.max(1);
            while tracked.len() > cap {
                evicted.push(tracked.pop_front().expect("len > cap ≥ 1"));
            }
        }
        for (old_key, old_cpds, old) in evicted {
            self.spill(old_key, &old_cpds, &old);
        }
    }

    /// Spills one system out of the registry: snapshot to disk (state
    /// directory configured and the write succeeded), remember the
    /// artifacts weakly for revival, then evict the cache slot.
    fn spill(&self, key: u64, cpds: &Arc<Cpds>, artifacts: &Arc<SystemArtifacts>) {
        if let Some(store) = &self.snapshots {
            match store.save(cpds, artifacts) {
                Ok(written) => {
                    self.saves_total.fetch_add(written, Ordering::Relaxed);
                    if written > 0 {
                        cuba_telemetry::metrics::METRICS.snapshot_spills.inc();
                    }
                }
                Err(error) => eprintln!("warning: snapshot spill failed: {error}"),
            }
        }
        self.spills_total.fetch_add(1, Ordering::Relaxed);
        self.spilled
            .lock()
            .expect("spill registry")
            .entry(key)
            .or_default()
            .push((cpds.clone(), Arc::downgrade(artifacts)));
        self.cache.remove(key, artifacts);
    }

    /// Snapshots every resident system to the state directory — the
    /// graceful-shutdown flush behind `cuba serve --state-dir`.
    /// Returns the number of snapshot files written (0 without a state
    /// directory); write failures log a warning and move on.
    pub fn flush_snapshots(&self) -> usize {
        let Some(store) = &self.snapshots else {
            return 0;
        };
        let resident: Vec<(Arc<Cpds>, Arc<SystemArtifacts>)> = {
            let tracked = self.tracked.lock().expect("eviction queue");
            tracked
                .iter()
                .map(|(_, cpds, artifacts)| (cpds.clone(), artifacts.clone()))
                .collect()
        };
        let mut written = 0;
        for (cpds, artifacts) in resident {
            match store.save(&cpds, &artifacts) {
                Ok(files) => written += files,
                Err(error) => eprintln!("warning: snapshot flush failed: {error}"),
            }
        }
        self.saves_total.fetch_add(written, Ordering::Relaxed);
        written
    }

    /// The fingerprints of spilled systems whose artifacts are gone
    /// from the registry but still revivable (a client holds them) or
    /// reloadable (snapshots on disk) — the `spilled` rows of
    /// `/systems`. Resident systems never appear here.
    pub fn spilled_systems(&self) -> Vec<(u64, Arc<Cpds>)> {
        let resident: Vec<u64> = {
            let tracked = self.tracked.lock().expect("eviction queue");
            tracked.iter().map(|(key, _, _)| *key).collect()
        };
        let mut spilled = self.spilled.lock().expect("spill registry");
        let mut out = Vec::new();
        spilled.retain(|key, bucket| {
            bucket.retain(|(cpds, weak)| {
                let reachable = weak.upgrade().is_some()
                    || self
                        .snapshots
                        .as_ref()
                        .is_some_and(|store| store.contains(*key));
                if reachable && !resident.contains(key) {
                    out.push((*key, cpds.clone()));
                }
                reachable
            });
            !bucket.is_empty()
        });
        out.sort_by_key(|(key, _)| *key);
        out
    }

    /// Whether a state directory is active (snapshots persist).
    pub fn state_dir_enabled(&self) -> bool {
        self.snapshots.is_some()
    }

    /// Systems spilled out of the registry since boot.
    pub fn spills_total(&self) -> usize {
        self.spills_total.load(Ordering::Relaxed)
    }

    /// Explorer snapshots reloaded from the state directory since boot.
    pub fn reloads_total(&self) -> usize {
        self.reloads_total.load(Ordering::Relaxed)
    }

    /// Spilled systems revived through a still-live client `Arc`.
    pub fn revives_total(&self) -> usize {
        self.revives_total.load(Ordering::Relaxed)
    }

    /// Snapshot files written (spills plus shutdown flushes).
    pub fn saves_total(&self) -> usize {
        self.saves_total.load(Ordering::Relaxed)
    }

    /// The service configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The portfolio a request runs under: the service's base session
    /// configuration with the abort token wired in, plus the
    /// request's own overrides.
    pub fn portfolio(
        &self,
        lineup: Option<Lineup>,
        max_k: Option<usize>,
        schedule: Option<cuba_core::SchedulePolicy>,
    ) -> Portfolio {
        // An explicit per-request schedule outranks the learned map;
        // otherwise sessions consult the map first and fall back to
        // the service's base `--schedule`.
        let consult_map = schedule.is_none();
        let session = SessionConfig {
            max_k: max_k.unwrap_or(self.config.session.max_k),
            schedule: schedule.unwrap_or_else(|| self.config.session.schedule.clone()),
            cancel: Some(self.abort.clone()),
            ..self.config.session.clone()
        };
        let lineup = lineup.unwrap_or_else(|| self.config.lineup.clone());
        let mut portfolio = match lineup {
            Lineup::Auto => Portfolio::auto(),
            Lineup::Fixed(kinds) => Portfolio::fixed(kinds),
        }
        .with_config(session);
        if consult_map {
            if let Some(map) = &self.config.profile_map {
                portfolio = portfolio.with_profile_map(map.clone());
            }
        }
        portfolio
    }

    /// The learned profile map served under `--profile-map`, if any.
    pub fn profile_map(&self) -> Option<&Arc<ProfileMap>> {
        self.config.profile_map.as_ref()
    }

    /// With `--profile-map`: makes sure the map has a learned profile
    /// for every system of `problems`, probing novel fingerprints
    /// through the broker's long-lived cache — the probe candidates
    /// replay layers the service has already explored (and leave warm
    /// layers for the request that triggered them). The map's probe
    /// gate guarantees concurrent requests for one fingerprint run
    /// exactly one probe; the losers proceed on the fallback schedule.
    ///
    /// The probe runs under the service's base session limits with
    /// the abort token wired in, so an abort shutdown interrupts
    /// in-flight probes like any other analysis.
    pub fn ensure_profiles(&self, cpds: &Cpds, properties: &[(String, Property)]) {
        let Some(map) = &self.config.profile_map else {
            return;
        };
        let problems: Vec<(String, Cpds, Property)> = properties
            .iter()
            .map(|(label, property)| (label.clone(), cpds.clone(), property.clone()))
            .collect();
        let base = SessionConfig {
            cancel: Some(self.abort.clone()),
            ..self.config.session.clone()
        };
        cuba_bench::tune::ensure_profiles(map, &problems, 1, &self.cache, &base);
    }

    /// Whether the service has begun shutting down.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::Relaxed)
    }

    /// Initiates shutdown (idempotent). Callers still owe the
    /// acceptor a wake-up connection — see [`Server::run`].
    ///
    /// [`Server::run`]: crate::Server::run
    pub fn initiate_shutdown(&self, mode: ShutdownMode) {
        self.draining.store(true, Ordering::Relaxed);
        if mode == ShutdownMode::Abort {
            self.abort.cancel();
        }
    }

    /// Milliseconds since the broker was created.
    pub fn uptime_ms(&self) -> u128 {
        self.started.elapsed().as_millis()
    }

    /// Counts one accepted request.
    pub fn count_request(&self) {
        self.requests_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Requests accepted so far.
    pub fn requests_total(&self) -> usize {
        self.requests_total.load(Ordering::Relaxed)
    }

    /// Marks one streaming session as started; the guard un-marks it.
    pub fn session_started(&self) -> SessionGuard<'_> {
        self.sessions_active.fetch_add(1, Ordering::Relaxed);
        self.sessions_total.fetch_add(1, Ordering::Relaxed);
        cuba_telemetry::metrics::METRICS.sessions_active.add(1);
        SessionGuard { broker: self }
    }

    /// Streaming sessions currently in flight.
    pub fn sessions_active(&self) -> usize {
        self.sessions_active.load(Ordering::Relaxed)
    }

    /// Streaming sessions started since boot.
    pub fn sessions_total(&self) -> usize {
        self.sessions_total.load(Ordering::Relaxed)
    }

    /// Counts one `/suite` batch.
    pub fn count_suite(&self) {
        self.suites_total.fetch_add(1, Ordering::Relaxed);
    }

    /// `/suite` batches run since boot.
    pub fn suites_total(&self) -> usize {
        self.suites_total.load(Ordering::Relaxed)
    }
}

/// RAII guard pairing [`Broker::session_started`] with its decrement,
/// so a panicking handler can never leak an "active" session.
#[derive(Debug)]
pub struct SessionGuard<'a> {
    broker: &'a Broker,
}

impl Drop for SessionGuard<'_> {
    fn drop(&mut self) {
        self.broker.sessions_active.fetch_sub(1, Ordering::Relaxed);
        cuba_telemetry::metrics::METRICS.sessions_active.add(-1);
    }
}

/// RAII guard for one analysis slot; dropping it (normally or by
/// panic) frees the slot and wakes one queued analysis request.
#[derive(Debug)]
pub struct SlotGuard<'a> {
    broker: &'a Broker,
}

impl Drop for SlotGuard<'_> {
    fn drop(&mut self) {
        let mut free = self.broker.slots.lock().expect("slot count");
        *free += 1;
        cuba_telemetry::metrics::METRICS.workers_busy.add(-1);
        self.broker.slots_cv.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_guards() {
        let broker = Broker::new(ServeConfig::default());
        assert_eq!(broker.sessions_active(), 0);
        {
            let _one = broker.session_started();
            let _two = broker.session_started();
            assert_eq!(broker.sessions_active(), 2);
            assert_eq!(broker.sessions_total(), 2);
        }
        assert_eq!(broker.sessions_active(), 0);
        assert_eq!(broker.sessions_total(), 2);
        broker.count_request();
        broker.count_suite();
        assert_eq!(broker.requests_total(), 1);
        assert_eq!(broker.suites_total(), 1);
    }

    #[test]
    fn shutdown_modes() {
        let broker = Broker::new(ServeConfig::default());
        assert!(!broker.is_draining());
        broker.initiate_shutdown(ShutdownMode::Graceful);
        assert!(broker.is_draining());
        // Graceful never fires the abort token…
        let probe = broker.portfolio(None, None, None);
        let cancel = probe.config().cancel.clone().expect("abort token wired in");
        assert!(!cancel.is_cancelled());
        // …abort does, and every session's config polls the same flag.
        broker.initiate_shutdown(ShutdownMode::Abort);
        assert!(cancel.is_cancelled());
    }

    /// The slot pool bounds concurrent analyses at `workers`, blocks
    /// the overflow, and frees on drop (panic included via RAII).
    #[test]
    fn analysis_slots_are_bounded_and_released() {
        let broker = Broker::new(ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        });
        let first = broker.acquire_slot();
        let second = broker.acquire_slot();
        // Third acquirer must block until a slot frees.
        let acquired = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let _third = broker.acquire_slot();
                acquired.store(true, Ordering::SeqCst);
            });
            std::thread::sleep(std::time::Duration::from_millis(50));
            assert!(!acquired.load(Ordering::SeqCst), "pool is full");
            drop(first);
            // The scope joins the thread: it must now get the slot.
        });
        assert!(acquired.load(Ordering::SeqCst));
        drop(second);
        let _refilled = (broker.acquire_slot(), broker.acquire_slot());
    }

    /// Connections are capped and drained: over-cap opens are
    /// refused, and the drain wait returns once every open is closed.
    #[test]
    fn connection_cap_and_drain() {
        let broker = Broker::new(ServeConfig {
            max_connections: 2,
            ..ServeConfig::default()
        });
        assert!(broker.try_open_connection(), "first");
        assert!(broker.try_open_connection(), "second");
        assert!(!broker.try_open_connection(), "cap reached");
        assert_eq!(broker.connections_active(), 2);
        broker.connection_closed();
        assert!(broker.try_open_connection(), "slot freed");
        broker.connection_closed();
        broker.connection_closed();
        broker.wait_connections_drained(); // returns immediately at 0
        assert_eq!(broker.connections_active(), 0);
    }

    fn system(shared: u32) -> Cpds {
        use cuba_pds::{CpdsBuilder, PdsBuilder, SharedState, StackSym};
        let mut p = PdsBuilder::new(shared, 2);
        p.overwrite(
            SharedState(0),
            StackSym(1),
            SharedState(shared - 1),
            StackSym(1),
        )
        .unwrap();
        CpdsBuilder::new(shared, SharedState(0))
            .thread(p.build().unwrap(), [StackSym(1)])
            .build()
            .unwrap()
    }

    /// A unique, cleaned-on-drop scratch directory (no tempdir crate).
    struct Scratch(std::path::PathBuf);

    impl Scratch {
        fn new(tag: &str) -> Scratch {
            let dir = std::env::temp_dir().join(format!("cuba-serve-{tag}-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            Scratch(dir)
        }
    }

    impl Drop for Scratch {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    /// The registry is FIFO-bounded: the oldest system is spilled
    /// when a new one would exceed `max_systems`. A spilled system
    /// whose artifacts nobody holds anymore gets a fresh slot; hits
    /// never grow the queue.
    #[test]
    fn artifacts_registry_evicts_fifo() {
        let broker = Broker::new(ServeConfig {
            max_systems: 2,
            ..ServeConfig::default()
        });
        let first = broker.artifacts_for(&system(2));
        let _second = broker.artifacts_for(&system(3));
        assert_eq!(broker.cache.len(), 2);
        // Give up the only live handle *before* the spill: revival is
        // then impossible and a re-request must open a fresh slot.
        drop(first);
        // A third distinct system spills the oldest (system(2)).
        let _third = broker.artifacts_for(&system(4));
        assert_eq!(broker.cache.len(), 2);
        assert_eq!(broker.spills_total(), 1);
        let fingerprints: Vec<u64> = broker
            .cache
            .entries()
            .iter()
            .map(|e| e.fingerprint)
            .collect();
        assert!(!fingerprints.contains(&cuba_core::fingerprint(&system(2))));
        let readmitted = broker.artifacts_for(&system(2));
        assert_eq!(broker.cache.len(), 2);
        assert_eq!(broker.revives_total(), 0, "nothing live to revive");
        // Hits never grow the queue: repeats are not re-tracked.
        for _ in 0..5 {
            let again = broker.artifacts_for(&system(2));
            assert!(Arc::ptr_eq(&again, &readmitted));
        }
        assert_eq!(broker.cache.len(), 2);
    }

    /// The staggered-clients regression: client A holds a spilled
    /// system's artifacts while client B asks for the same system.
    /// B must get A's live `Arc` back (one exploration, no cold
    /// restart racing A's in-flight session), and the revived system
    /// is resident again.
    #[test]
    fn spilled_system_revives_through_live_clients() {
        let broker = Broker::new(ServeConfig {
            max_systems: 1,
            ..ServeConfig::default()
        });
        // Client A warms the system up: layers 0..=3 are explored live.
        let client_a = broker.artifacts_for(&system(2));
        let explorer = client_a.explicit_explorer(&system(2), &broker.config().session.budget);
        explorer
            .ensure_layer(3, &cuba_explore::Interrupt::none())
            .expect("warm-up exploration");
        let live_rounds = explorer.rounds_explored();
        assert!(live_rounds > 0);

        // Another system spills it while A still holds the Arc.
        let _other = broker.artifacts_for(&system(3));
        assert_eq!(broker.spills_total(), 1);
        assert!(
            !broker.spilled_systems().is_empty(),
            "the spilled system stays visible while A holds it"
        );

        // Client B, staggered behind A, asks for the same system.
        let client_b = broker.artifacts_for(&system(2));
        assert!(
            Arc::ptr_eq(&client_a, &client_b),
            "B converges on A's live artifacts, not a cold slot"
        );
        assert_eq!(broker.revives_total(), 1);
        // B replays A's layers for free: no new live rounds.
        let replayed = client_b.explicit_explorer(&system(2), &broker.config().session.budget);
        assert_eq!(
            replayed.ensure_layer(3, &cuba_explore::Interrupt::none()),
            Ok(false)
        );
        assert_eq!(replayed.rounds_explored(), live_rounds);
        // The revived system is resident again (system(3), which its
        // arrival spilled in turn, may be listed instead).
        let still_spilled: Vec<u64> = broker
            .spilled_systems()
            .iter()
            .map(|(key, _)| *key)
            .collect();
        assert!(
            !still_spilled.contains(&cuba_core::fingerprint(&system(2))),
            "revived = resident"
        );
    }

    /// With a state directory, a spill snapshots the layers to disk
    /// and the next request — even after every client dropped the
    /// artifacts — reloads the saturation instead of re-exploring:
    /// the recorded bounds replay with zero live rounds.
    #[test]
    fn spilled_system_reloads_from_state_dir() {
        let scratch = Scratch::new("spill-reload");
        let broker = Broker::new(ServeConfig {
            max_systems: 1,
            state_dir: Some(scratch.0.display().to_string()),
            ..ServeConfig::default()
        });
        let budget = broker.config().session.budget.clone();
        let artifacts = broker.artifacts_for(&system(2));
        let explorer = artifacts.explicit_explorer(&system(2), &budget);
        explorer
            .ensure_layer(3, &cuba_explore::Interrupt::none())
            .expect("warm-up exploration");
        assert!(explorer.rounds_explored() > 0);

        // Spill, then drop every live handle: only the disk remains.
        let _other = broker.artifacts_for(&system(3));
        assert_eq!(broker.spills_total(), 1);
        assert!(broker.saves_total() > 0, "spill wrote a snapshot");
        drop((artifacts, explorer));
        assert!(
            !broker.spilled_systems().is_empty(),
            "still listed: reloadable from disk"
        );

        // The next request reloads the saturation from the snapshot.
        let reloaded = broker.artifacts_for(&system(2));
        assert_eq!(broker.reloads_total(), 1);
        assert_eq!(broker.revives_total(), 0, "no live Arc existed");
        let warm = reloaded.explicit_explorer(&system(2), &budget);
        // Every recorded bound replays for free; the counter proves no
        // saturation was re-run.
        assert_eq!(
            warm.ensure_layer(3, &cuba_explore::Interrupt::none()),
            Ok(false)
        );
        assert_eq!(warm.rounds_explored(), 0);
    }

    /// `flush_snapshots` persists every resident system — the
    /// graceful-shutdown half of `--state-dir` — and a second broker
    /// on the same directory warm-starts from it.
    #[test]
    fn flush_then_warm_start_across_brokers() {
        let scratch = Scratch::new("warm-start");
        let state_dir = Some(scratch.0.display().to_string());
        let cold = Broker::new(ServeConfig {
            state_dir: state_dir.clone(),
            ..ServeConfig::default()
        });
        let budget = cold.config().session.budget.clone();
        let artifacts = cold.artifacts_for(&system(2));
        artifacts
            .explicit_explorer(&system(2), &budget)
            .ensure_layer(4, &cuba_explore::Interrupt::none())
            .expect("cold exploration");
        assert_eq!(cold.flush_snapshots(), 1);
        drop((artifacts, cold));

        // "Restart": a fresh broker, same directory, lazy warm load.
        let warm = Broker::new(ServeConfig {
            state_dir,
            ..ServeConfig::default()
        });
        let artifacts = warm.artifacts_for(&system(2));
        assert_eq!(warm.reloads_total(), 1);
        let explorer = artifacts.explicit_explorer(&system(2), &budget);
        assert_eq!(
            explorer.ensure_layer(4, &cuba_explore::Interrupt::none()),
            Ok(false)
        );
        assert_eq!(explorer.rounds_explored(), 0, "all bounds replayed");
    }

    #[test]
    fn portfolio_applies_overrides() {
        let broker = Broker::new(ServeConfig::default());
        assert_eq!(
            broker.portfolio(None, None, None).config().max_k,
            ServeConfig::default().session.max_k
        );
        assert_eq!(broker.portfolio(None, Some(7), None).config().max_k, 7);
    }
}
