//! The session broker: the shared state every connection of the
//! service operates on — a long-lived [`SuiteCache`] (so concurrent
//! clients asking about the same CPDS share one saturation per
//! backend, FIFO-bounded so the registry cannot grow without limit),
//! the base portfolio configuration, the bounded analysis-slot pool
//! (analysis work queues for a slot; control endpoints never do),
//! service counters, and the shutdown machinery (a draining flag plus
//! the abort [`CancelToken`] wired into every session's interrupt).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use cuba_core::{
    fingerprint, Lineup, Portfolio, ProfileMap, Property, SessionConfig, SuiteCache,
    SystemArtifacts,
};
use cuba_explore::CancelToken;
use cuba_pds::Cpds;

use crate::ServeConfig;

/// How the service should wind down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShutdownMode {
    /// Stop accepting, let in-flight sessions run to their verdicts.
    Graceful,
    /// Additionally fire the abort token: in-flight explorations stop
    /// at their next interrupt poll and their sessions conclude
    /// `Undetermined` (interrupted rounds roll back, so the shared
    /// layers stay valid for a later restart).
    Abort,
}

/// Shared per-service state (one [`Broker`] per [`Server`]).
///
/// [`Server`]: crate::Server
#[derive(Debug)]
pub struct Broker {
    /// Per-system artifacts, shared across every request for the
    /// lifetime of the service: the registry behind `/systems`.
    pub cache: SuiteCache,
    config: ServeConfig,
    /// Fired on [`ShutdownMode::Abort`]; polled by every session.
    abort: CancelToken,
    draining: AtomicBool,
    started: Instant,
    requests_total: AtomicUsize,
    sessions_active: AtomicUsize,
    sessions_total: AtomicUsize,
    suites_total: AtomicUsize,
    /// Free analysis slots (the bounded pool): `/analyze` and
    /// `/suite` handlers block here, control endpoints never touch it.
    slots: Mutex<usize>,
    slots_cv: Condvar,
    /// Live connections (any endpoint), for the accept-time cap and
    /// the drain-on-shutdown wait.
    connections: Mutex<usize>,
    connections_cv: Condvar,
    /// Cached systems in arrival order — the FIFO eviction queue
    /// bounding the registry at `config.max_systems`.
    tracked: Mutex<VecDeque<(u64, Arc<SystemArtifacts>)>>,
}

impl Broker {
    /// A fresh broker for one service instance.
    pub fn new(config: ServeConfig) -> Self {
        let slots = config.workers.max(1);
        Broker {
            cache: SuiteCache::new(),
            config,
            abort: CancelToken::new(),
            draining: AtomicBool::new(false),
            started: Instant::now(),
            requests_total: AtomicUsize::new(0),
            sessions_active: AtomicUsize::new(0),
            sessions_total: AtomicUsize::new(0),
            suites_total: AtomicUsize::new(0),
            slots: Mutex::new(slots),
            slots_cv: Condvar::new(),
            connections: Mutex::new(0),
            connections_cv: Condvar::new(),
            tracked: Mutex::new(VecDeque::new()),
        }
    }

    /// Claims one analysis slot, blocking while all `workers` slots
    /// are busy — the bounded pool that queues analysis work without
    /// ever queueing `/healthz` or `/shutdown` behind it.
    pub fn acquire_slot(&self) -> SlotGuard<'_> {
        let mut free = self.slots.lock().expect("slot count");
        while *free == 0 {
            free = self.slots_cv.wait(free).expect("slot count");
        }
        *free -= 1;
        cuba_telemetry::metrics::METRICS.workers_busy.add(1);
        SlotGuard { broker: self }
    }

    /// Analysis slots currently claimed (busy workers).
    pub fn workers_busy(&self) -> usize {
        let free = *self.slots.lock().expect("slot count");
        self.config.workers.max(1).saturating_sub(free)
    }

    /// Analysis slots currently free (idle workers).
    pub fn workers_idle(&self) -> usize {
        *self.slots.lock().expect("slot count")
    }

    /// Registers one accepted connection, or reports that the live
    /// cap is reached (the acceptor then answers 503 instead of
    /// spawning a handler). Every `true` must be paired with exactly
    /// one [`connection_closed`](Self::connection_closed) — the
    /// handler thread does this through a drop guard, so a panicking
    /// handler still balances the count.
    pub fn try_open_connection(&self) -> bool {
        let mut live = self.connections.lock().expect("connection count");
        if *live >= self.config.max_connections.max(1) {
            return false;
        }
        *live += 1;
        true
    }

    /// Balances one [`try_open_connection`](Self::try_open_connection)
    /// and wakes a draining shutdown.
    pub fn connection_closed(&self) {
        let mut live = self.connections.lock().expect("connection count");
        *live = live.saturating_sub(1);
        self.connections_cv.notify_all();
    }

    /// Blocks until every live connection has finished — the drain
    /// step of a shutdown.
    pub fn wait_connections_drained(&self) {
        let mut live = self.connections.lock().expect("connection count");
        while *live > 0 {
            live = self.connections_cv.wait(live).expect("connection count");
        }
    }

    /// Live connections right now.
    pub fn connections_active(&self) -> usize {
        *self.connections.lock().expect("connection count")
    }

    /// The per-system artifacts for `cpds` from the long-lived cache,
    /// keeping the registry FIFO-bounded at `max_systems`: when a new
    /// system would exceed the cap, the oldest cached system is
    /// evicted (in-flight sessions holding its `Arc` are unaffected;
    /// the next request for it simply re-explores).
    pub fn artifacts_for(&self, cpds: &Cpds) -> Arc<SystemArtifacts> {
        let artifacts = self.cache.artifacts(cpds);
        let key = fingerprint(cpds);
        let mut tracked = self.tracked.lock().expect("eviction queue");
        if !tracked.iter().any(|(_, a)| Arc::ptr_eq(a, &artifacts)) {
            tracked.push_back((key, artifacts.clone()));
        }
        let cap = self.config.max_systems.max(1);
        while tracked.len() > cap {
            let (old_key, old) = tracked.pop_front().expect("len > cap ≥ 1");
            self.cache.remove(old_key, &old);
        }
        artifacts
    }

    /// The service configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The portfolio a request runs under: the service's base session
    /// configuration with the abort token wired in, plus the
    /// request's own overrides.
    pub fn portfolio(
        &self,
        lineup: Option<Lineup>,
        max_k: Option<usize>,
        schedule: Option<cuba_core::SchedulePolicy>,
    ) -> Portfolio {
        // An explicit per-request schedule outranks the learned map;
        // otherwise sessions consult the map first and fall back to
        // the service's base `--schedule`.
        let consult_map = schedule.is_none();
        let session = SessionConfig {
            max_k: max_k.unwrap_or(self.config.session.max_k),
            schedule: schedule.unwrap_or_else(|| self.config.session.schedule.clone()),
            cancel: Some(self.abort.clone()),
            ..self.config.session.clone()
        };
        let lineup = lineup.unwrap_or_else(|| self.config.lineup.clone());
        let mut portfolio = match lineup {
            Lineup::Auto => Portfolio::auto(),
            Lineup::Fixed(kinds) => Portfolio::fixed(kinds),
        }
        .with_config(session);
        if consult_map {
            if let Some(map) = &self.config.profile_map {
                portfolio = portfolio.with_profile_map(map.clone());
            }
        }
        portfolio
    }

    /// The learned profile map served under `--profile-map`, if any.
    pub fn profile_map(&self) -> Option<&Arc<ProfileMap>> {
        self.config.profile_map.as_ref()
    }

    /// With `--profile-map`: makes sure the map has a learned profile
    /// for every system of `problems`, probing novel fingerprints
    /// through the broker's long-lived cache — the probe candidates
    /// replay layers the service has already explored (and leave warm
    /// layers for the request that triggered them). The map's probe
    /// gate guarantees concurrent requests for one fingerprint run
    /// exactly one probe; the losers proceed on the fallback schedule.
    ///
    /// The probe runs under the service's base session limits with
    /// the abort token wired in, so an abort shutdown interrupts
    /// in-flight probes like any other analysis.
    pub fn ensure_profiles(&self, cpds: &Cpds, properties: &[(String, Property)]) {
        let Some(map) = &self.config.profile_map else {
            return;
        };
        let problems: Vec<(String, Cpds, Property)> = properties
            .iter()
            .map(|(label, property)| (label.clone(), cpds.clone(), property.clone()))
            .collect();
        let base = SessionConfig {
            cancel: Some(self.abort.clone()),
            ..self.config.session.clone()
        };
        cuba_bench::tune::ensure_profiles(map, &problems, 1, &self.cache, &base);
    }

    /// Whether the service has begun shutting down.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::Relaxed)
    }

    /// Initiates shutdown (idempotent). Callers still owe the
    /// acceptor a wake-up connection — see [`Server::run`].
    ///
    /// [`Server::run`]: crate::Server::run
    pub fn initiate_shutdown(&self, mode: ShutdownMode) {
        self.draining.store(true, Ordering::Relaxed);
        if mode == ShutdownMode::Abort {
            self.abort.cancel();
        }
    }

    /// Milliseconds since the broker was created.
    pub fn uptime_ms(&self) -> u128 {
        self.started.elapsed().as_millis()
    }

    /// Counts one accepted request.
    pub fn count_request(&self) {
        self.requests_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Requests accepted so far.
    pub fn requests_total(&self) -> usize {
        self.requests_total.load(Ordering::Relaxed)
    }

    /// Marks one streaming session as started; the guard un-marks it.
    pub fn session_started(&self) -> SessionGuard<'_> {
        self.sessions_active.fetch_add(1, Ordering::Relaxed);
        self.sessions_total.fetch_add(1, Ordering::Relaxed);
        cuba_telemetry::metrics::METRICS.sessions_active.add(1);
        SessionGuard { broker: self }
    }

    /// Streaming sessions currently in flight.
    pub fn sessions_active(&self) -> usize {
        self.sessions_active.load(Ordering::Relaxed)
    }

    /// Streaming sessions started since boot.
    pub fn sessions_total(&self) -> usize {
        self.sessions_total.load(Ordering::Relaxed)
    }

    /// Counts one `/suite` batch.
    pub fn count_suite(&self) {
        self.suites_total.fetch_add(1, Ordering::Relaxed);
    }

    /// `/suite` batches run since boot.
    pub fn suites_total(&self) -> usize {
        self.suites_total.load(Ordering::Relaxed)
    }
}

/// RAII guard pairing [`Broker::session_started`] with its decrement,
/// so a panicking handler can never leak an "active" session.
#[derive(Debug)]
pub struct SessionGuard<'a> {
    broker: &'a Broker,
}

impl Drop for SessionGuard<'_> {
    fn drop(&mut self) {
        self.broker.sessions_active.fetch_sub(1, Ordering::Relaxed);
        cuba_telemetry::metrics::METRICS.sessions_active.add(-1);
    }
}

/// RAII guard for one analysis slot; dropping it (normally or by
/// panic) frees the slot and wakes one queued analysis request.
#[derive(Debug)]
pub struct SlotGuard<'a> {
    broker: &'a Broker,
}

impl Drop for SlotGuard<'_> {
    fn drop(&mut self) {
        let mut free = self.broker.slots.lock().expect("slot count");
        *free += 1;
        cuba_telemetry::metrics::METRICS.workers_busy.add(-1);
        self.broker.slots_cv.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_guards() {
        let broker = Broker::new(ServeConfig::default());
        assert_eq!(broker.sessions_active(), 0);
        {
            let _one = broker.session_started();
            let _two = broker.session_started();
            assert_eq!(broker.sessions_active(), 2);
            assert_eq!(broker.sessions_total(), 2);
        }
        assert_eq!(broker.sessions_active(), 0);
        assert_eq!(broker.sessions_total(), 2);
        broker.count_request();
        broker.count_suite();
        assert_eq!(broker.requests_total(), 1);
        assert_eq!(broker.suites_total(), 1);
    }

    #[test]
    fn shutdown_modes() {
        let broker = Broker::new(ServeConfig::default());
        assert!(!broker.is_draining());
        broker.initiate_shutdown(ShutdownMode::Graceful);
        assert!(broker.is_draining());
        // Graceful never fires the abort token…
        let probe = broker.portfolio(None, None, None);
        let cancel = probe.config().cancel.clone().expect("abort token wired in");
        assert!(!cancel.is_cancelled());
        // …abort does, and every session's config polls the same flag.
        broker.initiate_shutdown(ShutdownMode::Abort);
        assert!(cancel.is_cancelled());
    }

    /// The slot pool bounds concurrent analyses at `workers`, blocks
    /// the overflow, and frees on drop (panic included via RAII).
    #[test]
    fn analysis_slots_are_bounded_and_released() {
        let broker = Broker::new(ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        });
        let first = broker.acquire_slot();
        let second = broker.acquire_slot();
        // Third acquirer must block until a slot frees.
        let acquired = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let _third = broker.acquire_slot();
                acquired.store(true, Ordering::SeqCst);
            });
            std::thread::sleep(std::time::Duration::from_millis(50));
            assert!(!acquired.load(Ordering::SeqCst), "pool is full");
            drop(first);
            // The scope joins the thread: it must now get the slot.
        });
        assert!(acquired.load(Ordering::SeqCst));
        drop(second);
        let _refilled = (broker.acquire_slot(), broker.acquire_slot());
    }

    /// Connections are capped and drained: over-cap opens are
    /// refused, and the drain wait returns once every open is closed.
    #[test]
    fn connection_cap_and_drain() {
        let broker = Broker::new(ServeConfig {
            max_connections: 2,
            ..ServeConfig::default()
        });
        assert!(broker.try_open_connection(), "first");
        assert!(broker.try_open_connection(), "second");
        assert!(!broker.try_open_connection(), "cap reached");
        assert_eq!(broker.connections_active(), 2);
        broker.connection_closed();
        assert!(broker.try_open_connection(), "slot freed");
        broker.connection_closed();
        broker.connection_closed();
        broker.wait_connections_drained(); // returns immediately at 0
        assert_eq!(broker.connections_active(), 0);
    }

    /// The registry is FIFO-bounded: the oldest system is evicted
    /// when a new one would exceed `max_systems`, and re-requesting
    /// an evicted system re-admits it.
    #[test]
    fn artifacts_registry_evicts_fifo() {
        use cuba_pds::{CpdsBuilder, PdsBuilder, SharedState, StackSym};
        let system = |shared: u32| {
            let mut p = PdsBuilder::new(shared, 2);
            p.overwrite(
                SharedState(0),
                StackSym(1),
                SharedState(shared - 1),
                StackSym(1),
            )
            .unwrap();
            CpdsBuilder::new(shared, SharedState(0))
                .thread(p.build().unwrap(), [StackSym(1)])
                .build()
                .unwrap()
        };
        let broker = Broker::new(ServeConfig {
            max_systems: 2,
            ..ServeConfig::default()
        });
        let first = broker.artifacts_for(&system(2));
        let _second = broker.artifacts_for(&system(3));
        assert_eq!(broker.cache.len(), 2);
        // A third distinct system evicts the oldest (system(2)).
        let _third = broker.artifacts_for(&system(4));
        assert_eq!(broker.cache.len(), 2);
        let fingerprints: Vec<u64> = broker
            .cache
            .entries()
            .iter()
            .map(|e| e.fingerprint)
            .collect();
        assert!(!fingerprints.contains(&cuba_core::fingerprint(&system(2))));
        // A re-request re-admits it with a fresh slot; the old Arc
        // (in-flight sessions) stays usable.
        let readmitted = broker.artifacts_for(&system(2));
        assert!(!Arc::ptr_eq(&first, &readmitted));
        assert_eq!(broker.cache.len(), 2);
        // Hits never grow the queue: repeats are not re-tracked.
        for _ in 0..5 {
            let again = broker.artifacts_for(&system(2));
            assert!(Arc::ptr_eq(&again, &readmitted));
        }
        assert_eq!(broker.cache.len(), 2);
    }

    #[test]
    fn portfolio_applies_overrides() {
        let broker = Broker::new(ServeConfig::default());
        assert_eq!(
            broker.portfolio(None, None, None).config().max_k,
            ServeConfig::default().session.max_k
        );
        assert_eq!(broker.portfolio(None, Some(7), None).config().max_k, 7);
    }
}
