//! A dependency-free HTTP/1.1 subset: exactly what the analysis
//! service needs, nothing more.
//!
//! One request per connection (`Connection: close` on every
//! response): the service's interesting responses are NDJSON streams
//! terminated by connection close, so keep-alive would buy nothing
//! and cost correctness. Request bodies require `Content-Length`
//! (no chunked uploads); responses either carry `Content-Length`
//! ([`write_response`]) or stream until close ([`write_stream_head`]).

use std::io::{BufRead, Write};

/// Upper bounds keeping one slow or hostile connection from pinning a
/// worker: request line ≤ 8 KiB, ≤ 64 headers of ≤ 8 KiB each, body ≤
/// 4 MiB (a generous bound for model files).
const MAX_LINE: usize = 8 * 1024;
const MAX_HEADERS: usize = 64;
const MAX_BODY: usize = 4 * 1024 * 1024;

/// A parsed request.
#[derive(Debug, Clone, Default)]
pub struct Request {
    /// The method verb, uppercased as received (`GET`, `POST`, …).
    pub method: String,
    /// The percent-decoded path, query string excluded.
    pub path: String,
    /// Query parameters in request order, percent-decoded.
    pub query: Vec<(String, String)>,
    /// Header `(name, value)` pairs; names lowercased.
    pub headers: Vec<(String, String)>,
    /// The raw body (`Content-Length` bytes).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of query parameter `key`, if present.
    pub fn query_first(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Every value of the (repeatable) query parameter `key`.
    pub fn query_all(&self, key: &str) -> Vec<&str> {
        self.query
            .iter()
            .filter(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
            .collect()
    }

    /// The value of header `name` (case-insensitive), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8.
    ///
    /// # Errors
    ///
    /// [`HttpError::BadRequest`] on invalid UTF-8.
    pub fn body_utf8(&self) -> Result<&str, HttpError> {
        std::str::from_utf8(&self.body)
            .map_err(|_| HttpError::BadRequest("request body is not valid UTF-8".into()))
    }
}

/// Request-reading failures, each mapping to a response status.
#[derive(Debug)]
pub enum HttpError {
    /// The peer connected but sent nothing (e.g. the shutdown wake-up
    /// probe): close quietly, no response owed.
    Empty,
    /// Malformed request: answer 400 with the message.
    BadRequest(String),
    /// Body or header limits exceeded: answer 413.
    TooLarge,
    /// The socket failed mid-read: nothing sensible to answer.
    Io(std::io::Error),
}

impl HttpError {
    /// The `(status, reason)` line this error maps to, if a response
    /// is owed at all.
    pub fn status(&self) -> Option<(u16, &'static str)> {
        match self {
            HttpError::Empty | HttpError::Io(_) => None,
            HttpError::BadRequest(_) => Some((400, "Bad Request")),
            HttpError::TooLarge => Some((413, "Payload Too Large")),
        }
    }

    /// The human-readable message for the error body.
    pub fn message(&self) -> String {
        match self {
            HttpError::Empty => "empty request".into(),
            HttpError::BadRequest(m) => m.clone(),
            HttpError::TooLarge => "request exceeds the size limits".into(),
            HttpError::Io(e) => e.to_string(),
        }
    }
}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// Reads one CRLF- (or LF-) terminated line, bounded by [`MAX_LINE`].
/// `None` on a clean EOF *before any byte*; EOF mid-line is a
/// truncated request, never silently treated as a terminator (a
/// half-sent `POST /shutdown` must not shut anything down).
fn read_line(reader: &mut impl BufRead) -> Result<Option<String>, HttpError> {
    let mut raw = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match reader.read(&mut byte)? {
            0 if raw.is_empty() => return Ok(None),
            0 => {
                return Err(HttpError::BadRequest(
                    "truncated request (EOF before end of line)".into(),
                ))
            }
            _ => {
                if byte[0] == b'\n' {
                    break;
                }
                raw.push(byte[0]);
                if raw.len() > MAX_LINE {
                    return Err(HttpError::TooLarge);
                }
            }
        }
    }
    if raw.last() == Some(&b'\r') {
        raw.pop();
    }
    String::from_utf8(raw)
        .map(Some)
        .map_err(|_| HttpError::BadRequest("header line is not UTF-8".into()))
}

/// Parses one HTTP/1.x request from `reader`.
///
/// # Errors
///
/// See [`HttpError`]; an immediately-closed connection is
/// [`HttpError::Empty`].
pub fn read_request(reader: &mut impl BufRead) -> Result<Request, HttpError> {
    let Some(request_line) = read_line(reader)? else {
        return Err(HttpError::Empty);
    };
    if request_line.is_empty() {
        return Err(HttpError::Empty);
    }
    let mut parts = request_line.split(' ');
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(HttpError::BadRequest(format!(
            "malformed request line '{request_line}'"
        )));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::BadRequest(format!(
            "unsupported protocol '{version}'"
        )));
    }
    let (path, query_string) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    let mut request = Request {
        method: method.to_owned(),
        path: percent_decode(path)?,
        query: query_string
            .map(parse_query)
            .transpose()?
            .unwrap_or_default(),
        ..Request::default()
    };

    loop {
        let line = read_line(reader)?.ok_or_else(|| {
            HttpError::BadRequest("truncated request (EOF inside the header block)".into())
        })?;
        if line.is_empty() {
            break;
        }
        if request.headers.len() >= MAX_HEADERS {
            return Err(HttpError::TooLarge);
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::BadRequest(format!("malformed header '{line}'")));
        };
        request
            .headers
            .push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }

    if let Some(length) = request.header("content-length") {
        let length: usize = length
            .parse()
            .map_err(|_| HttpError::BadRequest(format!("bad content-length '{length}'")))?;
        if length > MAX_BODY {
            return Err(HttpError::TooLarge);
        }
        let mut body = vec![0u8; length];
        reader.read_exact(&mut body)?;
        request.body = body;
    } else if request.header("transfer-encoding").is_some() {
        return Err(HttpError::BadRequest(
            "chunked request bodies are not supported; send Content-Length".into(),
        ));
    }
    Ok(request)
}

/// Splits and percent-decodes a query string.
fn parse_query(query: &str) -> Result<Vec<(String, String)>, HttpError> {
    query
        .split('&')
        .filter(|pair| !pair.is_empty())
        .map(|pair| {
            let (key, value) = pair.split_once('=').unwrap_or((pair, ""));
            Ok((percent_decode(key)?, percent_decode(value)?))
        })
        .collect()
}

/// Percent-decodes a path or query component (`%2C` → `,`). `+` is
/// left alone: the service's specs use it nowhere and curl does not
/// form-encode query strings.
fn percent_decode(text: &str) -> Result<String, HttpError> {
    let bytes = text.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = bytes
                .get(i + 1..i + 3)
                .and_then(|h| std::str::from_utf8(h).ok())
                .and_then(|h| u8::from_str_radix(h, 16).ok())
                .ok_or_else(|| HttpError::BadRequest(format!("bad percent escape in '{text}'")))?;
            out.push(hex);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).map_err(|_| HttpError::BadRequest("escape decodes to non-UTF-8".into()))
}

/// Writes a complete response with `Content-Length` and
/// `Connection: close`.
pub fn write_response(
    stream: &mut impl Write,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &[u8],
) -> std::io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    stream.write_all(body)?;
    stream.flush()
}

/// Writes the head of a streaming response: no `Content-Length`, the
/// body runs until the connection closes (HTTP/1.1 framing by
/// close-delimiting). Callers then write NDJSON lines and flush.
pub fn write_stream_head(stream: &mut impl Write, content_type: &str) -> std::io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 200 OK\r\nContent-Type: {content_type}\r\nConnection: close\r\nX-Accel-Buffering: no\r\n\r\n"
    )?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Request, HttpError> {
        read_request(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_request_line_query_headers_and_body() {
        let request = parse(
            "POST /analyze?property=never-visible:1%7C2,6&property=true&max_k=9 HTTP/1.1\r\n\
             Host: localhost\r\nContent-Length: 5\r\n\r\nhello",
        )
        .unwrap();
        assert_eq!(request.method, "POST");
        assert_eq!(request.path, "/analyze");
        assert_eq!(
            request.query_all("property"),
            vec!["never-visible:1|2,6", "true"]
        );
        assert_eq!(request.query_first("max_k"), Some("9"));
        assert_eq!(request.query_first("absent"), None);
        assert_eq!(request.header("HOST"), Some("localhost"));
        assert_eq!(request.body_utf8().unwrap(), "hello");
    }

    #[test]
    fn lf_only_lines_and_missing_body_are_fine() {
        let request = parse("GET /healthz HTTP/1.1\nHost: x\n\n").unwrap();
        assert_eq!(request.method, "GET");
        assert_eq!(request.path, "/healthz");
        assert!(request.body.is_empty());
    }

    /// A half-sent request must never be acted on: EOF mid-line or
    /// mid-header-block is a 400, not an implicit terminator.
    #[test]
    fn rejects_truncated_requests() {
        assert!(matches!(
            parse("POST /shutdown HTTP/1.1"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            parse("POST /shutdown HTTP/1.1\r\nHost: x\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort"),
            Err(HttpError::Io(_))
        ));
    }

    #[test]
    fn rejects_garbage_and_empty_connections() {
        assert!(matches!(parse(""), Err(HttpError::Empty)));
        assert!(matches!(
            parse("GARBAGE\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            parse("GET / SPDY/3\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nContent-Length: 99999999999\r\n\r\n"),
            Err(HttpError::TooLarge)
        ));
    }

    #[test]
    fn percent_decoding_round_trips_the_spec_alphabet() {
        assert_eq!(percent_decode("a%40b%7Cc%2Cd").unwrap(), "a@b|c,d");
        assert_eq!(percent_decode("plain").unwrap(), "plain");
        assert!(percent_decode("%zz").is_err());
        assert!(percent_decode("%f").is_err());
    }

    #[test]
    fn responses_are_close_delimited() {
        let mut out = Vec::new();
        write_response(&mut out, 404, "Not Found", "application/json", b"{}").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 404 Not Found\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));

        let mut out = Vec::new();
        write_stream_head(&mut out, "application/x-ndjson").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(!text.contains("Content-Length"));
    }
}
