//! Property-based tests of the automata substrate: determinization,
//! minimization and canonicalization preserve languages; containment
//! and equality agree with sampling; `post*`/`pre*` satisfy the
//! reachability duality; the finiteness test agrees with bounded
//! enumeration.

use cuba_automata::{
    bounded_reach, intersect, is_language_finite, language_equal, language_subset, post_star,
    pre_star, CanonicalDfa, Dfa, Finiteness, Label, Nfa, Psa, StateId,
};
use cuba_pds::{Pds, PdsBuilder, PdsConfig, SharedState, Stack, StackSym};
use proptest::prelude::*;

/// Strategy: a random NFA over symbols 0..3 with up to 6 states.
fn arb_nfa() -> impl Strategy<Value = Nfa> {
    let states = 1u32..6;
    (
        states,
        proptest::collection::vec((0u32..6, 0u32..4, 0u32..6), 0..16),
        proptest::collection::vec(0u32..6, 1..3),
        proptest::collection::vec(0u32..6, 1..3),
        proptest::collection::vec((0u32..6, 0u32..6), 0..3),
    )
        .prop_map(|(n, edges, initials, finals, eps_edges)| {
            let n = n.max(1);
            let mut nfa = Nfa::with_states(n);
            for s in initials {
                nfa.set_initial(StateId(s % n));
            }
            for s in finals {
                nfa.set_final(StateId(s % n));
            }
            for (src, sym, dst) in edges {
                nfa.add_transition(StateId(src % n), Label::Sym(sym), StateId(dst % n));
            }
            for (src, dst) in eps_edges {
                nfa.add_transition(StateId(src % n), Label::Eps, StateId(dst % n));
            }
            nfa
        })
}

/// All words over {0..3} up to length 4 — a complete probe set for the
/// small automata above (not exhaustive for equality, but sampling
/// plus the algebraic checks below gives strong coverage).
fn probe_words() -> Vec<Vec<u32>> {
    let mut words = vec![vec![]];
    let mut out = words.clone();
    for _ in 0..4 {
        let mut next = Vec::new();
        for w in &words {
            for sym in 0..4u32 {
                let mut w2 = w.clone();
                w2.push(sym);
                next.push(w2);
            }
        }
        out.extend(next.iter().cloned());
        words = next;
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn determinization_preserves_language(nfa in arb_nfa()) {
        let dfa = Dfa::determinize(&nfa);
        for w in probe_words() {
            prop_assert_eq!(dfa.accepts(&w), nfa.accepts(&w), "word {:?}", w);
        }
    }

    #[test]
    fn minimization_preserves_language(nfa in arb_nfa()) {
        let dfa = Dfa::determinize(&nfa);
        let min = cuba_automata::minimize(&dfa);
        prop_assert!(min.num_states() <= dfa.num_states().max(1));
        for w in probe_words() {
            prop_assert_eq!(min.accepts(&w), dfa.accepts(&w), "word {:?}", w);
        }
    }

    #[test]
    fn canonicalization_is_language_identity(a in arb_nfa(), b in arb_nfa()) {
        let ca = CanonicalDfa::from_nfa(&a);
        let cb = CanonicalDfa::from_nfa(&b);
        let equal_by_canon = ca == cb;
        let equal_by_check = language_equal(&a, &b);
        prop_assert_eq!(equal_by_canon, equal_by_check);
        // And canonicalization itself preserves the language.
        for w in probe_words().into_iter().take(80) {
            prop_assert_eq!(ca.accepts(&w), a.accepts(&w), "word {:?}", w);
        }
    }

    #[test]
    fn canonicalization_is_idempotent(a in arb_nfa()) {
        let c1 = CanonicalDfa::from_nfa(&a);
        let c2 = CanonicalDfa::from_dfa(&c1.to_dfa());
        prop_assert_eq!(c1, c2);
    }

    #[test]
    fn subset_agrees_with_sampling(a in arb_nfa(), b in arb_nfa()) {
        let subset = language_subset(&a, &b);
        if subset {
            for w in probe_words() {
                if a.accepts(&w) {
                    prop_assert!(b.accepts(&w), "claimed subset but {:?} ∈ A \\ B", w);
                }
            }
        } else {
            // There must exist a separating word; sampling may miss
            // long ones, so only check the converse when short words
            // separate.
            let separated = probe_words().iter().any(|w| a.accepts(w) && !b.accepts(w));
            let _ = separated; // long separators are possible; no assert
        }
    }

    #[test]
    fn intersection_is_conjunction(a in arb_nfa(), b in arb_nfa()) {
        let i = intersect(&a, &b);
        for w in probe_words() {
            prop_assert_eq!(i.accepts(&w), a.accepts(&w) && b.accepts(&w), "word {:?}", w);
        }
    }

    #[test]
    fn finite_languages_have_bounded_words(nfa in arb_nfa()) {
        // If the test says finite, sampling many words must terminate
        // below the theoretical length bound (#states).
        if is_language_finite(&nfa) == Finiteness::Finite {
            let words = nfa.sample_words(200);
            for w in &words {
                prop_assert!(
                    w.len() < nfa.num_states() as usize + 1,
                    "finite language contains word longer than the state count: {:?}", w
                );
            }
        } else {
            // Infinite language: pumping must show up in samples.
            let words = nfa.sample_words(200);
            prop_assert!(
                words.iter().any(|w| w.len() >= nfa.num_states() as usize),
                "claimed infinite but all samples are short"
            );
        }
    }
}

/// Strategy: a small random PDS over 3 shared states and 3 symbols.
fn arb_pds() -> impl Strategy<Value = Pds> {
    proptest::collection::vec((0u32..3, 0u32..3, 0u32..3, 0u32..4, 0u32..3, 0u32..3), 1..8)
        .prop_map(|actions| {
            let mut b = PdsBuilder::new(3, 3);
            for (q, sym, q2, kind, s1, s2) in actions {
                let _ = match kind {
                    0 => b.pop(SharedState(q), StackSym(sym), SharedState(q2)),
                    1 => b.overwrite(SharedState(q), StackSym(sym), SharedState(q2), StackSym(s1)),
                    2 => b.push(
                        SharedState(q),
                        StackSym(sym),
                        SharedState(q2),
                        StackSym(s1),
                        StackSym(s2),
                    ),
                    _ => b.from_empty(SharedState(q), SharedState(q2), Some(StackSym(s1))),
                };
            }
            b.build().expect("all ids in range")
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Soundness + completeness of post* against explicit search.
    #[test]
    fn post_star_agrees_with_bounded_search(pds in arb_pds(), q0 in 0u32..3, sym0 in 0u32..3) {
        let init = PdsConfig::new(SharedState(q0), Stack::from_top_down([StackSym(sym0)]));
        let psa = post_star(&pds, &Psa::accepting_configs(3, [&init]).unwrap());
        // Everything explicitly reachable is accepted.
        let reached = bounded_reach(&pds, &init, 6);
        for c in &reached {
            prop_assert!(psa.accepts_config(c), "post* misses {}", c);
        }
        // Everything accepted with a short stack is explicitly reachable
        // (deep search bound covers stacks ≤ 3 symbols).
        let deep: std::collections::HashSet<_> =
            bounded_reach(&pds, &init, 14).into_iter().collect();
        for q in 0..3u32 {
            let lang = psa.stack_language(SharedState(q));
            for word in lang.sample_words(8) {
                if word.len() <= 3 {
                    let c = PdsConfig::new(
                        SharedState(q),
                        Stack::from_top_down(word.iter().map(|&x| StackSym(x))),
                    );
                    prop_assert!(deep.contains(&c), "post* invents {}", c);
                }
            }
        }
    }

    /// The duality s' ∈ post*(s) ⟺ s ∈ pre*(s') on sampled pairs.
    #[test]
    fn post_pre_duality(pds in arb_pds(), q0 in 0u32..3, sym0 in 0u32..3) {
        let start = PdsConfig::new(SharedState(q0), Stack::from_top_down([StackSym(sym0)]));
        for target in bounded_reach(&pds, &start, 4).into_iter().take(6) {
            let pre = pre_star(&pds, &Psa::accepting_configs(3, [&target]).unwrap());
            prop_assert!(
                pre.accepts_config(&start),
                "{} reachable from {} but pre* disagrees", target, start
            );
        }
    }

    /// post* output always satisfies the PSA structural invariants.
    #[test]
    fn post_star_preserves_invariants(pds in arb_pds(), q0 in 0u32..3) {
        let init = PdsConfig::new(SharedState(q0), Stack::new());
        let psa = post_star(&pds, &Psa::accepting_configs(3, [&init]).unwrap());
        prop_assert!(psa.validate().is_ok());
    }
}
