//! Property-based tests of the automata substrate: determinization,
//! minimization and canonicalization preserve languages; containment
//! and equality agree with sampling; `post*`/`pre*` satisfy the
//! reachability duality; the finiteness test agrees with bounded
//! enumeration. Instances come from the in-tree deterministic
//! generator (`cuba_pds::rng`); each test sweeps a fixed seed range.
//! The language-preservation tests shrink their generator size caps
//! ([`rng::shrink`], proptest-style) when a seed fails, so the panic
//! names the smallest NFA shape that reproduces the bug.

use cuba_automata::{
    bounded_reach, intersect, is_language_finite, language_equal, language_subset, post_star,
    pre_star, CanonicalDfa, Dfa, Finiteness, Label, Nfa, Psa, StateId,
};
use cuba_pds::rng::{self, SplitMix64};
use cuba_pds::{Pds, PdsBuilder, PdsConfig, SharedState, Stack, StackSym};

/// Default NFA generator size caps: up to `1 + MAX_EXTRA_STATES`
/// states and up to `MAX_TRANSITIONS` symbol transitions.
const MAX_EXTRA_STATES: usize = 5;
const MAX_TRANSITIONS: usize = 16;

/// A random NFA over symbols 0..3, sized by the given caps.
fn gen_nfa_sized(rng: &mut SplitMix64, max_extra_states: usize, max_transitions: usize) -> Nfa {
    let n = if max_extra_states == 0 {
        1
    } else {
        1 + rng.gen_u32(max_extra_states as u32)
    };
    let mut nfa = Nfa::with_states(n);
    for _ in 0..1 + rng.gen_usize(2) {
        nfa.set_initial(StateId(rng.gen_u32(n)));
    }
    for _ in 0..1 + rng.gen_usize(2) {
        nfa.set_final(StateId(rng.gen_u32(n)));
    }
    if max_transitions > 0 {
        for _ in 0..rng.gen_usize(max_transitions) {
            nfa.add_transition(
                StateId(rng.gen_u32(n)),
                Label::Sym(rng.gen_u32(4)),
                StateId(rng.gen_u32(n)),
            );
        }
        for _ in 0..rng.gen_usize(3) {
            nfa.add_transition(StateId(rng.gen_u32(n)), Label::Eps, StateId(rng.gen_u32(n)));
        }
    }
    nfa
}

/// A random NFA at the default size caps.
fn gen_nfa(rng: &mut SplitMix64) -> Nfa {
    gen_nfa_sized(rng, MAX_EXTRA_STATES, MAX_TRANSITIONS)
}

/// Sweeps `holds(seed, max_extra_states, max_transitions)` over the
/// seed range at the full caps; on the first failing seed, shrinks the
/// caps while the property still fails and panics naming the minimal
/// reproduction.
fn check_nfa(name: &str, cases: u64, holds: impl Fn(u64, usize, usize) -> bool) {
    for seed in 0..cases {
        if holds(seed, MAX_EXTRA_STATES, MAX_TRANSITIONS) {
            continue;
        }
        let (states, transitions) = rng::shrink(
            (MAX_EXTRA_STATES, MAX_TRANSITIONS),
            |&(s, t)| {
                let mut next: Vec<(usize, usize)> =
                    rng::shrink_usize(s).into_iter().map(|s2| (s2, t)).collect();
                next.extend(rng::shrink_usize(t).into_iter().map(|t2| (s, t2)));
                next
            },
            |&(s, t)| !holds(seed, s, t),
        );
        panic!(
            "{name}: seed {seed} fails; shrunk to caps of {} state(s), \
             {transitions} transition(s)",
            states + 1
        );
    }
}

/// All words over {0..3} up to length 4 — a complete probe set for the
/// small automata above (not exhaustive for equality, but sampling
/// plus the algebraic checks below gives strong coverage).
fn probe_words() -> Vec<Vec<u32>> {
    let mut words = vec![vec![]];
    let mut out = words.clone();
    for _ in 0..4 {
        let mut next = Vec::new();
        for w in &words {
            for sym in 0..4u32 {
                let mut w2 = w.clone();
                w2.push(sym);
                next.push(w2);
            }
        }
        out.extend(next.iter().cloned());
        words = next;
    }
    out
}

const NFA_CASES: u64 = 64;

#[test]
fn determinization_preserves_language() {
    check_nfa("determinize preserves language", NFA_CASES, |seed, s, t| {
        let nfa = gen_nfa_sized(&mut SplitMix64::new(seed), s, t);
        let dfa = Dfa::determinize(&nfa);
        probe_words()
            .iter()
            .all(|w| dfa.accepts(w) == nfa.accepts(w))
    });
}

#[test]
fn minimization_preserves_language() {
    check_nfa("minimize preserves language", NFA_CASES, |seed, s, t| {
        let nfa = gen_nfa_sized(&mut SplitMix64::new(seed), s, t);
        let dfa = Dfa::determinize(&nfa);
        let min = cuba_automata::minimize(&dfa);
        min.num_states() <= dfa.num_states().max(1)
            && probe_words()
                .iter()
                .all(|w| min.accepts(w) == dfa.accepts(w))
    });
}

#[test]
fn canonicalization_is_language_identity() {
    for seed in 0..NFA_CASES {
        let mut rng = SplitMix64::new(seed);
        let a = gen_nfa(&mut rng);
        let b = gen_nfa(&mut rng);
        let ca = CanonicalDfa::from_nfa(&a);
        let cb = CanonicalDfa::from_nfa(&b);
        let equal_by_canon = ca == cb;
        let equal_by_check = language_equal(&a, &b);
        assert_eq!(equal_by_canon, equal_by_check, "seed {seed}");
        // And canonicalization itself preserves the language.
        for w in probe_words().into_iter().take(80) {
            assert_eq!(ca.accepts(&w), a.accepts(&w), "seed {seed}, word {w:?}");
        }
    }
}

#[test]
fn canonicalization_is_idempotent() {
    for seed in 0..NFA_CASES {
        let a = gen_nfa(&mut SplitMix64::new(seed));
        let c1 = CanonicalDfa::from_nfa(&a);
        let c2 = CanonicalDfa::from_dfa(&c1.to_dfa());
        assert_eq!(c1, c2, "seed {seed}");
    }
}

#[test]
fn subset_agrees_with_sampling() {
    for seed in 0..NFA_CASES {
        let mut rng = SplitMix64::new(seed);
        let a = gen_nfa(&mut rng);
        let b = gen_nfa(&mut rng);
        if language_subset(&a, &b) {
            for w in probe_words() {
                if a.accepts(&w) {
                    assert!(
                        b.accepts(&w),
                        "seed {seed}: claimed subset but {w:?} ∈ A \\ B"
                    );
                }
            }
        }
        // No converse check: a separating word may be longer than the
        // probe set covers.
    }
}

#[test]
fn intersection_is_conjunction() {
    check_nfa("intersection is conjunction", NFA_CASES, |seed, s, t| {
        let mut rng = SplitMix64::new(seed);
        let a = gen_nfa_sized(&mut rng, s, t);
        let b = gen_nfa_sized(&mut rng, s, t);
        let i = intersect(&a, &b);
        probe_words()
            .iter()
            .all(|w| i.accepts(w) == (a.accepts(w) && b.accepts(w)))
    });
}

#[test]
fn finite_languages_have_bounded_words() {
    for seed in 0..NFA_CASES {
        let nfa = gen_nfa(&mut SplitMix64::new(seed));
        if is_language_finite(&nfa) == Finiteness::Finite {
            // If the test says finite, sampled words must stay below
            // the theoretical length bound (#states).
            let words = nfa.sample_words(200);
            for w in &words {
                assert!(
                    w.len() < nfa.num_states() as usize + 1,
                    "seed {seed}: finite language contains word longer than the state count: {w:?}"
                );
            }
        } else {
            // Infinite language: pumping must show up in samples.
            let words = nfa.sample_words(200);
            assert!(
                words.iter().any(|w| w.len() >= nfa.num_states() as usize),
                "seed {seed}: claimed infinite but all samples are short"
            );
        }
    }
}

/// A small random PDS over 3 shared states and 3 symbols.
fn gen_pds(rng: &mut SplitMix64) -> Pds {
    let n = 1 + rng.gen_usize(7);
    let mut b = PdsBuilder::new(3, 3);
    for _ in 0..n {
        let q = SharedState(rng.gen_u32(3));
        let sym = StackSym(rng.gen_u32(3));
        let q2 = SharedState(rng.gen_u32(3));
        let s1 = StackSym(rng.gen_u32(3));
        let s2 = StackSym(rng.gen_u32(3));
        let _ = match rng.gen_u32(4) {
            0 => b.pop(q, sym, q2),
            1 => b.overwrite(q, sym, q2, s1),
            2 => b.push(q, sym, q2, s1, s2),
            _ => b.from_empty(q, q2, Some(s1)),
        };
    }
    b.build().expect("all ids in range")
}

const PDS_CASES: u64 = 48;

/// Soundness + completeness of post* against explicit search.
#[test]
fn post_star_agrees_with_bounded_search() {
    for seed in 0..PDS_CASES {
        let mut rng = SplitMix64::new(seed);
        let pds = gen_pds(&mut rng);
        let q0 = rng.gen_u32(3);
        let sym0 = rng.gen_u32(3);
        let init = PdsConfig::new(SharedState(q0), Stack::from_top_down([StackSym(sym0)]));
        let psa = post_star(&pds, &Psa::accepting_configs(3, [&init]).unwrap());
        // Everything explicitly reachable is accepted.
        let reached = bounded_reach(&pds, &init, 6);
        for c in &reached {
            assert!(psa.accepts_config(c), "seed {seed}: post* misses {c}");
        }
        // Everything accepted with a short stack is explicitly
        // reachable (deep search bound covers stacks ≤ 3 symbols).
        let deep: std::collections::HashSet<_> =
            bounded_reach(&pds, &init, 14).into_iter().collect();
        for q in 0..3u32 {
            let lang = psa.stack_language(SharedState(q));
            for word in lang.sample_words(8) {
                if word.len() <= 3 {
                    let c = PdsConfig::new(
                        SharedState(q),
                        Stack::from_top_down(word.iter().map(|&x| StackSym(x))),
                    );
                    assert!(deep.contains(&c), "seed {seed}: post* invents {c}");
                }
            }
        }
    }
}

/// The duality s' ∈ post*(s) ⟺ s ∈ pre*(s') on sampled pairs.
#[test]
fn post_pre_duality() {
    for seed in 0..PDS_CASES {
        let mut rng = SplitMix64::new(seed);
        let pds = gen_pds(&mut rng);
        let q0 = rng.gen_u32(3);
        let sym0 = rng.gen_u32(3);
        let start = PdsConfig::new(SharedState(q0), Stack::from_top_down([StackSym(sym0)]));
        for target in bounded_reach(&pds, &start, 4).into_iter().take(6) {
            let pre = pre_star(&pds, &Psa::accepting_configs(3, [&target]).unwrap());
            assert!(
                pre.accepts_config(&start),
                "seed {seed}: {target} reachable from {start} but pre* disagrees"
            );
        }
    }
}

/// post* output always satisfies the PSA structural invariants.
#[test]
fn post_star_preserves_invariants() {
    for seed in 0..PDS_CASES {
        let mut rng = SplitMix64::new(seed);
        let pds = gen_pds(&mut rng);
        let q0 = rng.gen_u32(3);
        let init = PdsConfig::new(SharedState(q0), Stack::new());
        let psa = post_star(&pds, &Psa::accepting_configs(3, [&init]).unwrap());
        assert!(psa.validate().is_ok(), "seed {seed}");
    }
}
