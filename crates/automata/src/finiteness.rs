use crate::{Label, Nfa};

/// Verdict of the language-finiteness test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Finiteness {
    /// The accepted language is finite.
    Finite,
    /// The accepted language is infinite: some useful cycle consumes
    /// input.
    Infinite,
}

impl std::fmt::Display for Finiteness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Finiteness::Finite => write!(f, "finite"),
            Finiteness::Infinite => write!(f, "infinite"),
        }
    }
}

/// Decides whether `L(nfa)` is finite.
///
/// The language of a finite automaton is finite exactly if, after
/// trimming to useful states (reachable and co-reachable), no cycle
/// carries a non-ε label. The paper uses this on pushdown store
/// automata to decide finite context reachability (§5, Fig. 4:
/// "absence of loops in the graph structure of `Ai`"); ε-only cycles
/// contribute no words and are tolerated.
pub fn is_language_finite(nfa: &Nfa) -> Finiteness {
    let (trimmed, _) = nfa.trim();
    // Tarjan SCC, iterative.
    let n = trimmed.num_states() as usize;
    if n == 0 {
        return Finiteness::Finite;
    }
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut comp = vec![usize::MAX; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut next_comp = 0usize;

    #[derive(Clone)]
    struct Frame {
        v: usize,
        succs: Vec<usize>,
        next_succ: usize,
    }

    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        let mut call: Vec<Frame> = vec![Frame {
            v: start,
            succs: trimmed
                .transitions_from(crate::StateId(start as u32))
                .map(|(_, d)| d.0 as usize)
                .collect(),
            next_succ: 0,
        }];
        index[start] = next_index;
        low[start] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start] = true;

        while let Some(frame) = call.last_mut() {
            let v = frame.v;
            if frame.next_succ < frame.succs.len() {
                let w = frame.succs[frame.next_succ];
                frame.next_succ += 1;
                if index[w] == usize::MAX {
                    index[w] = next_index;
                    low[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    call.push(Frame {
                        v: w,
                        succs: trimmed
                            .transitions_from(crate::StateId(w as u32))
                            .map(|(_, d)| d.0 as usize)
                            .collect(),
                        next_succ: 0,
                    });
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                if low[v] == index[v] {
                    // v is an SCC root.
                    loop {
                        let w = stack.pop().expect("SCC stack underflow");
                        on_stack[w] = false;
                        comp[w] = next_comp;
                        if w == v {
                            break;
                        }
                    }
                    next_comp += 1;
                }
                let done = call.pop().expect("frame exists");
                if let Some(parent) = call.last_mut() {
                    low[parent.v] = low[parent.v].min(low[done.v]);
                }
            }
        }
    }

    // A word-producing cycle exists iff some non-ε edge stays inside
    // one SCC and that SCC is cyclic (≥2 states, or a self-loop).
    for (src, label, dst) in trimmed.transitions() {
        let (s, d) = (src.0 as usize, dst.0 as usize);
        if comp[s] != comp[d] {
            continue;
        }
        if label == Label::Eps && s != d {
            // ε-edge inside an SCC: harmless unless the SCC also has a
            // non-ε edge, which this loop will find separately.
            continue;
        }
        if label != Label::Eps {
            // Same SCC: either a self-loop, or part of a real cycle.
            if s == d || scc_size(&comp, comp[s]) > 1 {
                return Finiteness::Infinite;
            }
        }
    }
    Finiteness::Finite
}

fn scc_size(comp: &[usize], c: usize) -> usize {
    comp.iter().filter(|&&x| x == c).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StateId;

    #[test]
    fn finite_word_set() {
        let mut n = Nfa::with_states(3);
        n.set_initial(StateId(0));
        n.set_final(StateId(2));
        n.add_transition(StateId(0), Label::Sym(1), StateId(1));
        n.add_transition(StateId(1), Label::Sym(2), StateId(2));
        assert_eq!(is_language_finite(&n), Finiteness::Finite);
    }

    #[test]
    fn self_loop_is_infinite() {
        let mut n = Nfa::with_states(2);
        n.set_initial(StateId(0));
        n.set_final(StateId(1));
        n.add_transition(StateId(0), Label::Sym(1), StateId(0));
        n.add_transition(StateId(0), Label::Sym(2), StateId(1));
        assert_eq!(is_language_finite(&n), Finiteness::Infinite);
    }

    #[test]
    fn useless_loop_does_not_count() {
        let mut n = Nfa::with_states(3);
        n.set_initial(StateId(0));
        n.set_final(StateId(1));
        n.add_transition(StateId(0), Label::Sym(1), StateId(1));
        // Cycle on a state that cannot reach the accepting state:
        n.add_transition(StateId(0), Label::Sym(2), StateId(2));
        n.add_transition(StateId(2), Label::Sym(2), StateId(2));
        assert_eq!(is_language_finite(&n), Finiteness::Finite);
    }

    #[test]
    fn unreachable_loop_does_not_count() {
        let mut n = Nfa::with_states(3);
        n.set_initial(StateId(0));
        n.set_final(StateId(1));
        n.add_transition(StateId(0), Label::Sym(1), StateId(1));
        n.add_transition(StateId(2), Label::Sym(2), StateId(2));
        n.add_transition(StateId(2), Label::Sym(1), StateId(1));
        assert_eq!(is_language_finite(&n), Finiteness::Finite);
    }

    #[test]
    fn eps_only_cycle_is_finite() {
        let mut n = Nfa::with_states(3);
        n.set_initial(StateId(0));
        n.set_final(StateId(2));
        n.add_transition(StateId(0), Label::Eps, StateId(1));
        n.add_transition(StateId(1), Label::Eps, StateId(0));
        n.add_transition(StateId(1), Label::Sym(5), StateId(2));
        assert_eq!(is_language_finite(&n), Finiteness::Finite);
    }

    #[test]
    fn mixed_cycle_is_infinite() {
        // Cycle 0 -ε-> 1 -a-> 0 produces a^k prefixes: infinite.
        let mut n = Nfa::with_states(3);
        n.set_initial(StateId(0));
        n.set_final(StateId(2));
        n.add_transition(StateId(0), Label::Eps, StateId(1));
        n.add_transition(StateId(1), Label::Sym(1), StateId(0));
        n.add_transition(StateId(0), Label::Sym(2), StateId(2));
        assert_eq!(is_language_finite(&n), Finiteness::Infinite);
    }

    #[test]
    fn two_state_cycle_is_infinite() {
        let mut n = Nfa::with_states(3);
        n.set_initial(StateId(0));
        n.set_final(StateId(2));
        n.add_transition(StateId(0), Label::Sym(1), StateId(1));
        n.add_transition(StateId(1), Label::Sym(2), StateId(0));
        n.add_transition(StateId(0), Label::Sym(3), StateId(2));
        assert_eq!(is_language_finite(&n), Finiteness::Infinite);
    }

    #[test]
    fn empty_automaton_is_finite() {
        assert_eq!(is_language_finite(&Nfa::new()), Finiteness::Finite);
        assert_eq!(is_language_finite(&Nfa::with_states(4)), Finiteness::Finite);
    }

    #[test]
    fn display() {
        assert_eq!(Finiteness::Finite.to_string(), "finite");
        assert_eq!(Finiteness::Infinite.to_string(), "infinite");
    }
}
