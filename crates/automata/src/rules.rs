//! Interned, CSR-style rule indices for the saturation procedures.
//!
//! A [`Pds`](cuba_pds::Pds) already interns shared states and stack
//! symbols into dense `u32` ranges (`0..num_shared`,
//! `0..alphabet_size`), so the rule index a saturation needs — "which
//! actions have left-hand side `(q, γ)`?" — fits a flat
//! compressed-sparse-row layout: one offset table indexed by
//! `q * |Σ| + γ` plus one packed row array of action ids. Building it
//! is a two-pass counting sort over the action list, and a lookup is
//! two array reads instead of a hash + probe.
//!
//! [`RuleTable`] is built **once per system** and shared by every
//! saturation over that PDS (the symbolic engine caches one per
//! thread), where the previous `HashMap<(u32, u32), Vec<usize>>` was
//! rebuilt on every `post*` call — once per context step.

use cuba_pds::Pds;

/// The flat CSR rule index of one PDS: action ids grouped by
/// left-hand side `(q, γ)`, plus the empty-stack actions grouped by
/// `q`. Within a cell, ids keep the PDS insertion order, so a
/// saturation fires rules in exactly the order the old hash index
/// did.
#[derive(Debug, Clone)]
pub struct RuleTable {
    num_controls: u32,
    alphabet_size: u32,
    /// `offsets[q * alphabet_size + γ] .. offsets[.. + 1]` indexes
    /// `rows`; length `num_controls * alphabet_size + 1`.
    offsets: Vec<u32>,
    /// Packed action ids for symbol-guarded rules.
    rows: Vec<u32>,
    /// As `offsets`, for empty-stack rules keyed by `q` alone; length
    /// `num_controls + 1`.
    empty_offsets: Vec<u32>,
    /// Packed action ids for empty-stack rules.
    empty_rows: Vec<u32>,
}

impl RuleTable {
    /// Builds the index from `pds` (two passes over the action list).
    pub fn new(pds: &Pds) -> Self {
        let nq = pds.num_shared() as usize;
        let na = pds.alphabet_size() as usize;
        let mut offsets = vec![0u32; nq * na + 1];
        let mut empty_offsets = vec![0u32; nq + 1];
        for a in pds.actions() {
            match a.top {
                Some(sym) => offsets[a.q.0 as usize * na + sym.0 as usize + 1] += 1,
                None => empty_offsets[a.q.0 as usize + 1] += 1,
            }
        }
        for i in 1..offsets.len() {
            offsets[i] += offsets[i - 1];
        }
        for i in 1..empty_offsets.len() {
            empty_offsets[i] += empty_offsets[i - 1];
        }
        let mut rows = vec![0u32; *offsets.last().unwrap() as usize];
        let mut empty_rows = vec![0u32; *empty_offsets.last().unwrap() as usize];
        // Per-cell write cursors; consumed left to right so each
        // cell's ids stay in insertion order.
        let mut next = offsets.clone();
        let mut empty_next = empty_offsets.clone();
        for (i, a) in pds.actions().iter().enumerate() {
            match a.top {
                Some(sym) => {
                    let cell = a.q.0 as usize * na + sym.0 as usize;
                    rows[next[cell] as usize] = i as u32;
                    next[cell] += 1;
                }
                None => {
                    let cell = a.q.0 as usize;
                    empty_rows[empty_next[cell] as usize] = i as u32;
                    empty_next[cell] += 1;
                }
            }
        }
        RuleTable {
            num_controls: nq as u32,
            alphabet_size: na as u32,
            offsets,
            rows,
            empty_offsets,
            empty_rows,
        }
    }

    /// Number of interned control states.
    pub fn num_controls(&self) -> u32 {
        self.num_controls
    }

    /// Size of the interned stack alphabet.
    pub fn alphabet_size(&self) -> u32 {
        self.alphabet_size
    }

    /// Action ids with left-hand side `(q, γ)`, in insertion order.
    /// Out-of-range keys yield the empty slice (matching the old hash
    /// lookup's `None`).
    #[inline]
    pub fn rules(&self, q: u32, gamma: u32) -> &[u32] {
        if q >= self.num_controls || gamma >= self.alphabet_size {
            return &[];
        }
        let cell = q as usize * self.alphabet_size as usize + gamma as usize;
        &self.rows[self.offsets[cell] as usize..self.offsets[cell + 1] as usize]
    }

    /// Empty-stack action ids with left-hand side `(q, ε)`.
    #[inline]
    pub fn empty_rules(&self, q: u32) -> &[u32] {
        if q >= self.num_controls {
            return &[];
        }
        let cell = q as usize;
        &self.empty_rows[self.empty_offsets[cell] as usize..self.empty_offsets[cell + 1] as usize]
    }

    /// Total number of indexed actions (both kinds).
    pub fn num_rules(&self) -> usize {
        self.rows.len() + self.empty_rows.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuba_pds::{PdsBuilder, SharedState, StackSym};

    fn q(n: u32) -> SharedState {
        SharedState(n)
    }
    fn s(n: u32) -> StackSym {
        StackSym(n)
    }

    #[test]
    fn table_matches_hash_index_semantics() {
        let mut b = PdsBuilder::new(3, 3);
        b.push(q(0), s(0), q(1), s(1), s(0)).unwrap();
        b.push(q(1), s(1), q(2), s(2), s(0)).unwrap();
        b.overwrite(q(2), s(2), q(0), s(1)).unwrap();
        b.pop(q(0), s(1), q(0)).unwrap();
        b.overwrite(q(0), s(0), q(2), s(2)).unwrap();
        let pds = b.build().unwrap();
        let table = RuleTable::new(&pds);

        // Each cell lists exactly the matching actions, in order.
        assert_eq!(table.rules(0, 0), &[0, 4]);
        assert_eq!(table.rules(1, 1), &[1]);
        assert_eq!(table.rules(2, 2), &[2]);
        assert_eq!(table.rules(0, 1), &[3]);
        assert!(table.rules(1, 0).is_empty());
        assert_eq!(table.num_rules(), pds.actions().len());
        // Out-of-range keys are empty, not a panic.
        assert!(table.rules(99, 0).is_empty());
        assert!(table.rules(0, 99).is_empty());
        assert!(table.empty_rules(99).is_empty());
    }

    #[test]
    fn empty_stack_rules_key_by_control_alone() {
        let mut b = PdsBuilder::new(3, 2);
        b.from_empty(q(0), q(1), Some(s(0))).unwrap();
        b.from_empty(q(0), q(2), None).unwrap();
        b.overwrite(q(1), s(0), q(1), s(1)).unwrap();
        let pds = b.build().unwrap();
        let table = RuleTable::new(&pds);
        assert_eq!(table.empty_rules(0), &[0, 1]);
        assert!(table.empty_rules(1).is_empty());
        assert_eq!(table.rules(1, 0), &[2]);
        assert_eq!(table.num_rules(), 3);
    }
}
