use std::collections::BTreeSet;

use cuba_pds::{PdsConfig, SharedState};

use crate::{AutomataError, Label, Nfa, StateId};

/// A *pushdown store automaton* (paper App. C): a finite automaton
/// representing a regular set of PDS states `⟨q|w⟩`.
///
/// Automaton states `0..num_controls` are the control states (one per
/// shared state of the PDS); state `num_controls` is the unique
/// accepting sink `s_F`. The automaton accepts `⟨q|w⟩` if reading the
/// stack word `w` (top first) from state `q` can reach `s_F`.
///
/// Invariants (checked by [`validate`](Psa::validate), maintained by
/// all constructors and by `post*`):
///
/// * control states have no incoming transitions,
/// * the sink `s_F` has no outgoing transitions,
/// * `s_F` is the only accepting state (`F ∩ Q = ∅`, as in the paper).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Psa {
    pub(crate) nfa: Nfa,
    pub(crate) num_controls: u32,
}

impl Psa {
    /// A PSA over `num_controls` control states accepting nothing.
    pub fn empty(num_controls: u32) -> Self {
        let mut nfa = Nfa::with_states(num_controls + 1);
        for q in 0..num_controls {
            nfa.set_initial(StateId(q));
        }
        nfa.set_final(StateId(num_controls));
        Psa { nfa, num_controls }
    }

    /// A PSA accepting exactly the given configurations.
    ///
    /// # Errors
    ///
    /// Returns an error if a configuration's shared state is out of
    /// range.
    pub fn accepting_configs<'a, I>(num_controls: u32, configs: I) -> Result<Self, AutomataError>
    where
        I: IntoIterator<Item = &'a PdsConfig>,
    {
        let mut psa = Psa::empty(num_controls);
        for c in configs {
            psa.add_config(c)?;
        }
        Ok(psa)
    }

    /// A PSA accepting `Q × Σ≤1` for the given symbol set: every
    /// `⟨q|σ⟩` and every `⟨q|ε⟩`. This is the initial set of the FCR
    /// check (paper §5, Fig. 4).
    pub fn all_stacks_leq1<I: IntoIterator<Item = u32>>(num_controls: u32, symbols: I) -> Self {
        let mut psa = Psa::empty(num_controls);
        let sink = psa.sink();
        let symbols: Vec<u32> = symbols.into_iter().collect();
        for q in 0..num_controls {
            psa.nfa.add_transition(StateId(q), Label::Eps, sink);
            for &s in &symbols {
                psa.nfa.add_transition(StateId(q), Label::Sym(s), sink);
            }
        }
        psa
    }

    /// A PSA accepting `{⟨q|w⟩ : w ∈ L(stack_nfa)}`: glues a
    /// single-initial-state NFA over stack symbols onto control `q`.
    /// Used by the symbolic engine to re-enter saturation from a
    /// per-thread stack language.
    ///
    /// # Errors
    ///
    /// Returns an error if `q` is not a control state.
    pub fn from_stack_nfa(
        num_controls: u32,
        q: SharedState,
        stack_nfa: &Nfa,
    ) -> Result<Self, AutomataError> {
        if q.0 >= num_controls {
            return Err(AutomataError::NotAControlState {
                state: q.0,
                num_controls,
            });
        }
        let mut psa = Psa::empty(num_controls);
        let sink = psa.sink();
        // Copy the stack NFA's states.
        let offset = psa.nfa.num_states();
        for _ in 0..stack_nfa.num_states() {
            psa.nfa.add_state();
        }
        let map = |s: StateId| StateId(s.0 + offset);
        let initials: Vec<StateId> = stack_nfa.initial_states().collect();
        // Acceptance is rerouted to the sink: every edge into an
        // accepting state is mirrored to the sink, and accepting
        // initial states accept ε via a control ε-edge.
        for (src, label, dst) in stack_nfa.transitions() {
            psa.nfa.add_transition(map(src), label, map(dst));
            if stack_nfa.is_final(dst) {
                psa.nfa.add_transition(map(src), label, sink);
            }
        }
        for &init in &initials {
            // Mirror the initial state's outgoing edges onto the control.
            for (label, dst) in stack_nfa.transitions_from(init) {
                psa.nfa.add_transition(StateId(q.0), label, map(dst));
                if stack_nfa.is_final(dst) {
                    psa.nfa.add_transition(StateId(q.0), label, sink);
                }
            }
            if stack_nfa.is_final(init) {
                psa.nfa.add_transition(StateId(q.0), Label::Eps, sink);
            }
        }
        Ok(psa)
    }

    /// Number of control states.
    pub fn num_controls(&self) -> u32 {
        self.num_controls
    }

    /// The accepting sink `s_F`.
    pub fn sink(&self) -> StateId {
        StateId(self.num_controls)
    }

    /// Whether `s` is a control state.
    pub fn is_control(&self, s: StateId) -> bool {
        s.0 < self.num_controls
    }

    /// A read-only view of the underlying automaton.
    pub fn as_nfa(&self) -> &Nfa {
        &self.nfa
    }

    /// Adds acceptance of a single configuration.
    ///
    /// # Errors
    ///
    /// Returns an error if the shared state is out of range.
    pub fn add_config(&mut self, config: &PdsConfig) -> Result<(), AutomataError> {
        if config.q.0 >= self.num_controls {
            return Err(AutomataError::NotAControlState {
                state: config.q.0,
                num_controls: self.num_controls,
            });
        }
        let sink = self.sink();
        let word: Vec<u32> = config.stack.iter_top_down().map(|s| s.0).collect();
        if word.is_empty() {
            self.nfa
                .add_transition(StateId(config.q.0), Label::Eps, sink);
            return Ok(());
        }
        let mut cur = StateId(config.q.0);
        for (i, &sym) in word.iter().enumerate() {
            let next = if i + 1 == word.len() {
                sink
            } else {
                self.nfa.add_state()
            };
            self.nfa.add_transition(cur, Label::Sym(sym), next);
            cur = next;
        }
        Ok(())
    }

    /// Whether the PSA accepts `⟨q|w⟩` with `w` given top-first.
    pub fn accepts(&self, q: SharedState, word: &[u32]) -> bool {
        if q.0 >= self.num_controls {
            return false;
        }
        self.nfa.accepts_from(StateId(q.0), word)
    }

    /// Whether the PSA accepts the configuration.
    pub fn accepts_config(&self, config: &PdsConfig) -> bool {
        let word: Vec<u32> = config.stack.iter_top_down().map(|s| s.0).collect();
        self.accepts(config.q, &word)
    }

    /// The stack language at control `q`: an NFA over stack symbols
    /// accepting `{w : ⟨q|w⟩ ∈ L(self)}` with a single fresh initial
    /// state (control states are stripped, which is sound because they
    /// have no incoming transitions).
    pub fn stack_language(&self, q: SharedState) -> Nfa {
        let mut view = self.nfa.clone();
        // Re-point the initial set at q only.
        let mut out = Nfa::with_states(view.num_states() + 1);
        let fresh = StateId(view.num_states());
        for (src, label, dst) in view.transitions() {
            out.add_transition(src, label, dst);
            if src.0 == q.0 {
                out.add_transition(fresh, label, dst);
            }
        }
        for f in view.final_states() {
            out.set_final(f);
        }
        out.set_initial(fresh);
        // Drop other controls' initialness implicitly (only `fresh` is
        // initial); trim unreachable parts.
        view = out;
        let (trimmed, _) = view.trim();
        trimmed
    }

    /// Shared states `q` whose stack language is non-empty, i.e. that
    /// appear in some accepted configuration.
    pub fn nonempty_controls(&self) -> Vec<SharedState> {
        let coreach = self.nfa.coreachable_states();
        (0..self.num_controls)
            .filter(|q| {
                // q is useful if some transition from q leads into the
                // co-reachable region, or q ε-accepts.
                self.nfa
                    .transitions_from(StateId(*q))
                    .any(|(_, dst)| coreach.contains(&dst.0))
            })
            .map(SharedState)
            .collect()
    }

    /// The per-control visible tops: `T(A)` of the paper's Alg. 4 —
    /// for control `q`, the set of top symbols of accepted stacks
    /// (`None` encodes the accepted empty stack).
    pub fn visible_tops(&self, q: SharedState) -> Vec<Option<u32>> {
        let coreach = self.nfa.coreachable_states();
        let mut out: BTreeSet<Option<u32>> = BTreeSet::new();
        // Follow ε-closure from q, collecting first symbols into the
        // co-reachable region; ε into a final state means ⟨q|ε⟩ ∈ L.
        let mut start = BTreeSet::new();
        start.insert(q.0);
        let closure = self.nfa.eps_closure(&start);
        for &s in &closure {
            if self.nfa.is_final(StateId(s)) {
                out.insert(None);
            }
            for (label, dst) in self.nfa.transitions_from(StateId(s)) {
                if let Label::Sym(sym) = label {
                    if coreach.contains(&dst.0) {
                        out.insert(Some(sym));
                    }
                }
            }
        }
        out.into_iter().collect()
    }

    /// Checks the PSA invariants; used by tests and debug assertions.
    ///
    /// # Errors
    ///
    /// Returns which invariant is broken.
    pub fn validate(&self) -> Result<(), AutomataError> {
        for (src, _, dst) in self.nfa.transitions() {
            if self.is_control(dst) {
                return Err(AutomataError::BrokenPsaInvariant(
                    "control state has an incoming transition",
                ));
            }
            if src == self.sink() {
                return Err(AutomataError::BrokenPsaInvariant(
                    "final sink has an outgoing transition",
                ));
            }
        }
        let finals: Vec<StateId> = self.nfa.final_states().collect();
        if finals != vec![self.sink()] {
            return Err(AutomataError::BrokenPsaInvariant(
                "accepting states must be exactly the sink",
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuba_pds::{Stack, StackSym};

    fn q(n: u32) -> SharedState {
        SharedState(n)
    }
    fn s(n: u32) -> StackSym {
        StackSym(n)
    }

    #[test]
    fn empty_psa_accepts_nothing() {
        let psa = Psa::empty(3);
        psa.validate().unwrap();
        assert!(!psa.accepts(q(0), &[]));
        assert!(!psa.accepts(q(1), &[0]));
    }

    #[test]
    fn accepting_configs_exact() {
        let c1 = PdsConfig::new(q(0), Stack::from_top_down([s(1), s(2)]));
        let c2 = PdsConfig::new(q(2), Stack::new());
        let psa = Psa::accepting_configs(3, [&c1, &c2]).unwrap();
        psa.validate().unwrap();
        assert!(psa.accepts_config(&c1));
        assert!(psa.accepts_config(&c2));
        assert!(!psa.accepts(q(0), &[1]));
        assert!(!psa.accepts(q(0), &[]));
        assert!(!psa.accepts(q(1), &[1, 2]));
        assert!(!psa.accepts(q(2), &[1, 2]));
    }

    #[test]
    fn out_of_range_control_rejected() {
        let c = PdsConfig::new(q(5), Stack::new());
        assert!(Psa::accepting_configs(3, [&c]).is_err());
        let psa = Psa::empty(3);
        assert!(!psa.accepts(q(9), &[]));
    }

    #[test]
    fn all_stacks_leq1() {
        let psa = Psa::all_stacks_leq1(2, [4, 5]);
        psa.validate().unwrap();
        for qq in 0..2 {
            assert!(psa.accepts(q(qq), &[]));
            assert!(psa.accepts(q(qq), &[4]));
            assert!(psa.accepts(q(qq), &[5]));
            assert!(!psa.accepts(q(qq), &[4, 4]));
            assert!(!psa.accepts(q(qq), &[6]));
        }
    }

    #[test]
    fn stack_language_extraction() {
        let c1 = PdsConfig::new(q(0), Stack::from_top_down([s(1), s(2)]));
        let c2 = PdsConfig::new(q(1), Stack::from_top_down([s(3)]));
        let psa = Psa::accepting_configs(2, [&c1, &c2]).unwrap();
        let l0 = psa.stack_language(q(0));
        assert!(l0.accepts(&[1, 2]));
        assert!(!l0.accepts(&[3]));
        let l1 = psa.stack_language(q(1));
        assert!(l1.accepts(&[3]));
        assert!(!l1.accepts(&[1, 2]));
    }

    #[test]
    fn from_stack_nfa_roundtrip() {
        // Stack language: 4(6)* ∪ {ε}
        let mut n = Nfa::with_states(2);
        n.set_initial(StateId(0));
        n.set_final(StateId(0));
        n.set_final(StateId(1));
        n.add_transition(StateId(0), Label::Sym(4), StateId(1));
        n.add_transition(StateId(1), Label::Sym(6), StateId(1));
        let psa = Psa::from_stack_nfa(3, q(1), &n).unwrap();
        psa.validate().unwrap();
        assert!(psa.accepts(q(1), &[]));
        assert!(psa.accepts(q(1), &[4]));
        assert!(psa.accepts(q(1), &[4, 6, 6]));
        assert!(!psa.accepts(q(1), &[6]));
        assert!(!psa.accepts(q(0), &[4]));
        // And back out:
        let back = psa.stack_language(q(1));
        assert!(back.accepts(&[]));
        assert!(back.accepts(&[4, 6]));
        assert!(!back.accepts(&[6]));
    }

    #[test]
    fn visible_tops_reports_eps_and_symbols() {
        let c1 = PdsConfig::new(q(0), Stack::from_top_down([s(1), s(2)]));
        let c2 = PdsConfig::new(q(0), Stack::new());
        let c3 = PdsConfig::new(q(0), Stack::from_top_down([s(9)]));
        let psa = Psa::accepting_configs(1, [&c1, &c2, &c3]).unwrap();
        assert_eq!(psa.visible_tops(q(0)), vec![None, Some(1), Some(9)]);
    }

    #[test]
    fn nonempty_controls() {
        let c1 = PdsConfig::new(q(1), Stack::from_top_down([s(1)]));
        let psa = Psa::accepting_configs(3, [&c1]).unwrap();
        assert_eq!(psa.nonempty_controls(), vec![q(1)]);
    }

    #[test]
    fn validate_catches_broken_invariants() {
        let mut psa = Psa::empty(2);
        let sink = psa.sink();
        psa.nfa.add_transition(sink, Label::Sym(0), StateId(3 - 1));
        assert!(psa.validate().is_err());
    }
}
