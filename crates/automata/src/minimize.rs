use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};

use crate::Dfa;

/// Minimizes a DFA with Hopcroft's partition-refinement algorithm.
///
/// The input may be partial; it is completed with a sink first. The
/// result is trimmed back to *useful* states (reachable and able to
/// reach an accepting state), so it is again partial: the unique dead
/// state, if any, is dropped. The minimal automaton of a language is
/// unique up to isomorphism, which
/// [`CanonicalDfa`](crate::CanonicalDfa) exploits for hashable
/// language identity.
pub fn minimize(dfa: &Dfa) -> Dfa {
    let alphabet: BTreeSet<u32> = dfa.alphabet();
    let complete = dfa.complete(&alphabet);
    let n = complete.num_states() as usize;

    // Restrict to states reachable from the start; Hopcroft assumes all
    // states matter, unreachable ones would pollute the partition.
    let mut reachable = vec![false; n];
    let mut queue = VecDeque::from([0u32]);
    reachable[0] = true;
    while let Some(s) = queue.pop_front() {
        for (_, t) in complete.transitions_from(s) {
            if !reachable[t as usize] {
                reachable[t as usize] = true;
                queue.push_back(t);
            }
        }
    }
    let states: Vec<u32> = (0..n as u32).filter(|&s| reachable[s as usize]).collect();

    // Reverse transition index: rev[sym][t] = sources.
    let mut rev: HashMap<u32, HashMap<u32, Vec<u32>>> = HashMap::new();
    for &s in &states {
        for (sym, t) in complete.transitions_from(s) {
            rev.entry(sym).or_default().entry(t).or_default().push(s);
        }
    }

    // Initial partition: accepting vs non-accepting (reachable only).
    let finals: HashSet<u32> = states
        .iter()
        .copied()
        .filter(|&s| complete.is_final(s))
        .collect();
    let nonfinals: HashSet<u32> = states
        .iter()
        .copied()
        .filter(|&s| !complete.is_final(s))
        .collect();

    let mut partition: Vec<HashSet<u32>> = Vec::new();
    if !finals.is_empty() {
        partition.push(finals.clone());
    }
    if !nonfinals.is_empty() {
        partition.push(nonfinals);
    }

    // Worklist of (block index, symbol) splitters.
    let mut work: VecDeque<(usize, u32)> = VecDeque::new();
    for (i, _) in partition.iter().enumerate() {
        for &sym in &alphabet {
            work.push_back((i, sym));
        }
    }

    while let Some((block_idx, sym)) = work.pop_front() {
        // X = states with a `sym`-transition into the splitter block.
        let splitter = partition[block_idx].clone();
        let mut x: HashSet<u32> = HashSet::new();
        if let Some(by_target) = rev.get(&sym) {
            for t in &splitter {
                if let Some(sources) = by_target.get(t) {
                    x.extend(sources.iter().copied());
                }
            }
        }
        if x.is_empty() {
            continue;
        }
        let mut i = 0;
        while i < partition.len() {
            let block = &partition[i];
            let inter: HashSet<u32> = block.intersection(&x).copied().collect();
            if inter.is_empty() || inter.len() == block.len() {
                i += 1;
                continue;
            }
            let diff: HashSet<u32> = block.difference(&x).copied().collect();
            // Replace block i by the two halves.
            partition[i] = inter;
            partition.push(diff);
            let j = partition.len() - 1;
            // Hopcroft's trick: if (i, sym') is pending, both halves go
            // on the worklist via (i, .) and (j, .); otherwise only the
            // smaller half is needed.
            for &sym2 in &alphabet {
                if work.contains(&(i, sym2)) {
                    work.push_back((j, sym2));
                } else if partition[i].len() <= partition[j].len() {
                    work.push_back((i, sym2));
                } else {
                    work.push_back((j, sym2));
                }
            }
            i += 1;
        }
    }

    // Map each old state to its block.
    let mut block_of: HashMap<u32, usize> = HashMap::new();
    for (i, block) in partition.iter().enumerate() {
        for &s in block {
            block_of.insert(s, i);
        }
    }

    // Order blocks so the start state's block is 0.
    let start_block = block_of[&0];
    let mut order: Vec<usize> = Vec::with_capacity(partition.len());
    order.push(start_block);
    for i in 0..partition.len() {
        if i != start_block {
            order.push(i);
        }
    }
    let mut new_id: HashMap<usize, u32> = HashMap::new();
    for (new, &old) in order.iter().enumerate() {
        new_id.insert(old, new as u32);
    }

    let mut delta: Vec<BTreeMap<u32, u32>> = vec![BTreeMap::new(); partition.len()];
    let mut finals_out = vec![false; partition.len()];
    for (i, block) in partition.iter().enumerate() {
        let repr = *block.iter().next().expect("blocks are non-empty");
        let ni = new_id[&i] as usize;
        finals_out[ni] = complete.is_final(repr);
        for (sym, t) in complete.transitions_from(repr) {
            delta[ni].insert(sym, new_id[&block_of[&t]]);
        }
    }
    let min = Dfa::from_parts(delta, finals_out);
    trim_dead(&min)
}

/// Drops states that cannot reach an accepting state (at most the one
/// dead sink after minimization, but handles the general case).
fn trim_dead(dfa: &Dfa) -> Dfa {
    let n = dfa.num_states() as usize;
    // Backward reachability from accepting states.
    let mut rev: Vec<Vec<u32>> = vec![Vec::new(); n];
    for s in 0..n as u32 {
        for (_, t) in dfa.transitions_from(s) {
            rev[t as usize].push(s);
        }
    }
    let mut alive = vec![false; n];
    let mut queue: VecDeque<u32> = VecDeque::new();
    for s in 0..n as u32 {
        if dfa.is_final(s) {
            alive[s as usize] = true;
            queue.push_back(s);
        }
    }
    while let Some(s) = queue.pop_front() {
        for &p in &rev[s as usize] {
            if !alive[p as usize] {
                alive[p as usize] = true;
                queue.push_back(p);
            }
        }
    }
    if !alive[0] {
        return Dfa::empty();
    }
    if alive.iter().all(|&a| a) {
        return dfa.clone();
    }
    let mut map: HashMap<u32, u32> = HashMap::new();
    // Keep state 0 first so it stays the start state.
    let mut next = 0u32;
    for s in 0..n as u32 {
        if alive[s as usize] {
            map.insert(s, next);
            next += 1;
        }
    }
    let mut delta: Vec<BTreeMap<u32, u32>> = vec![BTreeMap::new(); next as usize];
    let mut finals = vec![false; next as usize];
    for s in 0..n as u32 {
        if let Some(&ns) = map.get(&s) {
            finals[ns as usize] = dfa.is_final(s);
            for (sym, t) in dfa.transitions_from(s) {
                if let Some(&nt) = map.get(&t) {
                    delta[ns as usize].insert(sym, nt);
                }
            }
        }
    }
    Dfa::from_parts(delta, finals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Label, Nfa, StateId};

    fn dfa_of(nfa: &Nfa) -> Dfa {
        Dfa::determinize(nfa)
    }

    /// Two redundant paths accepting exactly {a, b}.
    fn redundant() -> Nfa {
        let mut n = Nfa::with_states(5);
        n.set_initial(StateId(0));
        n.set_final(StateId(3));
        n.set_final(StateId(4));
        n.add_transition(StateId(0), Label::Sym(0), StateId(1));
        n.add_transition(StateId(0), Label::Sym(1), StateId(2));
        n.add_transition(StateId(1), Label::Eps, StateId(3));
        n.add_transition(StateId(2), Label::Eps, StateId(4));
        n
    }

    #[test]
    fn minimize_merges_equivalent_states() {
        let d = dfa_of(&redundant());
        let m = minimize(&d);
        // Minimal DFA for {a, b}: start + accept = 2 states.
        assert_eq!(m.num_states(), 2);
        assert!(m.accepts(&[0]));
        assert!(m.accepts(&[1]));
        assert!(!m.accepts(&[]));
        assert!(!m.accepts(&[0, 0]));
    }

    #[test]
    fn minimize_preserves_language_samples() {
        let mut n = Nfa::with_states(3);
        n.set_initial(StateId(0));
        n.set_final(StateId(0));
        n.add_transition(StateId(0), Label::Sym(0), StateId(1));
        n.add_transition(StateId(1), Label::Sym(1), StateId(0));
        n.add_transition(StateId(1), Label::Sym(0), StateId(2));
        n.add_transition(StateId(2), Label::Sym(1), StateId(1));
        let d = dfa_of(&n);
        let m = minimize(&d);
        for w in [
            vec![],
            vec![0, 1],
            vec![0, 0, 1, 1],
            vec![0, 0, 1],
            vec![1],
            vec![0, 1, 0, 1],
            vec![0, 0, 1, 1, 0, 1],
        ] {
            assert_eq!(m.accepts(&w), d.accepts(&w), "word {w:?}");
        }
        assert!(m.num_states() <= d.num_states());
    }

    #[test]
    fn minimize_empty_language() {
        let n = Nfa::with_states(1);
        let m = minimize(&dfa_of(&n));
        assert!(m.is_language_empty());
        assert_eq!(m.num_states(), 1);
    }

    #[test]
    fn minimize_eps_only_language() {
        let mut n = Nfa::with_states(1);
        n.set_initial(StateId(0));
        n.set_final(StateId(0));
        let m = minimize(&dfa_of(&n));
        assert_eq!(m.num_states(), 1);
        assert!(m.accepts(&[]));
        assert!(!m.accepts(&[0]));
    }

    #[test]
    fn minimize_is_idempotent() {
        let d = dfa_of(&redundant());
        let m1 = minimize(&d);
        let m2 = minimize(&m1);
        assert_eq!(m1.num_states(), m2.num_states());
    }

    #[test]
    fn minimal_dfa_has_no_dead_states() {
        // Language a* over alphabet {a, b}: completing adds a sink that
        // must be trimmed away again.
        let mut n = Nfa::with_states(2);
        n.set_initial(StateId(0));
        n.set_final(StateId(0));
        n.add_transition(StateId(0), Label::Sym(0), StateId(0));
        n.add_transition(StateId(0), Label::Sym(1), StateId(1)); // dead path
        let m = minimize(&dfa_of(&n));
        assert_eq!(m.num_states(), 1);
        assert!(m.accepts(&[0, 0]));
        assert!(!m.accepts(&[1]));
    }
}
