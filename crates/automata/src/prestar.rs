use std::collections::BTreeSet;

use cuba_pds::{Pds, Rhs};

use crate::poststar::SATURATION_POLL_EVERY;
use crate::{Label, Psa, SaturationInterrupted, StateId};

/// Computes `pre*(L(target))`: the PSA accepting all configurations
/// from which `pds` can reach a configuration accepted by `target`.
///
/// Provided for cross-validation of [`post_star`](crate::post_star)
/// (the duality `s' ∈ post*(s) ⟺ s ∈ pre*(s')`) and for
/// backward-reachability queries. Unlike `post*`, the result may have
/// incoming transitions on control states; it is still a valid
/// acceptor, but not a normalized [`Psa`] per
/// [`Psa::validate`] — don't feed it back into saturation.
///
/// The implementation is the classic fixpoint: for every rule
/// `(q,γ) → (q',w')` and every automaton state `s` with
/// `q' —w'→* s`, add `q —γ→ s`; empty-stack rules add ε-acceptance
/// of `⟨q|ε⟩` whenever `⟨q'|w'⟩` is accepted. Iterates to fixpoint
/// (naive but robust with ε-transitions present).
pub fn pre_star(pds: &Pds, target: &Psa) -> Psa {
    match pre_star_guarded(pds, target, &mut || true) {
        Ok(psa) => psa,
        Err(SaturationInterrupted) => unreachable!("an always-true poll never interrupts"),
    }
}

/// As [`pre_star`], but polls `poll` every few transition insertions
/// (and once per fixpoint pass) and aborts when it returns `false` —
/// the backward twin of
/// [`post_star_guarded`](crate::post_star_guarded).
///
/// # Errors
///
/// [`SaturationInterrupted`] when `poll` returned `false`; the
/// partially saturated automaton is discarded.
pub fn pre_star_guarded(
    pds: &Pds,
    target: &Psa,
    poll: &mut dyn FnMut() -> bool,
) -> Result<Psa, SaturationInterrupted> {
    let mut psa = target.clone();
    let sink = psa.sink();
    let mut inserted: usize = 0;
    loop {
        if !poll() {
            return Err(SaturationInterrupted);
        }
        let mut changed = false;
        for a in pds.actions() {
            // States reachable from q' reading w'.
            let mut start = BTreeSet::new();
            start.insert(a.q_post.0);
            let word: Vec<u32> = match a.rhs {
                Rhs::Empty => vec![],
                Rhs::One(s) => vec![s.0],
                Rhs::Two { top, below } => vec![top.0, below.0],
            };
            let reach = psa.nfa.run(&start, &word);
            let mut record = |added: bool| -> Result<(), SaturationInterrupted> {
                if added {
                    changed = true;
                    inserted += 1;
                    if inserted.is_multiple_of(SATURATION_POLL_EVERY) && !poll() {
                        return Err(SaturationInterrupted);
                    }
                }
                Ok(())
            };
            match a.top {
                Some(gamma) => {
                    for &s in &reach {
                        let added =
                            psa.nfa
                                .add_transition(StateId(a.q.0), Label::Sym(gamma.0), StateId(s));
                        record(added)?;
                    }
                }
                None => {
                    // ⟨q|ε⟩ → ⟨q'|w'⟩: accept ⟨q|ε⟩ iff ⟨q'|w'⟩ accepted.
                    let added = reach.iter().any(|&s| psa.nfa.is_final(StateId(s)))
                        && psa.nfa.add_transition(StateId(a.q.0), Label::Eps, sink);
                    record(added)?;
                }
            }
        }
        if !changed {
            return Ok(psa);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{post_star, Psa};
    use cuba_pds::{PdsBuilder, PdsConfig, SharedState, Stack, StackSym};

    fn q(n: u32) -> SharedState {
        SharedState(n)
    }
    fn s(n: u32) -> StackSym {
        StackSym(n)
    }
    fn cfg(qq: u32, word: &[u32]) -> PdsConfig {
        PdsConfig::new(q(qq), Stack::from_top_down(word.iter().map(|&x| s(x))))
    }

    fn fig7() -> cuba_pds::Pds {
        let mut b = PdsBuilder::new(3, 3);
        b.push(q(0), s(0), q(1), s(1), s(0)).unwrap();
        b.push(q(1), s(1), q(2), s(2), s(0)).unwrap();
        b.overwrite(q(2), s(2), q(0), s(1)).unwrap();
        b.pop(q(0), s(1), q(0)).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn pre_star_finds_predecessors() {
        let pds = fig7();
        // Target: ⟨0|ε⟩ (empty stack at control 0).
        let target = Psa::accepting_configs(3, [&cfg(0, &[])]).unwrap();
        let pre = pre_star(&pds, &target);
        // ⟨0|1⟩ pops directly to ⟨0|ε⟩.
        assert!(pre.accepts_config(&cfg(0, &[1])));
        assert!(pre.accepts_config(&cfg(0, &[1, 1])));
        // ⟨2|2⟩ overwrites to ⟨0|1⟩, then pops.
        assert!(pre.accepts_config(&cfg(2, &[2])));
        // The target itself is included.
        assert!(pre.accepts_config(&cfg(0, &[])));
        // ⟨0|0⟩ pushes forever and never empties below one symbol … but
        // it eventually pops everything? (0,0)->(1,10): stack grows; only
        // `1` symbols ever pop. Stack keeps a trailing 0, so ⟨0|ε⟩ is
        // unreachable from it.
        assert!(!pre.accepts_config(&cfg(0, &[0])));
    }

    #[test]
    fn post_pre_duality_on_samples() {
        let pds = fig7();
        let start = cfg(0, &[0]);
        let post = post_star(&pds, &Psa::accepting_configs(3, [&start]).unwrap());
        // For a handful of configurations accepted by post*, pre* of
        // each must accept the start configuration.
        for qq in 0..3u32 {
            let lang = post.stack_language(q(qq));
            for word in lang.sample_words(6) {
                let c = cfg(qq, &word);
                let pre = pre_star(&pds, &Psa::accepting_configs(3, [&c]).unwrap());
                assert!(
                    pre.accepts_config(&start),
                    "duality failed for intermediate {c}"
                );
            }
        }
    }

    #[test]
    fn pre_star_with_empty_stack_rules() {
        // (0,ε) -> (1,a); target ⟨1|a⟩ — then ⟨0|ε⟩ ∈ pre*.
        let mut b = PdsBuilder::new(2, 1);
        b.from_empty(q(0), q(1), Some(s(0))).unwrap();
        let pds = b.build().unwrap();
        let target = Psa::accepting_configs(2, [&cfg(1, &[0])]).unwrap();
        let pre = pre_star(&pds, &target);
        assert!(pre.accepts_config(&cfg(0, &[])));
        assert!(!pre.accepts_config(&cfg(0, &[0])));
    }
}
