use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Instant;

use cuba_pds::{Pds, Rhs};
use cuba_telemetry::metrics::{stage_time, Stage, METRICS};
use cuba_telemetry::trace;

use crate::poststar::SATURATION_POLL_EVERY;
use crate::{Label, Psa, SaturationInterrupted, StateId};

/// Minimum rule count below which [`pre_star_with`] stays sequential
/// even when asked for more threads (the backward twin of the post*
/// gate: structural, hence deterministic across thread counts).
const PRE_PARALLEL_MIN_RULES: usize = 512;

/// Actions a worker claims per cursor bump during a sharded pass.
const PRE_STEAL_CHUNK: usize = 32;

/// Computes `pre*(L(target))`: the PSA accepting all configurations
/// from which `pds` can reach a configuration accepted by `target`.
///
/// Provided for cross-validation of [`post_star`](crate::post_star)
/// (the duality `s' ∈ post*(s) ⟺ s ∈ pre*(s')`) and for
/// backward-reachability queries. Unlike `post*`, the result may have
/// incoming transitions on control states; it is still a valid
/// acceptor, but not a normalized [`Psa`] per
/// [`Psa::validate`] — don't feed it back into saturation.
///
/// The implementation is the classic fixpoint: for every rule
/// `(q,γ) → (q',w')` and every automaton state `s` with
/// `q' —w'→* s`, add `q —γ→ s`; empty-stack rules add ε-acceptance
/// of `⟨q|ε⟩` whenever `⟨q'|w'⟩` is accepted. Iterates to fixpoint
/// (naive but robust with ε-transitions present).
pub fn pre_star(pds: &Pds, target: &Psa) -> Psa {
    match pre_star_guarded(pds, target, &mut || true) {
        Ok(psa) => psa,
        Err(SaturationInterrupted) => unreachable!("an always-true poll never interrupts"),
    }
}

/// As [`pre_star`], but polls `poll` every few transition insertions
/// (and once per fixpoint pass) and aborts when it returns `false` —
/// the backward twin of
/// [`post_star_guarded`](crate::post_star_guarded).
///
/// # Errors
///
/// [`SaturationInterrupted`] when `poll` returned `false`; the
/// partially saturated automaton is discarded.
pub fn pre_star_guarded(
    pds: &Pds,
    target: &Psa,
    poll: &mut dyn FnMut() -> bool,
) -> Result<Psa, SaturationInterrupted> {
    let mut psa = target.clone();
    let sink = psa.sink();
    let mut inserted: usize = 0;
    loop {
        if !poll() {
            return Err(SaturationInterrupted);
        }
        // Each backward fixpoint pass is one telemetry wave.
        METRICS.waves.inc();
        METRICS.frontier_edges.observe(pds.actions().len() as u64);
        let _wave_span = trace::span_args("wave", vec![("rules", pds.actions().len().into())]);
        let mut changed = false;
        for a in pds.actions() {
            // States reachable from q' reading w'.
            let mut start = BTreeSet::new();
            start.insert(a.q_post.0);
            let word: Vec<u32> = match a.rhs {
                Rhs::Empty => vec![],
                Rhs::One(s) => vec![s.0],
                Rhs::Two { top, below } => vec![top.0, below.0],
            };
            let reach = psa.nfa.run(&start, &word);
            let mut record = |added: bool| -> Result<(), SaturationInterrupted> {
                if added {
                    changed = true;
                    inserted += 1;
                    if inserted.is_multiple_of(SATURATION_POLL_EVERY) && !poll() {
                        return Err(SaturationInterrupted);
                    }
                }
                Ok(())
            };
            match a.top {
                Some(gamma) => {
                    for &s in &reach {
                        let added =
                            psa.nfa
                                .add_transition(StateId(a.q.0), Label::Sym(gamma.0), StateId(s));
                        record(added)?;
                    }
                }
                None => {
                    // ⟨q|ε⟩ → ⟨q'|w'⟩: accept ⟨q|ε⟩ iff ⟨q'|w'⟩ accepted.
                    let added = reach.iter().any(|&s| psa.nfa.is_final(StateId(s)))
                        && psa.nfa.add_transition(StateId(a.q.0), Label::Eps, sink);
                    record(added)?;
                }
            }
        }
        if !changed {
            return Ok(psa);
        }
    }
}

/// As [`pre_star_guarded`], but over a worker pool of `threads`
/// shards. `threads == 1` (or a rule list too small to amortize the
/// pool) runs the exact sequential fixpoint; larger counts shard each
/// fixpoint pass over the action list with chunked work-stealing
/// cursors and merge the proposed insertions at a per-pass barrier in
/// sorted order, so the pass sequence is deterministic whatever the
/// shard count. Each shard polls every 64 proposals.
///
/// # Errors
///
/// [`SaturationInterrupted`] when `poll` returned `false`.
pub fn pre_star_with(
    pds: &Pds,
    target: &Psa,
    threads: usize,
    poll: &(dyn Fn() -> bool + Sync),
) -> Result<Psa, SaturationInterrupted> {
    let threads = threads.max(1);
    if threads == 1 || pds.actions().len() < PRE_PARALLEL_MIN_RULES {
        let mut poll_mut = || poll();
        return pre_star_guarded(pds, target, &mut poll_mut);
    }
    pre_star_sharded(pds, target, threads, poll)
}

/// One sharded fixpoint pass per iteration: workers read the frozen
/// automaton, each claims chunks of the action list, and every
/// consequence is proposed against the snapshot; the barrier merge
/// applies proposals in sorted order and the loop ends on a pass that
/// inserts nothing.
fn pre_star_sharded(
    pds: &Pds,
    target: &Psa,
    threads: usize,
    poll: &(dyn Fn() -> bool + Sync),
) -> Result<Psa, SaturationInterrupted> {
    let mut psa = target.clone();
    let sink = psa.sink();
    let stop = AtomicBool::new(false);
    loop {
        if !poll() {
            return Err(SaturationInterrupted);
        }
        let actions = pds.actions();
        METRICS.waves.inc();
        METRICS.frontier_edges.observe(actions.len() as u64);
        let mut wave_span = trace::span_args(
            "wave",
            vec![("rules", actions.len().into()), ("shards", threads.into())],
        );
        let cursor = AtomicUsize::new(0);
        let psa_ref = &psa;
        let cursor_ref = &cursor;
        let stop_ref = &stop;
        let proposals: Vec<Vec<(StateId, Label, StateId)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|w| {
                    scope.spawn(move || {
                        trace::set_thread_tid(1000 + w as u32);
                        let mut shard_span = trace::span("shard");
                        let mut out: Vec<(StateId, Label, StateId)> = Vec::new();
                        let mut polled = 0usize;
                        'pass: loop {
                            if stop_ref.load(Ordering::Relaxed) {
                                break;
                            }
                            let lo = cursor_ref.fetch_add(PRE_STEAL_CHUNK, Ordering::Relaxed);
                            if lo >= actions.len() {
                                break;
                            }
                            for a in &actions[lo..(lo + PRE_STEAL_CHUNK).min(actions.len())] {
                                let mut start = BTreeSet::new();
                                start.insert(a.q_post.0);
                                let word: Vec<u32> = match a.rhs {
                                    Rhs::Empty => vec![],
                                    Rhs::One(s) => vec![s.0],
                                    Rhs::Two { top, below } => vec![top.0, below.0],
                                };
                                let reach = psa_ref.nfa.run(&start, &word);
                                match a.top {
                                    Some(gamma) => {
                                        for &s in &reach {
                                            out.push((
                                                StateId(a.q.0),
                                                Label::Sym(gamma.0),
                                                StateId(s),
                                            ));
                                        }
                                    }
                                    None => {
                                        if reach.iter().any(|&s| psa_ref.nfa.is_final(StateId(s))) {
                                            out.push((StateId(a.q.0), Label::Eps, sink));
                                        }
                                    }
                                }
                                if out.len() / SATURATION_POLL_EVERY > polled {
                                    polled = out.len() / SATURATION_POLL_EVERY;
                                    if !poll() {
                                        stop_ref.store(true, Ordering::Relaxed);
                                        break 'pass;
                                    }
                                }
                            }
                        }
                        shard_span.arg("proposals", out.len());
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("pre* worker panicked"))
                .collect()
        });
        if stop.load(Ordering::Relaxed) {
            return Err(SaturationInterrupted);
        }
        let merge_start = Instant::now();
        let mut merge_span = trace::span("merge");
        let mut edges: Vec<(StateId, Label, StateId)> = proposals.into_iter().flatten().collect();
        edges.sort_unstable_by_key(crate::poststar::edge_key);
        edges.dedup();
        let mut inserted = 0usize;
        for (src, label, dst) in edges {
            if psa.nfa.add_transition(src, label, dst) {
                inserted += 1;
                if inserted.is_multiple_of(SATURATION_POLL_EVERY) && !poll() {
                    return Err(SaturationInterrupted);
                }
            }
        }
        merge_span.arg("inserted", inserted);
        drop(merge_span);
        stage_time(Stage::Merge, merge_start.elapsed());
        wave_span.arg("inserted", inserted);
        drop(wave_span);
        if inserted == 0 {
            return Ok(psa);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{post_star, Psa};
    use cuba_pds::{PdsBuilder, PdsConfig, SharedState, Stack, StackSym};

    fn q(n: u32) -> SharedState {
        SharedState(n)
    }
    fn s(n: u32) -> StackSym {
        StackSym(n)
    }
    fn cfg(qq: u32, word: &[u32]) -> PdsConfig {
        PdsConfig::new(q(qq), Stack::from_top_down(word.iter().map(|&x| s(x))))
    }

    fn fig7() -> cuba_pds::Pds {
        let mut b = PdsBuilder::new(3, 3);
        b.push(q(0), s(0), q(1), s(1), s(0)).unwrap();
        b.push(q(1), s(1), q(2), s(2), s(0)).unwrap();
        b.overwrite(q(2), s(2), q(0), s(1)).unwrap();
        b.pop(q(0), s(1), q(0)).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn pre_star_finds_predecessors() {
        let pds = fig7();
        // Target: ⟨0|ε⟩ (empty stack at control 0).
        let target = Psa::accepting_configs(3, [&cfg(0, &[])]).unwrap();
        let pre = pre_star(&pds, &target);
        // ⟨0|1⟩ pops directly to ⟨0|ε⟩.
        assert!(pre.accepts_config(&cfg(0, &[1])));
        assert!(pre.accepts_config(&cfg(0, &[1, 1])));
        // ⟨2|2⟩ overwrites to ⟨0|1⟩, then pops.
        assert!(pre.accepts_config(&cfg(2, &[2])));
        // The target itself is included.
        assert!(pre.accepts_config(&cfg(0, &[])));
        // ⟨0|0⟩ pushes forever and never empties below one symbol … but
        // it eventually pops everything? (0,0)->(1,10): stack grows; only
        // `1` symbols ever pop. Stack keeps a trailing 0, so ⟨0|ε⟩ is
        // unreachable from it.
        assert!(!pre.accepts_config(&cfg(0, &[0])));
    }

    #[test]
    fn post_pre_duality_on_samples() {
        let pds = fig7();
        let start = cfg(0, &[0]);
        let post = post_star(&pds, &Psa::accepting_configs(3, [&start]).unwrap());
        // For a handful of configurations accepted by post*, pre* of
        // each must accept the start configuration.
        for qq in 0..3u32 {
            let lang = post.stack_language(q(qq));
            for word in lang.sample_words(6) {
                let c = cfg(qq, &word);
                let pre = pre_star(&pds, &Psa::accepting_configs(3, [&c]).unwrap());
                assert!(
                    pre.accepts_config(&start),
                    "duality failed for intermediate {c}"
                );
            }
        }
    }

    /// A chain system large enough to cross the parallel gate.
    fn wide_pds(controls: u32, chain: u32) -> cuba_pds::Pds {
        let mut b = PdsBuilder::new(controls, chain + 1);
        for qq in 0..controls {
            for i in 0..chain {
                b.overwrite(q(qq), s(i), q((qq + 1) % controls), s(i + 1))
                    .unwrap();
            }
        }
        b.build().unwrap()
    }

    /// The sharded backward fixpoint agrees with the sequential one —
    /// both on a small system (driven through the internal entry point
    /// to bypass the size gate) and through `pre_star_with` on a wide
    /// one at several thread counts.
    #[test]
    fn sharded_pre_star_matches_sequential_language() {
        let pds = fig7();
        let target = Psa::accepting_configs(3, [&cfg(0, &[])]).unwrap();
        let seq = pre_star(&pds, &target);
        for threads in [2, 4] {
            let par = pre_star_sharded(&pds, &target, threads, &|| true).unwrap();
            assert!(
                crate::language_equal(seq.as_nfa(), par.as_nfa()),
                "sharded pre* ({threads} threads) disagrees with sequential"
            );
        }

        let wide = wide_pds(4, 200);
        let wide_target = Psa::all_stacks_leq1(4, [199]);
        let wide_seq = pre_star(&wide, &wide_target);
        for threads in [0, 1, 2, 4] {
            let got = pre_star_with(&wide, &wide_target, threads, &|| true).unwrap();
            assert!(
                crate::language_equal(wide_seq.as_nfa(), got.as_nfa()),
                "pre_star_with threads={threads}"
            );
        }
    }

    /// A refusing poll aborts the sharded backward fixpoint with at
    /// most one poll per shard beyond the per-pass check.
    #[test]
    fn sharded_pre_star_aborts_promptly() {
        let pds = wide_pds(4, 200);
        let target = Psa::all_stacks_leq1(4, [199]);
        let threads = 4;
        let calls = AtomicUsize::new(0);
        let err = pre_star_sharded(&pds, &target, threads, &|| {
            calls.fetch_add(1, Ordering::Relaxed);
            false
        })
        .unwrap_err();
        assert_eq!(err, SaturationInterrupted);
        assert!(calls.load(Ordering::Relaxed) <= threads + 1);
    }

    #[test]
    fn pre_star_with_empty_stack_rules() {
        // (0,ε) -> (1,a); target ⟨1|a⟩ — then ⟨0|ε⟩ ∈ pre*.
        let mut b = PdsBuilder::new(2, 1);
        b.from_empty(q(0), q(1), Some(s(0))).unwrap();
        let pds = b.build().unwrap();
        let target = Psa::accepting_configs(2, [&cfg(1, &[0])]).unwrap();
        let pre = pre_star(&pds, &target);
        assert!(pre.accepts_config(&cfg(0, &[])));
        assert!(!pre.accepts_config(&cfg(0, &[0])));
    }
}
