/// Errors raised by automaton constructions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AutomataError {
    /// A state id does not exist in the automaton.
    StateOutOfRange {
        /// The offending state id.
        state: u32,
        /// Number of states in the automaton.
        num_states: u32,
    },
    /// A control-state id passed to a PSA operation is not a control
    /// state of that PSA.
    NotAControlState {
        /// The offending state id.
        state: u32,
        /// Number of control states.
        num_controls: u32,
    },
    /// A PSA invariant was violated: control states must have no
    /// incoming transitions and the final sink no outgoing ones.
    BrokenPsaInvariant(&'static str),
}

impl std::fmt::Display for AutomataError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AutomataError::StateOutOfRange { state, num_states } => {
                write!(f, "state {state} out of range ({num_states} states)")
            }
            AutomataError::NotAControlState {
                state,
                num_controls,
            } => write!(
                f,
                "state {state} is not a control state (controls are 0..{num_controls})"
            ),
            AutomataError::BrokenPsaInvariant(what) => {
                write!(f, "pushdown store automaton invariant violated: {what}")
            }
        }
    }
}

impl std::error::Error for AutomataError {}

/// Raised by the `*_guarded` saturation entry points
/// ([`post_star_guarded`](crate::post_star_guarded),
/// [`pre_star_guarded`](crate::pre_star_guarded)) when the caller's
/// poll callback asked the loop to stop. Carries no reason — the
/// caller decided to interrupt and knows why (deadline, cancellation,
/// …); this type only signals that the returned automaton was
/// abandoned mid-saturation and must not be used.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SaturationInterrupted;

impl std::fmt::Display for SaturationInterrupted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "saturation interrupted by the caller's poll callback")
    }
}

impl std::error::Error for SaturationInterrupted {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            AutomataError::StateOutOfRange {
                state: 5,
                num_states: 3
            }
            .to_string(),
            "state 5 out of range (3 states)"
        );
        assert!(AutomataError::NotAControlState {
            state: 7,
            num_controls: 2
        }
        .to_string()
        .contains("not a control state"));
        assert!(AutomataError::BrokenPsaInvariant("x")
            .to_string()
            .contains("invariant"));
    }
}
