use std::collections::{BTreeMap, BTreeSet};

use crate::{Label, Nfa, StateId};

/// A (partial) deterministic finite automaton.
///
/// State `0` is the start state; a missing transition means rejection.
/// Produced by [`Dfa::determinize`] via the subset construction and
/// consumed by [`minimize`](crate::minimize) and
/// [`CanonicalDfa`](crate::CanonicalDfa).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dfa {
    /// `delta[s][sym] = t`.
    delta: Vec<BTreeMap<u32, u32>>,
    finals: Vec<bool>,
}

impl Dfa {
    /// Builds a DFA from parts. `delta.len()` must equal `finals.len()`
    /// and all targets must be in range.
    ///
    /// # Panics
    ///
    /// Panics if the parts are inconsistent.
    pub fn from_parts(delta: Vec<BTreeMap<u32, u32>>, finals: Vec<bool>) -> Self {
        assert_eq!(delta.len(), finals.len(), "delta/finals length mismatch");
        for m in &delta {
            for &t in m.values() {
                assert!((t as usize) < delta.len(), "transition target out of range");
            }
        }
        Dfa { delta, finals }
    }

    /// The DFA accepting the empty language (a single non-accepting
    /// state with no transitions).
    pub fn empty() -> Self {
        Dfa {
            delta: vec![BTreeMap::new()],
            finals: vec![false],
        }
    }

    /// Determinizes `nfa` (from its initial-state set) via the subset
    /// construction with ε-closures.
    pub fn determinize(nfa: &Nfa) -> Dfa {
        let start: BTreeSet<u32> = nfa.initial_states().map(|s| s.0).collect();
        Self::determinize_from(nfa, &start)
    }

    /// Determinizes `nfa` starting from an explicit set of NFA states.
    pub fn determinize_from(nfa: &Nfa, start: &BTreeSet<u32>) -> Dfa {
        let start = nfa.eps_closure(start);
        let mut ids: BTreeMap<BTreeSet<u32>, u32> = BTreeMap::new();
        let mut delta: Vec<BTreeMap<u32, u32>> = Vec::new();
        let mut finals: Vec<bool> = Vec::new();
        let mut queue: Vec<BTreeSet<u32>> = Vec::new();

        let mut intern = |set: BTreeSet<u32>,
                          delta: &mut Vec<BTreeMap<u32, u32>>,
                          finals: &mut Vec<bool>,
                          queue: &mut Vec<BTreeSet<u32>>|
         -> u32 {
            if let Some(&id) = ids.get(&set) {
                return id;
            }
            let id = delta.len() as u32;
            delta.push(BTreeMap::new());
            finals.push(set.iter().any(|&s| nfa.is_final(StateId(s))));
            ids.insert(set.clone(), id);
            queue.push(set);
            id
        };

        intern(start, &mut delta, &mut finals, &mut queue);
        let mut qi = 0;
        while qi < queue.len() {
            let set = queue[qi].clone();
            let src = qi as u32;
            qi += 1;
            let mut by_sym: BTreeMap<u32, BTreeSet<u32>> = BTreeMap::new();
            for &s in &set {
                for (label, dst) in nfa.transitions_from(StateId(s)) {
                    if let Label::Sym(sym) = label {
                        by_sym.entry(sym).or_default().insert(dst.0);
                    }
                }
            }
            for (sym, dsts) in by_sym {
                let closed = nfa.eps_closure(&dsts);
                let id = intern(closed, &mut delta, &mut finals, &mut queue);
                delta[src as usize].insert(sym, id);
            }
        }
        Dfa { delta, finals }
    }

    /// Number of states.
    pub fn num_states(&self) -> u32 {
        self.delta.len() as u32
    }

    /// Whether state `s` is accepting.
    pub fn is_final(&self, s: u32) -> bool {
        self.finals[s as usize]
    }

    /// The transition target of `(s, sym)`, if defined.
    pub fn next(&self, s: u32, sym: u32) -> Option<u32> {
        self.delta[s as usize].get(&sym).copied()
    }

    /// Outgoing transitions of state `s`, sorted by symbol.
    pub fn transitions_from(&self, s: u32) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.delta[s as usize].iter().map(|(&sym, &t)| (sym, t))
    }

    /// Whether the DFA accepts `word`.
    pub fn accepts(&self, word: &[u32]) -> bool {
        let mut s = 0u32;
        for &sym in word {
            match self.next(s, sym) {
                Some(t) => s = t,
                None => return false,
            }
        }
        self.is_final(s)
    }

    /// The symbols used on any transition.
    pub fn alphabet(&self) -> BTreeSet<u32> {
        self.delta.iter().flat_map(|m| m.keys().copied()).collect()
    }

    /// Makes the DFA *complete* over `alphabet` by adding a rejecting
    /// sink for all missing transitions. Idempotent if already complete.
    pub fn complete(&self, alphabet: &BTreeSet<u32>) -> Dfa {
        let needs_sink = self
            .delta
            .iter()
            .any(|m| alphabet.iter().any(|sym| !m.contains_key(sym)));
        if !needs_sink {
            return self.clone();
        }
        let mut delta = self.delta.clone();
        let mut finals = self.finals.clone();
        let sink = delta.len() as u32;
        delta.push(BTreeMap::new());
        finals.push(false);
        for m in delta.iter_mut() {
            for &sym in alphabet {
                m.entry(sym).or_insert(sink);
            }
        }
        Dfa { delta, finals }
    }

    /// The complement DFA over `alphabet` (completes first, then flips
    /// acceptance).
    pub fn complement(&self, alphabet: &BTreeSet<u32>) -> Dfa {
        let mut c = self.complete(alphabet);
        for f in c.finals.iter_mut() {
            *f = !*f;
        }
        c
    }

    /// Whether the accepted language is empty.
    pub fn is_language_empty(&self) -> bool {
        // BFS from the start state.
        let mut seen = vec![false; self.delta.len()];
        let mut queue = vec![0u32];
        seen[0] = true;
        while let Some(s) = queue.pop() {
            if self.is_final(s) {
                return false;
            }
            for (_, t) in self.transitions_from(s) {
                if !seen[t as usize] {
                    seen[t as usize] = true;
                    queue.push(t);
                }
            }
        }
        true
    }

    /// Converts back to an [`Nfa`] (single initial state `0`).
    pub fn to_nfa(&self) -> Nfa {
        let mut n = Nfa::with_states(self.num_states());
        n.set_initial(StateId(0));
        for (s, f) in self.finals.iter().enumerate() {
            if *f {
                n.set_final(StateId(s as u32));
            }
        }
        for s in 0..self.num_states() {
            for (sym, t) in self.transitions_from(s) {
                n.add_transition(StateId(s), Label::Sym(sym), StateId(t));
            }
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// NFA for (ab)* with an ε shortcut.
    fn ab_star() -> Nfa {
        let mut n = Nfa::with_states(2);
        n.set_initial(StateId(0));
        n.set_final(StateId(0));
        n.add_transition(StateId(0), Label::Sym(0), StateId(1));
        n.add_transition(StateId(1), Label::Sym(1), StateId(0));
        n
    }

    #[test]
    fn determinize_preserves_language() {
        let n = ab_star();
        let d = Dfa::determinize(&n);
        for w in [
            vec![],
            vec![0, 1],
            vec![0, 1, 0, 1],
            vec![0],
            vec![1],
            vec![0, 0],
        ] {
            assert_eq!(d.accepts(&w), n.accepts(&w), "word {w:?}");
        }
    }

    #[test]
    fn determinize_handles_eps() {
        let mut n = Nfa::with_states(3);
        n.set_initial(StateId(0));
        n.set_final(StateId(2));
        n.add_transition(StateId(0), Label::Eps, StateId(1));
        n.add_transition(StateId(1), Label::Sym(3), StateId(2));
        let d = Dfa::determinize(&n);
        assert!(d.accepts(&[3]));
        assert!(!d.accepts(&[]));
    }

    #[test]
    fn complete_adds_sink_once() {
        let d = Dfa::determinize(&ab_star());
        let alpha: BTreeSet<u32> = [0, 1].into_iter().collect();
        let c = d.complete(&alpha);
        let c2 = c.complete(&alpha);
        assert_eq!(c.num_states(), c2.num_states());
        for s in 0..c.num_states() {
            for &sym in &alpha {
                assert!(c.next(s, sym).is_some());
            }
        }
    }

    #[test]
    fn complement_flips_membership() {
        let d = Dfa::determinize(&ab_star());
        let alpha: BTreeSet<u32> = [0, 1].into_iter().collect();
        let c = d.complement(&alpha);
        for w in [vec![], vec![0, 1], vec![0], vec![1, 0]] {
            assert_eq!(c.accepts(&w), !d.accepts(&w), "word {w:?}");
        }
    }

    #[test]
    fn emptiness() {
        assert!(Dfa::empty().is_language_empty());
        let d = Dfa::determinize(&ab_star());
        assert!(!d.is_language_empty());
    }

    #[test]
    fn to_nfa_roundtrip() {
        let d = Dfa::determinize(&ab_star());
        let n = d.to_nfa();
        for w in [vec![], vec![0, 1], vec![0]] {
            assert_eq!(n.accepts(&w), d.accepts(&w));
        }
    }

    #[test]
    fn empty_initial_set_rejects_everything() {
        let n = Nfa::with_states(1); // no initial, no final
        let d = Dfa::determinize(&n);
        assert!(!d.accepts(&[]));
        assert!(d.is_language_empty());
    }
}
