//! Finite-automata substrate for CUBA: NFAs with ε-edges, DFAs,
//! determinization, Hopcroft minimization, canonical minimal DFAs, and
//! *pushdown store automata* (PSA) with `post*`/`pre*` saturation
//! (Bouajjani–Esparza–Maler 1997, Schwoon 2000; paper App. C).
//!
//! A PSA represents a regular — typically infinite — set of pushdown
//! configurations `⟨q|w⟩`: starting from the control state `q` and
//! reading the stack word `w` (top first) must lead to the accepting
//! sink. The saturation procedures close such a set under the action
//! relation of a [`Pds`](cuba_pds::Pds), forwards (`post*`) or
//! backwards (`pre*`).
//!
//! # Example
//!
//! The PDS of the paper's Fig. 7 and its `post*` automaton:
//!
//! ```
//! use cuba_automata::{post_star, Psa};
//! use cuba_pds::{PdsBuilder, PdsConfig, SharedState, Stack, StackSym};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let q = |n| SharedState(n);
//! let s = |n| StackSym(n);
//! let mut b = PdsBuilder::new(3, 3);
//! b.push(q(0), s(0), q(1), s(1), s(0))?;
//! b.push(q(1), s(1), q(2), s(2), s(0))?;
//! b.overwrite(q(2), s(2), q(0), s(1))?;
//! b.pop(q(0), s(1), q(0))?;
//! let pds = b.build()?;
//!
//! let init = Psa::accepting_configs(3, [&PdsConfig::new(q(0), Stack::from_top_down([s(0)]))])?;
//! let reach = post_star(&pds, &init);
//! assert!(reach.accepts_config(&PdsConfig::new(q(1), Stack::from_top_down([s(1), s(0)]))));
//! assert!(!reach.accepts_config(&PdsConfig::new(q(2), Stack::from_top_down([s(0)]))));
//! # Ok(())
//! # }
//! ```

mod canonical;
mod dfa;
mod dot;
mod error;
mod finiteness;
mod minimize;
mod nfa;
mod ops;
mod poststar;
mod prestar;
mod psa;
mod rules;

pub use canonical::CanonicalDfa;
pub use dfa::Dfa;
pub use dot::{nfa_to_dot, psa_to_dot};
pub use error::{AutomataError, SaturationInterrupted};
pub use finiteness::{is_language_finite, Finiteness};
pub use minimize::minimize;
pub use nfa::{Label, Nfa, StateId};
pub use ops::{intersect, language_equal, language_subset};
pub use poststar::{
    bounded_reach, post_star, post_star_from_config, post_star_guarded, post_star_with,
};
pub use prestar::{pre_star, pre_star_guarded, pre_star_with};
pub use psa::Psa;
pub use rules::RuleTable;
