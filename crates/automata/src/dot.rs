use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::{Label, Nfa, Psa, StateId};

/// Renders an NFA as a Graphviz `dot` digraph.
///
/// Initial states get a bold border, accepting states a double circle.
/// Parallel edges between the same pair of states are merged into one
/// arrow with a comma-separated label, matching the paper's Fig. 4/7
/// drawings (e.g. `ε,1,2`).
pub fn nfa_to_dot(nfa: &Nfa, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph {name} {{");
    let _ = writeln!(out, "  rankdir=LR;");
    for s in 0..nfa.num_states() {
        let sid = StateId(s);
        let shape = if nfa.is_final(sid) {
            "doublecircle"
        } else {
            "circle"
        };
        let style = if nfa.is_initial(sid) {
            ", style=bold"
        } else {
            ""
        };
        let _ = writeln!(out, "  s{s} [shape={shape}{style}];");
    }
    let mut merged: BTreeMap<(u32, u32), Vec<String>> = BTreeMap::new();
    for (src, label, dst) in nfa.transitions() {
        let text = match label {
            Label::Eps => "ε".to_owned(),
            Label::Sym(x) => x.to_string(),
        };
        merged.entry((src.0, dst.0)).or_default().push(text);
    }
    for ((src, dst), labels) in merged {
        let _ = writeln!(out, "  s{src} -> s{dst} [label=\"{}\"];", labels.join(","));
    }
    let _ = writeln!(out, "}}");
    out
}

/// Renders a pushdown store automaton as `dot`, labelling control
/// states `q0, q1, …` and the accepting sink `sF` as in Fig. 7.
pub fn psa_to_dot(psa: &Psa, name: &str) -> String {
    let nfa = psa.as_nfa();
    let mut out = String::new();
    let _ = writeln!(out, "digraph {name} {{");
    let _ = writeln!(out, "  rankdir=LR;");
    let label_of = |s: u32| -> String {
        if s < psa.num_controls() {
            format!("q{s}")
        } else if StateId(s) == psa.sink() {
            "sF".to_owned()
        } else {
            format!("s{s}")
        }
    };
    for s in 0..nfa.num_states() {
        let sid = StateId(s);
        let shape = if nfa.is_final(sid) {
            "doublecircle"
        } else {
            "circle"
        };
        let style = if psa.is_control(sid) {
            ", style=bold"
        } else {
            ""
        };
        let _ = writeln!(out, "  \"{}\" [shape={shape}{style}];", label_of(s));
    }
    let mut merged: BTreeMap<(u32, u32), Vec<String>> = BTreeMap::new();
    for (src, label, dst) in nfa.transitions() {
        let text = match label {
            Label::Eps => "ε".to_owned(),
            Label::Sym(x) => x.to_string(),
        };
        merged.entry((src.0, dst.0)).or_default().push(text);
    }
    for ((src, dst), labels) in merged {
        let _ = writeln!(
            out,
            "  \"{}\" -> \"{}\" [label=\"{}\"];",
            label_of(src),
            label_of(dst),
            labels.join(",")
        );
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuba_pds::{PdsConfig, SharedState, Stack, StackSym};

    #[test]
    fn nfa_dot_contains_states_and_merged_labels() {
        let mut n = Nfa::with_states(2);
        n.set_initial(StateId(0));
        n.set_final(StateId(1));
        n.add_transition(StateId(0), Label::Sym(1), StateId(1));
        n.add_transition(StateId(0), Label::Sym(2), StateId(1));
        n.add_transition(StateId(0), Label::Eps, StateId(1));
        let dot = nfa_to_dot(&n, "g");
        assert!(dot.contains("digraph g {"));
        assert!(dot.contains("doublecircle"));
        assert!(dot.contains("label=\"ε,1,2\""));
    }

    #[test]
    fn psa_dot_names_controls_and_sink() {
        let c = PdsConfig::new(SharedState(0), Stack::from_top_down([StackSym(3)]));
        let psa = Psa::accepting_configs(2, [&c]).unwrap();
        let dot = psa_to_dot(&psa, "psa");
        assert!(dot.contains("\"q0\""));
        assert!(dot.contains("\"q1\""));
        assert!(dot.contains("\"sF\""));
        assert!(dot.contains("label=\"3\""));
    }
}
