use std::collections::{HashMap, HashSet, VecDeque};

use cuba_pds::{Pds, Rhs, SharedState, StackSym};

use crate::{Label, Nfa, Psa, SaturationInterrupted, StateId};

/// How many transition insertions a saturation loop performs between
/// two invocations of the caller's poll callback. Small enough that a
/// deadline is observed promptly even inside one pathological `post*`
/// call, large enough that polling cost (an atomic load or two plus an
/// `Instant::now`) stays invisible next to the insertion work.
pub(crate) const SATURATION_POLL_EVERY: usize = 64;

/// The mutable saturation state: the automaton under construction, the
/// worklist, and the cooperative-interruption bookkeeping shared by
/// `post*` and `pre*`.
struct Saturator<'a> {
    psa: Psa,
    work: VecDeque<(StateId, Label, StateId)>,
    inserted: usize,
    poll: &'a mut dyn FnMut() -> bool,
    interrupted: bool,
}

impl Saturator<'_> {
    /// Inserts a transition, enqueues it when new, and polls the
    /// interruption callback every [`SATURATION_POLL_EVERY`]
    /// insertions.
    fn add(&mut self, src: StateId, label: Label, dst: StateId) {
        if self.psa.nfa.add_transition(src, label, dst) {
            self.work.push_back((src, label, dst));
            self.inserted += 1;
            if self.inserted.is_multiple_of(SATURATION_POLL_EVERY) && !(self.poll)() {
                self.interrupted = true;
            }
        }
    }
}

/// Computes `post*(L(init))`: the PSA accepting all configurations
/// reachable in `pds` from a configuration accepted by `init`
/// (saturation procedure of Bouajjani–Esparza–Maler / Schwoon; paper
/// App. C, Thm. 8).
///
/// Extensions over the textbook algorithm, needed by the paper's model
/// (§2.1):
///
/// * ε-transitions may already exist in `init` (they encode acceptance
///   of empty-stack configurations `⟨q|ε⟩`); the saturation keeps an
///   ε-elimination closure so rule triggering stays complete, and
/// * empty-stack actions `(q,ε) → (q',w')` fire whenever `⟨q|ε⟩`
///   becomes accepted.
///
/// # Panics
///
/// Panics if `init` violates the PSA invariants (debug builds check
/// [`Psa::validate`]).
pub fn post_star(pds: &Pds, init: &Psa) -> Psa {
    match post_star_guarded(pds, init, &mut || true) {
        Ok(psa) => psa,
        Err(SaturationInterrupted) => unreachable!("an always-true poll never interrupts"),
    }
}

/// As [`post_star`], but polls `poll` every few transition insertions
/// and aborts the saturation when it returns `false`.
///
/// This is the cooperative-interruption hook for callers with
/// deadlines or cancellation tokens (the symbolic engine's context
/// steps): a single pathological `post*` call performs work bounded
/// only by the automaton size, which can dwarf any per-round deadline
/// check made *between* saturations.
///
/// # Errors
///
/// [`SaturationInterrupted`] when `poll` returned `false`; the
/// partially saturated automaton is discarded.
pub fn post_star_guarded(
    pds: &Pds,
    init: &Psa,
    poll: &mut dyn FnMut() -> bool,
) -> Result<Psa, SaturationInterrupted> {
    debug_assert!(
        init.validate().is_ok(),
        "post_star input must be a valid PSA"
    );
    let mut sat = Saturator {
        psa: init.clone(),
        work: init.nfa.transitions().collect(),
        inserted: 0,
        poll,
        interrupted: false,
    };
    let sink = sat.psa.sink();

    // Rule indexes.
    let mut rules_by_lhs: HashMap<(u32, u32), Vec<usize>> = HashMap::new();
    let mut empty_rules_by_q: HashMap<u32, Vec<usize>> = HashMap::new();
    for (i, a) in pds.actions().iter().enumerate() {
        match a.top {
            Some(sym) => rules_by_lhs.entry((a.q.0, sym.0)).or_default().push(i),
            None => empty_rules_by_q.entry(a.q.0).or_default().push(i),
        }
    }

    // Fresh middle states, one per (target control, pushed symbol).
    let mut mid: HashMap<(u32, u32), StateId> = HashMap::new();

    // ε-predecessors: eps_preds[s] = controls/states p with (p, ε, s).
    let mut eps_preds: HashMap<u32, HashSet<u32>> = HashMap::new();

    // Which empty-stack triggers already fired, to avoid re-firing.
    let mut fired_empty: HashSet<u32> = HashSet::new();

    while let Some((src, label, dst)) = sat.work.pop_front() {
        if sat.interrupted {
            return Err(SaturationInterrupted);
        }
        // Backward ε-propagation: anything src can do, its
        // ε-predecessors can do.
        if let Some(preds) = eps_preds.get(&src.0) {
            for &p in &preds.clone() {
                sat.add(StateId(p), label, dst);
            }
        }
        match label {
            Label::Sym(gamma) if sat.psa.is_control(src) => {
                let p = src.0;
                if let Some(rule_ids) = rules_by_lhs.get(&(p, gamma)) {
                    for &ri in rule_ids {
                        let a = &pds.actions()[ri];
                        let p2 = StateId(a.q_post.0);
                        match a.rhs {
                            Rhs::Empty => {
                                sat.add(p2, Label::Eps, dst);
                            }
                            Rhs::One(sym2) => {
                                sat.add(p2, Label::Sym(sym2.0), dst);
                            }
                            Rhs::Two { top, below } => {
                                let m = *mid
                                    .entry((a.q_post.0, top.0))
                                    .or_insert_with(|| sat.psa.nfa.add_state());
                                sat.add(p2, Label::Sym(top.0), m);
                                sat.add(m, Label::Sym(below.0), dst);
                            }
                        }
                    }
                }
            }
            Label::Eps => {
                eps_preds.entry(dst.0).or_default().insert(src.0);
                // Forward ε-elimination: copy dst's current out-edges.
                let outs: Vec<(Label, StateId)> = sat.psa.nfa.transitions_from(dst).collect();
                for (l, t) in outs {
                    sat.add(src, l, t);
                }
                // Empty-stack rules fire once ⟨q|ε⟩ is accepted.
                if dst == sink && sat.psa.is_control(src) && fired_empty.insert(src.0) {
                    if let Some(rule_ids) = empty_rules_by_q.get(&src.0) {
                        for &ri in rule_ids {
                            let a = &pds.actions()[ri];
                            let p2 = StateId(a.q_post.0);
                            match a.rhs {
                                Rhs::Empty => sat.add(p2, Label::Eps, sink),
                                Rhs::One(sym2) => sat.add(p2, Label::Sym(sym2.0), sink),
                                Rhs::Two { .. } => {
                                    unreachable!("empty-stack pushes of two symbols are rejected")
                                }
                            }
                        }
                    }
                }
            }
            Label::Sym(_) => {
                // Non-control source: no rule can fire; ε-propagation
                // above already handled it.
            }
        }
    }
    if sat.interrupted {
        return Err(SaturationInterrupted);
    }
    debug_assert!(
        sat.psa.validate().is_ok(),
        "post_star must preserve PSA invariants"
    );
    Ok(sat.psa)
}

/// Convenience: the `post*` PSA from a single configuration.
///
/// # Errors
///
/// Returns an error if the configuration's control state is out of
/// range for `num_controls`.
pub fn post_star_from_config(
    pds: &Pds,
    num_controls: u32,
    config: &cuba_pds::PdsConfig,
) -> Result<Psa, crate::AutomataError> {
    let init = Psa::accepting_configs(num_controls, [config])?;
    Ok(post_star(pds, &init))
}

/// Enumerates, by explicit BFS, all configurations reachable from
/// `config` within `max_steps` PDS steps (no context notion — a single
/// thread). Used to cross-validate saturation in tests and exposed for
/// diagnostics.
pub fn bounded_reach(
    pds: &Pds,
    config: &cuba_pds::PdsConfig,
    max_steps: usize,
) -> Vec<cuba_pds::PdsConfig> {
    let mut seen: HashSet<cuba_pds::PdsConfig> = HashSet::new();
    seen.insert(config.clone());
    let mut frontier = vec![config.clone()];
    for _ in 0..max_steps {
        let mut next = Vec::new();
        for c in &frontier {
            for succ in pds.successors(c) {
                if seen.insert(succ.clone()) {
                    next.push(succ);
                }
            }
        }
        if next.is_empty() {
            break;
        }
        frontier = next;
    }
    let mut out: Vec<_> = seen.into_iter().collect();
    out.sort();
    out
}

#[allow(unused_imports)]
use cuba_pds::PdsConfig; // referenced in doc comments

#[allow(dead_code)]
fn _type_assertions(_q: SharedState, _s: StackSym, _n: Nfa) {}

#[cfg(test)]
mod tests {
    use super::*;
    use cuba_pds::{PdsBuilder, PdsConfig, Stack};

    fn q(n: u32) -> SharedState {
        SharedState(n)
    }
    fn s(n: u32) -> StackSym {
        StackSym(n)
    }

    /// The PDS of the paper's Fig. 7 (App. C).
    fn fig7() -> Pds {
        let mut b = PdsBuilder::new(3, 3);
        b.push(q(0), s(0), q(1), s(1), s(0)).unwrap();
        b.push(q(1), s(1), q(2), s(2), s(0)).unwrap();
        b.overwrite(q(2), s(2), q(0), s(1)).unwrap();
        b.pop(q(0), s(1), q(0)).unwrap();
        b.build().unwrap()
    }

    fn cfg(qq: u32, word: &[u32]) -> PdsConfig {
        PdsConfig::new(q(qq), Stack::from_top_down(word.iter().map(|&x| s(x))))
    }

    #[test]
    fn fig7_post_star_agrees_with_explicit_bfs() {
        let pds = fig7();
        let init = cfg(0, &[0]);
        let psa = post_star_from_config(&pds, 3, &init).unwrap();
        // Everything found by bounded explicit search is accepted.
        for c in bounded_reach(&pds, &init, 8) {
            assert!(psa.accepts_config(&c), "post* must accept reachable {c}");
        }
        // Spot-check unreachable configurations.
        assert!(!psa.accepts_config(&cfg(2, &[0])));
        assert!(!psa.accepts_config(&cfg(1, &[0])));
        assert!(!psa.accepts_config(&cfg(0, &[2])));
    }

    #[test]
    fn fig7_sampled_psa_configs_are_truly_reachable() {
        let pds = fig7();
        let init = cfg(0, &[0]);
        let psa = post_star_from_config(&pds, 3, &init).unwrap();
        let explicit: std::collections::HashSet<_> =
            bounded_reach(&pds, &init, 14).into_iter().collect();
        // Every accepted config with a short stack must appear in a
        // sufficiently deep explicit search (completeness direction).
        for qq in 0..3 {
            let lang = psa.stack_language(q(qq));
            for word in lang.sample_words(12) {
                if word.len() <= 4 {
                    let c = cfg(qq, &word);
                    assert!(explicit.contains(&c), "PSA accepts unreachable {c}");
                }
            }
        }
    }

    #[test]
    fn pop_makes_stack_empty_and_empty_rules_fire() {
        // (0,a) -> (1,ε); (1,ε) -> (2,b)
        let mut b = PdsBuilder::new(3, 2);
        b.pop(q(0), s(0), q(1)).unwrap();
        b.from_empty(q(1), q(2), Some(s(1))).unwrap();
        let pds = b.build().unwrap();
        let psa = post_star_from_config(&pds, 3, &cfg(0, &[0])).unwrap();
        assert!(psa.accepts_config(&cfg(1, &[])));
        assert!(psa.accepts_config(&cfg(2, &[1])));
        assert!(!psa.accepts_config(&cfg(2, &[0])));
    }

    #[test]
    fn empty_rule_chain() {
        // Start from ⟨0|ε⟩: (0,ε)->(1,ε), (1,ε)->(2,a)
        let mut b = PdsBuilder::new(3, 1);
        b.from_empty(q(0), q(1), None).unwrap();
        b.from_empty(q(1), q(2), Some(s(0))).unwrap();
        let pds = b.build().unwrap();
        let psa = post_star_from_config(&pds, 3, &cfg(0, &[])).unwrap();
        assert!(psa.accepts_config(&cfg(0, &[])));
        assert!(psa.accepts_config(&cfg(1, &[])));
        assert!(psa.accepts_config(&cfg(2, &[0])));
        assert!(!psa.accepts_config(&cfg(1, &[0])));
    }

    #[test]
    fn recursion_yields_infinite_language() {
        // (0,a) -> (0,aa): unbounded pushes of `a`.
        let mut b = PdsBuilder::new(1, 1);
        b.push(q(0), s(0), q(0), s(0), s(0)).unwrap();
        let pds = b.build().unwrap();
        let psa = post_star_from_config(&pds, 1, &cfg(0, &[0])).unwrap();
        for depth in 1..6 {
            let word = vec![0u32; depth];
            assert!(psa.accepts(q(0), &word), "depth {depth}");
        }
        assert!(!psa.accepts(q(0), &[]));
    }

    #[test]
    fn post_star_of_empty_set_is_empty() {
        let pds = fig7();
        let psa = post_star(&pds, &Psa::empty(3));
        assert!(psa.as_nfa().is_language_empty());
    }

    #[test]
    fn post_star_keeps_initial_configs() {
        let pds = fig7();
        let init = cfg(0, &[0]);
        let psa = post_star_from_config(&pds, 3, &init).unwrap();
        assert!(psa.accepts_config(&init));
    }

    /// A saturation large enough to cross the poll interval: a long
    /// overwrite chain fanned out from every shared state.
    fn wide_pds(controls: u32, chain: u32) -> Pds {
        let mut b = PdsBuilder::new(controls, chain + 1);
        for qq in 0..controls {
            for i in 0..chain {
                b.overwrite(q(qq), s(i), q((qq + 1) % controls), s(i + 1))
                    .unwrap();
            }
        }
        b.build().unwrap()
    }

    /// The guarded saturation polls at least once on a big input, and a
    /// poll answering `false` aborts the loop early instead of running
    /// the saturation to completion.
    #[test]
    fn guarded_post_star_polls_and_aborts() {
        let pds = wide_pds(4, 200);
        // Seed with symbol 0 only, so the chain rules insert ~200
        // genuinely new transitions (seeding all symbols would make
        // every rule conclusion a duplicate and nothing would poll).
        let init = Psa::all_stacks_leq1(4, [0]);

        let mut polls = 0usize;
        let full = post_star_guarded(&pds, &init, &mut || {
            polls += 1;
            true
        })
        .unwrap();
        assert!(polls > 0, "saturation never polled");
        assert_eq!(
            full.as_nfa().transitions().count(),
            post_star(&pds, &init).as_nfa().transitions().count()
        );

        // Abort on the very first poll: far fewer insertions happen
        // than the full saturation performs.
        let mut calls = 0usize;
        let err = post_star_guarded(&pds, &init, &mut || {
            calls += 1;
            false
        })
        .unwrap_err();
        assert_eq!(err, SaturationInterrupted);
        assert_eq!(calls, 1, "aborts on the first refusing poll");
    }

    /// `pre_star_guarded` honors the same protocol.
    #[test]
    fn guarded_pre_star_polls_and_aborts() {
        let pds = wide_pds(4, 200);
        let target = Psa::all_stacks_leq1(4, [199]);
        let mut polls = 0usize;
        let ok = crate::pre_star_guarded(&pds, &target, &mut || {
            polls += 1;
            true
        });
        assert!(ok.is_ok());
        assert!(polls > 0);
        let err = crate::pre_star_guarded(&pds, &target, &mut || false).unwrap_err();
        assert_eq!(err, SaturationInterrupted);
    }

    #[test]
    fn post_star_from_all_short_stacks() {
        let pds = fig7();
        let init = Psa::all_stacks_leq1(3, [0, 1, 2]);
        let psa = post_star(&pds, &init);
        psa.validate().unwrap();
        // ⟨2|2⟩ ∈ Q×Σ≤1 steps to ⟨0|1⟩ then pops to ⟨0|ε⟩.
        assert!(psa.accepts_config(&cfg(0, &[])));
        // Pushing from ⟨0|0⟩ still works.
        assert!(psa.accepts_config(&cfg(1, &[1, 0])));
    }
}
