use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Instant;

use cuba_pds::{Pds, Rhs, SharedState, StackSym};
use cuba_telemetry::metrics::{stage_time, Stage, METRICS};
use cuba_telemetry::trace;

use crate::rules::RuleTable;
use crate::{Label, Nfa, Psa, SaturationInterrupted, StateId};

/// How many transition insertions a saturation loop performs between
/// two invocations of the caller's poll callback. Small enough that a
/// deadline is observed promptly even inside one pathological `post*`
/// call, large enough that polling cost (an atomic load or two plus an
/// `Instant::now`) stays invisible next to the insertion work.
pub(crate) const SATURATION_POLL_EVERY: usize = 64;

/// Minimum structural size (initial transitions + rules) below which
/// [`post_star_with`] stays sequential even when asked for more
/// threads: spawning a scoped pool costs more than a small saturation
/// does. The gate is purely structural — a function of the input, not
/// of timing — so every thread count ≥ 2 makes the same choice and
/// the wave schedule stays deterministic.
const PARALLEL_MIN_WORK: usize = 512;

/// Frontier edges a worker claims per cursor bump: small enough that
/// work-stealing rebalances a skewed shard, large enough to amortize
/// the atomic increment.
const STEAL_CHUNK: usize = 32;

/// The mutable saturation state: the automaton under construction, the
/// worklist, and the cooperative-interruption bookkeeping shared by
/// `post*` and `pre*`.
struct Saturator<'a> {
    psa: Psa,
    work: VecDeque<(StateId, Label, StateId)>,
    inserted: usize,
    poll: &'a mut dyn FnMut() -> bool,
    interrupted: bool,
}

impl Saturator<'_> {
    /// Inserts a transition, enqueues it when new, and polls the
    /// interruption callback every [`SATURATION_POLL_EVERY`]
    /// insertions.
    fn add(&mut self, src: StateId, label: Label, dst: StateId) {
        if self.psa.nfa.add_transition(src, label, dst) {
            self.work.push_back((src, label, dst));
            self.inserted += 1;
            if self.inserted.is_multiple_of(SATURATION_POLL_EVERY) && !(self.poll)() {
                self.interrupted = true;
            }
        }
    }
}

/// Computes `post*(L(init))`: the PSA accepting all configurations
/// reachable in `pds` from a configuration accepted by `init`
/// (saturation procedure of Bouajjani–Esparza–Maler / Schwoon; paper
/// App. C, Thm. 8).
///
/// Extensions over the textbook algorithm, needed by the paper's model
/// (§2.1):
///
/// * ε-transitions may already exist in `init` (they encode acceptance
///   of empty-stack configurations `⟨q|ε⟩`); the saturation keeps an
///   ε-elimination closure so rule triggering stays complete, and
/// * empty-stack actions `(q,ε) → (q',w')` fire whenever `⟨q|ε⟩`
///   becomes accepted.
///
/// # Panics
///
/// Panics if `init` violates the PSA invariants (debug builds check
/// [`Psa::validate`]).
pub fn post_star(pds: &Pds, init: &Psa) -> Psa {
    match post_star_guarded(pds, init, &mut || true) {
        Ok(psa) => psa,
        Err(SaturationInterrupted) => unreachable!("an always-true poll never interrupts"),
    }
}

/// As [`post_star`], but polls `poll` every few transition insertions
/// and aborts the saturation when it returns `false`.
///
/// This is the cooperative-interruption hook for callers with
/// deadlines or cancellation tokens (the symbolic engine's context
/// steps): a single pathological `post*` call performs work bounded
/// only by the automaton size, which can dwarf any per-round deadline
/// check made *between* saturations.
///
/// Builds a throwaway [`RuleTable`] per call; repeated saturations
/// over the same PDS should build the table once and use
/// [`post_star_with`].
///
/// # Errors
///
/// [`SaturationInterrupted`] when `poll` returned `false`; the
/// partially saturated automaton is discarded.
pub fn post_star_guarded(
    pds: &Pds,
    init: &Psa,
    poll: &mut dyn FnMut() -> bool,
) -> Result<Psa, SaturationInterrupted> {
    post_star_table(pds, &RuleTable::new(pds), init, poll)
}

/// As [`post_star_guarded`], but over a caller-built [`RuleTable`]
/// and a worker pool of `threads` shards.
///
/// `threads == 1` runs exactly the sequential worklist loop; larger
/// counts run wave-synchronous sharded saturation whenever the input
/// is big enough to amortize the pool. Whatever the thread count, the result
/// accepts the same configuration language — saturation is a fixpoint;
/// insertion order may differ, the fixed point may not — and any two
/// counts ≥ 2 produce the bit-identical automaton.
///
/// # Errors
///
/// [`SaturationInterrupted`] when `poll` returned `false`; each shard
/// polls every 64 proposals, so cancellation latency matches the
/// sequential path.
pub fn post_star_with(
    pds: &Pds,
    table: &RuleTable,
    init: &Psa,
    threads: usize,
    poll: &(dyn Fn() -> bool + Sync),
) -> Result<Psa, SaturationInterrupted> {
    let threads = threads.max(1);
    if threads == 1 || init.nfa.transitions().count() + pds.actions().len() < PARALLEL_MIN_WORK {
        let mut poll_mut = || poll();
        return post_star_table(pds, table, init, &mut poll_mut);
    }
    post_star_sharded(pds, table, init, threads, poll)
}

/// The sequential saturation worklist over a prebuilt [`RuleTable`]
/// (the exact pre-sharding code path, hash indices replaced by CSR
/// lookups).
fn post_star_table(
    pds: &Pds,
    table: &RuleTable,
    init: &Psa,
    poll: &mut dyn FnMut() -> bool,
) -> Result<Psa, SaturationInterrupted> {
    debug_assert!(
        init.validate().is_ok(),
        "post_star input must be a valid PSA"
    );
    let mut sat = Saturator {
        psa: init.clone(),
        work: init.nfa.transitions().collect(),
        inserted: 0,
        poll,
        interrupted: false,
    };
    let sink = sat.psa.sink();
    // The sequential fixpoint is one telemetry wave: no barriers, so
    // the whole worklist run is the unit of observation.
    METRICS.waves.inc();
    METRICS.frontier_edges.observe(sat.work.len() as u64);
    let mut wave_span = trace::span_args("wave", vec![("frontier", sat.work.len().into())]);

    // Fresh middle states, one per (target control, pushed symbol).
    let mut mid: HashMap<(u32, u32), StateId> = HashMap::new();

    // ε-predecessors: eps_preds[s] = controls/states p with (p, ε, s).
    let mut eps_preds: HashMap<u32, HashSet<u32>> = HashMap::new();

    // Which empty-stack triggers already fired, to avoid re-firing.
    let mut fired_empty: HashSet<u32> = HashSet::new();

    while let Some((src, label, dst)) = sat.work.pop_front() {
        if sat.interrupted {
            return Err(SaturationInterrupted);
        }
        // Backward ε-propagation: anything src can do, its
        // ε-predecessors can do.
        if let Some(preds) = eps_preds.get(&src.0) {
            for &p in &preds.clone() {
                sat.add(StateId(p), label, dst);
            }
        }
        match label {
            Label::Sym(gamma) if sat.psa.is_control(src) => {
                for &ri in table.rules(src.0, gamma) {
                    let a = &pds.actions()[ri as usize];
                    let p2 = StateId(a.q_post.0);
                    match a.rhs {
                        Rhs::Empty => {
                            sat.add(p2, Label::Eps, dst);
                        }
                        Rhs::One(sym2) => {
                            sat.add(p2, Label::Sym(sym2.0), dst);
                        }
                        Rhs::Two { top, below } => {
                            let m = *mid
                                .entry((a.q_post.0, top.0))
                                .or_insert_with(|| sat.psa.nfa.add_state());
                            sat.add(p2, Label::Sym(top.0), m);
                            sat.add(m, Label::Sym(below.0), dst);
                        }
                    }
                }
            }
            Label::Eps => {
                eps_preds.entry(dst.0).or_default().insert(src.0);
                // Forward ε-elimination: copy dst's current out-edges.
                let outs: Vec<(Label, StateId)> = sat.psa.nfa.transitions_from(dst).collect();
                for (l, t) in outs {
                    sat.add(src, l, t);
                }
                // Empty-stack rules fire once ⟨q|ε⟩ is accepted.
                if dst == sink && sat.psa.is_control(src) && fired_empty.insert(src.0) {
                    for &ri in table.empty_rules(src.0) {
                        let a = &pds.actions()[ri as usize];
                        let p2 = StateId(a.q_post.0);
                        match a.rhs {
                            Rhs::Empty => sat.add(p2, Label::Eps, sink),
                            Rhs::One(sym2) => sat.add(p2, Label::Sym(sym2.0), sink),
                            Rhs::Two { .. } => {
                                unreachable!("empty-stack pushes of two symbols are rejected")
                            }
                        }
                    }
                }
            }
            Label::Sym(_) => {
                // Non-control source: no rule can fire; ε-propagation
                // above already handled it.
            }
        }
    }
    if sat.interrupted {
        return Err(SaturationInterrupted);
    }
    wave_span.arg("inserted", sat.inserted);
    drop(wave_span);
    debug_assert!(
        sat.psa.validate().is_ok(),
        "post_star must preserve PSA invariants"
    );
    Ok(sat.psa)
}

/// The canonical sort key of an insertion: merges apply edges in this
/// order, so the merged automaton is a pure function of the proposal
/// *set*, independent of shard count and steal schedule.
pub(crate) fn edge_key(e: &(StateId, Label, StateId)) -> (u32, u8, u32, u32) {
    let (src, label, dst) = *e;
    let (tag, sym) = match label {
        Label::Eps => (0u8, 0u32),
        Label::Sym(s) => (1u8, s),
    };
    (src.0, tag, sym, dst.0)
}

/// A worker's proposed insertion, produced against the wave's frozen
/// snapshot. A push rule's fresh middle state is allocated only at the
/// merge (in sorted key order), so the conclusion travels as its
/// `(q_post, top)` key rather than a state id.
enum Prop {
    Edge(StateId, Label, StateId),
    Push {
        q_post: u32,
        top: u32,
        below: u32,
        dst: StateId,
    },
}

/// Emits every saturation consequence of one frontier edge against the
/// wave's frozen snapshot — the read-only twin of the sequential
/// loop's pop handler. Pairs whose second premise lands in a later
/// wave are caught symmetrically: the ε-predecessor index covers
/// future out-edges, the forward copy covers past ones, and the
/// snapshot includes the current frontier, so every two-premise
/// consequence fires in *some* wave.
fn propose(
    e: &(StateId, Label, StateId),
    psa: &Psa,
    eps_preds: &HashMap<u32, BTreeSet<u32>>,
    table: &RuleTable,
    pds: &Pds,
    sink: StateId,
    out: &mut Vec<Prop>,
) {
    let (src, label, dst) = *e;
    if let Some(preds) = eps_preds.get(&src.0) {
        for &p in preds {
            out.push(Prop::Edge(StateId(p), label, dst));
        }
    }
    match label {
        Label::Sym(gamma) if psa.is_control(src) => {
            for &ri in table.rules(src.0, gamma) {
                let a = &pds.actions()[ri as usize];
                let p2 = StateId(a.q_post.0);
                match a.rhs {
                    Rhs::Empty => out.push(Prop::Edge(p2, Label::Eps, dst)),
                    Rhs::One(sym2) => out.push(Prop::Edge(p2, Label::Sym(sym2.0), dst)),
                    Rhs::Two { top, below } => out.push(Prop::Push {
                        q_post: a.q_post.0,
                        top: top.0,
                        below: below.0,
                        dst,
                    }),
                }
            }
        }
        Label::Eps => {
            for (l, t) in psa.nfa.transitions_from(dst) {
                out.push(Prop::Edge(src, l, t));
            }
            if dst == sink && psa.is_control(src) {
                for &ri in table.empty_rules(src.0) {
                    let a = &pds.actions()[ri as usize];
                    let p2 = StateId(a.q_post.0);
                    match a.rhs {
                        Rhs::Empty => out.push(Prop::Edge(p2, Label::Eps, sink)),
                        Rhs::One(sym2) => out.push(Prop::Edge(p2, Label::Sym(sym2.0), sink)),
                        Rhs::Two { .. } => {
                            unreachable!("empty-stack pushes of two symbols are rejected")
                        }
                    }
                }
            }
        }
        Label::Sym(_) => {}
    }
}

/// Wave-synchronous sharded saturation: each wave freezes the
/// automaton, partitions the newly inserted frontier by target-state
/// id across a scoped worker pool (per-shard worklists, chunked
/// work-stealing on imbalance), gathers every worker's proposed
/// insertions through per-shard buffers, and merges them
/// single-threadedly at the wave barrier — fresh middle states in
/// sorted key order, edges in sorted order — so the merged automaton
/// is deterministic whatever the shard count. Each shard polls every
/// [`SATURATION_POLL_EVERY`] proposals and raises a shared stop flag,
/// keeping cancellation latency within one poll interval per shard.
fn post_star_sharded(
    pds: &Pds,
    table: &RuleTable,
    init: &Psa,
    threads: usize,
    poll: &(dyn Fn() -> bool + Sync),
) -> Result<Psa, SaturationInterrupted> {
    debug_assert!(
        init.validate().is_ok(),
        "post_star input must be a valid PSA"
    );
    let mut psa = init.clone();
    let sink = psa.sink();
    let mut mid: HashMap<(u32, u32), StateId> = HashMap::new();
    let mut eps_preds: HashMap<u32, BTreeSet<u32>> = HashMap::new();
    let stop = AtomicBool::new(false);

    let mut frontier: Vec<(StateId, Label, StateId)> = psa.nfa.transitions().collect();
    frontier.sort_unstable_by_key(edge_key);
    for &(src, label, dst) in &frontier {
        if label == Label::Eps {
            eps_preds.entry(dst.0).or_default().insert(src.0);
        }
    }

    // Cumulative across waves, so saturations whose waves are each
    // smaller than the poll interval still poll at the sequential
    // cadence.
    let mut inserted = 0usize;
    while !frontier.is_empty() {
        if !poll() {
            return Err(SaturationInterrupted);
        }
        METRICS.waves.inc();
        METRICS.frontier_edges.observe(frontier.len() as u64);
        let mut wave_span = trace::span_args(
            "wave",
            vec![
                ("frontier", frontier.len().into()),
                ("shards", threads.into()),
            ],
        );
        let mut shards: Vec<Vec<(StateId, Label, StateId)>> = vec![Vec::new(); threads];
        for e in frontier.drain(..) {
            shards[e.2 .0 as usize % threads].push(e);
        }
        let cursors: Vec<AtomicUsize> = (0..threads).map(|_| AtomicUsize::new(0)).collect();
        let psa_ref = &psa;
        let eps_ref = &eps_preds;
        let shards_ref = &shards;
        let cursors_ref = &cursors;
        let stop_ref = &stop;
        let proposals: Vec<Vec<Prop>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|w| {
                    scope.spawn(move || {
                        // Shard-worker tracks live at tid 1000+shard,
                        // clear of the auto-allocated session tids.
                        trace::set_thread_tid(1000 + w as u32);
                        let mut shard_span = trace::span("shard");
                        let mut out: Vec<Prop> = Vec::new();
                        let mut polled = 0usize;
                        let mut steals = 0u64;
                        'shards: for off in 0..threads {
                            let si = (w + off) % threads;
                            let shard = &shards_ref[si];
                            loop {
                                if stop_ref.load(Ordering::Relaxed) {
                                    break 'shards;
                                }
                                let lo = cursors_ref[si].fetch_add(STEAL_CHUNK, Ordering::Relaxed);
                                if lo >= shard.len() {
                                    break;
                                }
                                if off != 0 {
                                    steals += 1;
                                }
                                for e in &shard[lo..(lo + STEAL_CHUNK).min(shard.len())] {
                                    propose(e, psa_ref, eps_ref, table, pds, sink, &mut out);
                                    if out.len() / SATURATION_POLL_EVERY > polled {
                                        polled = out.len() / SATURATION_POLL_EVERY;
                                        if !poll() {
                                            stop_ref.store(true, Ordering::Relaxed);
                                            break 'shards;
                                        }
                                    }
                                }
                            }
                        }
                        if steals > 0 {
                            METRICS.steals.add(steals);
                        }
                        shard_span.arg("proposals", out.len());
                        shard_span.arg("steals", steals);
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("saturation worker panicked"))
                .collect()
        });
        if stop.load(Ordering::Relaxed) {
            return Err(SaturationInterrupted);
        }

        let merge_start = Instant::now();
        let mut merge_span = trace::span("merge");

        // The barrier merge. Middle states first, in sorted key order.
        let mut new_mids: BTreeSet<(u32, u32)> = BTreeSet::new();
        for p in proposals.iter().flatten() {
            if let Prop::Push { q_post, top, .. } = *p {
                if !mid.contains_key(&(q_post, top)) {
                    new_mids.insert((q_post, top));
                }
            }
        }
        for key in new_mids {
            let m = psa.nfa.add_state();
            mid.insert(key, m);
        }
        let mut edges: Vec<(StateId, Label, StateId)> = Vec::new();
        for p in proposals.iter().flatten() {
            match *p {
                Prop::Edge(src, label, dst) => edges.push((src, label, dst)),
                Prop::Push {
                    q_post,
                    top,
                    below,
                    dst,
                } => {
                    let m = mid[&(q_post, top)];
                    edges.push((StateId(q_post), Label::Sym(top), m));
                    edges.push((m, Label::Sym(below), dst));
                }
            }
        }
        edges.sort_unstable_by_key(edge_key);
        edges.dedup();
        for (src, label, dst) in edges {
            if psa.nfa.add_transition(src, label, dst) {
                inserted += 1;
                if inserted.is_multiple_of(SATURATION_POLL_EVERY) && !poll() {
                    return Err(SaturationInterrupted);
                }
                if label == Label::Eps {
                    eps_preds.entry(dst.0).or_default().insert(src.0);
                }
                frontier.push((src, label, dst));
            }
        }
        merge_span.arg("inserted", frontier.len());
        drop(merge_span);
        stage_time(Stage::Merge, merge_start.elapsed());
        wave_span.arg("inserted", frontier.len());
        drop(wave_span);
    }
    debug_assert!(
        psa.validate().is_ok(),
        "post_star must preserve PSA invariants"
    );
    Ok(psa)
}

/// Convenience: the `post*` PSA from a single configuration.
///
/// # Errors
///
/// Returns an error if the configuration's control state is out of
/// range for `num_controls`.
pub fn post_star_from_config(
    pds: &Pds,
    num_controls: u32,
    config: &cuba_pds::PdsConfig,
) -> Result<Psa, crate::AutomataError> {
    let init = Psa::accepting_configs(num_controls, [config])?;
    Ok(post_star(pds, &init))
}

/// Enumerates, by explicit BFS, all configurations reachable from
/// `config` within `max_steps` PDS steps (no context notion — a single
/// thread). Used to cross-validate saturation in tests and exposed for
/// diagnostics. The sweep dedupes into an ordered set directly, so the
/// returned `Vec` is sorted without a second pass.
pub fn bounded_reach(
    pds: &Pds,
    config: &cuba_pds::PdsConfig,
    max_steps: usize,
) -> Vec<cuba_pds::PdsConfig> {
    let mut seen: BTreeSet<cuba_pds::PdsConfig> = BTreeSet::new();
    seen.insert(config.clone());
    let mut frontier = vec![config.clone()];
    for _ in 0..max_steps {
        let mut next = Vec::new();
        for c in &frontier {
            for succ in pds.successors(c) {
                if seen.insert(succ.clone()) {
                    next.push(succ);
                }
            }
        }
        if next.is_empty() {
            break;
        }
        frontier = next;
    }
    seen.into_iter().collect()
}

#[allow(unused_imports)]
use cuba_pds::PdsConfig; // referenced in doc comments

#[allow(dead_code)]
fn _type_assertions(_q: SharedState, _s: StackSym, _n: Nfa) {}

#[cfg(test)]
mod tests {
    use super::*;
    use cuba_pds::{PdsBuilder, PdsConfig, Stack};

    fn q(n: u32) -> SharedState {
        SharedState(n)
    }
    fn s(n: u32) -> StackSym {
        StackSym(n)
    }

    /// The PDS of the paper's Fig. 7 (App. C).
    fn fig7() -> Pds {
        let mut b = PdsBuilder::new(3, 3);
        b.push(q(0), s(0), q(1), s(1), s(0)).unwrap();
        b.push(q(1), s(1), q(2), s(2), s(0)).unwrap();
        b.overwrite(q(2), s(2), q(0), s(1)).unwrap();
        b.pop(q(0), s(1), q(0)).unwrap();
        b.build().unwrap()
    }

    fn cfg(qq: u32, word: &[u32]) -> PdsConfig {
        PdsConfig::new(q(qq), Stack::from_top_down(word.iter().map(|&x| s(x))))
    }

    #[test]
    fn fig7_post_star_agrees_with_explicit_bfs() {
        let pds = fig7();
        let init = cfg(0, &[0]);
        let psa = post_star_from_config(&pds, 3, &init).unwrap();
        // Everything found by bounded explicit search is accepted.
        for c in bounded_reach(&pds, &init, 8) {
            assert!(psa.accepts_config(&c), "post* must accept reachable {c}");
        }
        // Spot-check unreachable configurations.
        assert!(!psa.accepts_config(&cfg(2, &[0])));
        assert!(!psa.accepts_config(&cfg(1, &[0])));
        assert!(!psa.accepts_config(&cfg(0, &[2])));
    }

    #[test]
    fn fig7_sampled_psa_configs_are_truly_reachable() {
        let pds = fig7();
        let init = cfg(0, &[0]);
        let psa = post_star_from_config(&pds, 3, &init).unwrap();
        let explicit: std::collections::HashSet<_> =
            bounded_reach(&pds, &init, 14).into_iter().collect();
        // Every accepted config with a short stack must appear in a
        // sufficiently deep explicit search (completeness direction).
        for qq in 0..3 {
            let lang = psa.stack_language(q(qq));
            for word in lang.sample_words(12) {
                if word.len() <= 4 {
                    let c = cfg(qq, &word);
                    assert!(explicit.contains(&c), "PSA accepts unreachable {c}");
                }
            }
        }
    }

    #[test]
    fn pop_makes_stack_empty_and_empty_rules_fire() {
        // (0,a) -> (1,ε); (1,ε) -> (2,b)
        let mut b = PdsBuilder::new(3, 2);
        b.pop(q(0), s(0), q(1)).unwrap();
        b.from_empty(q(1), q(2), Some(s(1))).unwrap();
        let pds = b.build().unwrap();
        let psa = post_star_from_config(&pds, 3, &cfg(0, &[0])).unwrap();
        assert!(psa.accepts_config(&cfg(1, &[])));
        assert!(psa.accepts_config(&cfg(2, &[1])));
        assert!(!psa.accepts_config(&cfg(2, &[0])));
    }

    #[test]
    fn empty_rule_chain() {
        // Start from ⟨0|ε⟩: (0,ε)->(1,ε), (1,ε)->(2,a)
        let mut b = PdsBuilder::new(3, 1);
        b.from_empty(q(0), q(1), None).unwrap();
        b.from_empty(q(1), q(2), Some(s(0))).unwrap();
        let pds = b.build().unwrap();
        let psa = post_star_from_config(&pds, 3, &cfg(0, &[])).unwrap();
        assert!(psa.accepts_config(&cfg(0, &[])));
        assert!(psa.accepts_config(&cfg(1, &[])));
        assert!(psa.accepts_config(&cfg(2, &[0])));
        assert!(!psa.accepts_config(&cfg(1, &[0])));
    }

    #[test]
    fn recursion_yields_infinite_language() {
        // (0,a) -> (0,aa): unbounded pushes of `a`.
        let mut b = PdsBuilder::new(1, 1);
        b.push(q(0), s(0), q(0), s(0), s(0)).unwrap();
        let pds = b.build().unwrap();
        let psa = post_star_from_config(&pds, 1, &cfg(0, &[0])).unwrap();
        for depth in 1..6 {
            let word = vec![0u32; depth];
            assert!(psa.accepts(q(0), &word), "depth {depth}");
        }
        assert!(!psa.accepts(q(0), &[]));
    }

    #[test]
    fn post_star_of_empty_set_is_empty() {
        let pds = fig7();
        let psa = post_star(&pds, &Psa::empty(3));
        assert!(psa.as_nfa().is_language_empty());
    }

    #[test]
    fn post_star_keeps_initial_configs() {
        let pds = fig7();
        let init = cfg(0, &[0]);
        let psa = post_star_from_config(&pds, 3, &init).unwrap();
        assert!(psa.accepts_config(&init));
    }

    /// A saturation large enough to cross the poll interval: a long
    /// overwrite chain fanned out from every shared state.
    fn wide_pds(controls: u32, chain: u32) -> Pds {
        let mut b = PdsBuilder::new(controls, chain + 1);
        for qq in 0..controls {
            for i in 0..chain {
                b.overwrite(q(qq), s(i), q((qq + 1) % controls), s(i + 1))
                    .unwrap();
            }
        }
        b.build().unwrap()
    }

    /// The guarded saturation polls at least once on a big input, and a
    /// poll answering `false` aborts the loop early instead of running
    /// the saturation to completion.
    #[test]
    fn guarded_post_star_polls_and_aborts() {
        let pds = wide_pds(4, 200);
        // Seed with symbol 0 only, so the chain rules insert ~200
        // genuinely new transitions (seeding all symbols would make
        // every rule conclusion a duplicate and nothing would poll).
        let init = Psa::all_stacks_leq1(4, [0]);

        let mut polls = 0usize;
        let full = post_star_guarded(&pds, &init, &mut || {
            polls += 1;
            true
        })
        .unwrap();
        assert!(polls > 0, "saturation never polled");
        assert_eq!(
            full.as_nfa().transitions().count(),
            post_star(&pds, &init).as_nfa().transitions().count()
        );

        // Abort on the very first poll: far fewer insertions happen
        // than the full saturation performs.
        let mut calls = 0usize;
        let err = post_star_guarded(&pds, &init, &mut || {
            calls += 1;
            false
        })
        .unwrap_err();
        assert_eq!(err, SaturationInterrupted);
        assert_eq!(calls, 1, "aborts on the first refusing poll");
    }

    /// `pre_star_guarded` honors the same protocol.
    #[test]
    fn guarded_pre_star_polls_and_aborts() {
        let pds = wide_pds(4, 200);
        let target = Psa::all_stacks_leq1(4, [199]);
        let mut polls = 0usize;
        let ok = crate::pre_star_guarded(&pds, &target, &mut || {
            polls += 1;
            true
        });
        assert!(ok.is_ok());
        assert!(polls > 0);
        let err = crate::pre_star_guarded(&pds, &target, &mut || false).unwrap_err();
        assert_eq!(err, SaturationInterrupted);
    }

    #[test]
    fn post_star_from_all_short_stacks() {
        let pds = fig7();
        let init = Psa::all_stacks_leq1(3, [0, 1, 2]);
        let psa = post_star(&pds, &init);
        psa.validate().unwrap();
        // ⟨2|2⟩ ∈ Q×Σ≤1 steps to ⟨0|1⟩ then pops to ⟨0|ε⟩.
        assert!(psa.accepts_config(&cfg(0, &[])));
        // Pushing from ⟨0|0⟩ still works.
        assert!(psa.accepts_config(&cfg(1, &[1, 0])));
    }

    /// The sharded engine computes the same configuration language as
    /// the sequential loop — on the push-heavy Fig. 7 system (middle
    /// states, ε-chains, pops) and on the wide chain system. Driven
    /// through the internal entry point to bypass the small-input
    /// gate.
    #[test]
    fn sharded_post_star_matches_sequential_language() {
        for (pds, init) in [
            (fig7(), Psa::accepting_configs(3, [&cfg(0, &[0])]).unwrap()),
            (fig7(), Psa::all_stacks_leq1(3, [0, 1, 2])),
            (wide_pds(4, 200), Psa::all_stacks_leq1(4, [0])),
        ] {
            let table = RuleTable::new(&pds);
            let seq = post_star(&pds, &init);
            for threads in [2, 3, 4] {
                let par = post_star_sharded(&pds, &table, &init, threads, &|| true).unwrap();
                par.validate().unwrap();
                assert!(
                    crate::language_equal(seq.as_nfa(), par.as_nfa()),
                    "sharded ({threads} threads) disagrees with sequential"
                );
            }
        }
    }

    /// Any two shard counts ≥ 2 produce the *bit-identical* automaton:
    /// the barrier merge is a pure function of each wave's frontier
    /// set.
    #[test]
    fn sharded_post_star_is_deterministic_across_thread_counts() {
        let pds = wide_pds(5, 150);
        let table = RuleTable::new(&pds);
        let init = Psa::all_stacks_leq1(5, [0]);
        let reference = post_star_sharded(&pds, &table, &init, 2, &|| true).unwrap();
        for threads in [3, 4, 8] {
            let other = post_star_sharded(&pds, &table, &init, threads, &|| true).unwrap();
            assert_eq!(reference.as_nfa().num_states(), other.as_nfa().num_states());
            let a: Vec<_> = reference.as_nfa().transitions().collect();
            let b: Vec<_> = other.as_nfa().transitions().collect();
            assert_eq!(a, b, "threads=2 vs threads={threads} structure differs");
        }
    }

    /// A refusing poll stops every shard within one poll interval: with
    /// an always-false poll, each worker polls at most once before the
    /// shared stop flag ends the wave, and the merge never runs.
    #[test]
    fn sharded_post_star_aborts_within_one_poll_per_shard() {
        let pds = wide_pds(4, 200);
        let table = RuleTable::new(&pds);
        let init = Psa::all_stacks_leq1(4, [0]);
        let threads = 4;
        let calls = AtomicUsize::new(0);
        let err = post_star_sharded(&pds, &table, &init, threads, &|| {
            calls.fetch_add(1, Ordering::Relaxed);
            false
        })
        .unwrap_err();
        assert_eq!(err, SaturationInterrupted);
        assert!(
            calls.load(Ordering::Relaxed) <= threads,
            "more than one poll per shard: {}",
            calls.load(Ordering::Relaxed)
        );
    }

    /// `post_star_with` gates: thread count 1 and small inputs take the
    /// sequential path (observable via the FnMut-style poll cadence),
    /// large inputs with threads ≥ 2 still agree with it.
    #[test]
    fn post_star_with_agrees_with_guarded_at_every_thread_count() {
        let pds = wide_pds(4, 200);
        let table = RuleTable::new(&pds);
        let init = Psa::all_stacks_leq1(4, [0]);
        let seq = post_star(&pds, &init);
        for threads in [0, 1, 2, 4] {
            let got = post_star_with(&pds, &table, &init, threads, &|| true).unwrap();
            assert!(
                crate::language_equal(seq.as_nfa(), got.as_nfa()),
                "threads={threads}"
            );
        }
        // Small input: parallel request falls back to the sequential
        // loop (and still terminates with the right language).
        let small = fig7();
        let small_table = RuleTable::new(&small);
        let small_init = Psa::accepting_configs(3, [&cfg(0, &[0])]).unwrap();
        let got = post_star_with(&small, &small_table, &small_init, 8, &|| true).unwrap();
        assert!(crate::language_equal(
            post_star(&small, &small_init).as_nfa(),
            got.as_nfa()
        ));
    }
}
