use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Index of an automaton state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StateId(pub u32);

impl std::fmt::Display for StateId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A transition label: either the empty word `ε` or an input symbol.
///
/// Symbols are raw `u32` ids; the PSA layer interprets them as
/// [`StackSym`](cuba_pds::StackSym) ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Label {
    /// The empty word (silent transition).
    Eps,
    /// An input symbol.
    Sym(u32),
}

impl std::fmt::Display for Label {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Label::Eps => write!(f, "eps"),
            Label::Sym(s) => write!(f, "{s}"),
        }
    }
}

/// A nondeterministic finite automaton with ε-transitions.
///
/// States are dense ids `0..num_states`. The automaton keeps a set of
/// initial states (pushdown store automata use one initial state per
/// control state) and a set of accepting states.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Nfa {
    delta: Vec<BTreeMap<Label, BTreeSet<u32>>>,
    initial: BTreeSet<u32>,
    finals: BTreeSet<u32>,
}

impl Default for Nfa {
    fn default() -> Self {
        Self::new()
    }
}

impl Nfa {
    /// An automaton with no states (empty language).
    pub fn new() -> Self {
        Nfa {
            delta: Vec::new(),
            initial: BTreeSet::new(),
            finals: BTreeSet::new(),
        }
    }

    /// An automaton with `n` fresh, unconnected states.
    pub fn with_states(n: u32) -> Self {
        Nfa {
            delta: vec![BTreeMap::new(); n as usize],
            initial: BTreeSet::new(),
            finals: BTreeSet::new(),
        }
    }

    /// Number of states.
    pub fn num_states(&self) -> u32 {
        self.delta.len() as u32
    }

    /// Adds a fresh state and returns its id.
    pub fn add_state(&mut self) -> StateId {
        self.delta.push(BTreeMap::new());
        StateId(self.delta.len() as u32 - 1)
    }

    /// Marks `s` initial.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn set_initial(&mut self, s: StateId) {
        assert!(s.0 < self.num_states(), "state out of range");
        self.initial.insert(s.0);
    }

    /// Marks `s` accepting.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn set_final(&mut self, s: StateId) {
        assert!(s.0 < self.num_states(), "state out of range");
        self.finals.insert(s.0);
    }

    /// The initial states.
    pub fn initial_states(&self) -> impl Iterator<Item = StateId> + '_ {
        self.initial.iter().map(|&s| StateId(s))
    }

    /// The accepting states.
    pub fn final_states(&self) -> impl Iterator<Item = StateId> + '_ {
        self.finals.iter().map(|&s| StateId(s))
    }

    /// Whether `s` is accepting.
    pub fn is_final(&self, s: StateId) -> bool {
        self.finals.contains(&s.0)
    }

    /// Whether `s` is initial.
    pub fn is_initial(&self, s: StateId) -> bool {
        self.initial.contains(&s.0)
    }

    /// Adds the transition `src --label--> dst`; returns `true` if it
    /// was not already present.
    ///
    /// # Panics
    ///
    /// Panics if either state is out of range.
    pub fn add_transition(&mut self, src: StateId, label: Label, dst: StateId) -> bool {
        assert!(src.0 < self.num_states() && dst.0 < self.num_states());
        self.delta[src.0 as usize]
            .entry(label)
            .or_default()
            .insert(dst.0)
    }

    /// Whether the transition `src --label--> dst` is present.
    pub fn has_transition(&self, src: StateId, label: Label, dst: StateId) -> bool {
        self.delta
            .get(src.0 as usize)
            .and_then(|m| m.get(&label))
            .is_some_and(|t| t.contains(&dst.0))
    }

    /// Iterates over all transitions `(src, label, dst)`.
    pub fn transitions(&self) -> impl Iterator<Item = (StateId, Label, StateId)> + '_ {
        self.delta.iter().enumerate().flat_map(|(src, m)| {
            m.iter().flat_map(move |(&label, dsts)| {
                dsts.iter()
                    .map(move |&dst| (StateId(src as u32), label, StateId(dst)))
            })
        })
    }

    /// Successors of `src` under exactly `label` (no ε-closure).
    pub fn step(&self, src: StateId, label: Label) -> impl Iterator<Item = StateId> + '_ {
        self.delta
            .get(src.0 as usize)
            .and_then(|m| m.get(&label))
            .into_iter()
            .flat_map(|t| t.iter().map(|&s| StateId(s)))
    }

    /// Outgoing transitions of `src`.
    pub fn transitions_from(&self, src: StateId) -> impl Iterator<Item = (Label, StateId)> + '_ {
        self.delta.get(src.0 as usize).into_iter().flat_map(|m| {
            m.iter()
                .flat_map(|(&l, t)| t.iter().map(move |&d| (l, StateId(d))))
        })
    }

    /// The set of symbols (excluding ε) appearing on any transition.
    pub fn alphabet(&self) -> BTreeSet<u32> {
        self.delta
            .iter()
            .flat_map(|m| m.keys())
            .filter_map(|l| match l {
                Label::Sym(s) => Some(*s),
                Label::Eps => None,
            })
            .collect()
    }

    /// The ε-closure of a set of states.
    pub fn eps_closure(&self, states: &BTreeSet<u32>) -> BTreeSet<u32> {
        let mut closure = states.clone();
        let mut queue: VecDeque<u32> = states.iter().copied().collect();
        while let Some(s) = queue.pop_front() {
            for t in self.step(StateId(s), Label::Eps) {
                if closure.insert(t.0) {
                    queue.push_back(t.0);
                }
            }
        }
        closure
    }

    /// The set of states reached from `start` by reading `word`
    /// (with ε-moves allowed anywhere).
    pub fn run(&self, start: &BTreeSet<u32>, word: &[u32]) -> BTreeSet<u32> {
        let mut current = self.eps_closure(start);
        for &sym in word {
            let mut next = BTreeSet::new();
            for &s in &current {
                for t in self.step(StateId(s), Label::Sym(sym)) {
                    next.insert(t.0);
                }
            }
            current = self.eps_closure(&next);
            if current.is_empty() {
                break;
            }
        }
        current
    }

    /// Whether reading `word` from `start` can reach an accepting state.
    pub fn accepts_from(&self, start: StateId, word: &[u32]) -> bool {
        let mut init = BTreeSet::new();
        init.insert(start.0);
        self.run(&init, word)
            .iter()
            .any(|s| self.finals.contains(s))
    }

    /// Whether reading `word` from the initial states can reach an
    /// accepting state.
    pub fn accepts(&self, word: &[u32]) -> bool {
        !self.initial.is_empty()
            && self
                .run(&self.initial, word)
                .iter()
                .any(|s| self.finals.contains(s))
    }

    /// States reachable (forwards) from the initial states.
    pub fn reachable_states(&self) -> BTreeSet<u32> {
        self.reachable_from(&self.initial)
    }

    /// States reachable (forwards) from `sources`.
    pub fn reachable_from(&self, sources: &BTreeSet<u32>) -> BTreeSet<u32> {
        let mut seen = sources.clone();
        let mut queue: VecDeque<u32> = sources.iter().copied().collect();
        while let Some(s) = queue.pop_front() {
            for (_, t) in self.transitions_from(StateId(s)) {
                if seen.insert(t.0) {
                    queue.push_back(t.0);
                }
            }
        }
        seen
    }

    /// States from which some accepting state is reachable.
    pub fn coreachable_states(&self) -> BTreeSet<u32> {
        // Reverse adjacency, then BFS from finals.
        let mut rev: Vec<Vec<u32>> = vec![Vec::new(); self.num_states() as usize];
        for (src, _, dst) in self.transitions() {
            rev[dst.0 as usize].push(src.0);
        }
        let mut seen: BTreeSet<u32> = self.finals.clone();
        let mut queue: VecDeque<u32> = self.finals.iter().copied().collect();
        while let Some(s) = queue.pop_front() {
            for &p in &rev[s as usize] {
                if seen.insert(p) {
                    queue.push_back(p);
                }
            }
        }
        seen
    }

    /// Restricts the automaton to *useful* states (reachable from the
    /// initial states and co-reachable to an accepting state), and
    /// returns the trimmed automaton plus the mapping
    /// `old state id -> new state id`.
    pub fn trim(&self) -> (Nfa, BTreeMap<u32, u32>) {
        let useful: BTreeSet<u32> = self
            .reachable_states()
            .intersection(&self.coreachable_states())
            .copied()
            .collect();
        let mut map = BTreeMap::new();
        for (new, &old) in useful.iter().enumerate() {
            map.insert(old, new as u32);
        }
        let mut out = Nfa::with_states(useful.len() as u32);
        for &old in &useful {
            let new = StateId(map[&old]);
            if self.initial.contains(&old) {
                out.set_initial(new);
            }
            if self.finals.contains(&old) {
                out.set_final(new);
            }
            for (label, dst) in self.transitions_from(StateId(old)) {
                if let Some(&nd) = map.get(&dst.0) {
                    out.add_transition(new, label, StateId(nd));
                }
            }
        }
        (out, map)
    }

    /// Whether the language (from the initial states) is empty.
    pub fn is_language_empty(&self) -> bool {
        let reach = self.reachable_states();
        !reach.iter().any(|s| self.finals.contains(s))
    }

    /// Enumerates up to `limit` accepted words in breadth-first
    /// (shortest-first) order. Intended for tests and diagnostics.
    ///
    /// The search budget is proportional to `limit`, so the call
    /// terminates even on infinite languages; on very sparse languages
    /// it may return fewer than `limit` words.
    pub fn sample_words(&self, limit: usize) -> Vec<Vec<u32>> {
        let mut out = Vec::new();
        if self.initial.is_empty() || limit == 0 {
            return out;
        }
        let start = self.eps_closure(&self.initial);
        let mut queue: VecDeque<(BTreeSet<u32>, Vec<u32>)> = VecDeque::new();
        queue.push_back((start, Vec::new()));
        let mut budget = limit.saturating_mul(64).saturating_add(1024);
        // Never enumerate beyond this word length; bounds the queue for
        // automata with wide fan-out.
        let max_len = limit + self.num_states() as usize + 2;
        while let Some((set, word)) = queue.pop_front() {
            if budget == 0 {
                break;
            }
            budget -= 1;
            if set.iter().any(|s| self.finals.contains(s)) {
                out.push(word.clone());
                if out.len() >= limit {
                    return out;
                }
            }
            if word.len() >= max_len {
                continue;
            }
            let mut by_sym: BTreeMap<u32, BTreeSet<u32>> = BTreeMap::new();
            for &s in &set {
                for (label, dst) in self.transitions_from(StateId(s)) {
                    if let Label::Sym(sym) = label {
                        by_sym.entry(sym).or_default().insert(dst.0);
                    }
                }
            }
            for (sym, dsts) in by_sym {
                let closed = self.eps_closure(&dsts);
                let mut w = word.clone();
                w.push(sym);
                queue.push_back((closed, w));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// a(b)*c
    fn abc() -> Nfa {
        let mut n = Nfa::with_states(3);
        n.set_initial(StateId(0));
        n.set_final(StateId(2));
        n.add_transition(StateId(0), Label::Sym(0), StateId(1));
        n.add_transition(StateId(1), Label::Sym(1), StateId(1));
        n.add_transition(StateId(1), Label::Sym(2), StateId(2));
        n
    }

    #[test]
    fn accepts_simple() {
        let n = abc();
        assert!(n.accepts(&[0, 2]));
        assert!(n.accepts(&[0, 1, 1, 2]));
        assert!(!n.accepts(&[0]));
        assert!(!n.accepts(&[2]));
        assert!(!n.accepts(&[]));
    }

    #[test]
    fn eps_closure_transitive() {
        let mut n = Nfa::with_states(4);
        n.set_initial(StateId(0));
        n.set_final(StateId(3));
        n.add_transition(StateId(0), Label::Eps, StateId(1));
        n.add_transition(StateId(1), Label::Eps, StateId(2));
        n.add_transition(StateId(2), Label::Sym(5), StateId(3));
        assert!(n.accepts(&[5]));
        assert!(!n.accepts(&[]));
        let mut start = BTreeSet::new();
        start.insert(0);
        assert_eq!(n.eps_closure(&start), [0, 1, 2].into_iter().collect());
    }

    #[test]
    fn accepts_empty_word_through_eps() {
        let mut n = Nfa::with_states(2);
        n.set_initial(StateId(0));
        n.set_final(StateId(1));
        n.add_transition(StateId(0), Label::Eps, StateId(1));
        assert!(n.accepts(&[]));
    }

    #[test]
    fn add_transition_dedups() {
        let mut n = Nfa::with_states(2);
        assert!(n.add_transition(StateId(0), Label::Sym(1), StateId(1)));
        assert!(!n.add_transition(StateId(0), Label::Sym(1), StateId(1)));
        assert_eq!(n.transitions().count(), 1);
    }

    #[test]
    fn trim_removes_useless_states() {
        let mut n = abc();
        let dead = n.add_state(); // unreachable
        n.add_transition(dead, Label::Sym(0), StateId(0));
        let orphan = n.add_state(); // reachable but not co-reachable
        n.add_transition(StateId(0), Label::Sym(9), orphan);
        let (t, map) = n.trim();
        assert_eq!(t.num_states(), 3);
        assert!(t.accepts(&[0, 1, 2]));
        assert!(!map.contains_key(&dead.0));
        assert!(!map.contains_key(&orphan.0));
    }

    #[test]
    fn language_emptiness() {
        let mut n = Nfa::with_states(2);
        n.set_initial(StateId(0));
        assert!(n.is_language_empty());
        n.set_final(StateId(1));
        assert!(n.is_language_empty());
        n.add_transition(StateId(0), Label::Sym(0), StateId(1));
        assert!(!n.is_language_empty());
    }

    #[test]
    fn sample_words_shortest_first() {
        let n = abc();
        let words = n.sample_words(3);
        assert_eq!(words[0], vec![0, 2]);
        assert!(words.contains(&vec![0, 1, 2]));
        assert_eq!(words.len(), 3);
    }

    #[test]
    fn sample_words_terminates_on_finite_language() {
        let mut n = Nfa::with_states(2);
        n.set_initial(StateId(0));
        n.set_final(StateId(1));
        n.add_transition(StateId(0), Label::Sym(7), StateId(1));
        let words = n.sample_words(10);
        assert_eq!(words, vec![vec![7]]);
    }

    #[test]
    fn alphabet_collects_symbols() {
        let n = abc();
        assert_eq!(n.alphabet(), [0, 1, 2].into_iter().collect());
    }

    #[test]
    fn accepts_from_specific_state() {
        let n = abc();
        assert!(n.accepts_from(StateId(1), &[2]));
        assert!(!n.accepts_from(StateId(0), &[1]));
    }

    #[test]
    fn coreachable() {
        let n = abc();
        assert_eq!(n.coreachable_states(), [0, 1, 2].into_iter().collect());
    }
}
