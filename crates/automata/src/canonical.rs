use std::collections::{BTreeMap, VecDeque};

use crate::{minimize, Dfa, Nfa};

/// A canonical minimal DFA: language equality is structural equality.
///
/// Obtained by determinizing, minimizing, and renumbering states in
/// BFS order from the start state with transitions taken in ascending
/// symbol order. Since the minimal DFA of a regular language is unique
/// up to isomorphism and the BFS renumbering fixes one isomorphism
/// representative, two `CanonicalDfa`s are `==` **iff** their languages
/// are equal. This is what makes symbolic states hashable and
/// dedupable in the symbolic CUBA engine, and what implements the
/// automata-equivalence test that Scheme 1 over `Sk` needs (paper §4
/// discusses the cost of that test; minimization is our answer).
///
/// The empty language canonicalizes to the zero-state automaton.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CanonicalDfa {
    num_states: u32,
    /// Sorted `(src, sym, dst)` triples.
    transitions: Vec<(u32, u32, u32)>,
    /// Accepting flags, indexed by state.
    finals: Vec<bool>,
}

impl CanonicalDfa {
    /// Canonicalizes an arbitrary NFA.
    pub fn from_nfa(nfa: &Nfa) -> Self {
        Self::from_dfa(&Dfa::determinize(nfa))
    }

    /// Canonicalizes an arbitrary DFA.
    pub fn from_dfa(dfa: &Dfa) -> Self {
        let min = minimize(dfa);
        if min.is_language_empty() {
            return CanonicalDfa {
                num_states: 0,
                transitions: Vec::new(),
                finals: Vec::new(),
            };
        }
        // BFS renumbering: start state first, successors in symbol order.
        let mut order: BTreeMap<u32, u32> = BTreeMap::new();
        order.insert(0, 0);
        let mut queue = VecDeque::from([0u32]);
        while let Some(s) = queue.pop_front() {
            for (_sym, t) in min.transitions_from(s) {
                if !order.contains_key(&t) {
                    let id = order.len() as u32;
                    order.insert(t, id);
                    queue.push_back(t);
                }
            }
        }
        let mut transitions = Vec::new();
        let mut finals = vec![false; order.len()];
        for (&old, &new) in &order {
            finals[new as usize] = min.is_final(old);
            for (sym, t) in min.transitions_from(old) {
                transitions.push((new, sym, order[&t]));
            }
        }
        transitions.sort_unstable();
        CanonicalDfa {
            num_states: order.len() as u32,
            transitions,
            finals,
        }
    }

    /// The canonical automaton of the empty language.
    pub fn empty() -> Self {
        CanonicalDfa {
            num_states: 0,
            transitions: Vec::new(),
            finals: Vec::new(),
        }
    }

    /// The canonical automaton of the single word `word`.
    pub fn single_word(word: &[u32]) -> Self {
        let mut transitions = Vec::new();
        let n = word.len() as u32 + 1;
        for (i, &sym) in word.iter().enumerate() {
            transitions.push((i as u32, sym, i as u32 + 1));
        }
        let mut finals = vec![false; n as usize];
        finals[n as usize - 1] = true;
        CanonicalDfa {
            num_states: n,
            transitions,
            finals,
        }
    }

    /// The sorted `(src, sym, dst)` transition triples — the canonical
    /// form's raw data, for serializers ([`from_parts`](Self::from_parts)
    /// is the inverse).
    pub fn transitions(&self) -> &[(u32, u32, u32)] {
        &self.transitions
    }

    /// Per-state accepting flags, indexed by state id.
    pub fn finals(&self) -> &[bool] {
        &self.finals
    }

    /// Rebuilds a canonical DFA from data previously read back through
    /// [`transitions`](Self::transitions) and [`finals`](Self::finals)
    /// (snapshot restore). Shape is validated — state ids in range,
    /// triples strictly sorted (hence deterministic and duplicate-free),
    /// flag count matching — so corrupt input cannot construct an
    /// automaton whose equality or hashing misbehaves.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed datum.
    pub fn from_parts(
        num_states: u32,
        transitions: Vec<(u32, u32, u32)>,
        finals: Vec<bool>,
    ) -> Result<Self, String> {
        if finals.len() != num_states as usize {
            return Err(format!(
                "final-flag count {} does not match state count {num_states}",
                finals.len()
            ));
        }
        if num_states == 0 && !transitions.is_empty() {
            return Err("zero-state automaton with transitions".to_owned());
        }
        for (i, &(src, _sym, dst)) in transitions.iter().enumerate() {
            if src >= num_states || dst >= num_states {
                return Err(format!("transition {i} references an out-of-range state"));
            }
            if i > 0 && transitions[i - 1] >= transitions[i] {
                return Err(format!("transition {i} breaks the sorted canonical order"));
            }
        }
        Ok(CanonicalDfa {
            num_states,
            transitions,
            finals,
        })
    }

    /// Whether the language is empty.
    pub fn is_empty_language(&self) -> bool {
        self.num_states == 0
    }

    /// Number of states of the minimal automaton.
    pub fn num_states(&self) -> u32 {
        self.num_states
    }

    /// Whether the canonical DFA accepts `word`.
    pub fn accepts(&self, word: &[u32]) -> bool {
        self.to_dfa().accepts(word)
    }

    /// The set of symbols that can appear *first* in an accepted word,
    /// plus whether the empty word is accepted. This is exactly the
    /// per-thread data Alg. 4 of the paper extracts (`T(Ai)`).
    pub fn first_symbols(&self) -> (Vec<u32>, bool) {
        if self.is_empty_language() {
            return (Vec::new(), false);
        }
        let dfa = self.to_dfa();
        let mut firsts = Vec::new();
        for (src, sym, _dst) in &self.transitions {
            // minimize() trims dead states, so every transition from the
            // start leads to some accepted word.
            if *src == 0 {
                firsts.push(*sym);
            }
        }
        firsts.sort_unstable();
        firsts.dedup();
        (firsts, dfa.is_final(0))
    }

    /// Reconstructs a concrete [`Dfa`] (state 0 = start).
    pub fn to_dfa(&self) -> Dfa {
        if self.num_states == 0 {
            return Dfa::empty();
        }
        let mut delta: Vec<BTreeMap<u32, u32>> = vec![BTreeMap::new(); self.num_states as usize];
        for &(src, sym, dst) in &self.transitions {
            delta[src as usize].insert(sym, dst);
        }
        Dfa::from_parts(delta, self.finals.clone())
    }

    /// Reconstructs an [`Nfa`].
    pub fn to_nfa(&self) -> Nfa {
        self.to_dfa().to_nfa()
    }

    /// Enumerates up to `limit` accepted words, shortest first.
    pub fn sample_words(&self, limit: usize) -> Vec<Vec<u32>> {
        self.to_nfa().sample_words(limit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Label, StateId};

    /// Builds an NFA accepting (01)*.
    fn zero_one_star() -> Nfa {
        let mut n = Nfa::with_states(2);
        n.set_initial(StateId(0));
        n.set_final(StateId(0));
        n.add_transition(StateId(0), Label::Sym(0), StateId(1));
        n.add_transition(StateId(1), Label::Sym(1), StateId(0));
        n
    }

    /// A structurally different NFA with the same language (01)*.
    fn zero_one_star_redundant() -> Nfa {
        let mut n = Nfa::with_states(4);
        n.set_initial(StateId(0));
        n.set_final(StateId(0));
        n.set_final(StateId(2));
        n.add_transition(StateId(0), Label::Sym(0), StateId(1));
        n.add_transition(StateId(1), Label::Sym(1), StateId(2));
        n.add_transition(StateId(2), Label::Sym(0), StateId(3));
        n.add_transition(StateId(3), Label::Sym(1), StateId(2));
        n
    }

    #[test]
    fn equal_language_equal_canonical_form() {
        let a = CanonicalDfa::from_nfa(&zero_one_star());
        let b = CanonicalDfa::from_nfa(&zero_one_star_redundant());
        assert_eq!(a, b);
    }

    #[test]
    fn different_language_different_canonical_form() {
        let a = CanonicalDfa::from_nfa(&zero_one_star());
        let mut other = zero_one_star();
        other.add_transition(StateId(0), Label::Sym(5), StateId(0));
        let b = CanonicalDfa::from_nfa(&other);
        assert_ne!(a, b);
    }

    #[test]
    fn empty_language_is_zero_states() {
        let n = Nfa::with_states(3);
        let c = CanonicalDfa::from_nfa(&n);
        assert!(c.is_empty_language());
        assert_eq!(c, CanonicalDfa::empty());
        assert!(!c.accepts(&[]));
    }

    #[test]
    fn single_word_roundtrip() {
        let c = CanonicalDfa::single_word(&[4, 6, 6]);
        assert!(c.accepts(&[4, 6, 6]));
        assert!(!c.accepts(&[4, 6]));
        assert!(!c.accepts(&[]));
        // It is already canonical: re-canonicalizing is a fixpoint.
        let again = CanonicalDfa::from_dfa(&c.to_dfa());
        assert_eq!(c, again);
    }

    #[test]
    fn single_empty_word() {
        let c = CanonicalDfa::single_word(&[]);
        assert!(c.accepts(&[]));
        assert!(!c.accepts(&[0]));
        let (firsts, eps) = c.first_symbols();
        assert!(firsts.is_empty());
        assert!(eps);
    }

    #[test]
    fn first_symbols_reports_tops() {
        // Language {4w : …} ∪ {ε}: firsts = {4}, eps = true.
        let mut n = Nfa::with_states(2);
        n.set_initial(StateId(0));
        n.set_final(StateId(0));
        n.set_final(StateId(1));
        n.add_transition(StateId(0), Label::Sym(4), StateId(1));
        n.add_transition(StateId(1), Label::Sym(6), StateId(1));
        let c = CanonicalDfa::from_nfa(&n);
        let (firsts, eps) = c.first_symbols();
        assert_eq!(firsts, vec![4]);
        assert!(eps);
    }

    #[test]
    fn canonical_is_usable_as_hash_key() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(CanonicalDfa::from_nfa(&zero_one_star()));
        assert!(set.contains(&CanonicalDfa::from_nfa(&zero_one_star_redundant())));
        assert!(!set.contains(&CanonicalDfa::empty()));
    }

    #[test]
    fn sample_words_from_canonical() {
        let c = CanonicalDfa::from_nfa(&zero_one_star());
        let words = c.sample_words(3);
        assert_eq!(words[0], Vec::<u32>::new());
        assert!(words.contains(&vec![0, 1]));
    }
}
