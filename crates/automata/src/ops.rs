use std::collections::{BTreeSet, HashMap, VecDeque};

use crate::{Dfa, Label, Nfa, StateId};

/// The product NFA accepting `L(a) ∩ L(b)`.
///
/// Standard synchronous product with ε-interleaving: an ε-move of one
/// component advances alone.
pub fn intersect(a: &Nfa, b: &Nfa) -> Nfa {
    let mut out = Nfa::new();
    let mut ids: HashMap<(u32, u32), StateId> = HashMap::new();
    let mut queue: VecDeque<(u32, u32)> = VecDeque::new();

    let intern = |pair: (u32, u32),
                  out: &mut Nfa,
                  queue: &mut VecDeque<(u32, u32)>,
                  ids: &mut HashMap<(u32, u32), StateId>|
     -> StateId {
        if let Some(&s) = ids.get(&pair) {
            return s;
        }
        let s = out.add_state();
        if a.is_final(StateId(pair.0)) && b.is_final(StateId(pair.1)) {
            out.set_final(s);
        }
        ids.insert(pair, s);
        queue.push_back(pair);
        s
    };

    for sa in a.initial_states() {
        for sb in b.initial_states() {
            let s = intern((sa.0, sb.0), &mut out, &mut queue, &mut ids);
            out.set_initial(s);
        }
    }

    while let Some((pa, pb)) = queue.pop_front() {
        let src = ids[&(pa, pb)];
        for (label, ta) in a.transitions_from(StateId(pa)) {
            match label {
                Label::Eps => {
                    let dst = intern((ta.0, pb), &mut out, &mut queue, &mut ids);
                    out.add_transition(src, Label::Eps, dst);
                }
                Label::Sym(sym) => {
                    for tb in b.run_one(StateId(pb), sym) {
                        let dst = intern((ta.0, tb.0), &mut out, &mut queue, &mut ids);
                        out.add_transition(src, Label::Sym(sym), dst);
                    }
                }
            }
        }
        for (label, tb) in b.transitions_from(StateId(pb)) {
            if label == Label::Eps {
                let dst = intern((pa, tb.0), &mut out, &mut queue, &mut ids);
                out.add_transition(src, Label::Eps, dst);
            }
        }
    }
    out
}

impl Nfa {
    /// Successors of `src` under `sym` after allowing leading ε-moves.
    /// (Trailing ε-moves are handled by the caller continuing from the
    /// result; acceptance checks apply their own closure.)
    fn run_one(&self, src: StateId, sym: u32) -> Vec<StateId> {
        let mut start = BTreeSet::new();
        start.insert(src.0);
        let closed = self.eps_closure(&start);
        let mut out = Vec::new();
        for &s in &closed {
            out.extend(self.step(StateId(s), Label::Sym(sym)));
        }
        out
    }
}

/// Whether `L(a) ⊆ L(b)`, decided via `L(a) ∩ complement(L(b)) = ∅`.
///
/// The complement is taken over the union of both alphabets, so words
/// of `a` using symbols unknown to `b` correctly refute containment.
pub fn language_subset(a: &Nfa, b: &Nfa) -> bool {
    let mut alphabet = a.alphabet();
    alphabet.extend(b.alphabet());
    let not_b = Dfa::determinize(b).complement(&alphabet).to_nfa();
    intersect(a, &not_b).is_language_empty()
}

/// Whether `L(a) = L(b)` (two containment checks).
pub fn language_equal(a: &Nfa, b: &Nfa) -> bool {
    language_subset(a, b) && language_subset(b, a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CanonicalDfa;

    fn word_nfa(words: &[&[u32]]) -> Nfa {
        let mut n = Nfa::new();
        let start = n.add_state();
        n.set_initial(start);
        let fin = n.add_state();
        n.set_final(fin);
        for w in words {
            let mut cur = start;
            for (i, &sym) in w.iter().enumerate() {
                let next = if i + 1 == w.len() { fin } else { n.add_state() };
                n.add_transition(cur, Label::Sym(sym), next);
                cur = next;
            }
            if w.is_empty() {
                n.add_transition(start, Label::Eps, fin);
            }
        }
        n
    }

    #[test]
    fn intersection_of_word_sets() {
        let a = word_nfa(&[&[1, 2], &[3]]);
        let b = word_nfa(&[&[3], &[4]]);
        let i = intersect(&a, &b);
        assert!(i.accepts(&[3]));
        assert!(!i.accepts(&[1, 2]));
        assert!(!i.accepts(&[4]));
    }

    #[test]
    fn intersection_with_eps_members() {
        let a = word_nfa(&[&[], &[1]]);
        let b = word_nfa(&[&[], &[2]]);
        let i = intersect(&a, &b);
        assert!(i.accepts(&[]));
        assert!(!i.accepts(&[1]));
        assert!(!i.accepts(&[2]));
    }

    #[test]
    fn subset_checks() {
        let small = word_nfa(&[&[1]]);
        let big = word_nfa(&[&[1], &[2]]);
        assert!(language_subset(&small, &big));
        assert!(!language_subset(&big, &small));
        assert!(language_subset(&small, &small));
    }

    #[test]
    fn subset_with_foreign_symbols() {
        let a = word_nfa(&[&[9]]);
        let b = word_nfa(&[&[1]]);
        assert!(!language_subset(&a, &b));
    }

    #[test]
    fn equality_matches_canonical_equality() {
        let a = word_nfa(&[&[1], &[2], &[1, 2]]);
        let b = word_nfa(&[&[1, 2], &[2], &[1]]);
        let c = word_nfa(&[&[1], &[2]]);
        assert!(language_equal(&a, &b));
        assert!(!language_equal(&a, &c));
        assert_eq!(CanonicalDfa::from_nfa(&a), CanonicalDfa::from_nfa(&b));
        assert_ne!(CanonicalDfa::from_nfa(&a), CanonicalDfa::from_nfa(&c));
    }

    #[test]
    fn empty_language_is_subset_of_everything() {
        let empty = Nfa::with_states(1);
        let b = word_nfa(&[&[1]]);
        assert!(language_subset(&empty, &b));
        assert!(!language_subset(&b, &empty));
        assert!(language_equal(&empty, &Nfa::new()));
    }
}
