use std::collections::HashMap;

use crate::ast::{Expr, Func, Stmt, StmtKind};
use crate::BoolProgError;

/// One control-flow edge of a lowered function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CfgEdge {
    /// Source program point.
    pub from: usize,
    /// Target program point (ignored for `Return`).
    pub to: usize,
    /// The edge's effect.
    pub effect: Effect,
    /// Source position of the statement the edge was lowered from
    /// (the default span marks synthetic edges, e.g. the implicit
    /// return).
    pub span: crate::Span,
}

/// Effects a single CFG edge can have.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Effect {
    /// No effect (also used for resolved `goto`s).
    Skip,
    /// Pass only when the expression can evaluate to `true`.
    Assume(Expr),
    /// Pass only when the expression can evaluate to `false`.
    AssumeNot(Expr),
    /// Branch to the error state when the expression can be `false`;
    /// proceed when it can be `true`.
    Assert(Expr),
    /// Parallel assignment.
    Assign {
        /// Assigned variables.
        targets: Vec<String>,
        /// Right-hand sides.
        values: Vec<Expr>,
        /// Optional post-state filter.
        constrain: Option<Expr>,
    },
    /// Call `func(args)`; `to` is the return site.
    Call {
        /// Callee name.
        func: String,
        /// Argument expressions.
        args: Vec<Expr>,
    },
    /// Copy the `$ret` bit into a local/global variable (the synthetic
    /// edge following a `x := call f(…)`).
    ReadRet(String),
    /// Return from the function, optionally publishing a value via
    /// `$ret`.
    Return(Option<Expr>),
    /// Acquire the implicit global lock (blocking test-and-set).
    Lock,
    /// Release the implicit global lock.
    Unlock,
}

/// A function lowered to program points and effect edges.
///
/// Point `0` is the entry; `exit_point` carries the implicit `return`
/// executed when control falls off the end of the body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionCfg {
    /// Function name.
    pub name: String,
    /// Number of program points.
    pub num_points: usize,
    /// All edges.
    pub edges: Vec<CfgEdge>,
    /// The implicit-return point.
    pub exit_point: usize,
}

struct Lowerer {
    edges: Vec<CfgEdge>,
    num_points: usize,
    labels: HashMap<String, usize>,
    pending_gotos: Vec<(usize, String, crate::Span)>, // edge idx, label
    current_span: crate::Span,
}

impl Lowerer {
    fn fresh(&mut self) -> usize {
        let p = self.num_points;
        self.num_points += 1;
        p
    }

    fn edge(&mut self, from: usize, to: usize, effect: Effect) -> usize {
        self.edges.push(CfgEdge {
            from,
            to,
            effect,
            span: self.current_span,
        });
        self.edges.len() - 1
    }

    /// Lowers `stmts` starting at `entry`; returns the fall-through
    /// point.
    fn stmts(&mut self, entry: usize, stmts: &[Stmt]) -> Result<usize, BoolProgError> {
        let mut current = entry;
        for s in stmts {
            if let Some(label) = &s.label {
                if self.labels.insert(label.clone(), current).is_some() {
                    return Err(BoolProgError::resolve(
                        s.span,
                        format!("duplicate label '{label}'"),
                    ));
                }
            }
            current = self.stmt(current, s)?;
        }
        Ok(current)
    }

    fn stmt(&mut self, at: usize, s: &Stmt) -> Result<usize, BoolProgError> {
        self.current_span = s.span;
        match &s.kind {
            StmtKind::Skip => {
                let next = self.fresh();
                self.edge(at, next, Effect::Skip);
                Ok(next)
            }
            StmtKind::Goto(targets) => {
                for t in targets {
                    let idx = self.edge(at, usize::MAX, Effect::Skip);
                    self.pending_gotos.push((idx, t.clone(), s.span));
                }
                // Control never falls through a goto; a fresh point
                // keeps any (unreachable) successor well-formed.
                Ok(self.fresh())
            }
            StmtKind::Assume(e) => {
                let next = self.fresh();
                self.edge(at, next, Effect::Assume(e.clone()));
                Ok(next)
            }
            StmtKind::Assert(e) => {
                let next = self.fresh();
                self.edge(at, next, Effect::Assert(e.clone()));
                Ok(next)
            }
            StmtKind::Assign {
                targets,
                values,
                constrain,
            } => {
                let next = self.fresh();
                self.edge(
                    at,
                    next,
                    Effect::Assign {
                        targets: targets.clone(),
                        values: values.clone(),
                        constrain: constrain.clone(),
                    },
                );
                Ok(next)
            }
            StmtKind::Call { func, args } => {
                let next = self.fresh();
                self.edge(
                    at,
                    next,
                    Effect::Call {
                        func: func.clone(),
                        args: args.clone(),
                    },
                );
                Ok(next)
            }
            StmtKind::CallAssign { target, func, args } => {
                let recv = self.fresh();
                self.edge(
                    at,
                    recv,
                    Effect::Call {
                        func: func.clone(),
                        args: args.clone(),
                    },
                );
                let next = self.fresh();
                self.edge(recv, next, Effect::ReadRet(target.clone()));
                Ok(next)
            }
            StmtKind::Return(e) => {
                self.edge(at, at, Effect::Return(e.clone()));
                Ok(self.fresh())
            }
            StmtKind::While { cond, body } => {
                let body_entry = self.fresh();
                let after = self.fresh();
                self.edge(at, body_entry, Effect::Assume(cond.clone()));
                self.edge(at, after, Effect::AssumeNot(cond.clone()));
                let body_end = self.stmts(body_entry, body)?;
                self.edge(body_end, at, Effect::Skip);
                Ok(after)
            }
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let then_entry = self.fresh();
                let else_entry = self.fresh();
                let after = self.fresh();
                self.edge(at, then_entry, Effect::Assume(cond.clone()));
                self.edge(at, else_entry, Effect::AssumeNot(cond.clone()));
                let then_end = self.stmts(then_entry, then_branch)?;
                self.edge(then_end, after, Effect::Skip);
                let else_end = self.stmts(else_entry, else_branch)?;
                self.edge(else_end, after, Effect::Skip);
                Ok(after)
            }
            StmtKind::ThreadCreate(_) => {
                // Only meaningful in main, which is never translated to
                // a PDS; treat as skip so main's CFG stays well-formed.
                let next = self.fresh();
                self.edge(at, next, Effect::Skip);
                Ok(next)
            }
            StmtKind::Atomic(body) => {
                let inner = self.fresh();
                self.edge(at, inner, Effect::Lock);
                let body_end = self.stmts(inner, body)?;
                let next = self.fresh();
                self.edge(body_end, next, Effect::Unlock);
                Ok(next)
            }
            StmtKind::Lock => {
                let next = self.fresh();
                self.edge(at, next, Effect::Lock);
                Ok(next)
            }
            StmtKind::Unlock => {
                let next = self.fresh();
                self.edge(at, next, Effect::Unlock);
                Ok(next)
            }
        }
    }
}

/// Lowers a function body to a [`FunctionCfg`].
///
/// # Errors
///
/// Reports duplicate labels and unresolved `goto` targets.
pub fn lower_function(func: &Func) -> Result<FunctionCfg, BoolProgError> {
    let mut lowerer = Lowerer {
        edges: Vec::new(),
        num_points: 0,
        labels: HashMap::new(),
        pending_gotos: Vec::new(),
        current_span: crate::Span::default(),
    };
    let entry = lowerer.fresh();
    debug_assert_eq!(entry, 0);
    let exit_point = lowerer.stmts(entry, &func.body)?;
    // Implicit return at the fall-through point; the default span
    // marks it as synthetic.
    lowerer.current_span = crate::Span::default();
    lowerer.edge(exit_point, exit_point, Effect::Return(None));
    // Patch gotos.
    for (edge_idx, label, span) in std::mem::take(&mut lowerer.pending_gotos) {
        match lowerer.labels.get(&label) {
            Some(&point) => lowerer.edges[edge_idx].to = point,
            None => {
                return Err(BoolProgError::resolve(
                    span,
                    format!("unknown label '{label}'"),
                ))
            }
        }
    }
    Ok(FunctionCfg {
        name: func.name.clone(),
        num_points: lowerer.num_points,
        edges: lowerer.edges,
        exit_point,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn lower(src: &str) -> FunctionCfg {
        let prog = parse(src).unwrap();
        lower_function(&prog.funcs[0]).unwrap()
    }

    #[test]
    fn straight_line() {
        let cfg = lower("void f() { skip; skip; }");
        // entry -> p1 -> p2 (exit), plus the implicit return edge.
        assert_eq!(cfg.num_points, 3);
        assert_eq!(cfg.edges.len(), 3);
        assert!(matches!(cfg.edges[2].effect, Effect::Return(None)));
        assert_eq!(cfg.exit_point, 2);
    }

    #[test]
    fn while_loop_shape() {
        let cfg = lower("decl x; void f() { while (x) { skip; } }");
        let assumes = cfg
            .edges
            .iter()
            .filter(|e| matches!(e.effect, Effect::Assume(_)))
            .count();
        let assume_nots = cfg
            .edges
            .iter()
            .filter(|e| matches!(e.effect, Effect::AssumeNot(_)))
            .count();
        assert_eq!(assumes, 1);
        assert_eq!(assume_nots, 1);
        // Back edge to the loop head exists.
        assert!(cfg.edges.iter().any(|e| e.to == 0 && e.from != 0));
    }

    #[test]
    fn goto_patched() {
        let cfg = lower("void f() { top: skip; goto top; }");
        // The goto edge targets point 0 (the label of the first stmt).
        assert!(cfg
            .edges
            .iter()
            .any(|e| e.to == 0 && matches!(e.effect, Effect::Skip) && e.from != 0));
    }

    #[test]
    fn unknown_label_rejected() {
        let prog = parse("void f() { goto nowhere; }").unwrap();
        assert!(lower_function(&prog.funcs[0]).is_err());
    }

    #[test]
    fn duplicate_label_rejected() {
        let prog = parse("void f() { a: skip; a: skip; }").unwrap();
        assert!(lower_function(&prog.funcs[0]).is_err());
    }

    #[test]
    fn call_assign_gets_read_ret_edge() {
        let cfg = lower("bool g() { return 1; }");
        assert!(cfg
            .edges
            .iter()
            .any(|e| matches!(e.effect, Effect::Return(Some(_)))));
        let cfg = lower_function(
            &parse("bool g() { return 1; } void f() { decl t; t := call g(); }")
                .unwrap()
                .funcs[1],
        )
        .unwrap();
        assert!(cfg
            .edges
            .iter()
            .any(|e| matches!(e.effect, Effect::Call { .. })));
        assert!(cfg
            .edges
            .iter()
            .any(|e| matches!(&e.effect, Effect::ReadRet(t) if t == "t")));
    }

    #[test]
    fn atomic_wraps_lock_unlock() {
        let cfg = lower("void f() { atomic { skip; } }");
        assert!(cfg.edges.iter().any(|e| matches!(e.effect, Effect::Lock)));
        assert!(cfg.edges.iter().any(|e| matches!(e.effect, Effect::Unlock)));
    }

    #[test]
    fn if_else_shape() {
        let cfg = lower("decl x; void f() { if (x) { skip; } else { skip; } }");
        let joins = cfg
            .edges
            .iter()
            .filter(|e| matches!(e.effect, Effect::Skip))
            .count();
        assert!(joins >= 2, "both branches join");
    }
}
