//! A frontend for *concurrent Boolean programs* (paper App. B,
//! Fig. 6): the abstract programs produced by predicate abstraction of
//! C/Java sources, which CUBA analyzes after translation to concurrent
//! pushdown systems.
//!
//! The pipeline is [`parse`] → [`translate`]:
//!
//! * shared state = valuation of the global Boolean variables (plus an
//!   absorbing error state for failed assertions, and an implicit lock
//!   bit when `lock`/`unlock`/`atomic` are used);
//! * stack symbol = (program point, valuation of the function's local
//!   variables);
//! * a call pushes the callee frame and advances the caller's return
//!   site (the `ρ0ρ1` pushes of §2.1); a `return` pops.
//!
//! Threads are declared by `thread_create(f)` statements inside
//! `main`, which is otherwise ignored (the paper: "we mostly omit the
//! main thread").
//!
//! # Example
//!
//! ```
//! use cuba_boolprog::{parse, translate};
//! use cuba_core::{Cuba, CubaConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let source = r#"
//!     decl turn;
//!     void ping() { a: assume(!turn); b: turn := 1; c: goto a; }
//!     void pong() { d: assume(turn); e: turn := 0; f: goto d; }
//!     void main() { thread_create(ping); thread_create(pong); }
//! "#;
//! let program = parse(source)?;
//! let translated = translate(&program)?;
//! let property = translated.error_free_property();
//! let outcome = Cuba::new(translated.cpds, property).run(&CubaConfig::default())?;
//! assert!(outcome.verdict.is_safe()); // no assertions, nothing to fail
//! # Ok(())
//! # }
//! ```

mod ast;
mod cfg;
mod error;
mod lexer;
mod lint;
mod parser;
mod resolve;
mod translate;

pub use ast::{BinOp, Decl, Expr, Func, Program, Stmt, StmtKind, Type};
pub use cfg::{lower_function, CfgEdge, Effect, FunctionCfg};
pub use error::{BoolProgError, Span};
pub use lexer::{tokenize, Token, TokenKind};
pub use lint::{lint_program, simplify_cfg, Severity, SimplifyOutcome, SourceLint};
pub use parser::parse;
pub use resolve::{resolve, Resolved};
pub use translate::{translate, translate_simplified, SimplifyReport, Translated};
