use crate::{BoolProgError, Span};

/// Kinds of tokens of the Boolean-program language (Fig. 6).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident(String),
    /// `0` or `1`.
    Const(bool),
    /// `:=`
    Assign,
    /// `:`
    Colon,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `^`
    Caret,
    /// `=`
    Eq,
    /// `!=`
    Neq,
    /// `!`
    Bang,
    /// `*`
    Star,
}

/// A token with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token kind (and payload for identifiers/constants).
    pub kind: TokenKind,
    /// Where the token starts.
    pub span: Span,
}

/// Tokenizes Boolean-program source. `//` comments run to end of line.
///
/// # Errors
///
/// Returns a [`BoolProgError::Lex`] on unexpected characters.
pub fn tokenize(source: &str) -> Result<Vec<Token>, BoolProgError> {
    let mut tokens = Vec::new();
    let mut line = 1usize;
    let mut col = 1usize;
    let mut chars = source.chars().peekable();
    while let Some(&c) = chars.peek() {
        let span = Span { line, col };
        let mut bump = |chars: &mut std::iter::Peekable<std::str::Chars>| {
            let c = chars.next().expect("peeked");
            if c == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            c
        };
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                bump(&mut chars);
            }
            '/' => {
                bump(&mut chars);
                if chars.peek() == Some(&'/') {
                    while let Some(&n) = chars.peek() {
                        if n == '\n' {
                            break;
                        }
                        bump(&mut chars);
                    }
                } else {
                    return Err(BoolProgError::lex(span, "expected '//' comment"));
                }
            }
            'a'..='z' | 'A'..='Z' | '_' | '$' => {
                let mut ident = String::new();
                while let Some(&n) = chars.peek() {
                    if n.is_ascii_alphanumeric() || n == '_' || n == '$' {
                        ident.push(bump(&mut chars));
                    } else {
                        break;
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Ident(ident),
                    span,
                });
            }
            '0' | '1' => {
                let b = bump(&mut chars) == '1';
                if let Some(&n) = chars.peek() {
                    if n.is_ascii_alphanumeric() {
                        return Err(BoolProgError::lex(span, "constants are 0 or 1"));
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Const(b),
                    span,
                });
            }
            ':' => {
                bump(&mut chars);
                if chars.peek() == Some(&'=') {
                    bump(&mut chars);
                    tokens.push(Token {
                        kind: TokenKind::Assign,
                        span,
                    });
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Colon,
                        span,
                    });
                }
            }
            '!' => {
                bump(&mut chars);
                if chars.peek() == Some(&'=') {
                    bump(&mut chars);
                    tokens.push(Token {
                        kind: TokenKind::Neq,
                        span,
                    });
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Bang,
                        span,
                    });
                }
            }
            _ => {
                let kind = match c {
                    ';' => Some(TokenKind::Semi),
                    ',' => Some(TokenKind::Comma),
                    '(' => Some(TokenKind::LParen),
                    ')' => Some(TokenKind::RParen),
                    '{' => Some(TokenKind::LBrace),
                    '}' => Some(TokenKind::RBrace),
                    '&' => Some(TokenKind::Amp),
                    '|' => Some(TokenKind::Pipe),
                    '^' => Some(TokenKind::Caret),
                    '=' => Some(TokenKind::Eq),
                    '*' => Some(TokenKind::Star),
                    _ => None,
                };
                match kind {
                    Some(kind) => {
                        bump(&mut chars);
                        tokens.push(Token { kind, span });
                    }
                    None => {
                        return Err(BoolProgError::lex(
                            span,
                            format!("unexpected character '{c}'"),
                        ))
                    }
                }
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            kinds("x := !y & 1;"),
            vec![
                TokenKind::Ident("x".into()),
                TokenKind::Assign,
                TokenKind::Bang,
                TokenKind::Ident("y".into()),
                TokenKind::Amp,
                TokenKind::Const(true),
                TokenKind::Semi,
            ]
        );
    }

    #[test]
    fn labels_and_assign_disambiguate() {
        assert_eq!(
            kinds("a: b := c"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Colon,
                TokenKind::Ident("b".into()),
                TokenKind::Assign,
                TokenKind::Ident("c".into()),
            ]
        );
    }

    #[test]
    fn neq_and_bang() {
        assert_eq!(
            kinds("a != !b"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Neq,
                TokenKind::Bang,
                TokenKind::Ident("b".into()),
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            kinds("x // all of this ignored ; := \n y"),
            vec![TokenKind::Ident("x".into()), TokenKind::Ident("y".into())]
        );
    }

    #[test]
    fn positions_tracked() {
        let tokens = tokenize("ab\n  cd").unwrap();
        assert_eq!(tokens[0].span, Span { line: 1, col: 1 });
        assert_eq!(tokens[1].span, Span { line: 2, col: 3 });
    }

    #[test]
    fn lex_errors() {
        assert!(tokenize("#").is_err());
        assert!(tokenize("0abc").is_err());
        assert!(tokenize("/x").is_err());
    }

    #[test]
    fn nondet_star() {
        assert_eq!(kinds("x := *;").len(), 4);
    }
}
