//! Source-level diagnostics and the pre-translation simplification
//! pass for Boolean programs.
//!
//! Two entry points:
//!
//! * [`simplify_cfg`] — constant propagation and dead-branch pruning
//!   on one lowered [`FunctionCfg`]: edges guarded by constant-false
//!   conditions are deleted, constant guards are rewritten to `skip`,
//!   and edges leaving CFG-unreachable program points are dropped.
//!   Program points and their ids are never renumbered, so the stack
//!   symbol layout of the translation is unchanged — only the
//!   `valuations × edges` product the translator enumerates shrinks.
//!   Every deleted edge corresponds to transitions that could never
//!   fire, so the translated system's reachable behaviors are
//!   identical.
//! * [`lint_program`] — an AST scan for findings that need source
//!   structure rather than control flow: variables that are written
//!   but never read.
//!
//! Both report [`SourceLint`]s carrying 1-based source positions.

use std::collections::{HashMap, HashSet, VecDeque};

use crate::ast::{Decl, Expr, Program, Stmt, StmtKind};
use crate::cfg::{CfgEdge, Effect, FunctionCfg};
use crate::Span;

/// Severity of a source-level diagnostic (mirrors the model-level
/// lint levels of the `cuba-reduce` crate, kept separate so the
/// frontend stays dependency-free).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational.
    Note,
    /// Suspicious: almost certainly dead weight or a mistake.
    Warn,
    /// Definite error.
    Deny,
}

/// One source-level diagnostic with a 1-based position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceLint {
    /// Stable kebab-case identifier.
    pub code: &'static str,
    /// Severity.
    pub severity: Severity,
    /// Human-readable description.
    pub message: String,
    /// Source position of the finding.
    pub span: Span,
}

impl SourceLint {
    fn new(code: &'static str, severity: Severity, message: impl Into<String>, span: Span) -> Self {
        SourceLint {
            code,
            severity,
            message: message.into(),
            span,
        }
    }
}

/// Result of [`simplify_cfg`].
#[derive(Debug, Clone)]
pub struct SimplifyOutcome {
    /// The simplified control-flow graph (same points, fewer edges).
    pub cfg: FunctionCfg,
    /// Edges removed (constant-false guards + unreachable code).
    pub edges_removed: usize,
    /// Program points that became (or were) unreachable from entry.
    pub unreachable_points: usize,
    /// Findings worth surfacing to the user.
    pub lints: Vec<SourceLint>,
}

/// Simplifies one function CFG: folds constant guards, prunes edges
/// that can never be taken, and drops edges leaving unreachable
/// program points. See the module docs for why the translation of the
/// result has identical reachable behavior.
pub fn simplify_cfg(cfg: &FunctionCfg) -> SimplifyOutcome {
    let mut lints: Vec<SourceLint> = Vec::new();
    let mut kept: Vec<CfgEdge> = Vec::new();
    for edge in &cfg.edges {
        match &edge.effect {
            Effect::Assume(e) => match e.fold_const() {
                Some(false) => {
                    lints.push(SourceLint::new(
                        "dead-branch",
                        Severity::Warn,
                        "condition is always false; the guarded code is unreachable",
                        edge.span,
                    ));
                }
                Some(true) => kept.push(CfgEdge {
                    effect: Effect::Skip,
                    ..edge.clone()
                }),
                None => kept.push(edge.clone()),
            },
            // A constant-true negative branch (`while (1)`'s exit) is
            // pruned silently: spinning forever is idiomatic, and any
            // genuinely dead code after the loop is reported by the
            // reachability pass below.
            Effect::AssumeNot(e) => match e.fold_const() {
                Some(true) => {}
                Some(false) => kept.push(CfgEdge {
                    effect: Effect::Skip,
                    ..edge.clone()
                }),
                None => kept.push(edge.clone()),
            },
            Effect::Assert(e) => match e.fold_const() {
                Some(true) => {
                    lints.push(SourceLint::new(
                        "constant-assert",
                        Severity::Note,
                        "assertion always holds",
                        edge.span,
                    ));
                    kept.push(CfgEdge {
                        effect: Effect::Skip,
                        ..edge.clone()
                    });
                }
                Some(false) => {
                    lints.push(SourceLint::new(
                        "constant-assert",
                        Severity::Warn,
                        "assertion always fails",
                        edge.span,
                    ));
                    kept.push(edge.clone());
                }
                None => kept.push(edge.clone()),
            },
            _ => kept.push(edge.clone()),
        }
    }
    let const_removed = cfg.edges.len() - kept.len();

    // Forward reachability over the kept edges; entry is point 0.
    let mut reachable = vec![false; cfg.num_points.max(1)];
    reachable[0] = true;
    let mut queue: VecDeque<usize> = VecDeque::new();
    queue.push_back(0);
    let mut out: HashMap<usize, Vec<usize>> = HashMap::new();
    for e in &kept {
        out.entry(e.from).or_default().push(e.to);
    }
    while let Some(p) = queue.pop_front() {
        for &t in out.get(&p).into_iter().flatten() {
            if !reachable[t] {
                reachable[t] = true;
                queue.push_back(t);
            }
        }
    }
    let mut dead_spans: HashSet<(usize, usize)> = HashSet::new();
    let before = kept.len();
    kept.retain(|e| {
        if reachable[e.from] {
            return true;
        }
        // One finding per source statement; synthetic edges (default
        // span) stay silent.
        if e.span != Span::default() && dead_spans.insert((e.span.line, e.span.col)) {
            lints.push(SourceLint::new(
                "dead-branch",
                Severity::Warn,
                "unreachable code",
                e.span,
            ));
        }
        false
    });
    let edges_removed = const_removed + (before - kept.len());
    let unreachable_points = reachable.iter().filter(|&&r| !r).count();
    lints.sort_by_key(|l| (l.span.line, l.span.col));
    SimplifyOutcome {
        cfg: FunctionCfg {
            name: cfg.name.clone(),
            num_points: cfg.num_points,
            edges: kept,
            exit_point: cfg.exit_point,
        },
        edges_removed,
        unreachable_points,
        lints,
    }
}

/// Per-variable read/write bookkeeping for the write-only scan.
#[derive(Default)]
struct Usage {
    read: bool,
    written: bool,
}

fn record_reads(e: &Expr, usage: &mut HashMap<String, Usage>) {
    let mut names = Vec::new();
    e.vars(&mut names);
    for name in names {
        usage.entry(name).or_default().read = true;
    }
}

fn record_write(name: &str, usage: &mut HashMap<String, Usage>) {
    usage.entry(name.to_owned()).or_default().written = true;
}

fn scan_stmts(stmts: &[Stmt], usage: &mut HashMap<String, Usage>) {
    for s in stmts {
        match &s.kind {
            StmtKind::Skip | StmtKind::Goto(_) | StmtKind::Lock | StmtKind::Unlock => {}
            StmtKind::ThreadCreate(_) => {}
            StmtKind::Assume(e) | StmtKind::Assert(e) => record_reads(e, usage),
            StmtKind::Assign {
                targets,
                values,
                constrain,
            } => {
                for t in targets {
                    record_write(t, usage);
                }
                for v in values {
                    record_reads(v, usage);
                }
                if let Some(c) = constrain {
                    record_reads(c, usage);
                }
            }
            StmtKind::CallAssign { target, args, .. } => {
                record_write(target, usage);
                for a in args {
                    record_reads(a, usage);
                }
            }
            StmtKind::Call { args, .. } => {
                for a in args {
                    record_reads(a, usage);
                }
            }
            StmtKind::Return(e) => {
                if let Some(e) = e {
                    record_reads(e, usage);
                }
            }
            StmtKind::While { cond, body } => {
                record_reads(cond, usage);
                scan_stmts(body, usage);
            }
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                record_reads(cond, usage);
                scan_stmts(then_branch, usage);
                scan_stmts(else_branch, usage);
            }
            StmtKind::Atomic(body) => scan_stmts(body, usage),
        }
    }
}

fn write_only_decls(
    decls: &[Decl],
    usage: &HashMap<String, Usage>,
    scope: &str,
    lints: &mut Vec<SourceLint>,
) {
    for decl in decls {
        for name in &decl.names {
            let Some(u) = usage.get(name) else { continue };
            if u.written && !u.read {
                lints.push(SourceLint::new(
                    "write-only-variable",
                    Severity::Warn,
                    format!("{scope} variable `{name}` is assigned but never read"),
                    decl.span,
                ));
            }
        }
    }
}

/// Scans a parsed program for variables that are written but never
/// read. Locals are checked per function; globals across the whole
/// program (any read anywhere counts). Parameters and variables that
/// are never mentioned at all are left alone.
pub fn lint_program(program: &Program) -> Vec<SourceLint> {
    let mut lints = Vec::new();
    let mut global_usage: HashMap<String, Usage> = HashMap::new();
    for func in &program.funcs {
        let mut usage: HashMap<String, Usage> = HashMap::new();
        scan_stmts(&func.body, &mut usage);
        let local_names: HashSet<&String> = func
            .decls
            .iter()
            .flat_map(|d| d.names.iter())
            .chain(func.params.iter())
            .collect();
        write_only_decls(&func.decls, &usage, "local", &mut lints);
        // Everything not shadowed by a local flows into the global
        // tally.
        for (name, u) in usage {
            if local_names.contains(&name) {
                continue;
            }
            let g = global_usage.entry(name).or_default();
            g.read |= u.read;
            g.written |= u.written;
        }
    }
    write_only_decls(&program.decls, &global_usage, "global", &mut lints);
    lints.sort_by_key(|l| (l.span.line, l.span.col));
    lints
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::lower_function;
    use crate::parse;

    fn simplify(src: &str, func: usize) -> SimplifyOutcome {
        let prog = parse(src).unwrap();
        simplify_cfg(&lower_function(&prog.funcs[func]).unwrap())
    }

    #[test]
    fn clean_function_is_untouched() {
        let out = simplify("decl x; void f() { if (x) { x := 0; } }", 0);
        assert_eq!(out.edges_removed, 0);
        assert!(out.lints.is_empty());
    }

    #[test]
    fn constant_false_assume_prunes_branch() {
        let out = simplify(
            "decl x; void f() { if (0) { x := 1; } else { x := 0; } }",
            0,
        );
        assert!(out.edges_removed >= 2, "guard edge + dead assignment");
        assert!(out
            .lints
            .iter()
            .any(|l| l.code == "dead-branch" && l.message.contains("always false")));
        assert!(out
            .lints
            .iter()
            .any(|l| l.code == "dead-branch" && l.message.contains("unreachable code")));
        // Point ids survive: the symbol layout must not shift.
        let orig = lower_function(
            &parse("decl x; void f() { if (0) { x := 1; } else { x := 0; } }")
                .unwrap()
                .funcs[0],
        )
        .unwrap();
        assert_eq!(out.cfg.num_points, orig.num_points);
    }

    #[test]
    fn spin_loop_is_not_linted() {
        let out = simplify("decl x; void f() { while (1) { x := 1; } }", 0);
        // The loop-exit edge is pruned, but silently.
        assert!(out.edges_removed >= 1);
        assert!(out.lints.is_empty(), "{:?}", out.lints);
    }

    #[test]
    fn code_after_spin_loop_is_dead() {
        let out = simplify("decl x; void f() { while (1) { skip; } x := 1; }", 0);
        assert!(out
            .lints
            .iter()
            .any(|l| l.code == "dead-branch" && l.message == "unreachable code"));
    }

    #[test]
    fn constant_asserts_are_reported() {
        let out = simplify("void f() { assert(1); }", 0);
        assert!(out
            .lints
            .iter()
            .any(|l| l.code == "constant-assert" && l.severity == Severity::Note));
        let out = simplify("void f() { assert(0); }", 0);
        assert!(out
            .lints
            .iter()
            .any(|l| l.code == "constant-assert" && l.severity == Severity::Warn));
    }

    #[test]
    fn write_only_global_found() {
        let prog =
            parse("decl g h; void f() { g := 1; assert(h); } void main() { thread_create(f); }")
                .unwrap();
        let lints = lint_program(&prog);
        assert_eq!(lints.len(), 1);
        assert_eq!(lints[0].code, "write-only-variable");
        assert!(lints[0].message.contains("`g`"));
        assert_eq!(lints[0].span.line, 1);
    }

    #[test]
    fn write_only_local_found_per_function() {
        let prog = parse(
            "void f() { decl t; t := 1; } void g() { decl t; t := 1; assert(t); } \
             void main() { thread_create(f); }",
        )
        .unwrap();
        let lints = lint_program(&prog);
        assert_eq!(lints.len(), 1);
        assert!(lints[0].message.contains("local variable `t`"));
    }

    #[test]
    fn read_variables_are_clean() {
        let prog = parse(
            "decl x; void f() { x := 1; } void g() { while (!x) { skip; } } \
             void main() { thread_create(f); thread_create(g); }",
        )
        .unwrap();
        assert!(lint_program(&prog).is_empty());
    }
}
