/// A source position (1-based line and column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

impl std::fmt::Display for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Errors from the Boolean-program frontend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BoolProgError {
    /// Lexical error.
    Lex {
        /// Where.
        span: Span,
        /// What.
        message: String,
    },
    /// Syntax error.
    Parse {
        /// Where.
        span: Span,
        /// What.
        message: String,
    },
    /// Name-resolution or type error.
    Resolve {
        /// Where.
        span: Span,
        /// What.
        message: String,
    },
    /// The program is too large to translate (the valuation
    /// enumeration would explode).
    TooLarge(String),
}

impl BoolProgError {
    pub(crate) fn lex(span: Span, message: impl Into<String>) -> Self {
        BoolProgError::Lex {
            span,
            message: message.into(),
        }
    }
    pub(crate) fn parse(span: Span, message: impl Into<String>) -> Self {
        BoolProgError::Parse {
            span,
            message: message.into(),
        }
    }
    pub(crate) fn resolve(span: Span, message: impl Into<String>) -> Self {
        BoolProgError::Resolve {
            span,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for BoolProgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BoolProgError::Lex { span, message } => write!(f, "lex error at {span}: {message}"),
            BoolProgError::Parse { span, message } => {
                write!(f, "parse error at {span}: {message}")
            }
            BoolProgError::Resolve { span, message } => {
                write!(f, "semantic error at {span}: {message}")
            }
            BoolProgError::TooLarge(what) => write!(f, "program too large: {what}"),
        }
    }
}

impl std::error::Error for BoolProgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_positions() {
        let e = BoolProgError::parse(Span { line: 3, col: 7 }, "expected ';'");
        assert_eq!(e.to_string(), "parse error at 3:7: expected ';'");
    }
}
