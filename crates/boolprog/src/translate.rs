use std::collections::HashMap;

use cuba_core::Property;
use cuba_pds::{Cpds, CpdsBuilder, PdsBuilder, SharedState, StackSym};

use crate::ast::{Expr, Program, Type};
use crate::cfg::{lower_function, Effect, FunctionCfg};
use crate::lint::{simplify_cfg, SourceLint};
use crate::resolve::{resolve, Resolved};
use crate::BoolProgError;

/// Size guardrails for the valuation enumeration.
const MAX_GLOBALS: usize = 12;
const MAX_LOCALS: usize = 8;
const MAX_SYMBOLS: u64 = 200_000;

/// Result of translating a Boolean program to a CPDS.
#[derive(Debug, Clone)]
pub struct Translated {
    /// The concurrent pushdown system (one thread per `thread_create`
    /// in `main`, in order).
    pub cpds: Cpds,
    /// The absorbing shared state entered by failed assertions.
    pub error_state: SharedState,
    /// Global variable names (index = bit position in the shared
    /// state encoding).
    pub globals: Vec<String>,
    /// Whether the implicit `$lock` bit was appended to the globals.
    pub has_lock_bit: bool,
    /// Whether the implicit `$ret` bit was appended to the globals.
    pub has_ret_bit: bool,
    /// Per function: the base stack-symbol id and local-variable names
    /// (for decoding stack symbols in diagnostics).
    pub functions: Vec<FunctionLayout>,
}

/// Stack-symbol layout of one function.
#[derive(Debug, Clone)]
pub struct FunctionLayout {
    /// Function name.
    pub name: String,
    /// First stack-symbol id of this function.
    pub base: u32,
    /// Number of program points.
    pub num_points: usize,
    /// Local variable names (parameters first).
    pub locals: Vec<String>,
}

impl Translated {
    /// The property "no assertion ever fails".
    pub fn error_free_property(&self) -> Property {
        Property::never_shared(self.error_state)
    }

    /// Decodes a stack symbol to `(function, program point, locals)`.
    pub fn describe_symbol(&self, sym: StackSym) -> Option<(String, usize, u32)> {
        for layout in self.functions.iter().rev() {
            if sym.0 >= layout.base {
                let offset = sym.0 - layout.base;
                let width = 1u32 << layout.locals.len();
                return Some((
                    layout.name.clone(),
                    (offset / width) as usize,
                    offset % width,
                ));
            }
        }
        None
    }
}

/// What the pre-translation simplification pass did to a program.
#[derive(Debug, Clone, Default)]
pub struct SimplifyReport {
    /// CFG edges removed across all functions (constant-false guards
    /// plus unreachable code).
    pub edges_removed: usize,
    /// Program points unreachable from their function's entry.
    pub unreachable_points: usize,
    /// Source-level findings from the simplification (dead branches,
    /// constant asserts).
    pub lints: Vec<SourceLint>,
}

/// Translates a parsed Boolean program into a [`Cpds`].
///
/// Encoding (see the crate docs): shared state = global valuation in
/// `0..2^G` plus the absorbing error state `2^G`; stack symbol =
/// `base(f) + point·2^L + locals`. Non-parameter locals start `0`;
/// assign `*` explicitly for a nondeterministic start. Globals start
/// `0` as well — model nondeterministic initialization as the paper's
/// Fig. 2 does, with an initializing first statement.
///
/// # Errors
///
/// Propagates resolution errors and rejects programs whose valuation
/// spaces exceed the guardrails ([`BoolProgError::TooLarge`]).
pub fn translate(program: &Program) -> Result<Translated, BoolProgError> {
    translate_inner(program, false).map(|(t, _)| t)
}

/// Like [`translate`], but runs [`simplify_cfg`] on every lowered
/// function first, so transitions that could never fire (constant-false
/// branches, unreachable code) are not emitted at all. The stack-symbol
/// layout is unchanged — simplification never renumbers program points
/// — so reachable behavior, and hence any verdict over the translated
/// system, is preserved.
///
/// # Errors
///
/// Same failure modes as [`translate`].
pub fn translate_simplified(
    program: &Program,
) -> Result<(Translated, SimplifyReport), BoolProgError> {
    translate_inner(program, true)
}

fn translate_inner(
    program: &Program,
    simplify: bool,
) -> Result<(Translated, SimplifyReport), BoolProgError> {
    let resolved = resolve(program)?;
    if resolved.thread_entries.is_empty() {
        return Err(BoolProgError::resolve(
            Default::default(),
            "main creates no threads",
        ));
    }

    // Shared-state layout: user globals, then $lock, then $ret.
    let mut globals = resolved.globals.clone();
    let lock_bit = resolved.uses_lock.then(|| {
        globals.push("$lock".to_owned());
        globals.len() - 1
    });
    let ret_bit = resolved.uses_ret.then(|| {
        globals.push("$ret".to_owned());
        globals.len() - 1
    });
    if globals.len() > MAX_GLOBALS {
        return Err(BoolProgError::TooLarge(format!(
            "{} global bits (max {MAX_GLOBALS})",
            globals.len()
        )));
    }
    let num_valuations: u32 = 1 << globals.len();
    let error_state = SharedState(num_valuations);
    let num_shared = num_valuations + 1;

    // Lower every function except main; compute the symbol layout.
    let mut cfgs: Vec<Option<FunctionCfg>> = Vec::new();
    let mut layouts: Vec<FunctionLayout> = Vec::new();
    let mut bases: HashMap<String, (u32, usize)> = HashMap::new(); // name -> (base, func idx)
    let mut next_base: u64 = 0;
    let mut report = SimplifyReport::default();
    for (i, f) in program.funcs.iter().enumerate() {
        if f.name == "main" {
            cfgs.push(None);
            continue;
        }
        if resolved.locals[i].len() > MAX_LOCALS {
            return Err(BoolProgError::TooLarge(format!(
                "function '{}' has {} locals (max {MAX_LOCALS})",
                f.name,
                resolved.locals[i].len()
            )));
        }
        let mut cfg = lower_function(f)?;
        if simplify {
            let outcome = simplify_cfg(&cfg);
            cfg = outcome.cfg;
            report.edges_removed += outcome.edges_removed;
            report.unreachable_points += outcome.unreachable_points;
            report.lints.extend(outcome.lints);
        }
        let width = 1u64 << resolved.locals[i].len();
        let base = next_base;
        next_base += cfg.num_points as u64 * width;
        if next_base > MAX_SYMBOLS {
            return Err(BoolProgError::TooLarge(format!(
                "stack alphabet exceeds {MAX_SYMBOLS} symbols"
            )));
        }
        bases.insert(f.name.clone(), (base as u32, i));
        layouts.push(FunctionLayout {
            name: f.name.clone(),
            base: base as u32,
            num_points: cfg.num_points,
            locals: resolved.locals[i].clone(),
        });
        cfgs.push(Some(cfg));
    }
    let alphabet_size = next_base as u32;

    let ctx = Translator {
        program,
        resolved: &resolved,
        globals: &globals,
        lock_bit,
        ret_bit,
        error_state,
        bases: &bases,
    };

    // All threads share one PDS containing the whole program's code.
    let mut pds = PdsBuilder::new(num_shared, alphabet_size.max(1));
    for (i, cfg) in cfgs.iter().enumerate() {
        let Some(cfg) = cfg else { continue };
        ctx.emit_function(&mut pds, i, cfg)?;
    }
    let pds = pds
        .build()
        .map_err(|e| BoolProgError::TooLarge(e.to_string()))?;

    let mut builder = CpdsBuilder::new(num_shared, SharedState(0));
    for entry in &resolved.thread_entries {
        let (base, fi) = bases[entry];
        let width = 1u32 << resolved.locals[fi].len();
        // Entry symbol: point 0, all locals 0.
        let _ = width;
        builder = builder.thread(pds.clone(), [StackSym(base)]);
    }
    let cpds = builder
        .build()
        .map_err(|e| BoolProgError::TooLarge(e.to_string()))?;

    report.lints.sort_by_key(|l| (l.span.line, l.span.col));
    Ok((
        Translated {
            cpds,
            error_state,
            globals: resolved.globals.clone(),
            has_lock_bit: lock_bit.is_some(),
            has_ret_bit: ret_bit.is_some(),
            functions: layouts,
        },
        report,
    ))
}

struct Translator<'a> {
    program: &'a Program,
    resolved: &'a Resolved,
    globals: &'a [String],
    lock_bit: Option<usize>,
    ret_bit: Option<usize>,
    error_state: SharedState,
    bases: &'a HashMap<String, (u32, usize)>,
}

impl Translator<'_> {
    fn emit_function(
        &self,
        pds: &mut PdsBuilder,
        func_idx: usize,
        cfg: &FunctionCfg,
    ) -> Result<(), BoolProgError> {
        let func = &self.program.funcs[func_idx];
        let locals = &self.resolved.locals[func_idx];
        let width = 1u32 << locals.len();
        let (base, _) = self.bases[&func.name];
        let sym = |point: usize, lvals: u32| StackSym(base + point as u32 * width + lvals);

        for g in 0..(1u32 << self.globals.len()) {
            for l in 0..width {
                let env = Env {
                    globals: self.globals,
                    locals,
                    g,
                    l,
                };
                for edge in &cfg.edges {
                    let from = sym(edge.from, l);
                    match &edge.effect {
                        Effect::Skip => {
                            pds.overwrite(SharedState(g), from, SharedState(g), sym(edge.to, l))
                                .expect("ids in range");
                        }
                        Effect::Assume(e) => {
                            if env.can_be(e, true) {
                                pds.overwrite(
                                    SharedState(g),
                                    from,
                                    SharedState(g),
                                    sym(edge.to, l),
                                )
                                .expect("ids in range");
                            }
                        }
                        Effect::AssumeNot(e) => {
                            if env.can_be(e, false) {
                                pds.overwrite(
                                    SharedState(g),
                                    from,
                                    SharedState(g),
                                    sym(edge.to, l),
                                )
                                .expect("ids in range");
                            }
                        }
                        Effect::Assert(e) => {
                            if env.can_be(e, false) {
                                pds.overwrite(SharedState(g), from, self.error_state, from)
                                    .expect("ids in range");
                            }
                            if env.can_be(e, true) {
                                pds.overwrite(
                                    SharedState(g),
                                    from,
                                    SharedState(g),
                                    sym(edge.to, l),
                                )
                                .expect("ids in range");
                            }
                        }
                        Effect::Assign {
                            targets,
                            values,
                            constrain,
                        } => {
                            for (g2, l2) in env.assign_outcomes(targets, values, constrain) {
                                pds.overwrite(
                                    SharedState(g),
                                    from,
                                    SharedState(g2),
                                    sym(edge.to, l2),
                                )
                                .expect("ids in range");
                            }
                        }
                        Effect::Call { func: callee, args } => {
                            let (callee_base, callee_idx) = self.bases[callee];
                            let callee_locals = &self.resolved.locals[callee_idx];
                            for arg_vals in env.arg_tuples(args) {
                                // Parameters first, other locals 0.
                                let mut lv = 0u32;
                                for (i, v) in arg_vals.iter().enumerate() {
                                    if *v {
                                        lv |= 1 << i;
                                    }
                                }
                                debug_assert!(arg_vals.len() <= callee_locals.len());
                                pds.push(
                                    SharedState(g),
                                    from,
                                    SharedState(g),
                                    StackSym(callee_base + lv),
                                    sym(edge.to, l),
                                )
                                .expect("ids in range");
                            }
                        }
                        Effect::ReadRet(target) => {
                            let ret = self.ret_bit.expect("ReadRet implies the $ret bit exists");
                            let v = (g >> ret) & 1 == 1;
                            let (g2, l2) = env.write_var(target, v);
                            pds.overwrite(SharedState(g), from, SharedState(g2), sym(edge.to, l2))
                                .expect("ids in range");
                        }
                        Effect::Return(expr) => {
                            match expr {
                                Some(e) => {
                                    let ret =
                                        self.ret_bit.expect("return value implies the $ret bit");
                                    for v in env.values(e) {
                                        let g2 = set_bit(g, ret, v);
                                        pds.pop(SharedState(g), from, SharedState(g2))
                                            .expect("ids in range");
                                    }
                                }
                                None => {
                                    pds.pop(SharedState(g), from, SharedState(g))
                                        .expect("ids in range");
                                }
                            }
                            // A bool function falling off the end would
                            // leave $ret stale; resolve() guarantees an
                            // explicit return in bool functions is the
                            // only way to publish a value.
                            let _ = func.ty == Type::Bool;
                        }
                        Effect::Lock => {
                            let lock = self.lock_bit.expect("Lock implies the $lock bit");
                            if (g >> lock) & 1 == 0 {
                                let g2 = set_bit(g, lock, true);
                                pds.overwrite(
                                    SharedState(g),
                                    from,
                                    SharedState(g2),
                                    sym(edge.to, l),
                                )
                                .expect("ids in range");
                            }
                        }
                        Effect::Unlock => {
                            let lock = self.lock_bit.expect("Unlock implies the $lock bit");
                            let g2 = set_bit(g, lock, false);
                            pds.overwrite(SharedState(g), from, SharedState(g2), sym(edge.to, l))
                                .expect("ids in range");
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

fn set_bit(bits: u32, idx: usize, v: bool) -> u32 {
    if v {
        bits | (1 << idx)
    } else {
        bits & !(1 << idx)
    }
}

/// A concrete (globals, locals) valuation with variable lookup.
struct Env<'a> {
    globals: &'a [String],
    locals: &'a [String],
    g: u32,
    l: u32,
}

impl Env<'_> {
    fn lookup(&self, name: &str) -> bool {
        // Locals shadow globals.
        if let Some(i) = self.locals.iter().position(|n| n == name) {
            return (self.l >> i) & 1 == 1;
        }
        if let Some(i) = self.globals.iter().position(|n| n == name) {
            return (self.g >> i) & 1 == 1;
        }
        false
    }

    fn values(&self, e: &Expr) -> Vec<bool> {
        e.eval_nondet(&|name| self.lookup(name))
    }

    fn can_be(&self, e: &Expr, wanted: bool) -> bool {
        self.values(e).contains(&wanted)
    }

    fn write_var(&self, name: &str, v: bool) -> (u32, u32) {
        if let Some(i) = self.locals.iter().position(|n| n == name) {
            return (self.g, set_bit(self.l, i, v));
        }
        if let Some(i) = self.globals.iter().position(|n| n == name) {
            return (set_bit(self.g, i, v), self.l);
        }
        (self.g, self.l)
    }

    /// All post-valuations of a parallel assignment (nondeterminism in
    /// the right-hand sides, filtered by the `constrain` clause, which
    /// is evaluated over the *post* state).
    fn assign_outcomes(
        &self,
        targets: &[String],
        values: &[Expr],
        constrain: &Option<Expr>,
    ) -> Vec<(u32, u32)> {
        let mut tuples: Vec<Vec<bool>> = vec![Vec::new()];
        for v in values {
            let choices = self.values(v);
            let mut next = Vec::new();
            for t in &tuples {
                for &c in &choices {
                    let mut t2 = t.clone();
                    t2.push(c);
                    next.push(t2);
                }
            }
            tuples = next;
        }
        let mut out = Vec::new();
        for t in tuples {
            let (mut g2, mut l2) = (self.g, self.l);
            for (name, &v) in targets.iter().zip(&t) {
                let env2 = Env {
                    globals: self.globals,
                    locals: self.locals,
                    g: g2,
                    l: l2,
                };
                let (ng, nl) = env2.write_var(name, v);
                g2 = ng;
                l2 = nl;
            }
            if let Some(c) = constrain {
                let post = Env {
                    globals: self.globals,
                    locals: self.locals,
                    g: g2,
                    l: l2,
                };
                if !post.can_be(c, true) {
                    continue;
                }
            }
            out.push((g2, l2));
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// All argument-value tuples for a call.
    fn arg_tuples(&self, args: &[Expr]) -> Vec<Vec<bool>> {
        let mut tuples: Vec<Vec<bool>> = vec![Vec::new()];
        for a in args {
            let choices = self.values(a);
            let mut next = Vec::new();
            for t in &tuples {
                for &c in &choices {
                    let mut t2 = t.clone();
                    t2.push(c);
                    next.push(t2);
                }
            }
            tuples = next;
        }
        tuples
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;
    use cuba_core::{Cuba, CubaConfig, Verdict};

    fn run(src: &str) -> Verdict {
        let program = parse(src).unwrap();
        let t = translate(&program).unwrap();
        Cuba::new(t.cpds.clone(), t.error_free_property())
            .run(&CubaConfig::default())
            .unwrap()
            .verdict
    }

    #[test]
    fn assertion_failure_detected() {
        let v = run(r#"
            decl x;
            void a() { x := 1; }
            void b() { assert(!x); }
            void main() { thread_create(a); thread_create(b); }
        "#);
        assert!(v.is_unsafe(), "{v:?}");
    }

    #[test]
    fn assume_blocks_violation() {
        // assume(0) never passes, so the failing assert is dead code.
        let v = run(r#"
            void b() { assume(0); assert(0); }
            void main() { thread_create(b); }
        "#);
        assert!(v.is_safe(), "{v:?}");
    }

    #[test]
    fn check_then_act_race_is_found() {
        // The classic TOCTOU: another thread flips x between the
        // assume and the assert — a 3-context counterexample.
        let v = run(r#"
            decl x;
            void a() { x := 1; }
            void b() { assume(!x); assert(!x); }
            void main() { thread_create(a); thread_create(b); }
        "#);
        match v {
            Verdict::Unsafe { k, witness } => {
                assert_eq!(k, 3);
                assert!(witness.is_some());
            }
            other => panic!("expected Unsafe at 3, got {other:?}"),
        }
    }

    #[test]
    fn lock_protects_invariant() {
        // Without the atomic block the check-then-set would race.
        let v = run(r#"
            decl busy taken;
            void worker() {
              atomic {
                assume(!busy);
                busy := 1;
              }
              assert(busy);
              busy := 0;
            }
            void main() { thread_create(worker); thread_create(worker); }
        "#);
        assert!(v.is_safe(), "{v:?}");
    }

    #[test]
    fn recursion_translates_to_pushes() {
        let src = r#"
            decl x;
            void f() { if (*) { call f(); } x := 1; }
            void main() { thread_create(f); }
        "#;
        let t = translate(&parse(src).unwrap()).unwrap();
        let pushes = t
            .cpds
            .thread(0)
            .actions()
            .iter()
            .filter(|a| a.push_symbols().is_some())
            .count();
        assert!(pushes > 0, "recursive call must produce push actions");
        // Unbounded recursion within one context: FCR fails, as Fig. 2.
        assert!(!cuba_core::check_fcr(&t.cpds).holds());
    }

    #[test]
    fn return_value_flows_back() {
        let v = run(r#"
            decl g;
            bool one() { return 1; }
            void f() { decl t; t := call one(); assert(t); g := 1; }
            void main() { thread_create(f); }
        "#);
        assert!(v.is_safe(), "{v:?}");
        let v = run(r#"
            bool zero() { return 0; }
            void f() { decl t; t := call zero(); assert(t); }
            void main() { thread_create(f); }
        "#);
        assert!(v.is_unsafe(), "{v:?}");
    }

    #[test]
    fn parameters_are_passed() {
        let v = run(r#"
            void check(p) { assert(p); }
            void f() { call check(1); }
            void main() { thread_create(f); }
        "#);
        assert!(v.is_safe(), "{v:?}");
        let v = run(r#"
            void check(p) { assert(p); }
            void f() { call check(0); }
            void main() { thread_create(f); }
        "#);
        assert!(v.is_unsafe(), "{v:?}");
    }

    #[test]
    fn constrain_filters_outcomes() {
        // x,y := *,* constrain x != y — then x = y is unreachable.
        let v = run(r#"
            decl x y;
            void f() { x, y := *, * constrain x != y; assert(x != y); }
            void main() { thread_create(f); }
        "#);
        assert!(v.is_safe(), "{v:?}");
    }

    #[test]
    fn goto_nondeterminism() {
        let v = run(r#"
            decl x;
            void f() { start: goto a b; a: x := 1; goto done; b: x := 0; goto done; done: assert(x); }
            void main() { thread_create(f); }
        "#);
        assert!(v.is_unsafe(), "one goto branch violates the assertion");
    }

    #[test]
    fn while_loop_translates() {
        let v = run(r#"
            decl x;
            void setter() { x := 1; }
            void waiter() { while (!x) { skip; } assert(x); }
            void main() { thread_create(setter); thread_create(waiter); }
        "#);
        assert!(v.is_safe(), "{v:?}");
    }

    #[test]
    fn too_many_globals_rejected() {
        let decls: Vec<String> = (0..13).map(|i| format!("decl g{i};")).collect();
        let src = format!(
            "{} void f() {{ skip; }} void main() {{ thread_create(f); }}",
            decls.join(" ")
        );
        let e = translate(&parse(&src).unwrap()).unwrap_err();
        assert!(matches!(e, BoolProgError::TooLarge(_)));
    }

    #[test]
    fn simplified_translation_shrinks_but_agrees() {
        // assume(0) makes the failing assert unreachable; the
        // simplified translation drops those transitions entirely yet
        // reaches the same verdict.
        let src = r#"
            decl x;
            void a() { x := 1; }
            void b() { if (0) { assert(0); } else { assert(!x | x); } }
            void main() { thread_create(a); thread_create(b); }
        "#;
        let program = parse(src).unwrap();
        let plain = translate(&program).unwrap();
        let (simplified, report) = translate_simplified(&program).unwrap();
        assert!(report.edges_removed > 0);
        assert!(report
            .lints
            .iter()
            .any(|l| l.code == "dead-branch" || l.code == "constant-assert"));
        let count = |t: &Translated| {
            (0..t.cpds.num_threads())
                .map(|i| t.cpds.thread(i).actions().len())
                .sum::<usize>()
        };
        assert!(count(&simplified) < count(&plain), "fewer transitions");
        let verdict = |t: &Translated| {
            Cuba::new(t.cpds.clone(), t.error_free_property())
                .run(&CubaConfig::default())
                .unwrap()
                .verdict
        };
        assert!(verdict(&plain).is_safe());
        assert!(verdict(&simplified).is_safe());
    }

    #[test]
    fn simplified_translation_is_identity_on_clean_programs() {
        let src = r#"
            decl x;
            void a() { x := 1; }
            void b() { assume(!x); assert(!x); }
            void main() { thread_create(a); thread_create(b); }
        "#;
        let program = parse(src).unwrap();
        let plain = translate(&program).unwrap();
        let (simplified, report) = translate_simplified(&program).unwrap();
        assert_eq!(report.edges_removed, 0);
        assert!(report.lints.is_empty());
        assert_eq!(
            cuba_core::fingerprint(&plain.cpds),
            cuba_core::fingerprint(&simplified.cpds)
        );
    }

    #[test]
    fn symbol_description_roundtrip() {
        let src = r#"
            void f() { decl a; a := 1; skip; }
            void main() { thread_create(f); }
        "#;
        let t = translate(&parse(src).unwrap()).unwrap();
        let entry = t.cpds.initial_stack(0).top().unwrap();
        let (name, point, locals) = t.describe_symbol(entry).unwrap();
        assert_eq!(name, "f");
        assert_eq!(point, 0);
        assert_eq!(locals, 0);
    }
}
