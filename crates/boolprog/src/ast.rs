use crate::Span;

/// A complete Boolean program: global declarations plus functions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// Global variable declarations.
    pub decls: Vec<Decl>,
    /// Function definitions.
    pub funcs: Vec<Func>,
}

/// A `decl x y z;` declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decl {
    /// Declared names.
    pub names: Vec<String>,
    /// Where the declaration starts.
    pub span: Span,
}

/// Function return types (`void` or `bool`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Type {
    /// No return value.
    Void,
    /// One Boolean return value.
    Bool,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Func {
    /// Return type.
    pub ty: Type,
    /// Name.
    pub name: String,
    /// Parameter names.
    pub params: Vec<String>,
    /// Local declarations.
    pub decls: Vec<Decl>,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Where the definition starts.
    pub span: Span,
}

/// A statement with an optional label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stmt {
    /// Optional label (`l: stmt`).
    pub label: Option<String>,
    /// The statement proper.
    pub kind: StmtKind,
    /// Where the statement starts.
    pub span: Span,
}

/// Statement kinds (Fig. 6).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StmtKind {
    /// `skip`.
    Skip,
    /// `goto l1 l2 …` — nondeterministic jump.
    Goto(Vec<String>),
    /// `assume(e)`.
    Assume(Expr),
    /// `assert(e)`.
    Assert(Expr),
    /// `x1, x2 := e1, e2 [constrain e]` — parallel assignment.
    Assign {
        /// Assigned variables.
        targets: Vec<String>,
        /// Right-hand sides (same arity).
        values: Vec<Expr>,
        /// Optional filter over the *post* state.
        constrain: Option<Expr>,
    },
    /// `x := call f(e1, …)` — call with Boolean result.
    CallAssign {
        /// Variable receiving the return value.
        target: String,
        /// Callee.
        func: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// `call f(e1, …)` — void call.
    Call {
        /// Callee.
        func: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// `return [e]`.
    Return(Option<Expr>),
    /// `while (e) { … }`.
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `if (e) { … } else { … }` (else optional).
    If {
        /// Branch condition.
        cond: Expr,
        /// Then branch.
        then_branch: Vec<Stmt>,
        /// Else branch.
        else_branch: Vec<Stmt>,
    },
    /// `thread_create(f)` — only meaningful inside `main`.
    ThreadCreate(String),
    /// `atomic { … }` — modeled via the implicit global lock.
    Atomic(Vec<Stmt>),
    /// `lock` — acquire the implicit global lock (blocking test&set).
    Lock,
    /// `unlock` — release the implicit global lock.
    Unlock,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `&`
    And,
    /// `|`
    Or,
    /// `^`
    Xor,
    /// `=`
    Eq,
    /// `!=`
    Neq,
}

/// Boolean expressions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// `0` or `1`.
    Const(bool),
    /// A variable reference.
    Var(String),
    /// The nondeterministic choice `*`.
    Nondet,
    /// `!e`.
    Not(Box<Expr>),
    /// `e1 op e2`.
    Bin(BinOp, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// All possible values of the expression under `lookup`, taking
    /// every `*` both ways. The result is deduplicated, so it has one
    /// or two elements.
    pub fn eval_nondet(&self, lookup: &dyn Fn(&str) -> bool) -> Vec<bool> {
        let mut out = match self {
            Expr::Const(b) => vec![*b],
            Expr::Var(name) => vec![lookup(name)],
            Expr::Nondet => vec![false, true],
            Expr::Not(inner) => inner.eval_nondet(lookup).iter().map(|b| !b).collect(),
            Expr::Bin(op, lhs, rhs) => {
                let mut vals = Vec::new();
                for l in lhs.eval_nondet(lookup) {
                    for r in rhs.eval_nondet(lookup) {
                        vals.push(match op {
                            BinOp::And => l && r,
                            BinOp::Or => l || r,
                            BinOp::Xor => l ^ r,
                            BinOp::Eq => l == r,
                            BinOp::Neq => l != r,
                        });
                    }
                }
                vals
            }
        };
        out.sort();
        out.dedup();
        out
    }

    /// The expression's value when it is a compile-time constant:
    /// `Some(b)` iff every valuation and every `*` resolution yields
    /// `b`. Short-circuits `0 & e` and `1 | e`, so a constant verdict
    /// does not require both operands to be constant.
    pub fn fold_const(&self) -> Option<bool> {
        match self {
            Expr::Const(b) => Some(*b),
            Expr::Var(_) | Expr::Nondet => None,
            Expr::Not(inner) => inner.fold_const().map(|b| !b),
            Expr::Bin(op, lhs, rhs) => {
                let (l, r) = (lhs.fold_const(), rhs.fold_const());
                match op {
                    BinOp::And if l == Some(false) || r == Some(false) => Some(false),
                    BinOp::Or if l == Some(true) || r == Some(true) => Some(true),
                    BinOp::And => Some(l? && r?),
                    BinOp::Or => Some(l? || r?),
                    BinOp::Xor => Some(l? ^ r?),
                    BinOp::Eq => Some(l? == r?),
                    BinOp::Neq => Some(l? != r?),
                }
            }
        }
    }

    /// Variables referenced by the expression.
    pub fn vars(&self, out: &mut Vec<String>) {
        match self {
            Expr::Const(_) | Expr::Nondet => {}
            Expr::Var(name) => out.push(name.clone()),
            Expr::Not(inner) => inner.vars(out),
            Expr::Bin(_, lhs, rhs) => {
                lhs.vars(out);
                rhs.vars(out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env<'a>(pairs: &'a [(&'a str, bool)]) -> impl Fn(&str) -> bool + 'a {
        move |name: &str| {
            pairs
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, v)| *v)
                .unwrap_or(false)
        }
    }

    #[test]
    fn eval_deterministic() {
        let e = Expr::Bin(
            BinOp::And,
            Box::new(Expr::Var("a".into())),
            Box::new(Expr::Not(Box::new(Expr::Var("b".into())))),
        );
        let lookup = env(&[("a", true), ("b", false)]);
        assert_eq!(e.eval_nondet(&lookup), vec![true]);
        let lookup = env(&[("a", true), ("b", true)]);
        assert_eq!(e.eval_nondet(&lookup), vec![false]);
    }

    #[test]
    fn eval_nondet_star() {
        let e = Expr::Bin(
            BinOp::Or,
            Box::new(Expr::Nondet),
            Box::new(Expr::Const(false)),
        );
        let lookup = env(&[]);
        assert_eq!(e.eval_nondet(&lookup), vec![false, true]);
        // `* | 1` is always true.
        let e = Expr::Bin(
            BinOp::Or,
            Box::new(Expr::Nondet),
            Box::new(Expr::Const(true)),
        );
        assert_eq!(e.eval_nondet(&lookup), vec![true]);
    }

    #[test]
    fn eq_and_neq() {
        let lookup = env(&[("a", true)]);
        let eq = Expr::Bin(
            BinOp::Eq,
            Box::new(Expr::Var("a".into())),
            Box::new(Expr::Const(true)),
        );
        assert_eq!(eq.eval_nondet(&lookup), vec![true]);
        let neq = Expr::Bin(
            BinOp::Neq,
            Box::new(Expr::Var("a".into())),
            Box::new(Expr::Const(true)),
        );
        assert_eq!(neq.eval_nondet(&lookup), vec![false]);
    }

    #[test]
    fn vars_collected() {
        let e = Expr::Bin(
            BinOp::Xor,
            Box::new(Expr::Var("x".into())),
            Box::new(Expr::Not(Box::new(Expr::Var("y".into())))),
        );
        let mut vars = Vec::new();
        e.vars(&mut vars);
        assert_eq!(vars, vec!["x".to_owned(), "y".to_owned()]);
    }
}
