use std::collections::{HashMap, HashSet};

use crate::ast::{Expr, Func, Program, Stmt, StmtKind, Type};
use crate::BoolProgError;

/// Name-resolution results: symbol tables the translator consumes.
#[derive(Debug, Clone)]
pub struct Resolved {
    /// Global variable names, in declaration order.
    pub globals: Vec<String>,
    /// Function name → index into `program.funcs`.
    pub func_index: HashMap<String, usize>,
    /// Per function: local variable names (parameters first).
    pub locals: Vec<Vec<String>>,
    /// Thread entry functions, in `thread_create` order inside `main`.
    pub thread_entries: Vec<String>,
    /// Whether `lock`/`unlock`/`atomic` appear anywhere.
    pub uses_lock: bool,
    /// Whether any call has a Boolean result (needs the `$ret` bit).
    pub uses_ret: bool,
}

/// Resolves names and checks static well-formedness.
///
/// # Errors
///
/// Reports duplicate or undefined variables, unknown callees, arity
/// mismatches, `return e` in `void` functions, `thread_create` outside
/// `main` or targeting a function with parameters, and a missing
/// `main`.
pub fn resolve(program: &Program) -> Result<Resolved, BoolProgError> {
    let mut globals = Vec::new();
    let mut seen_globals = HashSet::new();
    for d in &program.decls {
        for n in &d.names {
            if !seen_globals.insert(n.clone()) {
                return Err(BoolProgError::resolve(
                    d.span,
                    format!("duplicate global variable '{n}'"),
                ));
            }
            globals.push(n.clone());
        }
    }

    let mut func_index = HashMap::new();
    for (i, f) in program.funcs.iter().enumerate() {
        if func_index.insert(f.name.clone(), i).is_some() {
            return Err(BoolProgError::resolve(
                f.span,
                format!("duplicate function '{}'", f.name),
            ));
        }
    }
    if !func_index.contains_key("main") {
        return Err(BoolProgError::resolve(
            Default::default(),
            "program has no 'main' function",
        ));
    }

    let mut locals = Vec::new();
    for f in &program.funcs {
        let mut names: Vec<String> = f.params.clone();
        let mut seen: HashSet<String> = f.params.iter().cloned().collect();
        if seen.len() != f.params.len() {
            return Err(BoolProgError::resolve(f.span, "duplicate parameter name"));
        }
        for d in &f.decls {
            for n in &d.names {
                if !seen.insert(n.clone()) {
                    return Err(BoolProgError::resolve(
                        d.span,
                        format!("duplicate local variable '{n}'"),
                    ));
                }
                names.push(n.clone());
            }
        }
        locals.push(names);
    }

    let mut ctx = Ctx {
        program,
        globals: &globals,
        func_index: &func_index,
        locals: &locals,
        uses_lock: false,
        uses_ret: false,
        thread_entries: Vec::new(),
    };
    for (i, f) in program.funcs.iter().enumerate() {
        ctx.check_func(i, f)?;
    }
    let (thread_entries, uses_lock, uses_ret) = (ctx.thread_entries, ctx.uses_lock, ctx.uses_ret);

    Ok(Resolved {
        globals,
        func_index,
        locals,
        thread_entries,
        uses_lock,
        uses_ret,
    })
}

struct Ctx<'a> {
    program: &'a Program,
    globals: &'a [String],
    func_index: &'a HashMap<String, usize>,
    locals: &'a [Vec<String>],
    uses_lock: bool,
    uses_ret: bool,
    thread_entries: Vec<String>,
}

impl Ctx<'_> {
    fn check_func(&mut self, idx: usize, f: &Func) -> Result<(), BoolProgError> {
        self.check_stmts(idx, f, &f.body)
    }

    fn var_visible(&self, func_idx: usize, name: &str) -> bool {
        self.globals.iter().any(|g| g == name) || self.locals[func_idx].iter().any(|l| l == name)
    }

    fn check_expr(
        &self,
        func_idx: usize,
        e: &Expr,
        span: crate::Span,
    ) -> Result<(), BoolProgError> {
        let mut vars = Vec::new();
        e.vars(&mut vars);
        for v in vars {
            if !self.var_visible(func_idx, &v) {
                return Err(BoolProgError::resolve(
                    span,
                    format!("undefined variable '{v}'"),
                ));
            }
        }
        Ok(())
    }

    fn check_stmts(
        &mut self,
        func_idx: usize,
        f: &Func,
        stmts: &[Stmt],
    ) -> Result<(), BoolProgError> {
        for s in stmts {
            self.check_stmt(func_idx, f, s)?;
        }
        Ok(())
    }

    fn check_stmt(&mut self, func_idx: usize, f: &Func, s: &Stmt) -> Result<(), BoolProgError> {
        match &s.kind {
            StmtKind::Skip | StmtKind::Goto(_) => Ok(()),
            StmtKind::Assume(e) | StmtKind::Assert(e) => self.check_expr(func_idx, e, s.span),
            StmtKind::Assign {
                targets,
                values,
                constrain,
            } => {
                for t in targets {
                    if !self.var_visible(func_idx, t) {
                        return Err(BoolProgError::resolve(
                            s.span,
                            format!("undefined assignment target '{t}'"),
                        ));
                    }
                }
                for v in values {
                    self.check_expr(func_idx, v, s.span)?;
                }
                if let Some(c) = constrain {
                    self.check_expr(func_idx, c, s.span)?;
                }
                Ok(())
            }
            StmtKind::Call { func, args } => self.check_call(func_idx, func, args, None, s),
            StmtKind::CallAssign { target, func, args } => {
                if !self.var_visible(func_idx, target) {
                    return Err(BoolProgError::resolve(
                        s.span,
                        format!("undefined call-assignment target '{target}'"),
                    ));
                }
                self.uses_ret = true;
                self.check_call(func_idx, func, args, Some(target), s)
            }
            StmtKind::Return(expr) => match (f.ty, expr) {
                (Type::Void, Some(_)) => Err(BoolProgError::resolve(
                    s.span,
                    "void function returns a value",
                )),
                (Type::Bool, None) => Err(BoolProgError::resolve(
                    s.span,
                    "bool function returns no value",
                )),
                (_, Some(e)) => {
                    self.uses_ret = true;
                    self.check_expr(func_idx, e, s.span)
                }
                (_, None) => Ok(()),
            },
            StmtKind::While { cond, body } => {
                self.check_expr(func_idx, cond, s.span)?;
                self.check_stmts(func_idx, f, body)
            }
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                self.check_expr(func_idx, cond, s.span)?;
                self.check_stmts(func_idx, f, then_branch)?;
                self.check_stmts(func_idx, f, else_branch)
            }
            StmtKind::ThreadCreate(target) => {
                if f.name != "main" {
                    return Err(BoolProgError::resolve(
                        s.span,
                        "thread_create is only supported inside main",
                    ));
                }
                let Some(&ti) = self.func_index.get(target) else {
                    return Err(BoolProgError::resolve(
                        s.span,
                        format!("unknown thread entry '{target}'"),
                    ));
                };
                if !self.program.funcs[ti].params.is_empty() {
                    return Err(BoolProgError::resolve(
                        s.span,
                        "thread entry functions take no parameters",
                    ));
                }
                self.thread_entries.push(target.clone());
                Ok(())
            }
            StmtKind::Atomic(body) => {
                self.uses_lock = true;
                self.check_stmts(func_idx, f, body)
            }
            StmtKind::Lock | StmtKind::Unlock => {
                self.uses_lock = true;
                Ok(())
            }
        }
    }

    fn check_call(
        &mut self,
        func_idx: usize,
        callee: &str,
        args: &[Expr],
        ret_target: Option<&str>,
        s: &Stmt,
    ) -> Result<(), BoolProgError> {
        let Some(&ci) = self.func_index.get(callee) else {
            return Err(BoolProgError::resolve(
                s.span,
                format!("unknown function '{callee}'"),
            ));
        };
        let callee_func = &self.program.funcs[ci];
        if callee_func.params.len() != args.len() {
            return Err(BoolProgError::resolve(
                s.span,
                format!(
                    "'{callee}' expects {} arguments, got {}",
                    callee_func.params.len(),
                    args.len()
                ),
            ));
        }
        if ret_target.is_some() && callee_func.ty != Type::Bool {
            return Err(BoolProgError::resolve(
                s.span,
                format!("'{callee}' is void and returns nothing"),
            ));
        }
        for a in args {
            self.check_expr(func_idx, a, s.span)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn check(src: &str) -> Result<Resolved, BoolProgError> {
        resolve(&parse(src).unwrap())
    }

    #[test]
    fn resolves_simple_program() {
        let r = check("decl g; void f() { decl l; l := g; } void main() { thread_create(f); }")
            .unwrap();
        assert_eq!(r.globals, vec!["g"]);
        assert_eq!(r.thread_entries, vec!["f"]);
        assert!(!r.uses_lock);
        assert!(!r.uses_ret);
    }

    #[test]
    fn undefined_variable_rejected() {
        let e = check("void f() { x := 1; } void main() { thread_create(f); }").unwrap_err();
        assert!(e.to_string().contains("undefined"));
    }

    #[test]
    fn duplicate_names_rejected() {
        assert!(check("decl g; decl g; void main() {}").is_err());
        assert!(check("void f(p) { decl p; } void main() { thread_create(f); }").is_err());
        assert!(check("void f() {} void f() {} void main() {}").is_err());
    }

    #[test]
    fn missing_main_rejected() {
        let e = check("void f() {}").unwrap_err();
        assert!(e.to_string().contains("main"));
    }

    #[test]
    fn return_type_checked() {
        assert!(check("void f() { return 1; } void main() { thread_create(f); }").is_err());
        assert!(check("bool f() { return; } void main() {}").is_err());
        assert!(check("bool f() { return 1; } void main() {}").is_ok());
    }

    #[test]
    fn call_arity_checked() {
        let e = check(
            "void f(a, b) { skip; } void g() { call f(1); } void main() { thread_create(g); }",
        )
        .unwrap_err();
        assert!(e.to_string().contains("expects 2"));
    }

    #[test]
    fn call_assign_needs_bool_callee() {
        let e = check(
            "void f() { skip; } void g() { decl t; t := call f(); } void main() { thread_create(g); }",
        )
        .unwrap_err();
        assert!(e.to_string().contains("void"));
    }

    #[test]
    fn thread_create_restrictions() {
        assert!(check("void f() { thread_create(f); } void main() {}").is_err());
        assert!(check("void f(p) { skip; } void main() { thread_create(f); }").is_err());
        assert!(check("void main() { thread_create(nosuch); }").is_err());
    }

    #[test]
    fn lock_and_ret_flags() {
        let r = check(
            "bool f() { return 1; } void g() { decl t; lock; t := call f(); unlock; } void main() { thread_create(g); }",
        )
        .unwrap();
        assert!(r.uses_lock);
        assert!(r.uses_ret);
    }
}
