use crate::ast::{BinOp, Decl, Expr, Func, Program, Stmt, StmtKind, Type};
use crate::lexer::{tokenize, Token, TokenKind};
use crate::{BoolProgError, Span};

/// Parses Boolean-program source into an AST.
///
/// # Errors
///
/// Returns lexical or syntax errors with source positions.
pub fn parse(source: &str) -> Result<Program, BoolProgError> {
    let tokens = tokenize(source)?;
    let mut parser = Parser { tokens, pos: 0 };
    parser.program()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos).map(|t| &t.kind)
    }

    fn peek2(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos + 1).map(|t| &t.kind)
    }

    fn span(&self) -> Span {
        self.tokens
            .get(self.pos)
            .map(|t| t.span)
            .unwrap_or_else(|| self.tokens.last().map(|t| t.span).unwrap_or_default())
    }

    fn bump(&mut self) -> Option<TokenKind> {
        let t = self.tokens.get(self.pos).map(|t| t.kind.clone());
        self.pos += 1;
        t
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<(), BoolProgError> {
        if self.peek() == Some(kind) {
            self.pos += 1;
            Ok(())
        } else {
            Err(BoolProgError::parse(
                self.span(),
                format!("expected {what}, found {:?}", self.peek()),
            ))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, BoolProgError> {
        match self.peek().cloned() {
            Some(TokenKind::Ident(name)) => {
                self.pos += 1;
                Ok(name)
            }
            other => Err(BoolProgError::parse(
                self.span(),
                format!("expected {what}, found {other:?}"),
            )),
        }
    }

    fn is_ident(&self, text: &str) -> bool {
        matches!(self.peek(), Some(TokenKind::Ident(k)) if k == text)
    }

    fn program(&mut self) -> Result<Program, BoolProgError> {
        let mut decls = Vec::new();
        let mut funcs = Vec::new();
        while self.peek().is_some() {
            if self.is_ident("decl") {
                decls.push(self.decl()?);
            } else if self.is_ident("void") || self.is_ident("bool") {
                funcs.push(self.func()?);
            } else {
                return Err(BoolProgError::parse(
                    self.span(),
                    "expected 'decl', 'void' or 'bool' at top level",
                ));
            }
        }
        Ok(Program { decls, funcs })
    }

    fn decl(&mut self) -> Result<Decl, BoolProgError> {
        let span = self.span();
        self.bump(); // 'decl'
        let mut names = vec![self.ident("variable name")?];
        while matches!(self.peek(), Some(TokenKind::Ident(_))) {
            names.push(self.ident("variable name")?);
        }
        self.expect(&TokenKind::Semi, "';' after declaration")?;
        Ok(Decl { names, span })
    }

    fn func(&mut self) -> Result<Func, BoolProgError> {
        let span = self.span();
        let ty = if self.is_ident("void") {
            Type::Void
        } else {
            Type::Bool
        };
        self.bump();
        let name = self.ident("function name")?;
        self.expect(&TokenKind::LParen, "'(' after function name")?;
        let mut params = Vec::new();
        if !matches!(self.peek(), Some(TokenKind::RParen)) {
            params.push(self.ident("parameter name")?);
            while matches!(self.peek(), Some(TokenKind::Comma)) {
                self.bump();
                params.push(self.ident("parameter name")?);
            }
        }
        self.expect(&TokenKind::RParen, "')' after parameters")?;
        self.expect(&TokenKind::LBrace, "'{' to open function body")?;
        let mut decls = Vec::new();
        while self.is_ident("decl") {
            decls.push(self.decl()?);
        }
        let body = self.stmt_list()?;
        self.expect(&TokenKind::RBrace, "'}' to close function body")?;
        Ok(Func {
            ty,
            name,
            params,
            decls,
            body,
            span,
        })
    }

    fn stmt_list(&mut self) -> Result<Vec<Stmt>, BoolProgError> {
        let mut stmts = Vec::new();
        while !matches!(self.peek(), Some(TokenKind::RBrace) | None) {
            stmts.push(self.stmt()?);
        }
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, BoolProgError> {
        let span = self.span();
        // Optional label: ident ':' not followed by '='.
        let label = if matches!(self.peek(), Some(TokenKind::Ident(_)))
            && self.peek2() == Some(&TokenKind::Colon)
        {
            let l = self.ident("label")?;
            self.bump(); // ':'
            Some(l)
        } else {
            None
        };
        let kind = self.stmt_kind()?;
        // Block statements carry no trailing ';'.
        if !matches!(
            kind,
            StmtKind::While { .. } | StmtKind::If { .. } | StmtKind::Atomic(_)
        ) {
            self.expect(&TokenKind::Semi, "';' after statement")?;
        }
        Ok(Stmt { label, kind, span })
    }

    fn stmt_kind(&mut self) -> Result<StmtKind, BoolProgError> {
        if self.is_ident("skip") {
            self.bump();
            return Ok(StmtKind::Skip);
        }
        if self.is_ident("goto") {
            self.bump();
            let mut targets = vec![self.ident("label")?];
            while matches!(self.peek(), Some(TokenKind::Ident(_))) {
                targets.push(self.ident("label")?);
            }
            return Ok(StmtKind::Goto(targets));
        }
        if self.is_ident("assume") || self.is_ident("assert") {
            let is_assume = self.is_ident("assume");
            self.bump();
            self.expect(&TokenKind::LParen, "'('")?;
            let e = self.expr()?;
            self.expect(&TokenKind::RParen, "')'")?;
            return Ok(if is_assume {
                StmtKind::Assume(e)
            } else {
                StmtKind::Assert(e)
            });
        }
        if self.is_ident("return") {
            self.bump();
            if matches!(self.peek(), Some(TokenKind::Semi)) {
                return Ok(StmtKind::Return(None));
            }
            let e = self.expr()?;
            return Ok(StmtKind::Return(Some(e)));
        }
        if self.is_ident("while") {
            self.bump();
            self.expect(&TokenKind::LParen, "'('")?;
            let cond = self.expr()?;
            self.expect(&TokenKind::RParen, "')'")?;
            self.expect(&TokenKind::LBrace, "'{'")?;
            let body = self.stmt_list()?;
            self.expect(&TokenKind::RBrace, "'}'")?;
            return Ok(StmtKind::While { cond, body });
        }
        if self.is_ident("if") {
            self.bump();
            self.expect(&TokenKind::LParen, "'('")?;
            let cond = self.expr()?;
            self.expect(&TokenKind::RParen, "')'")?;
            self.expect(&TokenKind::LBrace, "'{'")?;
            let then_branch = self.stmt_list()?;
            self.expect(&TokenKind::RBrace, "'}'")?;
            let else_branch = if self.is_ident("else") {
                self.bump();
                self.expect(&TokenKind::LBrace, "'{'")?;
                let e = self.stmt_list()?;
                self.expect(&TokenKind::RBrace, "'}'")?;
                e
            } else {
                Vec::new()
            };
            return Ok(StmtKind::If {
                cond,
                then_branch,
                else_branch,
            });
        }
        if self.is_ident("thread_create") {
            self.bump();
            self.expect(&TokenKind::LParen, "'('")?;
            let f = self.ident("function name")?;
            self.expect(&TokenKind::RParen, "')'")?;
            return Ok(StmtKind::ThreadCreate(f));
        }
        if self.is_ident("atomic") {
            self.bump();
            self.expect(&TokenKind::LBrace, "'{'")?;
            let body = self.stmt_list()?;
            self.expect(&TokenKind::RBrace, "'}'")?;
            return Ok(StmtKind::Atomic(body));
        }
        if self.is_ident("lock") {
            self.bump();
            return Ok(StmtKind::Lock);
        }
        if self.is_ident("unlock") {
            self.bump();
            return Ok(StmtKind::Unlock);
        }
        if self.is_ident("call") {
            self.bump();
            let func = self.ident("function name")?;
            let args = self.call_args()?;
            return Ok(StmtKind::Call { func, args });
        }
        // Assignment forms: targets := values, or x := call f(...).
        let first = self.ident("statement")?;
        let mut targets = vec![first];
        while matches!(self.peek(), Some(TokenKind::Comma)) {
            self.bump();
            targets.push(self.ident("assignment target")?);
        }
        self.expect(&TokenKind::Assign, "':='")?;
        if self.is_ident("call") {
            self.bump();
            if targets.len() != 1 {
                return Err(BoolProgError::parse(
                    self.span(),
                    "call assignment takes exactly one target",
                ));
            }
            let func = self.ident("function name")?;
            let args = self.call_args()?;
            return Ok(StmtKind::CallAssign {
                target: targets.pop().expect("one target"),
                func,
                args,
            });
        }
        let mut values = vec![self.expr()?];
        while matches!(self.peek(), Some(TokenKind::Comma)) {
            self.bump();
            values.push(self.expr()?);
        }
        let constrain = if self.is_ident("constrain") {
            self.bump();
            Some(self.expr()?)
        } else {
            None
        };
        if targets.len() != values.len() {
            return Err(BoolProgError::parse(
                self.span(),
                format!(
                    "parallel assignment arity mismatch: {} targets, {} values",
                    targets.len(),
                    values.len()
                ),
            ));
        }
        Ok(StmtKind::Assign {
            targets,
            values,
            constrain,
        })
    }

    fn call_args(&mut self) -> Result<Vec<Expr>, BoolProgError> {
        self.expect(&TokenKind::LParen, "'('")?;
        let mut args = Vec::new();
        if !matches!(self.peek(), Some(TokenKind::RParen)) {
            args.push(self.expr()?);
            while matches!(self.peek(), Some(TokenKind::Comma)) {
                self.bump();
                args.push(self.expr()?);
            }
        }
        self.expect(&TokenKind::RParen, "')'")?;
        Ok(args)
    }

    /// Expressions: unary `!` binds tightest; binary operators are
    /// left-associative with equal precedence (parenthesize to mix, as
    /// the grammar in Fig. 6 is ambiguous anyway).
    fn expr(&mut self) -> Result<Expr, BoolProgError> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                Some(TokenKind::Amp) => BinOp::And,
                Some(TokenKind::Pipe) => BinOp::Or,
                Some(TokenKind::Caret) => BinOp::Xor,
                Some(TokenKind::Eq) => BinOp::Eq,
                Some(TokenKind::Neq) => BinOp::Neq,
                _ => break,
            };
            self.bump();
            let rhs = self.unary()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, BoolProgError> {
        match self.peek().cloned() {
            Some(TokenKind::Bang) => {
                self.bump();
                Ok(Expr::Not(Box::new(self.unary()?)))
            }
            Some(TokenKind::LParen) => {
                self.bump();
                let e = self.expr()?;
                self.expect(&TokenKind::RParen, "')'")?;
                Ok(e)
            }
            Some(TokenKind::Const(b)) => {
                self.bump();
                Ok(Expr::Const(b))
            }
            Some(TokenKind::Star) => {
                self.bump();
                Ok(Expr::Nondet)
            }
            Some(TokenKind::Ident(name)) => {
                self.bump();
                Ok(Expr::Var(name))
            }
            other => Err(BoolProgError::parse(
                self.span(),
                format!("expected expression, found {other:?}"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_fig2_style_program() {
        let src = r#"
            decl x;
            void foo() {
              l2: if (*) { l3: call foo(); }
              l4: while (x) { skip; }
              l5: x := 1;
            }
            void bar() {
              l6: if (*) { l7: call bar(); }
              l8: while (!x) { skip; }
              l9: x := 0;
            }
            void main() {
              thread_create(foo);
              thread_create(bar);
            }
        "#;
        let prog = parse(src).unwrap();
        assert_eq!(prog.decls.len(), 1);
        assert_eq!(prog.funcs.len(), 3);
        assert_eq!(prog.funcs[0].name, "foo");
        assert_eq!(prog.funcs[2].body.len(), 2);
    }

    #[test]
    fn parses_parallel_assign_with_constrain() {
        let src = "void f() { a, b := b, a constrain a != b; }";
        let prog = parse(src).unwrap();
        match &prog.funcs[0].body[0].kind {
            StmtKind::Assign {
                targets,
                values,
                constrain,
            } => {
                assert_eq!(targets, &["a", "b"]);
                assert_eq!(values.len(), 2);
                assert!(constrain.is_some());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_call_assign_and_return() {
        let src = "bool g(p) { return !p; } void f() { decl t; t := call g(1); }";
        let prog = parse(src).unwrap();
        assert_eq!(prog.funcs[0].ty, Type::Bool);
        match &prog.funcs[1].body[0].kind {
            StmtKind::CallAssign { target, func, args } => {
                assert_eq!(target, "t");
                assert_eq!(func, "g");
                assert_eq!(args.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_goto_with_multiple_targets() {
        let src = "void f() { a: goto a b; b: skip; }";
        let prog = parse(src).unwrap();
        match &prog.funcs[0].body[0].kind {
            StmtKind::Goto(targets) => assert_eq!(targets, &["a", "b"]),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_atomic_lock_unlock() {
        let src = "void f() { lock; atomic { skip; }  unlock; }";
        let prog = parse(src).unwrap();
        assert_eq!(prog.funcs[0].body.len(), 3);
        assert!(matches!(prog.funcs[0].body[1].kind, StmtKind::Atomic(_)));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let err = parse("void f() { a, b := 1; }").unwrap_err();
        assert!(err.to_string().contains("arity"));
    }

    #[test]
    fn error_positions() {
        let err = parse("void f() { skip }").unwrap_err(); // missing ';'
        assert!(err.to_string().contains("expected ';'"));
    }

    #[test]
    fn labels_attach_to_statements() {
        let prog = parse("void f() { here: skip; }").unwrap();
        assert_eq!(prog.funcs[0].body[0].label.as_deref(), Some("here"));
    }
}
