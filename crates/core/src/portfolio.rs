//! The portfolio scheduler: the paper's §6 race as a first-class,
//! configurable object, plus batch verification.
//!
//! ```text
//! Input: a CPDS Pn and a property C
//! 1: if Pn satisfies FCR then
//! 2:     Alg 3(T(Rk)) ∥ Scheme 1(Rk) ∥ CBA refuter
//! 3: else
//! 4:     Alg 3(T(Sk)) ∥ Scheme 1(Sk)
//! ```
//!
//! The CBA arm is the Qadeer–Rehof-style context-bounded refuter
//! (Fig. 5's comparator): it can only win the race with a bug, never
//! with a proof. Arms run round-robin on one core
//! ([`Portfolio::run`]) or on OS threads ([`Portfolio::run_parallel`]);
//! [`Portfolio::run_suite`] verifies many problems with bounded
//! parallelism — the service-shaped entry point the benchmark
//! harnesses build on.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use cuba_pds::Cpds;

use crate::engine::EngineKind;
use crate::{
    AnalysisSession, CubaError, CubaOutcome, ProfileMap, Property, SchedulePolicy, SessionConfig,
    SessionEvent, SuiteCache, SystemArtifacts, Verdict,
};

/// How a portfolio picks its engine lineup for a problem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Lineup {
    /// The paper's §6 policy, decided per problem by the FCR check:
    /// explicit arms plus a CBA refuter under FCR, symbolic arms
    /// otherwise.
    Auto,
    /// A fixed lineup (arms needing FCR are dropped per problem when
    /// the system lacks it).
    Fixed(Vec<EngineKind>),
}

/// A reusable analysis portfolio: a lineup policy plus a
/// [`SessionConfig`].
#[derive(Debug, Clone)]
pub struct Portfolio {
    lineup: Lineup,
    config: SessionConfig,
    /// Learned per-fingerprint tunings. When set, every session start
    /// consults the map first and only falls back to `config.schedule`
    /// for systems the map has not learned.
    profile_map: Option<Arc<ProfileMap>>,
}

impl Default for Portfolio {
    fn default() -> Self {
        Portfolio::auto()
    }
}

impl Portfolio {
    /// The paper's §6 portfolio with default configuration.
    pub fn auto() -> Self {
        Portfolio {
            lineup: Lineup::Auto,
            config: SessionConfig::new(),
            profile_map: None,
        }
    }

    /// A portfolio with a fixed engine lineup.
    pub fn fixed(kinds: impl Into<Vec<EngineKind>>) -> Self {
        Portfolio {
            lineup: Lineup::Fixed(kinds.into()),
            config: SessionConfig::new(),
            profile_map: None,
        }
    }

    /// Replaces the session configuration.
    pub fn with_config(mut self, config: SessionConfig) -> Self {
        self.config = config;
        self
    }

    /// Attaches a learned per-fingerprint [`ProfileMap`]. Sessions
    /// opened through this portfolio then start with the map's tuning
    /// for their system (frontier-aware, `threads` included) and fall
    /// back to the configured `--schedule` only on a map miss.
    pub fn with_profile_map(mut self, map: Arc<ProfileMap>) -> Self {
        self.profile_map = Some(map);
        self
    }

    /// The session configuration.
    pub fn config(&self) -> &SessionConfig {
        &self.config
    }

    /// The configuration a session for `cpds` would actually start
    /// with: the profile map's learned schedule when one is attached
    /// and has this fingerprint, the base configuration otherwise.
    fn effective_config(&self, cpds: &Cpds) -> std::borrow::Cow<'_, SessionConfig> {
        if let Some(learned) = self.profile_map.as_ref().and_then(|map| map.lookup(cpds)) {
            let mut config = self.config.clone();
            config.schedule = SchedulePolicy::FrontierAware(learned);
            return std::borrow::Cow::Owned(config);
        }
        std::borrow::Cow::Borrowed(&self.config)
    }

    /// The concrete lineup this portfolio fields for a system.
    pub fn lineup_for(&self, cpds: &Cpds) -> Vec<EngineKind> {
        self.lineup_with(cpds, &SystemArtifacts::new())
    }

    /// As [`lineup_for`](Self::lineup_for), but reusing a cached FCR
    /// verdict instead of re-deciding it.
    fn lineup_with(&self, cpds: &Cpds, artifacts: &SystemArtifacts) -> Vec<EngineKind> {
        match &self.lineup {
            Lineup::Auto => {
                if artifacts.fcr(cpds).holds() {
                    vec![
                        EngineKind::Alg3Explicit,
                        EngineKind::Scheme1Explicit,
                        EngineKind::CbaRefuter,
                    ]
                } else {
                    vec![EngineKind::Alg3Symbolic, EngineKind::Scheme1Symbolic]
                }
            }
            Lineup::Fixed(kinds) => kinds.clone(),
        }
    }

    /// Opens a streaming session for one problem.
    ///
    /// # Errors
    ///
    /// [`CubaError::FcrRequired`] when no arm applies to the system.
    pub fn session(&self, cpds: Cpds, property: Property) -> Result<AnalysisSession, CubaError> {
        self.session_with(cpds, property, &Arc::new(SystemArtifacts::new()))
    }

    /// Opens a streaming session reusing cached per-system artifacts
    /// (FCR verdict, `G ∩ Z`) — see [`SuiteCache`].
    ///
    /// # Errors
    ///
    /// As for [`session`](Self::session), plus
    /// [`CubaError::InvalidProperty`] when the property names states,
    /// threads or symbols the model does not have — such a property
    /// could never be violated, so the session would report a vacuous
    /// `safe`.
    pub fn session_with(
        &self,
        cpds: Cpds,
        property: Property,
        artifacts: &Arc<SystemArtifacts>,
    ) -> Result<AnalysisSession, CubaError> {
        property
            .validate(&cpds)
            .map_err(CubaError::InvalidProperty)?;
        let config = self.effective_config(&cpds);
        let lineup = self.lineup_with(&cpds, artifacts);
        AnalysisSession::with_artifacts(cpds, property, &lineup, &config, artifacts)
    }

    /// Runs the race round-robin on the current thread.
    ///
    /// # Errors
    ///
    /// The first hard engine error when no arm produced an answer.
    pub fn run(&self, cpds: Cpds, property: Property) -> Result<CubaOutcome, CubaError> {
        self.session(cpds, property)?.run()
    }

    /// Runs the race round-robin, streaming events to a callback.
    ///
    /// # Errors
    ///
    /// As for [`run`](Self::run).
    pub fn run_with(
        &self,
        cpds: Cpds,
        property: Property,
        on_event: impl FnMut(&SessionEvent),
    ) -> Result<CubaOutcome, CubaError> {
        self.session(cpds, property)?.run_with(on_event)
    }

    /// Runs the race on OS threads — the literal "two computational
    /// threads" of §6, generalized to the whole lineup. The first
    /// conclusive arm cancels the others through the shared token;
    /// events from all arms are forwarded to the callback (in arrival
    /// order) when one is given.
    ///
    /// # Errors
    ///
    /// As for [`run`](Self::run).
    pub fn run_parallel(
        &self,
        cpds: Cpds,
        property: Property,
        on_event: Option<&mut dyn FnMut(&SessionEvent)>,
    ) -> Result<CubaOutcome, CubaError> {
        self.run_parallel_with(cpds, property, on_event, &Arc::new(SystemArtifacts::new()))
    }

    /// As [`run_parallel`](Self::run_parallel), reusing cached
    /// per-system artifacts — so even the threaded race shares one
    /// layered exploration per backend with every other consumer of
    /// the same system (suite batches, earlier properties).
    ///
    /// # Errors
    ///
    /// As for [`run`](Self::run).
    pub fn run_parallel_with(
        &self,
        cpds: Cpds,
        property: Property,
        mut on_event: Option<&mut dyn FnMut(&SessionEvent)>,
        artifacts: &Arc<SystemArtifacts>,
    ) -> Result<CubaOutcome, CubaError> {
        property
            .validate(&cpds)
            .map_err(CubaError::InvalidProperty)?;
        let session_config = self.effective_config(&cpds);
        let start = std::time::Instant::now();
        let fcr_holds = artifacts.fcr(&cpds).holds();
        let lineup: Vec<EngineKind> = self
            .lineup_with(&cpds, artifacts)
            .into_iter()
            .filter(|kind| fcr_holds || !kind.needs_fcr())
            .collect();
        if lineup.is_empty() {
            return Err(CubaError::FcrRequired);
        }

        // Every arm polls the shared race token as an extra source
        // (no single-arm session fires it by itself — sessions only
        // fire their own internal token); the first conclusive arm
        // fires it below and the others stop mid-round. The caller's
        // own token, if any, stays in the config and is polled too.
        let race = cuba_explore::CancelToken::new();

        let (events_tx, events_rx) = mpsc::channel::<SessionEvent>();
        let reports: Mutex<Vec<ParallelArmReport>> = Mutex::new(Vec::new());
        // Shared cost board for frontier-aware self-parking: each arm
        // publishes its state count after every round and parks itself
        // while it balloons past the leanest active sibling.
        let board: Vec<AtomicUsize> = lineup.iter().map(|_| AtomicUsize::new(0)).collect();
        let active = AtomicUsize::new(lineup.len());
        let frontier = match &session_config.schedule {
            SchedulePolicy::FrontierAware(config) => Some(config.clone()),
            SchedulePolicy::RoundRobin => None,
        };

        std::thread::scope(|scope| {
            for (arm_index, kind) in lineup.iter().enumerate() {
                // One single-arm session per thread: reuses the exact
                // round/event bookkeeping of the sequential path. The
                // fuse decision still sees the whole lineup, so Alg. 3
                // arms run pure whenever a Scheme 1 arm races.
                let session = AnalysisSession::with_fuse_lineup(
                    cpds.clone(),
                    property.clone(),
                    std::slice::from_ref(kind),
                    &lineup,
                    Some(race.clone()),
                    &session_config,
                    artifacts,
                );
                let events_tx = events_tx.clone();
                let reports = &reports;
                let race = &race;
                let board = &board;
                let active = &active;
                let frontier = frontier.clone();
                scope.spawn(move || {
                    let report = match session {
                        Ok(mut session) => {
                            while let Some(event) = session.next_event() {
                                if let SessionEvent::RoundCompleted { states, .. } = &event {
                                    board[arm_index].store(*states, Ordering::Relaxed);
                                }
                                let _ = events_tx.send(event);
                                if let Some(config) = &frontier {
                                    park_while_ballooning(arm_index, board, active, race, config);
                                }
                            }
                            // Clear this arm's board entry *before*
                            // leaving the race: a retired arm's stale
                            // state count must never serve as the
                            // "leanest sibling" for the parking test,
                            // or the survivors could park forever.
                            board[arm_index].store(0, Ordering::Relaxed);
                            active.fetch_sub(1, Ordering::Relaxed);
                            // The first conclusive arm stops the race.
                            let conclusive = matches!(
                                session.outcome(),
                                Some(Ok(o)) if !matches!(o.verdict, Verdict::Undetermined { .. })
                            );
                            if conclusive {
                                race.cancel();
                            }
                            match session.outcome() {
                                Some(Ok(outcome)) => ParallelArmReport {
                                    engine: outcome.engine,
                                    result: Ok(outcome.verdict.clone()),
                                    rounds: outcome.rounds,
                                    states: outcome.states,
                                    round_wall: outcome.round_wall,
                                    rounds_explored: outcome.rounds_explored,
                                    rounds_replayed: outcome.rounds_replayed,
                                    stages: outcome.stages,
                                },
                                Some(Err(e)) => ParallelArmReport {
                                    engine: arm_engine_placeholder(*kind),
                                    result: Err(e.clone()),
                                    rounds: 0,
                                    states: 0,
                                    round_wall: Duration::ZERO,
                                    rounds_explored: 0,
                                    rounds_replayed: 0,
                                    stages: crate::StageTimes::default(),
                                },
                                None => ParallelArmReport {
                                    engine: arm_engine_placeholder(*kind),
                                    result: Err(CubaError::Explore(
                                        cuba_explore::ExploreError::Cancelled,
                                    )),
                                    rounds: 0,
                                    states: 0,
                                    round_wall: Duration::ZERO,
                                    rounds_explored: 0,
                                    rounds_replayed: 0,
                                    stages: crate::StageTimes::default(),
                                },
                            }
                        }
                        Err(e) => {
                            board[arm_index].store(0, Ordering::Relaxed);
                            active.fetch_sub(1, Ordering::Relaxed);
                            ParallelArmReport {
                                engine: arm_engine_placeholder(*kind),
                                result: Err(e),
                                rounds: 0,
                                states: 0,
                                round_wall: Duration::ZERO,
                                rounds_explored: 0,
                                rounds_replayed: 0,
                                stages: crate::StageTimes::default(),
                            }
                        }
                    };
                    reports.lock().expect("no poisoned arm").push(report);
                });
            }
            drop(events_tx);
            // Forward events as they arrive (or just drain them).
            while let Ok(event) = events_rx.recv() {
                if let Some(callback) = on_event.as_deref_mut() {
                    callback(&event);
                }
            }
        });

        let reports = reports.into_inner().expect("threads joined");
        pick_parallel_winner(reports, fcr_holds, start.elapsed())
    }

    /// Batch verification: runs the portfolio over every problem with
    /// at most `parallelism` problems in flight (each problem's arms
    /// are scheduled within its worker). Results come back in input
    /// order.
    ///
    /// Problems sharing a system (same CPDS, many properties) share
    /// the FCR verdict and the built `G ∩ Z` through a fresh
    /// [`SuiteCache`]; use
    /// [`run_suite_cached`](Self::run_suite_cached) to keep the cache
    /// warm across calls.
    pub fn run_suite(
        &self,
        problems: Vec<(Cpds, Property)>,
        parallelism: usize,
    ) -> Vec<Result<CubaOutcome, CubaError>> {
        self.run_suite_cached(problems, parallelism, &SuiteCache::new())
    }

    /// As [`run_suite`](Self::run_suite), with a caller-owned
    /// [`SuiteCache`] — the service-shaped entry point: a long-lived
    /// cache turns repeated batches over the same systems into
    /// lookups instead of recomputation.
    pub fn run_suite_cached(
        &self,
        problems: Vec<(Cpds, Property)>,
        parallelism: usize,
        cache: &SuiteCache,
    ) -> Vec<Result<CubaOutcome, CubaError>> {
        let n = problems.len();
        let workers = parallelism.max(1).min(n.max(1));
        let next = AtomicUsize::new(0);
        let problems: Vec<Mutex<Option<(Cpds, Property)>>> =
            problems.into_iter().map(|p| Mutex::new(Some(p))).collect();
        let results: Vec<Mutex<Option<Result<CubaOutcome, CubaError>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    if index >= n {
                        break;
                    }
                    let (cpds, property) = problems[index]
                        .lock()
                        .expect("problem slot")
                        .take()
                        .expect("each slot is claimed once");
                    let artifacts = cache.artifacts(&cpds);
                    let result = self
                        .session_with(cpds, property, &artifacts)
                        .and_then(AnalysisSession::run);
                    *results[index].lock().expect("result slot") = Some(result);
                });
            }
        });

        results
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("workers joined")
                    .expect("every index was processed")
            })
            .collect()
    }
}

/// Frontier-aware self-parking for threaded arms: while this arm's
/// published state count balloons past `balloon_ratio` times the
/// leanest active sibling's, sleep instead of stepping — the threaded
/// analogue of the sequential scheduler's demote/park. The arm resumes
/// when the imbalance clears, the race is decided, or it is the last
/// arm standing (so parking never loses a verdict).
fn park_while_ballooning(
    arm_index: usize,
    board: &[AtomicUsize],
    active: &AtomicUsize,
    race: &cuba_explore::CancelToken,
    config: &crate::FrontierConfig,
) {
    loop {
        if race.is_cancelled() || active.load(Ordering::Relaxed) <= 1 {
            return;
        }
        let own = board[arm_index].load(Ordering::Relaxed);
        let min_other = board
            .iter()
            .enumerate()
            .filter(|&(i, slot)| i != arm_index && slot.load(Ordering::Relaxed) > 0)
            .map(|(_, slot)| slot.load(Ordering::Relaxed))
            .min();
        let Some(min_other) = min_other else { return };
        let floor = min_other.max(config.park_floor);
        if own as f64 <= config.balloon_ratio * floor as f64 {
            return;
        }
        std::thread::sleep(Duration::from_micros(500));
    }
}

/// The engine id an arm would report before running (used when an arm
/// dies during construction and has no engine to ask).
fn arm_engine_placeholder(kind: EngineKind) -> crate::EngineUsed {
    match kind {
        EngineKind::Alg3Explicit => crate::EngineUsed::Alg3Explicit,
        EngineKind::Scheme1Explicit => crate::EngineUsed::Scheme1Explicit,
        EngineKind::Alg3Symbolic => crate::EngineUsed::Alg3Symbolic,
        EngineKind::Scheme1Symbolic => crate::EngineUsed::Scheme1Symbolic,
        EngineKind::CbaRefuter => crate::EngineUsed::CbaBaseline,
    }
}

/// Winner selection across joined arms, mirroring the sequential
/// session's preference: conclusive > undetermined > interruption >
/// hard error.
fn pick_parallel_winner(
    reports: Vec<impl std::borrow::Borrow<ParallelArmReport>>,
    fcr_holds: bool,
    duration: std::time::Duration,
) -> Result<CubaOutcome, CubaError> {
    let reports: Vec<&ParallelArmReport> = reports.iter().map(|r| r.borrow()).collect();
    // Cost accounting sums over every arm: losers' rounds were still
    // paid for.
    let round_wall: Duration = reports.iter().map(|r| r.round_wall).sum();
    let rounds_explored: usize = reports.iter().map(|r| r.rounds_explored).sum();
    let rounds_replayed: usize = reports.iter().map(|r| r.rounds_replayed).sum();
    let mut stages = crate::StageTimes::default();
    for r in &reports {
        stages.add(&r.stages);
    }
    let outcome_from = |r: &ParallelArmReport, verdict: Verdict| CubaOutcome {
        verdict,
        fcr_holds,
        engine: r.engine,
        states: r.states,
        rounds: r.rounds,
        duration,
        round_wall,
        rounds_explored,
        rounds_replayed,
        stages,
    };
    if let Some(r) = reports
        .iter()
        .find(|r| matches!(&r.result, Ok(v) if !matches!(v, Verdict::Undetermined { .. })))
    {
        let Ok(v) = &r.result else { unreachable!() };
        return Ok(outcome_from(r, v.clone()));
    }
    if let Some(r) = reports
        .iter()
        .filter(|r| r.result.is_ok())
        .max_by_key(|r| r.rounds)
    {
        let Ok(v) = &r.result else { unreachable!() };
        return Ok(outcome_from(r, v.clone()));
    }
    if let Some(r) = reports
        .iter()
        .find(|r| matches!(&r.result, Err(CubaError::Explore(e)) if e.is_interruption()))
    {
        let Err(CubaError::Explore(e)) = &r.result else {
            unreachable!()
        };
        return Ok(outcome_from(
            r,
            Verdict::Undetermined {
                reason: e.to_string(),
            },
        ));
    }
    let error = reports
        .iter()
        .find_map(|r| r.result.as_ref().err().cloned())
        .unwrap_or(CubaError::Explore(cuba_explore::ExploreError::Cancelled));
    Err(error)
}

/// Per-arm summary collected by [`Portfolio::run_parallel`].
struct ParallelArmReport {
    engine: crate::EngineUsed,
    result: Result<Verdict, CubaError>,
    rounds: usize,
    states: usize,
    round_wall: Duration,
    rounds_explored: usize,
    rounds_replayed: usize,
    stages: crate::StageTimes,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{fig1, fig2};
    use crate::EngineUsed;
    use cuba_pds::{SharedState, StackSym, VisibleState};

    fn vis(qq: u32, tops: &[Option<u32>]) -> VisibleState {
        VisibleState::new(
            SharedState(qq),
            tops.iter().map(|t| t.map(StackSym)).collect(),
        )
    }

    /// The §6 lineup: explicit arms + CBA refuter under FCR, symbolic
    /// arms otherwise.
    #[test]
    fn auto_lineup_follows_fcr() {
        let portfolio = Portfolio::auto();
        assert_eq!(
            portfolio.lineup_for(&fig1()),
            vec![
                EngineKind::Alg3Explicit,
                EngineKind::Scheme1Explicit,
                EngineKind::CbaRefuter
            ]
        );
        assert_eq!(
            portfolio.lineup_for(&fig2()),
            vec![EngineKind::Alg3Symbolic, EngineKind::Scheme1Symbolic]
        );
    }

    /// Acceptance: the portfolio path reproduces the seed verdicts on
    /// both running examples (Safe k=5 behavior preserved on Fig. 1).
    #[test]
    fn portfolio_reproduces_seed_verdicts() {
        let outcome = Portfolio::auto().run(fig1(), Property::True).unwrap();
        assert!(matches!(outcome.verdict, Verdict::Safe { k: 5, .. }));
        assert!(outcome.fcr_holds);

        let outcome = Portfolio::auto().run(fig2(), Property::True).unwrap();
        assert!(outcome.verdict.is_safe());
        assert!(!outcome.fcr_holds);
    }

    /// The parallel race agrees with the round-robin race.
    #[test]
    fn parallel_race_agrees_with_round_robin() {
        let portfolio = Portfolio::auto();
        let sequential = portfolio.run(fig1(), Property::True).unwrap();
        let parallel = portfolio
            .run_parallel(fig1(), Property::True, None)
            .unwrap();
        assert_eq!(sequential.verdict.is_safe(), parallel.verdict.is_safe(),);

        let property = Property::never_visible(vis(1, &[Some(2), Some(6)]));
        let sequential = portfolio.run(fig1(), property.clone()).unwrap();
        let parallel = portfolio.run_parallel(fig1(), property, None).unwrap();
        match (&sequential.verdict, &parallel.verdict) {
            (Verdict::Unsafe { k: k1, .. }, Verdict::Unsafe { k: k2, .. }) => {
                assert_eq!(k1, k2, "bug bound must not depend on scheduling");
            }
            other => panic!("expected two Unsafe verdicts, got {other:?}"),
        }
    }

    /// The CBA refuter can win the race with a bug but never decides a
    /// safe run (its exhaustion is Undetermined).
    #[test]
    fn cba_arm_never_proves() {
        let portfolio = Portfolio::fixed(vec![EngineKind::CbaRefuter]);
        let safe = portfolio.run(fig1(), Property::True).unwrap();
        assert!(matches!(safe.verdict, Verdict::Undetermined { .. }));
        assert_eq!(safe.engine, EngineUsed::CbaBaseline);

        let property = Property::never_visible(vis(1, &[Some(2), Some(6)]));
        let unsafe_outcome = portfolio.run(fig1(), property).unwrap();
        assert!(matches!(
            unsafe_outcome.verdict,
            Verdict::Unsafe { k: 5, .. }
        ));
    }

    /// Batch verification over both running examples with parallelism.
    #[test]
    fn run_suite_preserves_order_and_verdicts() {
        let problems = vec![
            (fig1(), Property::True),
            (fig2(), Property::True),
            (fig1(), Property::never_visible(vis(1, &[Some(2), Some(6)]))),
            (fig1(), Property::never_visible(vis(2, &[Some(1), Some(5)]))),
        ];
        let results = Portfolio::auto().run_suite(problems, 3);
        assert_eq!(results.len(), 4);
        assert!(matches!(
            results[0].as_ref().unwrap().verdict,
            Verdict::Safe { k: 5, .. }
        ));
        assert!(results[1].as_ref().unwrap().verdict.is_safe());
        assert!(matches!(
            results[2].as_ref().unwrap().verdict,
            Verdict::Unsafe { k: 5, .. }
        ));
        assert!(matches!(
            results[3].as_ref().unwrap().verdict,
            Verdict::Safe { k: 5, .. }
        ));
    }

    /// A property naming ids outside the model is rejected at session
    /// start instead of verifying vacuously.
    #[test]
    fn invalid_property_rejected_at_session_start() {
        let portfolio = Portfolio::auto();
        let bad = Property::never_shared(SharedState(99));
        match portfolio.run(fig1(), bad.clone()) {
            Err(CubaError::InvalidProperty(msg)) => {
                assert!(msg.contains("shared state 99"), "{msg}");
            }
            other => panic!("expected InvalidProperty, got {other:?}"),
        }
        assert!(matches!(
            portfolio.run_parallel(fig1(), bad, None),
            Err(CubaError::InvalidProperty(_))
        ));
    }

    /// run_suite with parallelism 1 degrades to a plain loop.
    #[test]
    fn run_suite_sequential_fallback() {
        let results = Portfolio::auto().run_suite(vec![(fig1(), Property::True)], 1);
        assert_eq!(results.len(), 1);
        assert!(results[0].as_ref().unwrap().verdict.is_safe());
    }
}
