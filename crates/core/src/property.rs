use cuba_pds::{Cpds, SharedState, StackSym, VisibleState};

/// A safety property over *visible* states (paper §2.2: "Most
/// reachability properties, including assertions inserted into a
/// program, are formulated only over visible states").
///
/// A property *holds* as long as no reachable visible state violates
/// it; all CUBA algorithms check every newly discovered visible state
/// against [`violated_by`](Property::violated_by).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Property {
    /// Always holds; use to compute reachability sets to convergence
    /// without a target (the `kmax` columns of Table 2 for safe runs).
    True,
    /// Violated when any of the listed visible states is reached
    /// (assertion failures mapped to distinguished visible states).
    NeverVisible(Vec<VisibleState>),
    /// Violated when any of the listed shared states is reached
    /// (shared-state reachability, e.g. a dedicated error state).
    NeverShared(Vec<SharedState>),
    /// Violated when *all* the listed threads simultaneously expose
    /// the paired top-of-stack symbol — mutual exclusion of "critical"
    /// program locations ("mutually exclusive local-state
    /// reachability", Ex. 2).
    MutualExclusion(Vec<(usize, StackSym)>),
    /// Violated when every sub-property would be violated… never mind
    /// conjunctions: violated when *any* sub-property is violated.
    All(Vec<Property>),
}

impl Property {
    /// Shorthand for [`Property::NeverVisible`] with one target.
    pub fn never_visible(v: VisibleState) -> Self {
        Property::NeverVisible(vec![v])
    }

    /// Shorthand for [`Property::NeverShared`] with one target.
    pub fn never_shared(q: SharedState) -> Self {
        Property::NeverShared(vec![q])
    }

    /// Mutual exclusion of two thread locations.
    pub fn mutex(thread_a: usize, top_a: StackSym, thread_b: usize, top_b: StackSym) -> Self {
        Property::MutualExclusion(vec![(thread_a, top_a), (thread_b, top_b)])
    }

    /// Whether the visible state `v` violates the property.
    pub fn violated_by(&self, v: &VisibleState) -> bool {
        match self {
            Property::True => false,
            Property::NeverVisible(targets) => targets.iter().any(|t| t == v),
            Property::NeverShared(states) => states.contains(&v.q),
            Property::MutualExclusion(pins) => pins
                .iter()
                .all(|(thread, top)| v.tops.get(*thread).is_some_and(|t| *t == Some(*top))),
            Property::All(props) => props.iter().any(|p| p.violated_by(v)),
        }
    }

    /// First violating visible state among `iter`, if any.
    pub fn find_violation<'a, I>(&self, iter: I) -> Option<&'a VisibleState>
    where
        I: IntoIterator<Item = &'a VisibleState>,
    {
        iter.into_iter().find(|v| self.violated_by(v))
    }

    /// Validates that every shared state, thread index and stack
    /// symbol this property names exists in `cpds`.
    ///
    /// [`parse`](Property::parse) is purely syntactic: it happily
    /// accepts `never-shared:99` for a four-state model, and such a
    /// property is *silently true* — [`violated_by`](Property::violated_by)
    /// can never match an id that no reachable state carries. Callers
    /// that take user-supplied specs (the CLI, the serve API) should
    /// validate at session start and reject the spec instead of
    /// reporting a vacuous `safe`.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the offending id and the valid
    /// range.
    pub fn validate(&self, cpds: &Cpds) -> Result<(), String> {
        let num_shared = cpds.num_shared();
        let num_threads = cpds.num_threads();
        let check_q = |q: SharedState| {
            if q.0 < num_shared {
                Ok(())
            } else {
                Err(format!(
                    "property `{self}` names shared state {q}, but the model has \
                     {num_shared} shared states (0..={})",
                    num_shared.saturating_sub(1)
                ))
            }
        };
        let check_sym = |thread: usize, sym: StackSym| {
            let alphabet = cpds.thread(thread).alphabet_size();
            if sym.0 < alphabet {
                Ok(())
            } else {
                Err(format!(
                    "property `{self}` names stack symbol {sym} of thread {thread}, but \
                     that thread's alphabet has {alphabet} symbols (0..={})",
                    alphabet.saturating_sub(1)
                ))
            }
        };
        match self {
            Property::True => Ok(()),
            Property::NeverVisible(targets) => {
                for v in targets {
                    check_q(v.q)?;
                    if v.tops.len() != num_threads {
                        return Err(format!(
                            "property `{self}` lists {} top-of-stack entries, but the \
                             model has {num_threads} threads",
                            v.tops.len()
                        ));
                    }
                    for (i, top) in v.tops.iter().enumerate() {
                        if let Some(sym) = top {
                            check_sym(i, *sym)?;
                        }
                    }
                }
                Ok(())
            }
            Property::NeverShared(states) => {
                for &q in states {
                    check_q(q)?;
                }
                Ok(())
            }
            Property::MutualExclusion(pins) => {
                for &(thread, sym) in pins {
                    if thread >= num_threads {
                        return Err(format!(
                            "property `{self}` names thread {thread}, but the model \
                             has {num_threads} threads (0..={})",
                            num_threads.saturating_sub(1)
                        ));
                    }
                    check_sym(thread, sym)?;
                }
                Ok(())
            }
            Property::All(props) => {
                for p in props {
                    p.validate(cpds)?;
                }
                Ok(())
            }
        }
    }

    /// Parses a property spec — the grammar shared by the CLI's
    /// `--property` flag and the serve API's `property` query
    /// parameter:
    ///
    /// ```text
    /// true
    /// never-shared:<q>
    /// never-visible:<q>|<t1>,<t2>,...     ('-' = empty stack)
    /// mutex:<thread>@<sym>,<thread>@<sym>,...
    /// ```
    ///
    /// # Errors
    ///
    /// A human-readable message naming the offending part of the spec.
    pub fn parse(spec: &str) -> Result<Property, String> {
        if spec == "true" {
            return Ok(Property::True);
        }
        if let Some(rest) = spec.strip_prefix("never-shared:") {
            let q: u32 = rest
                .parse()
                .map_err(|_| format!("bad never-shared state '{rest}'"))?;
            return Ok(Property::never_shared(SharedState(q)));
        }
        if let Some(rest) = spec.strip_prefix("never-visible:") {
            let (q, tops) = rest
                .split_once('|')
                .ok_or_else(|| format!("never-visible needs '<q>|<tops>', got '{rest}'"))?;
            let q: u32 = q.parse().map_err(|_| format!("bad shared state '{q}'"))?;
            let tops: Vec<Option<StackSym>> = tops
                .split(',')
                .map(|t| {
                    if t == "-" {
                        Ok(None)
                    } else {
                        t.parse::<u32>()
                            .map(|n| Some(StackSym(n)))
                            .map_err(|_| format!("bad top-of-stack '{t}' (number or '-')"))
                    }
                })
                .collect::<Result<_, String>>()?;
            return Ok(Property::never_visible(VisibleState::new(
                SharedState(q),
                tops,
            )));
        }
        if let Some(rest) = spec.strip_prefix("mutex:") {
            let pins: Vec<(usize, StackSym)> = rest
                .split(',')
                .map(|pin| {
                    let (thread, sym) = pin
                        .split_once('@')
                        .ok_or_else(|| format!("mutex pin needs '<thread>@<sym>', got '{pin}'"))?;
                    let thread: usize = thread
                        .parse()
                        .map_err(|_| format!("bad thread index '{thread}'"))?;
                    let sym: u32 = sym.parse().map_err(|_| format!("bad symbol '{sym}'"))?;
                    Ok((thread, StackSym(sym)))
                })
                .collect::<Result<_, String>>()?;
            if pins.is_empty() {
                return Err("mutex needs at least one pin".to_owned());
            }
            return Ok(Property::MutualExclusion(pins));
        }
        Err(format!(
            "bad property '{spec}' (expected true, never-shared:<q>, \
             never-visible:<q>|<tops>, or mutex:<t>@<s>,...)"
        ))
    }
}

impl std::fmt::Display for Property {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Property::True => write!(f, "true"),
            Property::NeverVisible(ts) => {
                write!(f, "never-visible{{")?;
                for (i, t) in ts.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, "}}")
            }
            Property::NeverShared(qs) => {
                write!(f, "never-shared{{")?;
                for (i, q) in qs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{q}")?;
                }
                write!(f, "}}")
            }
            Property::MutualExclusion(pins) => {
                write!(f, "mutex{{")?;
                for (i, (t, s)) in pins.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "t{t}@{s}")?;
                }
                write!(f, "}}")
            }
            Property::All(props) => {
                write!(f, "all{{")?;
                for (i, p) in props.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(n: u32) -> SharedState {
        SharedState(n)
    }
    fn s(n: u32) -> StackSym {
        StackSym(n)
    }
    fn vis(qq: u32, tops: &[Option<u32>]) -> VisibleState {
        VisibleState::new(q(qq), tops.iter().map(|t| t.map(StackSym)).collect())
    }

    #[test]
    fn true_never_violated() {
        assert!(!Property::True.violated_by(&vis(0, &[Some(1)])));
    }

    #[test]
    fn never_visible_exact_match() {
        let p = Property::never_visible(vis(1, &[Some(2), None]));
        assert!(p.violated_by(&vis(1, &[Some(2), None])));
        assert!(!p.violated_by(&vis(1, &[Some(2), Some(3)])));
        assert!(!p.violated_by(&vis(0, &[Some(2), None])));
    }

    #[test]
    fn never_shared_matches_any_tops() {
        let p = Property::never_shared(q(3));
        assert!(p.violated_by(&vis(3, &[None])));
        assert!(p.violated_by(&vis(3, &[Some(1), Some(2)])));
        assert!(!p.violated_by(&vis(2, &[Some(1)])));
    }

    #[test]
    fn mutex_requires_all_pins() {
        let p = Property::mutex(0, s(7), 1, s(9));
        assert!(p.violated_by(&vis(0, &[Some(7), Some(9)])));
        assert!(!p.violated_by(&vis(0, &[Some(7), Some(8)])));
        assert!(!p.violated_by(&vis(0, &[Some(7), None])));
        // Out-of-range thread index never matches.
        let p2 = Property::MutualExclusion(vec![(5, s(7))]);
        assert!(!p2.violated_by(&vis(0, &[Some(7)])));
    }

    #[test]
    fn all_is_disjunction_of_violations() {
        let p = Property::All(vec![
            Property::never_shared(q(1)),
            Property::never_shared(q(2)),
        ]);
        assert!(p.violated_by(&vis(1, &[None])));
        assert!(p.violated_by(&vis(2, &[None])));
        assert!(!p.violated_by(&vis(0, &[None])));
    }

    #[test]
    fn find_violation_returns_first() {
        let p = Property::never_shared(q(2));
        let states = [vis(0, &[None]), vis(2, &[Some(1)]), vis(2, &[None])];
        assert_eq!(p.find_violation(states.iter()), Some(&states[1]));
        assert_eq!(Property::True.find_violation(states.iter()), None);
    }

    #[test]
    fn parse_accepts_the_cli_grammar() {
        assert_eq!(Property::parse("true").unwrap(), Property::True);
        assert_eq!(
            Property::parse("never-shared:3").unwrap(),
            Property::never_shared(q(3))
        );
        assert_eq!(
            Property::parse("never-visible:1|2,6").unwrap(),
            Property::never_visible(VisibleState::new(q(1), vec![Some(s(2)), Some(s(6))]))
        );
        assert_eq!(
            Property::parse("never-visible:0|-,5").unwrap(),
            Property::never_visible(VisibleState::new(q(0), vec![None, Some(s(5))]))
        );
        assert_eq!(
            Property::parse("mutex:0@7,1@9").unwrap(),
            Property::mutex(0, s(7), 1, s(9))
        );
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "",
            "bogus",
            "never-shared:x",
            "never-visible:1",
            "never-visible:1|a",
            "mutex:",
            "mutex:0-7",
        ] {
            assert!(Property::parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn validate_accepts_in_range_properties() {
        let cpds = crate::testutil::fig1();
        assert!(Property::True.validate(&cpds).is_ok());
        assert!(Property::never_shared(q(1)).validate(&cpds).is_ok());
        assert!(Property::never_visible(vis(1, &[Some(2), Some(6)]))
            .validate(&cpds)
            .is_ok());
        assert!(Property::mutex(0, s(2), 1, s(6)).validate(&cpds).is_ok());
    }

    #[test]
    fn validate_rejects_unknown_ids() {
        let cpds = crate::testutil::fig1();
        let e = Property::never_shared(q(99)).validate(&cpds).unwrap_err();
        assert!(e.contains("shared state 99"), "{e}");
        let e = Property::never_visible(vis(0, &[Some(99), Some(6)]))
            .validate(&cpds)
            .unwrap_err();
        assert!(e.contains("stack symbol"), "{e}");
        // Wrong arity: one top for a two-thread model.
        let e = Property::never_visible(vis(0, &[Some(2)]))
            .validate(&cpds)
            .unwrap_err();
        assert!(e.contains("threads"), "{e}");
        let e = Property::MutualExclusion(vec![(5, s(2))])
            .validate(&cpds)
            .unwrap_err();
        assert!(e.contains("thread 5"), "{e}");
        // All recurses.
        let e = Property::All(vec![Property::True, Property::never_shared(q(99))])
            .validate(&cpds)
            .unwrap_err();
        assert!(e.contains("shared state 99"), "{e}");
    }

    #[test]
    fn display() {
        assert_eq!(Property::True.to_string(), "true");
        assert_eq!(
            Property::mutex(0, s(1), 1, s(2)).to_string(),
            "mutex{t0@1, t1@2}"
        );
        assert!(Property::never_shared(q(1))
            .to_string()
            .contains("never-shared"));
    }
}
