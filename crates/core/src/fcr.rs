use cuba_automata::{is_language_finite, post_star, Finiteness, Psa};
use cuba_pds::{Cpds, Pds};

/// Outcome of the finite-context-reachability check (paper §5).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FcrReport {
    /// Per-thread verdicts: is `R(Q × Σ≤1_i)` finite?
    pub per_thread: Vec<Finiteness>,
}

impl FcrReport {
    /// Whether FCR holds for the whole system (Thm. 17: if every
    /// thread's `R(Q × Σ≤1_i)` is finite, every `Rk` is finite).
    pub fn holds(&self) -> bool {
        self.per_thread.iter().all(|f| *f == Finiteness::Finite)
    }

    /// Threads whose single-context reachability is infinite.
    pub fn offending_threads(&self) -> Vec<usize> {
        self.per_thread
            .iter()
            .enumerate()
            .filter(|(_, f)| **f == Finiteness::Infinite)
            .map(|(i, _)| i)
            .collect()
    }
}

impl std::fmt::Display for FcrReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.holds() {
            write!(f, "FCR holds")
        } else {
            write!(f, "FCR fails for threads {:?}", self.offending_threads())
        }
    }
}

/// The pushdown store automaton `Ai` used by the FCR check: `post*` of
/// the initial set `Q × Σ≤1_i` (all shared states, all stacks of size
/// ≤ 1). Exposed separately so the Fig. 4 reproduction can render it.
pub fn fcr_psa(pds: &Pds, num_shared: u32) -> Psa {
    let symbols = pds.used_symbols().into_iter().map(|s| s.0);
    let init = Psa::all_stacks_leq1(num_shared, symbols);
    post_star(pds, &init)
}

/// How many full [`check_fcr`] computations this process has run.
/// Instruments the suite-level cache: a cached batch must decide FCR
/// once per distinct system, not once per session (see
/// [`SuiteCache`](crate::SuiteCache)).
static FCR_CHECKS: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

/// Process-wide count of [`check_fcr`] computations performed so far.
pub fn fcr_checks_performed() -> usize {
    FCR_CHECKS.load(std::sync::atomic::Ordering::Relaxed)
}

/// Decides finite context reachability for a CPDS: builds the PSA for
/// each thread's `R(Q × Σ≤1_i)` and checks its language finite via
/// loop detection (§5, Fig. 4). Sufficient, not necessary — the paper
/// leaves decidability of FCR itself open (§8).
pub fn check_fcr(cpds: &Cpds) -> FcrReport {
    FCR_CHECKS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let per_thread = cpds
        .threads()
        .iter()
        .map(|pds| {
            let psa = fcr_psa(pds, cpds.num_shared());
            is_language_finite(psa.as_nfa())
        })
        .collect();
    FcrReport { per_thread }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuba_pds::{CpdsBuilder, PdsBuilder, SharedState, StackSym};

    fn q(n: u32) -> SharedState {
        SharedState(n)
    }
    fn s(n: u32) -> StackSym {
        StackSym(n)
    }

    fn fig1() -> Cpds {
        let mut p1 = PdsBuilder::new(4, 3);
        p1.overwrite(q(0), s(1), q(1), s(2)).unwrap();
        p1.overwrite(q(3), s(2), q(0), s(1)).unwrap();
        let mut p2 = PdsBuilder::new(4, 7);
        p2.pop(q(0), s(4), q(0)).unwrap();
        p2.overwrite(q(1), s(4), q(2), s(5)).unwrap();
        p2.push(q(2), s(5), q(3), s(4), s(6)).unwrap();
        CpdsBuilder::new(4, q(0))
            .thread(p1.build().unwrap(), [s(1)])
            .thread(p2.build().unwrap(), [s(4)])
            .build()
            .unwrap()
    }

    fn fig2() -> Cpds {
        let (bot, x0, x1) = (q(0), q(1), q(2));
        let mut p1 = PdsBuilder::new(3, 6);
        p1.overwrite(bot, s(2), x0, s(2)).unwrap();
        p1.overwrite(bot, s(2), x1, s(2)).unwrap();
        for x in [x0, x1] {
            p1.overwrite(x, s(2), x, s(3)).unwrap();
            p1.overwrite(x, s(2), x, s(4)).unwrap();
            p1.push(x, s(3), x, s(2), s(4)).unwrap();
            p1.pop(x, s(5), x1).unwrap();
        }
        p1.overwrite(x1, s(4), x1, s(4)).unwrap();
        p1.overwrite(x0, s(4), x0, s(5)).unwrap();
        let mut p2 = PdsBuilder::new(3, 10);
        p2.overwrite(bot, s(6), x0, s(6)).unwrap();
        p2.overwrite(bot, s(6), x1, s(6)).unwrap();
        for x in [x0, x1] {
            p2.overwrite(x, s(6), x, s(7)).unwrap();
            p2.overwrite(x, s(6), x, s(8)).unwrap();
            p2.push(x, s(7), x, s(6), s(8)).unwrap();
            p2.pop(x, s(9), x0).unwrap();
        }
        p2.overwrite(x0, s(8), x0, s(8)).unwrap();
        p2.overwrite(x1, s(8), x1, s(9)).unwrap();
        CpdsBuilder::new(3, bot)
            .thread(p1.build().unwrap(), [s(2)])
            .thread(p2.build().unwrap(), [s(6)])
            .build()
            .unwrap()
    }

    /// Fig. 4 left: the Fig. 1 CPDS satisfies FCR (loop-free PSAs).
    #[test]
    fn fig1_satisfies_fcr() {
        let report = check_fcr(&fig1());
        assert!(report.holds(), "{report}");
        assert_eq!(
            report.per_thread,
            vec![Finiteness::Finite, Finiteness::Finite]
        );
        assert!(report.offending_threads().is_empty());
    }

    /// Fig. 4 right: the Fig. 2 CPDS does not satisfy FCR (self-loops
    /// in both threads' PSAs).
    #[test]
    fn fig2_violates_fcr() {
        let report = check_fcr(&fig2());
        assert!(!report.holds(), "{report}");
        assert_eq!(report.offending_threads(), vec![0, 1]);
    }

    /// A recursion that always returns before another call (bounded
    /// stack within one context) keeps FCR.
    #[test]
    fn non_recursive_thread_is_finite() {
        let mut p = PdsBuilder::new(2, 3);
        p.overwrite(q(0), s(0), q(1), s(1)).unwrap();
        p.pop(q(1), s(1), q(0)).unwrap();
        let cpds = CpdsBuilder::new(2, q(0))
            .thread(p.build().unwrap(), [s(0)])
            .build()
            .unwrap();
        assert!(check_fcr(&cpds).holds());
    }

    #[test]
    fn unbounded_push_within_context_fails_fcr() {
        let mut p = PdsBuilder::new(1, 1);
        p.push(q(0), s(0), q(0), s(0), s(0)).unwrap();
        let cpds = CpdsBuilder::new(1, q(0))
            .thread(p.build().unwrap(), [s(0)])
            .build()
            .unwrap();
        let report = check_fcr(&cpds);
        assert!(!report.holds());
    }

    /// The Fig. 1 stack can grow unboundedly *across* contexts while
    /// FCR still holds (Ex. 15) — FCR is about one context at a time.
    #[test]
    fn fcr_is_per_context_not_global() {
        let cpds = fig1();
        assert!(check_fcr(&cpds).holds());
        // … yet R is infinite: layer k stays non-empty for many k
        // (checked in cuba-explore's fig1_rk_diverges test).
    }

    #[test]
    fn fcr_psa_accepts_short_stacks() {
        let cpds = fig1();
        let psa = fcr_psa(cpds.thread(1), cpds.num_shared());
        // The initial set Q × Σ≤1 itself is accepted.
        assert!(psa.accepts(q(0), &[]));
        assert!(psa.accepts(q(2), &[5]));
        // One push from ⟨2|5⟩ gives ⟨3|46⟩.
        assert!(psa.accepts(q(3), &[4, 6]));
    }
}
