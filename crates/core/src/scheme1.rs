use cuba_explore::{ExplicitEngine, ExploreBudget, SubsumptionMode, SymbolicEngine, Witness};
use cuba_pds::Cpds;

use crate::{check_fcr, ConvergenceMethod, CubaError, GrowthLog, Property, Verdict};

/// Configuration for Scheme 1 runs.
#[derive(Debug, Clone)]
pub struct Scheme1Config {
    /// Exploration budgets.
    pub budget: ExploreBudget,
    /// Give up (Undetermined) after this many rounds.
    pub max_k: usize,
    /// Skip the FCR pre-check (callers that already checked).
    pub skip_fcr_check: bool,
    /// Subsumption mode for the symbolic variant.
    pub subsumption: SubsumptionMode,
}

impl Default for Scheme1Config {
    fn default() -> Self {
        Scheme1Config {
            budget: ExploreBudget::default(),
            max_k: 64,
            skip_fcr_check: false,
            subsumption: SubsumptionMode::Exact,
        }
    }
}

/// Result of a Scheme 1 run.
#[derive(Debug, Clone)]
pub struct Scheme1Report {
    /// The verdict.
    pub verdict: Verdict,
    /// Rounds computed (largest `k` with `Rk` explored).
    pub rounds: usize,
    /// Total states stored (global states for the explicit variant,
    /// symbolic states for the symbolic one).
    pub states: usize,
    /// Sizes `|Rk|` (or `|Sk|`) per bound — the observation log.
    pub growth: GrowthLog,
}

/// Scheme 1 over the stutter-free sequence `(Rk)` with explicit state
/// sets (the paper's `Scheme 1(Rk)`, §4): compute `R1, R2, …` until a
/// violation appears or a plateau is observed; by Lemma 7 a plateau of
/// `(Rk)` *is* a collapse, so "safe" answers are sound.
///
/// # Errors
///
/// Returns [`CubaError::FcrRequired`] when the system fails the FCR
/// check (the explicit sets may be infinite per round), or a budget
/// error from the engine.
pub fn scheme1_explicit(
    cpds: &Cpds,
    property: &Property,
    config: &Scheme1Config,
) -> Result<Scheme1Report, CubaError> {
    if !config.skip_fcr_check && !check_fcr(cpds).holds() {
        return Err(CubaError::FcrRequired);
    }
    let mut engine = ExplicitEngine::new(cpds.clone(), config.budget);
    let mut growth = GrowthLog::new();
    growth.push(engine.num_states());

    // Check the initial state too (k = 0).
    if let Some(witness) = violation_witness(&engine, property, 0) {
        return Ok(Scheme1Report {
            verdict: Verdict::Unsafe {
                k: 0,
                witness: Some(witness),
            },
            rounds: 0,
            states: engine.num_states(),
            growth,
        });
    }

    for k in 1..=config.max_k {
        engine.advance()?;
        growth.push(engine.num_states());
        if let Some(witness) = violation_witness(&engine, property, k) {
            return Ok(Scheme1Report {
                verdict: Verdict::Unsafe {
                    k,
                    witness: Some(witness),
                },
                rounds: k,
                states: engine.num_states(),
                growth,
            });
        }
        if engine.is_collapsed() {
            return Ok(Scheme1Report {
                verdict: Verdict::Safe {
                    k: k - 1,
                    method: ConvergenceMethod::RkCollapse,
                },
                rounds: k,
                states: engine.num_states(),
                growth,
            });
        }
    }
    Ok(Scheme1Report {
        verdict: Verdict::Undetermined {
            reason: format!("no collapse of (Rk) within {} rounds", config.max_k),
        },
        rounds: config.max_k,
        states: engine.num_states(),
        growth,
    })
}

/// Finds a state in layer `k` whose visible projection violates the
/// property, and reconstructs its witness path.
fn violation_witness(engine: &ExplicitEngine, property: &Property, k: usize) -> Option<Witness> {
    for state in engine.layer(k) {
        if property.violated_by(&state.visible()) {
            let id = engine.find(state).expect("layer states are stored");
            return Some(engine.witness(id));
        }
    }
    None
}

/// Scheme 1 over symbolic state sets `(Sk)` (PSA-backed): usable when
/// FCR fails, e.g. the Fig. 2 program of Ex. 8 where `R1 ⊊ R2 = R3`
/// and every `Rk` is infinite. A round that produces no new symbolic
/// state soundly implies `Rk+1 ⊆ Rk`; stutter-freeness of `(Rk)`
/// (Lemma 7) then gives convergence.
///
/// # Errors
///
/// Returns a budget error when the symbolic state set explodes.
pub fn scheme1_symbolic(
    cpds: &Cpds,
    property: &Property,
    config: &Scheme1Config,
) -> Result<Scheme1Report, CubaError> {
    let mut engine = SymbolicEngine::new(cpds.clone(), config.budget, config.subsumption);
    let mut growth = GrowthLog::new();
    growth.push(engine.num_symbolic_states());

    if property
        .find_violation(engine.visible_layer(0).iter())
        .is_some()
    {
        return Ok(Scheme1Report {
            verdict: Verdict::Unsafe {
                k: 0,
                witness: None,
            },
            rounds: 0,
            states: engine.num_symbolic_states(),
            growth,
        });
    }

    for k in 1..=config.max_k {
        engine.advance()?;
        growth.push(engine.num_symbolic_states());
        if property
            .find_violation(engine.visible_layer(k).iter())
            .is_some()
        {
            let verdict = crate::alg3::attach_symbolic_witness(
                Verdict::Unsafe { k, witness: None },
                cpds,
                property,
                &config.budget,
            );
            return Ok(Scheme1Report {
                verdict,
                rounds: k,
                states: engine.num_symbolic_states(),
                growth,
            });
        }
        if engine.is_collapsed() {
            return Ok(Scheme1Report {
                verdict: Verdict::Safe {
                    k: k - 1,
                    method: ConvergenceMethod::SkCollapse,
                },
                rounds: k,
                states: engine.num_symbolic_states(),
                growth,
            });
        }
    }
    Ok(Scheme1Report {
        verdict: Verdict::Undetermined {
            reason: format!("no collapse of (Sk) within {} rounds", config.max_k),
        },
        rounds: config.max_k,
        states: engine.num_symbolic_states(),
        growth,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{fig1, fig2};
    use cuba_pds::{SharedState, StackSym, VisibleState};

    fn vis(qq: u32, tops: &[Option<u32>]) -> VisibleState {
        VisibleState::new(
            SharedState(qq),
            tops.iter().map(|t| t.map(StackSym)).collect(),
        )
    }

    /// Ex. 8 shape on Fig. 2: symbolic Scheme 1 proves convergence even
    /// though every `Rk` is infinite.
    #[test]
    fn fig2_symbolic_scheme1_converges() {
        let report = scheme1_symbolic(&fig2(), &Property::True, &Scheme1Config::default()).unwrap();
        match report.verdict {
            Verdict::Safe { k, method } => {
                assert_eq!(method, crate::ConvergenceMethod::SkCollapse);
                assert!(k <= 6, "collapse too late: k={k}");
            }
            other => panic!("expected Safe, got {other:?}"),
        }
    }

    /// Fig. 2 rejected by the explicit variant: FCR fails.
    #[test]
    fn fig2_explicit_scheme1_requires_fcr() {
        let err =
            scheme1_explicit(&fig2(), &Property::True, &Scheme1Config::default()).unwrap_err();
        assert_eq!(err, CubaError::FcrRequired);
    }

    /// On Fig. 1, (Rk) diverges; Scheme 1(Rk) must come back
    /// undetermined at the round limit (this is why Alg. 3 exists).
    #[test]
    fn fig1_explicit_scheme1_diverges() {
        let config = Scheme1Config {
            max_k: 10,
            ..Scheme1Config::default()
        };
        let report = scheme1_explicit(&fig1(), &Property::True, &config).unwrap();
        assert!(matches!(report.verdict, Verdict::Undetermined { .. }));
        assert_eq!(report.rounds, 10);
        // |Rk| strictly grows every round on Fig. 1.
        let sizes = report.growth.sizes();
        for w in sizes.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    /// Unsafe property on Fig. 1: ⟨3|2,4⟩ is reachable at k = 2, and
    /// Scheme 1 finds it with a replayable witness.
    #[test]
    fn fig1_unsafe_with_witness() {
        let cpds = fig1();
        let property = Property::never_visible(vis(3, &[Some(2), Some(4)]));
        let report = scheme1_explicit(&cpds, &property, &Scheme1Config::default()).unwrap();
        match report.verdict {
            Verdict::Unsafe { k, witness } => {
                assert_eq!(k, 2);
                let w = witness.expect("explicit engine yields witnesses");
                assert!(w.replay(&cpds));
                assert!(property.violated_by(&w.end().visible()));
                assert!(w.num_contexts() <= 2);
            }
            other => panic!("expected Unsafe, got {other:?}"),
        }
    }

    /// The same bug is found symbolically at the same bound — and the
    /// bounded witness search attaches a concrete, replayable path.
    #[test]
    fn fig1_unsafe_symbolic_same_bound_with_witness() {
        let cpds = fig1();
        let property = Property::never_visible(vis(3, &[Some(2), Some(4)]));
        let report = scheme1_symbolic(&cpds, &property, &Scheme1Config::default()).unwrap();
        match report.verdict {
            Verdict::Unsafe { k, witness } => {
                assert_eq!(k, 2);
                let w = witness.expect("bounded search reconstructs the path");
                assert!(w.replay(&cpds));
                assert!(w.num_contexts() <= 2);
                assert!(property.violated_by(&w.end().visible()));
            }
            other => panic!("expected Unsafe, got {other:?}"),
        }
    }

    /// Symbolic refutations on FCR-violating programs also get
    /// witnesses: an assertion-style target inside Fig. 2.
    #[test]
    fn fig2_symbolic_refutation_carries_witness() {
        let cpds = fig2();
        // ⟨x=1|4,9⟩ is the Ex. 8 state, reachable within 2 contexts.
        let property = Property::never_visible(vis(2, &[Some(4), Some(9)]));
        let report = scheme1_symbolic(&cpds, &property, &Scheme1Config::default()).unwrap();
        match report.verdict {
            Verdict::Unsafe { k, witness } => {
                assert_eq!(k, 2);
                let w = witness.expect("witness search works without FCR");
                assert!(w.replay(&cpds));
                assert!(w.num_contexts() <= 2);
            }
            other => panic!("expected Unsafe, got {other:?}"),
        }
    }

    /// Violation already in the initial state is reported at k = 0.
    #[test]
    fn initial_violation_is_k0() {
        let cpds = fig1();
        let property = Property::never_visible(vis(0, &[Some(1), Some(4)]));
        let report = scheme1_explicit(&cpds, &property, &Scheme1Config::default()).unwrap();
        assert!(matches!(report.verdict, Verdict::Unsafe { k: 0, .. }));
        let report = scheme1_symbolic(&cpds, &property, &Scheme1Config::default()).unwrap();
        assert!(matches!(report.verdict, Verdict::Unsafe { k: 0, .. }));
    }
}
