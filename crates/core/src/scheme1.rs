use cuba_explore::{ExplicitEngine, ExploreBudget, LayerView, SubsumptionMode, Witness};
use cuba_pds::Cpds;

use crate::engine::{Applicability, Backend, Engine, RoundCtx, RoundInfo, RoundOutcome};
use crate::{check_fcr, ConvergenceMethod, CubaError, EngineUsed, GrowthLog, Property, Verdict};

/// Configuration for Scheme 1 runs.
#[derive(Debug, Clone)]
pub struct Scheme1Config {
    /// Exploration budgets.
    pub budget: ExploreBudget,
    /// Give up (Undetermined) after this many rounds.
    pub max_k: usize,
    /// Skip the FCR pre-check (callers that already checked).
    pub skip_fcr_check: bool,
    /// Subsumption mode for the symbolic variant.
    pub subsumption: SubsumptionMode,
}

impl Default for Scheme1Config {
    fn default() -> Self {
        Scheme1Config {
            budget: ExploreBudget::default(),
            max_k: 64,
            skip_fcr_check: false,
            subsumption: SubsumptionMode::Exact,
        }
    }
}

/// Result of a Scheme 1 run.
#[derive(Debug, Clone)]
pub struct Scheme1Report {
    /// The verdict.
    pub verdict: Verdict,
    /// Rounds computed (largest `k` with `Rk` explored).
    pub rounds: usize,
    /// Total states stored (global states for the explicit variant,
    /// symbolic states for the symbolic one).
    pub states: usize,
    /// Sizes `|Rk|` (or `|Sk|`) per bound — the observation log.
    pub growth: GrowthLog,
}

/// Scheme 1 as a resumable round-stepper over the stutter-free state
/// sequence `(Rk)` (explicit) or `(Sk)` (symbolic): compute rounds
/// until a violation appears or a plateau is observed; by Lemma 7 a
/// plateau of `(Rk)` *is* a collapse, so "safe" answers are sound.
///
/// The monolithic [`scheme1_explicit`]/[`scheme1_symbolic`] loops
/// delegate here.
#[derive(Debug)]
pub struct Scheme1Engine {
    cpds: Cpds,
    property: Property,
    budget: ExploreBudget,
    max_k: usize,
    backend: Backend,
    growth: GrowthLog,
    next_k: usize,
    /// `states` at the last computed bound (bound-indexed). Doubles as
    /// the previous round's count when computing `delta_states`.
    states: usize,
    verdict: Option<Verdict>,
}

impl Scheme1Engine {
    /// Scheme 1 over `(Rk)` with explicit state sets (the paper's
    /// `Scheme 1(Rk)`, §4), on a private explorer. Performs the FCR
    /// pre-check unless the config skips it.
    ///
    /// # Errors
    ///
    /// [`CubaError::FcrRequired`] when the system fails the FCR check
    /// (the explicit sets may be infinite per round).
    pub fn explicit(
        cpds: &Cpds,
        property: &Property,
        config: &Scheme1Config,
    ) -> Result<Self, CubaError> {
        Self::explicit_with(cpds, property, config, || {
            Backend::explicit(cpds, config.budget.clone())
        })
    }

    /// Scheme 1 over symbolic state sets `(Sk)` (PSA-backed): usable
    /// when FCR fails, e.g. the Fig. 2 program of Ex. 8 where
    /// `R1 ⊊ R2 = R3` and every `Rk` is infinite. A round that
    /// produces no new symbolic state soundly implies `Rk+1 ⊆ Rk`;
    /// stutter-freeness of `(Rk)` (Lemma 7) then gives convergence.
    pub fn symbolic(cpds: &Cpds, property: &Property, config: &Scheme1Config) -> Self {
        Self::symbolic_with(
            cpds,
            property,
            config,
            Backend::symbolic(cpds, config.budget.clone(), config.subsumption),
        )
    }

    /// As [`explicit`](Self::explicit), borrowing a (possibly shared)
    /// explicit backend. The backend is supplied lazily so a failing
    /// FCR pre-check never constructs (or caches) an explorer for a
    /// system the engine refuses to analyze.
    pub(crate) fn explicit_with(
        cpds: &Cpds,
        property: &Property,
        config: &Scheme1Config,
        backend: impl FnOnce() -> Backend,
    ) -> Result<Self, CubaError> {
        if !config.skip_fcr_check && !check_fcr(cpds).holds() {
            return Err(CubaError::FcrRequired);
        }
        Ok(Self::with_backend(cpds, property, config, backend()))
    }

    /// As [`symbolic`](Self::symbolic), borrowing a (possibly shared)
    /// symbolic backend.
    pub(crate) fn symbolic_with(
        cpds: &Cpds,
        property: &Property,
        config: &Scheme1Config,
        backend: Backend,
    ) -> Self {
        Self::with_backend(cpds, property, config, backend)
    }

    fn with_backend(
        cpds: &Cpds,
        property: &Property,
        config: &Scheme1Config,
        backend: Backend,
    ) -> Self {
        Scheme1Engine {
            cpds: cpds.clone(),
            property: property.clone(),
            budget: config.budget.clone(),
            max_k: config.max_k,
            backend,
            growth: GrowthLog::new(),
            next_k: 0,
            states: 0,
            verdict: None,
        }
    }

    fn conclude(&mut self, round: Option<RoundInfo>, verdict: Verdict) -> RoundOutcome {
        self.verdict = Some(verdict.clone());
        RoundOutcome::Concluded { round, verdict }
    }

    /// The violation verdict for layer `k`, if any, with a witness
    /// (parent links for the explicit backend, bounded search for the
    /// symbolic one).
    fn violation_at(&self, view: &LayerView) -> Option<Verdict> {
        let k = view.k;
        if self.backend.is_symbolic() {
            self.property.find_violation(view.new_visible.iter())?;
            Some(crate::alg3::attach_symbolic_witness(
                Verdict::Unsafe { k, witness: None },
                &self.cpds,
                &self.property,
                &self.budget,
            ))
        } else {
            let witness = self
                .backend
                .with_explicit(|e| explicit_violation_witness(e, &self.property, k))??;
            Some(Verdict::Unsafe {
                k,
                witness: Some(witness),
            })
        }
    }

    /// Consumes the engine into the classic report.
    pub fn into_report(self) -> Scheme1Report {
        let rounds = self.rounds();
        Scheme1Report {
            verdict: self.verdict.unwrap_or_else(|| Verdict::Undetermined {
                reason: "engine not run to conclusion".to_owned(),
            }),
            rounds,
            states: self.states,
            growth: self.growth,
        }
    }
}

impl Engine for Scheme1Engine {
    fn id(&self) -> EngineUsed {
        if self.backend.is_symbolic() {
            EngineUsed::Scheme1Symbolic
        } else {
            EngineUsed::Scheme1Explicit
        }
    }

    fn applicability(&self, cpds: &Cpds) -> Applicability {
        if self.backend.is_symbolic() || check_fcr(cpds).holds() {
            Applicability::Applicable
        } else {
            Applicability::Inapplicable(
                "explicit-state Scheme 1 requires finite context reachability",
            )
        }
    }

    fn step(&mut self, ctx: &mut RoundCtx) -> Result<RoundOutcome, CubaError> {
        if let Some(verdict) = &self.verdict {
            return Ok(RoundOutcome::Concluded {
                round: None,
                verdict: verdict.clone(),
            });
        }
        ctx.interrupt.check().map_err(CubaError::Explore)?;
        let (sequence, collapse_rule) = if self.backend.is_symbolic() {
            ("(Sk)", ConvergenceMethod::SkCollapse)
        } else {
            ("(Rk)", ConvergenceMethod::RkCollapse)
        };
        if self.next_k > self.max_k {
            let verdict = Verdict::Undetermined {
                reason: format!("no collapse of {sequence} within {} rounds", self.max_k),
            };
            return Ok(self.conclude(None, verdict));
        }
        let started = std::time::Instant::now();
        let k = self.next_k;
        let interrupt = self.budget.interrupt.merged(&ctx.interrupt);
        let live = self.backend.ensure(k, &interrupt)?;
        let view = self.backend.view(k);
        let replayed = k > 0 && !live;
        let event = self.growth.push(view.states);
        self.next_k += 1;
        let states = view.states;
        let info = RoundInfo {
            k,
            states,
            delta_states: if replayed {
                0
            } else {
                states.saturating_sub(self.states)
            },
            elapsed: started.elapsed().max(std::time::Duration::from_nanos(1)),
            event,
            replayed,
        };
        self.states = states;
        if let Some(verdict) = self.violation_at(&view) {
            return Ok(self.conclude(Some(info), verdict));
        }
        if view.collapsed {
            let verdict = Verdict::Safe {
                k: k - 1,
                method: collapse_rule,
            };
            return Ok(self.conclude(Some(info), verdict));
        }
        Ok(RoundOutcome::Continue(info))
    }

    fn rounds(&self) -> usize {
        self.next_k.saturating_sub(1).min(self.max_k)
    }

    fn states(&self) -> usize {
        self.states
    }

    fn store_key(&self) -> Option<usize> {
        Some(self.backend.store_key())
    }

    fn frontier(&self) -> usize {
        self.backend.depth()
    }

    fn growth(&self) -> &GrowthLog {
        &self.growth
    }

    fn verdict(&self) -> Option<&Verdict> {
        self.verdict.as_ref()
    }
}

/// Finds a state in layer `k` whose visible projection violates the
/// property, and reconstructs its witness path.
fn explicit_violation_witness(
    engine: &ExplicitEngine,
    property: &Property,
    k: usize,
) -> Option<Witness> {
    for state in engine.layer(k) {
        if property.violated_by(&state.visible()) {
            let id = engine.find(state).expect("layer states are stored");
            return Some(engine.witness(id));
        }
    }
    None
}

/// Drives a [`Scheme1Engine`] to conclusion.
fn run_to_conclusion(mut engine: Scheme1Engine) -> Result<Scheme1Report, CubaError> {
    let mut ctx = RoundCtx::new();
    loop {
        if let RoundOutcome::Concluded { .. } = engine.step(&mut ctx)? {
            return Ok(engine.into_report());
        }
    }
}

/// Scheme 1 over the stutter-free sequence `(Rk)` with explicit state
/// sets (the paper's `Scheme 1(Rk)`, §4): compute `R1, R2, …` until a
/// violation appears or a plateau is observed; by Lemma 7 a plateau of
/// `(Rk)` *is* a collapse, so "safe" answers are sound. Delegates to
/// [`Scheme1Engine`].
///
/// # Errors
///
/// Returns [`CubaError::FcrRequired`] when the system fails the FCR
/// check (the explicit sets may be infinite per round), or a budget
/// error from the engine.
pub fn scheme1_explicit(
    cpds: &Cpds,
    property: &Property,
    config: &Scheme1Config,
) -> Result<Scheme1Report, CubaError> {
    run_to_conclusion(Scheme1Engine::explicit(cpds, property, config)?)
}

/// Scheme 1 over symbolic state sets `(Sk)` (PSA-backed): usable when
/// FCR fails. Delegates to [`Scheme1Engine`].
///
/// # Errors
///
/// Returns a budget error when the symbolic state set explodes.
pub fn scheme1_symbolic(
    cpds: &Cpds,
    property: &Property,
    config: &Scheme1Config,
) -> Result<Scheme1Report, CubaError> {
    run_to_conclusion(Scheme1Engine::symbolic(cpds, property, config))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{fig1, fig2};
    use crate::SequenceEvent;
    use cuba_pds::{SharedState, StackSym, VisibleState};

    fn vis(qq: u32, tops: &[Option<u32>]) -> VisibleState {
        VisibleState::new(
            SharedState(qq),
            tops.iter().map(|t| t.map(StackSym)).collect(),
        )
    }

    /// Ex. 8 shape on Fig. 2: symbolic Scheme 1 proves convergence even
    /// though every `Rk` is infinite.
    #[test]
    fn fig2_symbolic_scheme1_converges() {
        let report = scheme1_symbolic(&fig2(), &Property::True, &Scheme1Config::default()).unwrap();
        match report.verdict {
            Verdict::Safe { k, method } => {
                assert_eq!(method, crate::ConvergenceMethod::SkCollapse);
                assert!(k <= 6, "collapse too late: k={k}");
            }
            other => panic!("expected Safe, got {other:?}"),
        }
    }

    /// Fig. 2 rejected by the explicit variant: FCR fails.
    #[test]
    fn fig2_explicit_scheme1_requires_fcr() {
        let err =
            scheme1_explicit(&fig2(), &Property::True, &Scheme1Config::default()).unwrap_err();
        assert_eq!(err, CubaError::FcrRequired);
    }

    /// On Fig. 1, (Rk) diverges; Scheme 1(Rk) must come back
    /// undetermined at the round limit (this is why Alg. 3 exists).
    #[test]
    fn fig1_explicit_scheme1_diverges() {
        let config = Scheme1Config {
            max_k: 10,
            ..Scheme1Config::default()
        };
        let report = scheme1_explicit(&fig1(), &Property::True, &config).unwrap();
        assert!(matches!(report.verdict, Verdict::Undetermined { .. }));
        assert_eq!(report.rounds, 10);
        // |Rk| strictly grows every round on Fig. 1.
        let sizes = report.growth.sizes();
        for w in sizes.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    /// Unsafe property on Fig. 1: ⟨3|2,4⟩ is reachable at k = 2, and
    /// Scheme 1 finds it with a replayable witness.
    #[test]
    fn fig1_unsafe_with_witness() {
        let cpds = fig1();
        let property = Property::never_visible(vis(3, &[Some(2), Some(4)]));
        let report = scheme1_explicit(&cpds, &property, &Scheme1Config::default()).unwrap();
        match report.verdict {
            Verdict::Unsafe { k, witness } => {
                assert_eq!(k, 2);
                let w = witness.expect("explicit engine yields witnesses");
                assert!(w.replay(&cpds));
                assert!(property.violated_by(&w.end().visible()));
                assert!(w.num_contexts() <= 2);
            }
            other => panic!("expected Unsafe, got {other:?}"),
        }
    }

    /// The same bug is found symbolically at the same bound — and the
    /// bounded witness search attaches a concrete, replayable path.
    #[test]
    fn fig1_unsafe_symbolic_same_bound_with_witness() {
        let cpds = fig1();
        let property = Property::never_visible(vis(3, &[Some(2), Some(4)]));
        let report = scheme1_symbolic(&cpds, &property, &Scheme1Config::default()).unwrap();
        match report.verdict {
            Verdict::Unsafe { k, witness } => {
                assert_eq!(k, 2);
                let w = witness.expect("bounded search reconstructs the path");
                assert!(w.replay(&cpds));
                assert!(w.num_contexts() <= 2);
                assert!(property.violated_by(&w.end().visible()));
            }
            other => panic!("expected Unsafe, got {other:?}"),
        }
    }

    /// Symbolic refutations on FCR-violating programs also get
    /// witnesses: an assertion-style target inside Fig. 2.
    #[test]
    fn fig2_symbolic_refutation_carries_witness() {
        let cpds = fig2();
        // ⟨x=1|4,9⟩ is the Ex. 8 state, reachable within 2 contexts.
        let property = Property::never_visible(vis(2, &[Some(4), Some(9)]));
        let report = scheme1_symbolic(&cpds, &property, &Scheme1Config::default()).unwrap();
        match report.verdict {
            Verdict::Unsafe { k, witness } => {
                assert_eq!(k, 2);
                let w = witness.expect("witness search works without FCR");
                assert!(w.replay(&cpds));
                assert!(w.num_contexts() <= 2);
            }
            other => panic!("expected Unsafe, got {other:?}"),
        }
    }

    /// Violation already in the initial state is reported at k = 0.
    #[test]
    fn initial_violation_is_k0() {
        let cpds = fig1();
        let property = Property::never_visible(vis(0, &[Some(1), Some(4)]));
        let report = scheme1_explicit(&cpds, &property, &Scheme1Config::default()).unwrap();
        assert!(matches!(report.verdict, Verdict::Unsafe { k: 0, .. }));
        let report = scheme1_symbolic(&cpds, &property, &Scheme1Config::default()).unwrap();
        assert!(matches!(report.verdict, Verdict::Unsafe { k: 0, .. }));
    }

    /// Round-stepping surface: the diverging Fig. 1 run yields one
    /// `Continue` per bound, then concludes Undetermined exactly at
    /// the round limit (with no final round computed).
    #[test]
    fn engine_steps_until_round_limit() {
        let config = Scheme1Config {
            max_k: 4,
            ..Scheme1Config::default()
        };
        let mut engine = Scheme1Engine::explicit(&fig1(), &Property::True, &config).unwrap();
        let mut ctx = RoundCtx::new();
        for expected_k in 0..=4usize {
            match engine.step(&mut ctx).unwrap() {
                RoundOutcome::Continue(info) => {
                    assert_eq!(info.k, expected_k);
                    assert_eq!(info.event, SequenceEvent::Grew);
                }
                other => panic!("expected Continue at k={expected_k}, got {other:?}"),
            }
        }
        match engine.step(&mut ctx).unwrap() {
            RoundOutcome::Concluded {
                round: None,
                verdict: Verdict::Undetermined { .. },
            } => {}
            other => panic!("expected Undetermined conclusion, got {other:?}"),
        }
        assert_eq!(engine.rounds(), 4);
    }
}
