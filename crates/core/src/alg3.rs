use std::collections::HashSet;

use cuba_explore::{ExplicitEngine, ExploreBudget, SubsumptionMode, SymbolicEngine};
use cuba_pds::{Cpds, VisibleState};

use crate::{
    check_fcr, compute_z, ConvergenceMethod, CubaError, GeneratorSet, GrowthLog, Property,
    SequenceEvent, Verdict,
};

/// Configuration for Algorithm 3 runs.
#[derive(Debug, Clone)]
pub struct Alg3Config {
    /// Exploration budgets.
    pub budget: ExploreBudget,
    /// Give up (Undetermined) after this many rounds.
    pub max_k: usize,
    /// Skip the FCR pre-check (explicit variant only).
    pub skip_fcr_check: bool,
    /// Subsumption mode for the symbolic variant.
    pub subsumption: SubsumptionMode,
    /// Also conclude from a collapse of the underlying state sequence
    /// (`Rk = Rk+1` / no new symbolic states). An extension beyond the
    /// paper's Alg. 3 that is trivially sound (Lemma 7); disable to
    /// benchmark the pure generator test.
    pub use_state_collapse: bool,
}

impl Default for Alg3Config {
    fn default() -> Self {
        Alg3Config {
            budget: ExploreBudget::default(),
            max_k: 64,
            skip_fcr_check: false,
            subsumption: SubsumptionMode::Exact,
            use_state_collapse: true,
        }
    }
}

/// Result of an Algorithm 3 run.
#[derive(Debug, Clone)]
pub struct Alg3Report {
    /// The verdict.
    pub verdict: Verdict,
    /// Rounds computed.
    pub rounds: usize,
    /// Total stored states (global or symbolic).
    pub states: usize,
    /// `|T(Rk)|` per bound.
    pub visible_growth: GrowthLog,
    /// The precomputed `G ∩ Z` (diagnostics; Ex. 14 prints it).
    pub g_cap_z: Vec<VisibleState>,
    /// Plateaus whose generator test failed (bounds `k−1` where the
    /// algorithm "skipped forward", as in Ex. 14's k = 2).
    pub rejected_plateaus: Vec<usize>,
}

/// The core of Alg. 3, generic over how rounds are produced. Each
/// round supplies the new visible states; the driver checks the
/// property, the plateau condition
/// `|T(Rk−2)| < |T(Rk−1)| = |T(Rk)|`, and the generator condition
/// `G∩Z ⊆ T(Rk)`.
struct Alg3Driver {
    property: Property,
    g_cap_z: Vec<VisibleState>,
    visible_growth: GrowthLog,
    rejected_plateaus: Vec<usize>,
    use_state_collapse: bool,
}

enum RoundOutcome {
    Continue,
    Conclude(Verdict),
}

impl Alg3Driver {
    fn new(cpds: &Cpds, property: &Property, use_state_collapse: bool) -> Self {
        let generators = GeneratorSet::from_cpds(cpds);
        let z = compute_z(cpds);
        let g_cap_z = generators.intersect(z.states.iter());
        Alg3Driver {
            property: property.clone(),
            g_cap_z,
            visible_growth: GrowthLog::new(),
            rejected_plateaus: Vec::new(),
            use_state_collapse,
        }
    }

    /// Processes round `k` given the newly seen visible states, the
    /// total visible set, and whether the state sequence collapsed.
    fn round(
        &mut self,
        k: usize,
        new_visible: &[VisibleState],
        visible_total: &HashSet<VisibleState>,
        state_collapsed: bool,
    ) -> RoundOutcome {
        let event = self.visible_growth.push(visible_total.len());
        if let Some(_v) = self.property.find_violation(new_visible.iter()) {
            return RoundOutcome::Conclude(Verdict::Unsafe { k, witness: None });
        }
        if self.use_state_collapse && state_collapsed {
            return RoundOutcome::Conclude(Verdict::Safe {
                k: k - 1,
                method: ConvergenceMethod::RkCollapse,
            });
        }
        // Line 4: a *new* plateau at k−1 triggers the generator test.
        if k >= 1 && event == SequenceEvent::NewPlateau {
            if GeneratorSet::missing(&self.g_cap_z, visible_total).is_empty() {
                return RoundOutcome::Conclude(Verdict::Safe {
                    k: k - 1,
                    method: ConvergenceMethod::GeneratorTest,
                });
            }
            self.rejected_plateaus.push(k - 1);
        }
        RoundOutcome::Continue
    }
}

/// Algorithm 3 over `(T(Rk))` with explicit state sets (needs FCR):
/// visible-state reachability with stuttering detection via generator
/// sets (paper §4.1.4).
///
/// # Errors
///
/// Returns [`CubaError::FcrRequired`] when the FCR check fails, or a
/// budget error from the engine.
pub fn alg3_explicit(
    cpds: &Cpds,
    property: &Property,
    config: &Alg3Config,
) -> Result<Alg3Report, CubaError> {
    if !config.skip_fcr_check && !check_fcr(cpds).holds() {
        return Err(CubaError::FcrRequired);
    }
    let mut engine = ExplicitEngine::new(cpds.clone(), config.budget);
    let mut driver = Alg3Driver::new(cpds, property, config.use_state_collapse);

    // Round 0 (initial state).
    if let RoundOutcome::Conclude(verdict) = driver.round(
        0,
        engine.visible_layer(0).to_vec().as_slice(),
        engine.visible_total(),
        false,
    ) {
        return Ok(finish(verdict, 0, engine.num_states(), driver));
    }
    for k in 1..=config.max_k {
        engine.advance()?;
        let new_visible = engine.visible_layer(k).to_vec();
        if let RoundOutcome::Conclude(verdict) = driver.round(
            k,
            &new_visible,
            engine.visible_total(),
            engine.is_collapsed(),
        ) {
            // Attach a witness for refutations: the explicit engine can.
            let verdict = attach_witness(verdict, &engine, property);
            return Ok(finish(verdict, k, engine.num_states(), driver));
        }
    }
    Ok(finish(
        Verdict::Undetermined {
            reason: format!("no convergence within {} rounds", config.max_k),
        },
        config.max_k,
        engine.num_states(),
        driver,
    ))
}

/// Algorithm 3 over `(T(Sk))` with PSA-backed symbolic state sets (the
/// paper's fallback when FCR fails, App. E).
///
/// # Errors
///
/// Returns a budget error when the symbolic state set explodes — the
/// analogue of the paper's OOM on Stefan-1×8.
pub fn alg3_symbolic(
    cpds: &Cpds,
    property: &Property,
    config: &Alg3Config,
) -> Result<Alg3Report, CubaError> {
    let mut engine = SymbolicEngine::new(cpds.clone(), config.budget, config.subsumption);
    let mut driver = Alg3Driver::new(cpds, property, config.use_state_collapse);

    if let RoundOutcome::Conclude(verdict) = driver.round(
        0,
        engine.visible_layer(0).to_vec().as_slice(),
        engine.visible_total(),
        false,
    ) {
        return Ok(finish(verdict, 0, engine.num_symbolic_states(), driver));
    }
    for k in 1..=config.max_k {
        engine.advance()?;
        let new_visible = engine.visible_layer(k).to_vec();
        if let RoundOutcome::Conclude(mut verdict) = driver.round(
            k,
            &new_visible,
            engine.visible_total(),
            engine.is_collapsed(),
        ) {
            if let Verdict::Safe { method, .. } = &mut verdict {
                if *method == ConvergenceMethod::RkCollapse {
                    *method = ConvergenceMethod::SkCollapse;
                }
            }
            let verdict = attach_symbolic_witness(verdict, cpds, property, &config.budget);
            return Ok(finish(verdict, k, engine.num_symbolic_states(), driver));
        }
    }
    Ok(finish(
        Verdict::Undetermined {
            reason: format!("no convergence within {} rounds", config.max_k),
        },
        config.max_k,
        engine.num_symbolic_states(),
        driver,
    ))
}

/// Reconstructs a concrete path for a symbolic refutation with the
/// bounded witness search (best effort: the refutation stands even
/// when the reconstruction gives up).
pub(crate) fn attach_symbolic_witness(
    verdict: Verdict,
    cpds: &Cpds,
    property: &Property,
    budget: &cuba_explore::ExploreBudget,
) -> Verdict {
    match verdict {
        Verdict::Unsafe { k, witness: None } => {
            let witness = cuba_explore::bounded_witness_search(
                cpds,
                &|v| property.violated_by(v),
                k,
                budget,
            );
            Verdict::Unsafe { k, witness }
        }
        other => other,
    }
}

fn attach_witness(verdict: Verdict, engine: &ExplicitEngine, property: &Property) -> Verdict {
    match verdict {
        Verdict::Unsafe { k, witness: None } => {
            let witness = engine
                .layer(k)
                .find(|s| property.violated_by(&s.visible()))
                .and_then(|s| engine.find(s))
                .map(|id| engine.witness(id));
            Verdict::Unsafe { k, witness }
        }
        other => other,
    }
}

fn finish(verdict: Verdict, rounds: usize, states: usize, driver: Alg3Driver) -> Alg3Report {
    Alg3Report {
        verdict,
        rounds,
        states,
        visible_growth: driver.visible_growth,
        g_cap_z: driver.g_cap_z,
        rejected_plateaus: driver.rejected_plateaus,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{fig1, fig2};
    use cuba_pds::{SharedState, StackSym};

    fn vis(qq: u32, tops: &[Option<u32>]) -> VisibleState {
        VisibleState::new(
            SharedState(qq),
            tops.iter().map(|t| t.map(StackSym)).collect(),
        )
    }

    /// Ex. 14 end-to-end: Alg. 3 rejects the fake plateau at k = 2 and
    /// concludes safety at the real collapse k = 5 via the generator
    /// test. `use_state_collapse` is off to exercise the pure paper
    /// algorithm ((Rk) diverges on Fig. 1, so collapse can't trigger).
    #[test]
    fn fig1_example14_collapse_at_5() {
        let config = Alg3Config {
            use_state_collapse: false,
            ..Alg3Config::default()
        };
        let report = alg3_explicit(&fig1(), &Property::True, &config).unwrap();
        match &report.verdict {
            Verdict::Safe { k, method } => {
                assert_eq!(*k, 5);
                assert_eq!(*method, ConvergenceMethod::GeneratorTest);
            }
            other => panic!("expected Safe at 5, got {other:?}"),
        }
        // The fake plateau at k = 2 was rejected.
        assert_eq!(report.rejected_plateaus, vec![2]);
        // G∩Z as computed in Ex. 14.
        assert_eq!(
            report.g_cap_z,
            vec![vis(0, &[Some(1), None]), vis(0, &[Some(1), Some(6)])]
        );
        // |T(R0..6)| = 1,3,6,6,7,8,8 (Fig. 1 table).
        assert_eq!(report.visible_growth.sizes(), &[1, 3, 6, 6, 7, 8, 8]);
    }

    /// The symbolic variant reproduces the same Fig. 1 run.
    #[test]
    fn fig1_symbolic_matches_explicit() {
        let config = Alg3Config {
            use_state_collapse: false,
            ..Alg3Config::default()
        };
        let report = alg3_symbolic(&fig1(), &Property::True, &config).unwrap();
        match &report.verdict {
            Verdict::Safe { k, method } => {
                assert_eq!(*k, 5);
                assert_eq!(*method, ConvergenceMethod::GeneratorTest);
            }
            other => panic!("expected Safe at 5, got {other:?}"),
        }
        assert_eq!(report.visible_growth.sizes(), &[1, 3, 6, 6, 7, 8, 8]);
    }

    /// Alg. 3 over T(Sk) handles the FCR-violating Fig. 2.
    #[test]
    fn fig2_symbolic_proves_safety() {
        let report = alg3_symbolic(&fig2(), &Property::True, &Alg3Config::default()).unwrap();
        match &report.verdict {
            Verdict::Safe { k, .. } => assert!(*k <= 6),
            other => panic!("expected Safe, got {other:?}"),
        }
    }

    /// Explicit Alg. 3 refuses Fig. 2 (no FCR).
    #[test]
    fn fig2_explicit_requires_fcr() {
        let err = alg3_explicit(&fig2(), &Property::True, &Alg3Config::default()).unwrap_err();
        assert_eq!(err, CubaError::FcrRequired);
    }

    /// Bug finding: ⟨1|2,6⟩ first appears at k = 5 (Fig. 1 table), and
    /// Alg. 3 reports exactly that bound with a replayable witness.
    #[test]
    fn fig1_unsafe_at_5_with_witness() {
        let cpds = fig1();
        let property = Property::never_visible(vis(1, &[Some(2), Some(6)]));
        let report = alg3_explicit(&cpds, &property, &Alg3Config::default()).unwrap();
        match report.verdict {
            Verdict::Unsafe { k, witness } => {
                assert_eq!(k, 5);
                let w = witness.expect("witness available");
                assert!(w.replay(&cpds));
                assert!(property.violated_by(&w.end().visible()));
            }
            other => panic!("expected Unsafe at 5, got {other:?}"),
        }
    }

    /// Alg. 3 is *tight*: for an unreachable target it still stops at
    /// the minimal convergence bound (k = 5 for Fig. 1), not earlier.
    #[test]
    fn alg3_is_tight() {
        let config = Alg3Config {
            use_state_collapse: false,
            ..Alg3Config::default()
        };
        let property = Property::never_visible(vis(2, &[Some(1), Some(5)]));
        let report = alg3_explicit(&fig1(), &property, &config).unwrap();
        assert!(matches!(report.verdict, Verdict::Safe { k: 5, .. }));
    }

    /// With the state-collapse extension on, Fig. 2's symbolic run may
    /// conclude via Sk collapse; the verdict must still be Safe.
    #[test]
    fn fig2_sk_collapse_extension() {
        let config = Alg3Config {
            use_state_collapse: true,
            ..Alg3Config::default()
        };
        let report = alg3_symbolic(&fig2(), &Property::True, &config).unwrap();
        assert!(report.verdict.is_safe());
    }
}
